type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no inf/nan literals *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  write buf t;
  Buffer.contents buf

let save path t =
  let buf = Buffer.create 4096 in
  write buf t;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

(* --- parser ------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add buf cp =
    (* Encode a Unicode code point as UTF-8 bytes. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | None -> fail "truncated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    (* Surrogate pair: \uD800-\uDBFF followed by low. *)
                    if cp >= 0xd800 && cp <= 0xdbff then begin
                      if
                        !pos + 2 <= n
                        && s.[!pos] = '\\'
                        && s.[!pos + 1] = 'u'
                      then begin
                        pos := !pos + 2;
                        let lo = hex4 () in
                        if lo >= 0xdc00 && lo <= 0xdfff then
                          0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                        else fail "invalid low surrogate"
                      end
                      else fail "lone high surrogate"
                    end
                    else cp
                  in
                  utf8_add buf cp
              | _ -> fail "invalid escape"));
          go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
