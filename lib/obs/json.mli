(** Minimal JSON tree, writer, and parser.

    Just enough for the observability exports (Chrome trace-event files,
    metrics snapshots) and for tests to round-trip them back — the repo
    deliberately has no external JSON dependency.  The writer emits
    [%.17g] floats (round-trippable doubles) and maps non-finite floats
    to [null] (JSON has no inf/nan literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val save : string -> t -> unit

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the standard JSON grammar
    (escapes incl. [\uXXXX] decoded to UTF-8; numbers without [.], [e]
    or [E] that fit an OCaml [int] parse as [Int], all others as
    [Float]).  Errors carry a byte offset. *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] on other variants. *)
