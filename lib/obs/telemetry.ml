(* Live telemetry endpoint: a single-threaded HTTP/1.0 server over
   [Unix], running on its own domain, serving the process-global
   metrics registry and a health snapshot.  No external dependency —
   Prometheus, curl and CI only need the text exposition format and
   tiny JSON bodies, and a hand-rolled HTTP/1.0 responder is ~100
   lines.

   Concurrency: scrapes race the recording domains by design (that is
   the point of a live endpoint).  Counters and gauges are atomics, so
   reads are merely instantaneous-but-unsynchronised; histogram shards
   are single-writer plain stores, so a mid-mutation read can mix
   observations from different instants — the rendered exposition is
   always well-formed, the values are a snapshot "around now".  The
   end-of-run exports (--metrics files) remain the exact numbers. *)

let version = "1.0.0"

let git_rev =
  match Sys.getenv_opt "LDAFP_GIT_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | _ -> "unknown"

let build_info () =
  [ ("version", version); ("ocaml", Sys.ocaml_version); ("git_rev", git_rev) ]

(* Registered eagerly at module init, like every other metric in the
   repo (concurrent Lazy.force is unsafe on OCaml 5).  [ldafp_build_info]
   is the conventional constant-1 gauge whose labels carry the build
   identity; [ldafp_uptime_seconds] is refreshed on every scrape. *)
let m_build_info =
  Metrics.gauge Metrics.default ~labels:(build_info ())
    ~help:"constant 1; labels identify the build" "ldafp_build_info"

let () = Metrics.set m_build_info 1.0

let m_uptime =
  Metrics.gauge Metrics.default
    ~help:"seconds since process start (refreshed on scrape)"
    "ldafp_uptime_seconds"

let start_ns = Clock.now_ns ()
let uptime_seconds () = float_of_int (Clock.now_ns () - start_ns) *. 1e-9

(* ---- Health state ---- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let phase = Atomic.make "idle"
let nodes = Atomic.make 0
let incumbent = Atomic.make Float.infinity
let gap = Atomic.make Float.infinity
let set_phase p = Atomic.set phase p
let set_nodes n = Atomic.set nodes n
let set_incumbent c = Atomic.set incumbent c
let set_gap g = Atomic.set gap g

let health_json () =
  (* The Json writer maps non-finite floats to [null], which is exactly
     right for "no incumbent yet". *)
  Json.Obj
    [
      ("status", Json.Str "ok");
      ("phase", Json.Str (Atomic.get phase));
      ("nodes_expanded", Json.Int (Atomic.get nodes));
      ("incumbent", Json.Float (Atomic.get incumbent));
      ("certified_gap", Json.Float (Atomic.get gap));
      ("uptime_seconds", Json.Float (uptime_seconds ()));
      ("pid", Json.Int (Unix.getpid ()));
    ]

(* ---- HTTP ---- *)

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

let handle_request registry line =
  match String.split_on_char ' ' line with
  | "GET" :: path :: _ -> (
      (* Strip any query string: Prometheus appends none, but curl
         users might. *)
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      Metrics.set m_uptime (uptime_seconds ());
      match path with
      | "/metrics" ->
          response ~status:"200 OK"
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (Metrics.to_prometheus registry)
      | "/metrics.json" ->
          response ~status:"200 OK" ~content_type:"application/json"
            (Json.to_string (Metrics.to_json registry))
      | "/healthz" ->
          response ~status:"200 OK" ~content_type:"application/json"
            (Json.to_string (health_json ()))
      | _ ->
          response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found\n")
  | _ ->
      response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is served\n"

type server = {
  sock : Unix.file_descr;
  bound_host : string;
  bound_port : int;
  stop_flag : bool Atomic.t;
  dom : unit Domain.t;
  mutable stopped : bool;
}

let read_request_line fd =
  (* One recv is almost always the whole request; loop defensively up
     to a small cap for clients that dribble.  A 2 s receive timeout
     bounds a stalled client — the accept loop is single-threaded, so a
     slowloris must not freeze scraping forever. *)
  let buf = Bytes.create 2048 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > 8192 then Buffer.contents acc
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 | (exception Unix.Unix_error _) -> Buffer.contents acc
      | n ->
          Buffer.add_subbytes acc buf 0 n;
          let s = Buffer.contents acc in
          if String.index_opt s '\n' <> None then s else go ()
  in
  let s = go () in
  match String.index_opt s '\n' with
  | Some i -> String.trim (String.sub s 0 i)
  | None -> String.trim s

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 | (exception Unix.Unix_error _) -> ()
      | w -> go (off + w)
  in
  go 0

let serve_client registry fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0 with _ -> ());
  let line = read_request_line fd in
  if line <> "" then write_all fd (handle_request registry line);
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close fd with _ -> ()

let accept_loop registry sock stop_flag () =
  let rec loop () =
    if not (Atomic.get stop_flag) then begin
      (* Select with a short timeout so a stop request is honoured
         within ~200 ms without the self-connect trick. *)
      (match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept sock with
          | fd, _ -> serve_client registry fd
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let parse_addr addr =
  let host, port_s =
    match String.rindex_opt addr ':' with
    | Some i ->
        (String.sub addr 0 i, String.sub addr (i + 1) (String.length addr - i - 1))
    | None -> ("", addr)
  in
  match int_of_string_opt port_s with
  | None ->
      Error (Printf.sprintf "telemetry: bad port in %S (want HOST:PORT)" addr)
  | Some p when p < 0 || p > 65535 ->
      Error (Printf.sprintf "telemetry: port %d out of range" p)
  | Some p -> (
      match host with
      | "" | "0.0.0.0" | "*" -> Ok (Unix.inet_addr_any, p)
      | "localhost" -> Ok (Unix.inet_addr_loopback, p)
      | h -> (
          match Unix.inet_addr_of_string h with
          | ip -> Ok (ip, p)
          | exception _ -> (
              match Unix.gethostbyname h with
              | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                  Error (Printf.sprintf "telemetry: cannot resolve %S" h)
              | { Unix.h_addr_list; _ } -> Ok (h_addr_list.(0), p))))

let start ?(registry = Metrics.default) ~addr () =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok (ip, port) -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (ip, port));
        Unix.listen sock 16
      with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close sock with _ -> ());
          Error
            (Printf.sprintf "telemetry: cannot bind %s: %s" addr
               (Unix.error_message err))
      | () ->
          let bound_host, bound_port =
            match Unix.getsockname sock with
            | Unix.ADDR_INET (a, p) -> (Unix.string_of_inet_addr a, p)
            | _ -> (Unix.string_of_inet_addr ip, port)
          in
          let stop_flag = Atomic.make false in
          let dom = Domain.spawn (accept_loop registry sock stop_flag) in
          Atomic.set enabled_flag true;
          Ok { sock; bound_host; bound_port; stop_flag; dom; stopped = false })

let stop s =
  if not s.stopped then begin
    s.stopped <- true;
    Atomic.set enabled_flag false;
    Atomic.set s.stop_flag true;
    Domain.join s.dom;
    try Unix.close s.sock with _ -> ()
  end

let port s = s.bound_port
let addr s = Printf.sprintf "%s:%d" s.bound_host s.bound_port
