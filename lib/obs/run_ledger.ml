(* Durable run ledger: JSONL records with atomic appends (rewrite to
   tmp, fsync, rename — the Checkpoint discipline) and the regression
   diff behind [ldafp runs diff].  See run_ledger.mli for the record
   schema and diff semantics. *)

let schema = "ldafp-run/1"

let environment () =
  let os = if Sys.win32 then "win32" else if Sys.cygwin then "cygwin" else "unix" in
  let hostname = try Unix.gethostname () with _ -> "unknown" in
  Json.Obj
    [
      ("cores_detected", Json.Int (Domain.recommended_domain_count ()));
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ("hostname", Json.Str hostname);
      ("word_size", Json.Int Sys.word_size);
      ("os", Json.Str os);
    ]

let timestamp_utc t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let record ~kind ?argv sections =
  let argv =
    match argv with Some a -> a | None -> Array.to_list Sys.argv
  in
  let t = Unix.gettimeofday () in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("kind", Json.Str kind);
       ("unix_time", Json.Float t);
       ("timestamp_utc", Json.Str (timestamp_utc t));
       ("argv", Json.List (List.map (fun a -> Json.Str a) argv));
       ("environment", environment ());
     ]
    @ sections)

(* ------------------------------------------------------------------ *)
(* Atomic append                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end
  else ""

let append ~path record =
  match
    let existing = read_file path in
    let line = Json.to_string record in
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let oc = Unix.out_channel_of_descr fd in
        output_string oc existing;
        if existing <> "" && existing.[String.length existing - 1] <> '\n' then
          (* A ledger truncated mid-line by some other writer's crash:
             close the torn line so the new record stays parseable. *)
          output_char oc '\n';
        output_string oc line;
        output_char oc '\n';
        flush oc;
        (* The rename is only atomic-durable if the data hit the disk
           first. *)
        Unix.fsync fd);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, arg) ->
      Error
        (Printf.sprintf "run ledger %s: %s (%s)" path
           (Unix.error_message err) arg)
  | exception Sys_error msg -> Error (Printf.sprintf "run ledger: %s" msg)

let load ~path =
  match read_file path with
  | exception Sys_error msg -> Error (Printf.sprintf "run ledger: %s" msg)
  | contents ->
      let records, malformed =
        String.split_on_char '\n' contents
        |> List.fold_left
             (fun (recs, bad) line ->
               if String.trim line = "" then (recs, bad)
               else
                 match Json.parse line with
                 | Ok j -> (j :: recs, bad)
                 | Error _ -> (recs, bad + 1))
             ([], 0)
      in
      Ok (List.rev records, malformed)

(* ------------------------------------------------------------------ *)
(* Regression diffing                                                  *)
(* ------------------------------------------------------------------ *)

type severity = Correctness | Timing

type finding = {
  severity : severity;
  path : string;
  baseline : Json.t;
  candidate : Json.t;
  message : string;
}

let severity_name = function
  | Correctness -> "correctness"
  | Timing -> "timing"

(* Flatten a record into dotted leaf paths ("parallel.experiments[0]
   .warm_hit_rate").  Diffing walks exact path pairs, so the same key
   appearing in several experiments is compared per-experiment. *)
let leaves j =
  let acc = ref [] in
  let rec go prefix = function
    | Json.Obj kvs ->
        List.iter
          (fun (k, v) ->
            go (if prefix = "" then k else prefix ^ "." ^ k) v)
          kvs
    | Json.List xs ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" prefix i) v) xs
    | leaf -> acc := (prefix, leaf) :: !acc
  in
  go "" j;
  List.rev !acc

let leaf_key path =
  (* Last dotted segment, list index stripped: "a.b[3].c" -> "c",
     "micro[2].ns_per_run" -> "ns_per_run". *)
  let seg =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  match String.index_opt seg '[' with
  | Some i -> String.sub seg 0 i
  | None -> seg

let as_number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let as_flag = function
  | Json.Bool b -> Some b
  | Json.Int i -> Some (i <> 0)
  | _ -> None

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let diff ?(rel_tol = 0.25) ?(warm_drop = 0.1) ~baseline ~candidate () =
  let base = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace base p v) (leaves baseline);
  let findings = ref [] in
  let emit severity path b c fmt =
    Printf.ksprintf
      (fun message ->
        findings :=
          { severity; path; baseline = b; candidate = c; message } :: !findings)
      fmt
  in
  List.iter
    (fun (path, cand) ->
      match Hashtbl.find_opt base path with
      | None -> () (* schemas may grow; only shared leaves are compared *)
      | Some b -> (
          let key = leaf_key path in
          match key with
          | "certified_sound" -> (
              match (as_flag b, as_flag cand) with
              | Some true, Some false ->
                  emit Correctness path b cand
                    "certified_sound regressed true -> false"
              | _ -> ())
          | "cert_fallbacks" -> (
              match (as_number b, as_number cand) with
              | Some vb, Some vc when vc > vb ->
                  emit Correctness path b cand
                    "cert_fallbacks increased %g -> %g" vb vc
              | _ -> ())
          | "warm_hit_rate" -> (
              match (as_number b, as_number cand) with
              | Some vb, Some vc when vb -. vc > warm_drop ->
                  emit Correctness path b cand
                    "warm_hit_rate dropped %.3f -> %.3f (more than %g)" vb vc
                    warm_drop
              | _ -> ())
          | "ns_per_run" -> (
              match (as_number b, as_number cand) with
              | Some vb, Some vc
                when vb > 0. && vc > vb *. (1. +. rel_tol) ->
                  emit Timing path b cand
                    "ns_per_run %.4g -> %.4g (+%.0f%%, tolerance %.0f%%)" vb
                    vc
                    ((vc /. vb -. 1.) *. 100.)
                    (rel_tol *. 100.)
              | _ -> ())
          | k when ends_with ~suffix:"preds_per_sec" k -> (
              match (as_number b, as_number cand) with
              | Some vb, Some vc
                when vb > 0. && vc < vb *. (1. -. rel_tol) ->
                  emit Timing path b cand
                    "%s %.4g -> %.4g (-%.0f%%, tolerance %.0f%%)" k vb vc
                    ((1. -. (vc /. vb)) *. 100.)
                    (rel_tol *. 100.)
              | _ -> ())
          | _ -> ()))
    (leaves candidate);
  (* Correctness first, then file order within each severity. *)
  let ordered = List.rev !findings in
  List.filter (fun f -> f.severity = Correctness) ordered
  @ List.filter (fun f -> f.severity = Timing) ordered

let findings_json findings =
  let count sev =
    List.length (List.filter (fun f -> f.severity = sev) findings)
  in
  Json.Obj
    [
      ("schema", Json.Str "ldafp-diff/1");
      ("correctness_regressions", Json.Int (count Correctness));
      ("timing_regressions", Json.Int (count Timing));
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("severity", Json.Str (severity_name f.severity));
                   ("path", Json.Str f.path);
                   ("baseline", f.baseline);
                   ("candidate", f.candidate);
                   ("message", Json.Str f.message);
                 ])
             findings) );
    ]
