(** Named counters, gauges and log-bucketed latency histograms.

    Metrics are registered once at module-initialisation time (eagerly —
    OCaml 5 makes concurrent [Lazy.force] unsafe, and init runs before
    any domain is spawned) and are cheap enough to update from the
    solver's hot paths: counters and gauges are atomics; a histogram
    observation indexes a {e per-domain} single-writer shard, so no lock
    or CAS contention is involved.  Recording is gated by a global
    {!enabled} flag (one atomic load); call sites guard on it so the
    disabled path allocates nothing:

    {[
      if Obs.Metrics.enabled () then Obs.Metrics.observe h seconds
    ]}

    Histograms are log-bucketed: geometric bucket boundaries between
    [lo] and [hi], i.e. linear bins in [log10] space — which is exactly
    {!Stats.Histogram} over [log10 x], so export aggregates the
    per-domain shards with {!Stats.Histogram.merge} and estimates
    p50/p90/p99 with {!Stats.Histogram.quantile}.

    Exports ({!to_json}, {!to_prometheus}) read shard state without
    synchronisation: only export after the recording domains have been
    joined.  Metric name glossary lives in {!page-observability}. *)

type t
(** A metric registry. *)

type counter
type gauge
type histogram

val default : t
(** The process-global registry every solver-stack metric registers
    in. *)

val create : unit -> t
(** A fresh registry (tests). *)

val enabled : unit -> bool
(** One atomic load; never allocates. *)

val set_enabled : bool -> unit

(** {1 Registration}

    Registering a duplicate name in the same registry raises
    [Invalid_argument].  [labels] are constant key/value pairs rendered
    on every sample (Prometheus-style). *)

val counter :
  ?help:string -> ?labels:(string * string) list -> t -> string -> counter

val gauge :
  ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?bins:int ->
  lo:float ->
  hi:float ->
  t ->
  string ->
  histogram
(** Geometric buckets: [bins] (default [24]) buckets between [lo] and
    [hi] (both [> 0]); observations below [lo] (or NaN / non-positive)
    count as underflow, at/above [hi] as overflow — both included in
    [count] and in the Prometheus [+Inf] bucket.
    @raise Invalid_argument unless [0 < lo < hi] and [bins >= 1]. *)

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one observation on the calling domain's shard. *)

(** {1 Reading (tests / sinks)} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val histogram_count : histogram -> int
(** Total observations incl. under/overflow, summed across shards. *)

val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float option
(** [p]-quantile estimate in {e value} space ([10 ** q] of the log-space
    {!Stats.Histogram.quantile}); [None] when empty. *)

val snapshot : histogram -> Stats.Histogram.t
(** Shards merged into one {!Stats.Histogram} over [log10 x]. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"schema": "ldafp-metrics/1", "metrics": {name: {...}}}] — each
    histogram entry carries [count], [sum], [p50]/[p90]/[p99] and
    cumulative [buckets] ([{le, count}], matching Prometheus
    semantics). *)

val save_json : t -> string -> unit

val to_prometheus : t -> string
(** Prometheus text exposition format v0.0.4: [# HELP]/[# TYPE] lines,
    escaped label values, histograms as cumulative [_bucket{le="..."}]
    series ending in [+Inf], plus [_sum] and [_count]. *)

val save_prometheus : t -> string -> unit

val reset : t -> unit
(** Zero every metric (tests).  Only sound while recording domains are
    quiescent. *)
