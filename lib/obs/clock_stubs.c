/* Monotonic clock for Obs.Clock.
 *
 * Returns nanoseconds since an arbitrary epoch as an untagged OCaml int
 * (Val_long), so the hot path never boxes: 63-bit ints hold ~146 years
 * of nanoseconds.  CLOCK_MONOTONIC is immune to NTP steps, unlike
 * gettimeofday. */

#include <time.h>

#include <caml/mlvalues.h>

CAMLprim value ldafp_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
