(** Per-domain trace-event ring buffers with Chrome trace-event export.

    A collector holds one fixed-capacity ring buffer per emitting
    domain.  Rings are single-writer (the owning domain) so emission
    takes no lock and performs one array store; when a ring is full the
    oldest event is overwritten and a per-ring drop counter advances.
    With no collector installed, {!enabled} is a single [Atomic.get]
    and returns [false] — call sites guard argument construction behind
    it so the disabled path allocates nothing:

    {[
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"sched" "sched.park"
          ~args:[ ("shard", Obs.Trace.Int i) ]
    ]}

    Export ({!events}/{!to_json}/{!save}) merges all rings sorted by
    timestamp into the Chrome trace-event JSON object format (catapult
    schema: [{"traceEvents": [...]}]) which {{:https://ui.perfetto.dev}
    Perfetto} and [chrome://tracing] load directly.  Export reads ring
    state without synchronisation: only call it after the emitting
    domains have been joined (or before they are spawned).

    Event taxonomy (categories and names) is documented in
    {!page-observability}. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  cat : string;  (** category: ["bnb"], ["socp"], ["sched"], ["ckpt"], ["fault"] *)
  ph : [ `Complete | `Instant ];
  ts_ns : int;  (** start timestamp, {!Clock.now_ns} domain *)
  dur_ns : int;  (** duration; [0] for instants *)
  tid : int;  (** emitting domain id *)
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> unit -> t
(** A collector whose per-domain rings hold [capacity] events each
    (default [65536]).  @raise Invalid_argument if [capacity < 1]. *)

val install : t -> unit
(** Make [t] the process-global sink; subsequent emissions from any
    domain land in it. *)

val uninstall : unit -> unit
(** Disable tracing; {!enabled} returns [false] again. *)

val enabled : unit -> bool
(** One atomic load and a comparison; never allocates. *)

val instant : ?args:(string * arg) list -> cat:string -> string -> unit
(** Emit a point event stamped with {!Clock.now_ns} on the calling
    domain's ring.  No-op when disabled. *)

val complete :
  ?args:(string * arg) list ->
  cat:string ->
  string ->
  t0_ns:int ->
  dur_ns:int ->
  unit
(** Emit a span the caller already timed ([t0_ns] from
    {!Clock.now_ns}).  Complete events (Chrome phase ["X"]) are used
    instead of begin/end pairs so a span survives its partner being
    overwritten on ring wraparound.  No-op when disabled. *)

val events : t -> event list
(** All buffered events across rings, sorted by [ts_ns].  Only sound
    once emitting domains are quiescent (joined). *)

val dropped : t -> int
(** Total events overwritten by ring wraparound, across all rings. *)

val to_json : t -> Json.t
(** Chrome trace-event JSON object ([{"traceEvents": [...]}]) with
    microsecond timestamps; instants carry thread scope (["s":"t"]). *)

val save : t -> string -> unit
