external monotonic_ns : unit -> int = "ldafp_clock_monotonic_ns" [@@noalloc]

let source : (unit -> int) option Atomic.t = Atomic.make None

let now_ns () =
  match Atomic.get source with None -> monotonic_ns () | Some f -> f ()

let now () = float_of_int (now_ns ()) *. 1e-9
let set_source f = Atomic.set source (Some f)
let use_monotonic () = Atomic.set source None
