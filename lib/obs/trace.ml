type arg = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant ];
  ts_ns : int;
  dur_ns : int;
  tid : int;
  args : (string * arg) list;
}

let dummy =
  { name = ""; cat = ""; ph = `Instant; ts_ns = 0; dur_ns = 0; tid = 0; args = [] }

(* Single-writer ring: only the owning domain mutates it.  [head] is the
   next write slot; once full ([len = capacity]) it is also the oldest
   event, so a write overwrites exactly the oldest and bumps [dropped]. *)
type ring = {
  buf : event array;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
}

type collector = {
  capacity : int;
  reg_lock : Mutex.t;  (** guards [rings] (ring registration only) *)
  mutable rings : ring list;
}

type t = collector

(* The process-global sink.  [enabled] is one atomic load — the entire
   cost of the disabled path, since call sites guard on it before
   building any event arguments. *)
let current : collector option Atomic.t = Atomic.make None

(* Each domain caches its ring per collector (physical equality), so an
   emission after the first is a list lookup plus an array store. *)
let ring_key : (collector * ring) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let ring_for (c : collector) =
  let cache = Domain.DLS.get ring_key in
  match List.assq_opt c !cache with
  | Some r -> r
  | None ->
      let r =
        { buf = Array.make c.capacity dummy; head = 0; len = 0; dropped = 0 }
      in
      Mutex.lock c.reg_lock;
      c.rings <- r :: c.rings;
      Mutex.unlock c.reg_lock;
      cache := (c, r) :: !cache;
      r

let write r ev =
  let cap = Array.length r.buf in
  if r.len = cap then r.dropped <- r.dropped + 1 else r.len <- r.len + 1;
  r.buf.(r.head) <- ev;
  r.head <- (r.head + 1) mod cap

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { capacity; reg_lock = Mutex.create (); rings = [] }

let install c = Atomic.set current (Some c)
let uninstall () = Atomic.set current None
let enabled () = Atomic.get current != None

let instant ?(args = []) ~cat name =
  match Atomic.get current with
  | None -> ()
  | Some c ->
      let tid = (Domain.self () :> int) in
      write (ring_for c)
        { name; cat; ph = `Instant; ts_ns = Clock.now_ns (); dur_ns = 0; tid; args }

let complete ?(args = []) ~cat name ~t0_ns ~dur_ns =
  match Atomic.get current with
  | None -> ()
  | Some c ->
      let tid = (Domain.self () :> int) in
      write (ring_for c)
        { name; cat; ph = `Complete; ts_ns = t0_ns; dur_ns; tid; args }

let ring_events r =
  let cap = Array.length r.buf in
  let start = (r.head - r.len + (2 * cap)) mod cap in
  List.init r.len (fun i -> r.buf.((start + i) mod cap))

let events c =
  Mutex.lock c.reg_lock;
  let rings = c.rings in
  Mutex.unlock c.reg_lock;
  List.concat_map ring_events rings
  |> List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns)

let dropped c =
  Mutex.lock c.reg_lock;
  let rings = c.rings in
  Mutex.unlock c.reg_lock;
  List.fold_left (fun acc r -> acc + r.dropped) 0 rings

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let json_of_event ev =
  let us ns = float_of_int ns /. 1e3 in
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.tid);
      ("ts", Json.Float (us ev.ts_ns));
    ]
  in
  let phase =
    match ev.ph with
    | `Complete -> [ ("ph", Json.Str "X"); ("dur", Json.Float (us ev.dur_ns)) ]
    | `Instant -> [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
  in
  let args =
    match ev.args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) kvs)) ]
  in
  Json.Obj (base @ phase @ args)

let to_json c =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events c)));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("droppedEvents", Json.Int (dropped c)) ]);
    ]

let save c path = Json.save path (to_json c)
