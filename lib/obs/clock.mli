(** Monotonic time source.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a C stub that returns
    untagged [int] nanoseconds, so reading the clock never allocates —
    safe to call on the solver's per-node hot path even with every sink
    disabled.  Monotonic time is immune to NTP steps and leap-second
    smearing, unlike [Unix.gettimeofday]; its epoch is arbitrary, so
    timestamps are only meaningful as differences within one process.

    Tests can substitute a deterministic source with {!set_source}. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (per-process) epoch. *)

val now : unit -> float
(** Seconds since the same arbitrary epoch ([now_ns] scaled). *)

val set_source : (unit -> int) -> unit
(** Route {!now_ns}/{!now} through a mock nanosecond source (tests).
    Mock sources should be monotone non-decreasing like the real one. *)

val use_monotonic : unit -> unit
(** Restore the real [CLOCK_MONOTONIC] source. *)
