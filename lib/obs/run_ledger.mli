(** Durable run ledger: one [ldafp-run/1] JSON record per CLI
    invocation, appended to a JSONL file with the {!Checkpoint}-style
    tmp+fsync+rename discipline, plus the regression diff that
    [ldafp runs diff] and CI gate on.

    A record is a single JSON object on one line:

    {v
    {"schema": "ldafp-run/1", "kind": "train", "unix_time": ...,
     "timestamp_utc": "...", "argv": [...],
     "environment": {"cores_detected": ..., "ocaml_version": ...,
                     "hostname": ..., "word_size": ..., "os": ...},
     <caller sections: "config", "stats", "metrics", "bench", ...>}
    v}

    The environment block exists so the ROADMAP single-core caveat is
    machine-checkable: a bench number is only comparable to another
    bench number taken with the same [cores_detected].

    {b Durability.} {!append} never writes in place: it rewrites the
    whole ledger to a temp file ([path ^ ".tmp"]), [fsync]s, and
    [rename]s over the original — a crash at any instant leaves either
    the old ledger or the new one, never a torn line.  {!load} is
    additionally lenient: malformed lines (e.g. a tail truncated by a
    crash of some {e other} writer) are counted and skipped, so prior
    records always remain readable. *)

val schema : string
(** ["ldafp-run/1"]. *)

val environment : unit -> Json.t
(** [{cores_detected, ocaml_version, hostname, word_size, os}] for the
    running process. *)

val record :
  kind:string -> ?argv:string list -> (string * Json.t) list -> Json.t
(** [record ~kind sections] builds a ledger record: schema, [kind]
    (["train"] / ["classify"] / ["bench"]), timestamps, [argv]
    (default [Sys.argv]), {!environment}, then the caller [sections]
    appended as top-level keys. *)

val append : path:string -> Json.t -> (unit, string) result
(** Append one record to the JSONL ledger at [path] (created if
    missing) via tmp+fsync+rename.  Returns [Error msg] on I/O failure
    instead of raising — ledger writes must never kill a run that just
    finished. *)

val load : path:string -> (Json.t list * int, string) result
(** [load ~path] returns [(records, malformed)] — every line that
    parses as JSON, in file order, plus the count of lines that did
    not.  A missing file is an empty ledger ([Ok ([], 0)]);
    [Error] only when an existing file cannot be read. *)

(** {1 Regression diffing} *)

type severity =
  | Correctness  (** certified invariants; CI exits non-zero *)
  | Timing  (** throughput/latency noise band; advisory only *)

type finding = {
  severity : severity;
  path : string;  (** dotted leaf path, e.g. ["parallel.experiments[0].warm_hit_rate"] *)
  baseline : Json.t;
  candidate : Json.t;
  message : string;
}

val severity_name : severity -> string
(** ["correctness"] / ["timing"]. *)

val diff :
  ?rel_tol:float ->
  ?warm_drop:float ->
  baseline:Json.t ->
  candidate:Json.t ->
  unit ->
  finding list
(** Compare two ledger records leaf-by-leaf (paths must match exactly)
    and return regressions, correctness first:

    - [certified_sound] [true -> false] — Correctness;
    - [cert_fallbacks] increased (in particular [0 -> >0]) —
      Correctness;
    - [warm_hit_rate] dropped by more than [warm_drop] (default
      [0.1], absolute) — Correctness;
    - any [*preds_per_sec] below [baseline * (1 - rel_tol)], or
      [ns_per_run] above [baseline * (1 + rel_tol)] (default
      [rel_tol = 0.25]) — Timing.

    Leaves present in only one record are ignored (schemas may grow).
    Timing findings never gate CI — the ROADMAP rule is correctness
    and agreement only, never timing. *)

val findings_json : finding list -> Json.t
(** Machine-readable diff output:
    [{schema: "ldafp-diff/1", correctness_regressions: n,
      timing_regressions: n, findings: [...]}]. *)
