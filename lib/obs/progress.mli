(** Throttled progress reporting for long solver runs.

    A reporter emits at most one line per [interval] (clamped to >= 1 s
    so `ldafp train --progress` can never flood stderr).  The hot loop
    polls {!due} — a clock read, a compare and one CAS, no allocation —
    and only formats a line after it returns [true]:

    {[
      match progress with
      | Some p when Obs.Progress.due p -> Obs.Progress.emit p (line ())
      | _ -> ()
    ]}

    [due] hands out the emission slot to exactly one caller per
    interval (CAS on the last-emit timestamp), so concurrent domains
    can share one reporter without double-printing. *)

type t

val create : ?interval:float -> ?channel:out_channel -> unit -> t
(** [interval] in seconds, clamped to >= 1.0 (default 1.0); output goes
    to [channel] (default [stderr]).  The first {!due} after creation
    fires immediately. *)

val due : t -> bool
(** [true] at most once per interval across all callers; never
    allocates. *)

val emit : t -> string -> unit
(** Write [line ^ "\n"] and flush.  Call only after {!due}. *)
