(** Live telemetry: a dependency-free HTTP/1.0 scrape endpoint plus the
    process-global health snapshot it serves.

    {!start} binds a listening socket and runs a single-threaded accept
    loop on its own domain, answering

    - [GET /metrics] — the registry's Prometheus text exposition
      ({!Metrics.to_prometheus}),
    - [GET /metrics.json] — the JSON export ({!Metrics.to_json}),
    - [GET /healthz] — a small JSON object with the current search
      phase, nodes expanded, incumbent, certified gap and process
      uptime, fed by the {{!section-health} health setters} below.

    The server is deliberately minimal: HTTP/1.0, [Connection: close],
    one request per connection, no keep-alive, no external dependency —
    enough for Prometheus, [curl] and CI, and a ready-made scrape
    surface for a future [ldafp serve].

    Solver-side health updates are gated by {!enabled} exactly like
    {!Metrics.enabled}: when no server is running, every update site
    costs one atomic load and allocates nothing. *)

type server

val start :
  ?registry:Metrics.t -> addr:string -> unit -> (server, string) result
(** [start ~addr ()] parses [addr] as [HOST:PORT] (or [:PORT] /
    [PORT] for all interfaces), binds, listens, spawns the accept-loop
    domain, and flips {!enabled} on.  [PORT] may be [0] to bind an
    ephemeral port (tests); read it back with {!port}.  Returns
    [Error msg] on parse or bind failure instead of raising — a bad
    [--telemetry-addr] must not kill a long training run before it
    starts. *)

val stop : server -> unit
(** Signal the accept loop, join its domain, close the socket, and flip
    {!enabled} off.  Idempotent. *)

val port : server -> int
(** The bound TCP port (useful with port [0]). *)

val addr : server -> string
(** The bound address as [HOST:PORT]. *)

(** {1:health Health state}

    Module-level atomics published by the solver and rendered by
    [/healthz].  Setters are cheap (one atomic store; float boxing on
    the enabled path only) and safe from any domain. *)

val enabled : unit -> bool
(** One atomic load; never allocates.  True while a server is
    running. *)

val set_phase : string -> unit
(** The current search phase: ["idle"], ["seeding"], ["searching"],
    ["done:<stop reason>"]. *)

val set_nodes : int -> unit
val set_incumbent : float -> unit
val set_gap : float -> unit

val health_json : unit -> Json.t
(** The [/healthz] body: [{status, phase, nodes_expanded, incumbent,
    certified_gap, uptime_seconds, pid}].  Non-finite floats render as
    [null] (no incumbent yet). *)

val build_info : unit -> (string * string) list
(** The [ldafp_build_info] labels: [version], [ocaml], [git_rev]
    ([LDAFP_GIT_REV] env or ["unknown"]). *)

(**/**)

val handle_request : Metrics.t -> string -> string
(** [handle_request registry request_line] renders the full HTTP
    response for one request line (tests exercise routing without a
    socket). *)
