type t = {
  interval_ns : int;
  last_ns : int Atomic.t;  (** 0 = never emitted *)
  channel : out_channel;
}

let create ?(interval = 1.0) ?(channel = stderr) () =
  let interval = Float.max 1.0 interval in
  {
    interval_ns = int_of_float (interval *. 1e9);
    last_ns = Atomic.make 0;
    channel;
  }

let due t =
  let now = Clock.now_ns () in
  (* A mock clock may legitimately report 0; keep 0 as the
     never-emitted sentinel by stamping at least 1. *)
  let now = if now = 0 then 1 else now in
  let last = Atomic.get t.last_ns in
  (last = 0 || now - last >= t.interval_ns)
  && Atomic.compare_and_set t.last_ns last now

let emit t line =
  output_string t.channel line;
  output_char t.channel '\n';
  flush t.channel
