type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  g_value : float Atomic.t;
}

(* Per-domain shard: single-writer (the owning domain), so observation
   is an array store plus mutable-field updates — no CAS contention.
   Readers (export) only run after the recording domains are joined. *)
type shard = {
  s_counts : int array;
  mutable s_sum : float;
  mutable s_underflow : int;
  mutable s_overflow : int;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  h_bins : int;
  h_llo : float;  (** [log10 lo] *)
  h_lhi : float;  (** [log10 hi] *)
  h_lock : Mutex.t;  (** guards [h_shards] (registration only) *)
  h_shards : shard list ref;
  h_key : shard Domain.DLS.key;
}

type metric = C of counter | G of gauge | H of histogram

type t = { r_lock : Mutex.t; mutable r_metrics : metric list (* newest first *) }

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let create () = { r_lock = Mutex.create (); r_metrics = [] }
let default = create ()

let metric_name = function
  | C c -> c.c_name
  | G g -> g.g_name
  | H h -> h.h_name

let register reg m =
  Mutex.lock reg.r_lock;
  let dup =
    List.exists (fun m' -> metric_name m' = metric_name m) reg.r_metrics
  in
  if not dup then reg.r_metrics <- m :: reg.r_metrics;
  Mutex.unlock reg.r_lock;
  if dup then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %S" (metric_name m))

let counter ?(help = "") ?(labels = []) reg name =
  let c = { c_name = name; c_help = help; c_labels = labels; c_value = Atomic.make 0 } in
  register reg (C c);
  c

let gauge ?(help = "") ?(labels = []) reg name =
  let g =
    { g_name = name; g_help = help; g_labels = labels; g_value = Atomic.make 0.0 }
  in
  register reg (G g);
  g

let histogram ?(help = "") ?(labels = []) ?(bins = 24) ~lo ~hi reg name =
  if not (lo > 0.0 && lo < hi) then
    invalid_arg "Metrics.histogram: need 0 < lo < hi";
  if bins < 1 then invalid_arg "Metrics.histogram: bins must be >= 1";
  let shards = ref [] in
  let lock = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          { s_counts = Array.make bins 0; s_sum = 0.0; s_underflow = 0; s_overflow = 0 }
        in
        Mutex.lock lock;
        shards := s :: !shards;
        Mutex.unlock lock;
        s)
  in
  let h =
    {
      h_name = name;
      h_help = help;
      h_labels = labels;
      h_bins = bins;
      h_llo = log10 lo;
      h_lhi = log10 hi;
      h_lock = lock;
      h_shards = shards;
      h_key = key;
    }
  in
  register reg (H h);
  h

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let set g v = Atomic.set g.g_value v
let counter_value c = Atomic.get c.c_value
let gauge_value g = Atomic.get g.g_value

let observe h x =
  let s = Domain.DLS.get h.h_key in
  if Float.is_nan x || x <= 0.0 then s.s_underflow <- s.s_underflow + 1
  else begin
    s.s_sum <- s.s_sum +. x;
    let lx = log10 x in
    if lx < h.h_llo then s.s_underflow <- s.s_underflow + 1
    else if lx >= h.h_lhi then s.s_overflow <- s.s_overflow + 1
    else begin
      let i =
        int_of_float
          (float_of_int h.h_bins *. (lx -. h.h_llo) /. (h.h_lhi -. h.h_llo))
      in
      let i = min (h.h_bins - 1) (max 0 i) in
      s.s_counts.(i) <- s.s_counts.(i) + 1
    end
  end

let shards_of h =
  Mutex.lock h.h_lock;
  let ss = !(h.h_shards) in
  Mutex.unlock h.h_lock;
  ss

let snapshot h =
  let empty =
    Stats.Histogram.create ~lo:h.h_llo ~hi:h.h_lhi ~bins:h.h_bins
  in
  List.fold_left
    (fun acc s ->
      Stats.Histogram.merge acc
        (Stats.Histogram.of_counts ~lo:h.h_llo ~hi:h.h_lhi
           ~underflow:s.s_underflow ~overflow:s.s_overflow s.s_counts))
    empty (shards_of h)

let histogram_count h = Stats.Histogram.total (snapshot h)

let histogram_sum h =
  List.fold_left (fun acc s -> acc +. s.s_sum) 0.0 (shards_of h)

let histogram_quantile h p =
  let snap = snapshot h in
  if Stats.Histogram.total snap = 0 then None
  else Some (10.0 ** Stats.Histogram.quantile snap p)

(* --- export -------------------------------------------------------- *)

let bucket_upper h i =
  let w = (h.h_lhi -. h.h_llo) /. float_of_int h.h_bins in
  10.0 ** (h.h_llo +. (float_of_int (i + 1) *. w))

(* Cumulative bucket counts, Prometheus-style: bucket [i] counts every
   observation <= its upper bound, so it includes the underflow mass. *)
let cumulative h =
  let snap = snapshot h in
  let acc = ref snap.Stats.Histogram.underflow in
  Array.mapi
    (fun i c ->
      acc := !acc + c;
      (bucket_upper h i, !acc))
    snap.Stats.Histogram.counts

let metrics_in reg =
  Mutex.lock reg.r_lock;
  let ms = List.rev reg.r_metrics in
  Mutex.unlock reg.r_lock;
  ms

let json_labels = function
  | [] -> []
  | labels ->
      [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)) ]

let json_of_metric = function
  | C c ->
      ( c.c_name,
        Json.Obj
          ([ ("type", Json.Str "counter"); ("value", Json.Int (counter_value c)) ]
          @ json_labels c.c_labels) )
  | G g ->
      ( g.g_name,
        Json.Obj
          ([ ("type", Json.Str "gauge"); ("value", Json.Float (gauge_value g)) ]
          @ json_labels g.g_labels) )
  | H h ->
      let count = histogram_count h in
      let q p =
        match histogram_quantile h p with
        | Some v -> Json.Float v
        | None -> Json.Null
      in
      let buckets =
        cumulative h |> Array.to_list
        |> List.map (fun (le, c) ->
               Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
      in
      ( h.h_name,
        Json.Obj
          ([
             ("type", Json.Str "histogram");
             ("count", Json.Int count);
             ("sum", Json.Float (histogram_sum h));
             ("p50", q 0.5);
             ("p90", q 0.9);
             ("p99", q 0.99);
             ("buckets", Json.List buckets);
           ]
          @ json_labels h.h_labels) )

let to_json reg =
  Json.Obj
    [
      ("schema", Json.Str "ldafp-metrics/1");
      ("metrics", Json.Obj (List.map json_of_metric (metrics_in reg)));
    ]

let save_json reg path = Json.save path (to_json reg)

(* Prometheus text exposition v0.0.4. *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let prom_header buf name help kind =
  if help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let to_prometheus reg =
  let buf = Buffer.create 4096 in
  List.iter
    (fun m ->
      match m with
      | C c ->
          prom_header buf c.c_name c.c_help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.c_name (render_labels c.c_labels)
               (counter_value c))
      | G g ->
          prom_header buf g.g_name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" g.g_name (render_labels g.g_labels)
               (float_repr (gauge_value g)))
      | H h ->
          prom_header buf h.h_name h.h_help "histogram";
          let with_le le =
            render_labels (h.h_labels @ [ ("le", le) ])
          in
          Array.iter
            (fun (le, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" h.h_name
                   (with_le (float_repr le)) c))
            (cumulative h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" h.h_name (with_le "+Inf")
               (histogram_count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" h.h_name (render_labels h.h_labels)
               (float_repr (histogram_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" h.h_name
               (render_labels h.h_labels) (histogram_count h)))
    (metrics_in reg);
  Buffer.contents buf

let save_prometheus reg path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus reg))

let reset reg =
  List.iter
    (fun m ->
      match m with
      | C c -> Atomic.set c.c_value 0
      | G g -> Atomic.set g.g_value 0.0
      | H h ->
          List.iter
            (fun s ->
              Array.fill s.s_counts 0 (Array.length s.s_counts) 0;
              s.s_sum <- 0.0;
              s.s_underflow <- 0;
              s.s_overflow <- 0)
            (shards_of h))
    (metrics_in reg)
