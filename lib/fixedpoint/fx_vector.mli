(** Fixed-point vectors and the classifier MAC datapath.

    All elements of a vector share one format.  The central operation is
    {!dot}, which models the on-chip multiply-accumulate loop of the LDA-FP
    classifier: each product is rounded back into [QK.F] and the running
    sum is accumulated in a [QK.F] register with two's-complement wrapping.
    Per the paper's §3 observation, intermediate wrap-around is harmless as
    long as the {e final} sum is representable — see {!dot_reference} and
    the property tests. *)

type t

val create : Qformat.t -> int -> t
(** [create fmt n] is a zero vector of length [n]. *)

val of_floats :
  ?mode:Rounding.mode -> ?ov:Rounding.overflow -> Qformat.t -> float array -> t
(** Quantise every component. *)

val of_fx : Fx.t array -> t
(** @raise Invalid_argument on an empty array or mixed formats. *)

val to_floats : t -> float array
val to_fx : t -> Fx.t array
val length : t -> int
val format : t -> Qformat.t
val get : t -> int -> Fx.t
val set : t -> int -> Fx.t -> unit
val map : (Fx.t -> Fx.t) -> t -> t

val dot :
  ?mode:Rounding.mode -> ?product_ov:Rounding.overflow -> t -> t -> Fx.t
(** Hardware MAC: products rounded to the common format (overflowing per
    [product_ov], default wrap), accumulated with wrapping adds.  This is
    the datapath whose overflow behaviour the LDA-FP constraints (18) and
    (20) are designed to keep safe. *)

val dot_wide : ?mode:Rounding.mode -> t -> t -> Fx.t
(** Wide-accumulator MAC: exact raw products summed in doubled precision,
    rounded and wrapped into the common format once at the end.  A costlier
    datapath with a single rounding error; provided for ablation. *)

val dot_reference : t -> t -> float
(** Exact real-valued dot product of the quantised components (no product
    rounding, no wrapping) — the value constraints (18)/(20) reason about. *)

val add : ?ov:Rounding.overflow -> t -> t -> t
val sub : ?ov:Rounding.overflow -> t -> t -> t
val neg : ?ov:Rounding.overflow -> t -> t
val scale : ?mode:Rounding.mode -> ?ov:Rounding.overflow -> Fx.t -> t -> t

val linf_norm : t -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
