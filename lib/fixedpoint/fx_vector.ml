type t = { fmt : Qformat.t; raws : int array }
(* Invariant: every element of [raws] lies in the raw range of [fmt]. *)

let create fmt n =
  if n < 0 then invalid_arg "Fx_vector.create: negative length";
  { fmt; raws = Array.make n 0 }

let of_floats ?(mode = Rounding.Nearest) ?(ov = Rounding.Wrap) fmt xs =
  { fmt; raws = Array.map (fun x -> Fx.raw (Fx.of_float ~mode ~ov fmt x)) xs }

let of_fx arr =
  if Array.length arr = 0 then invalid_arg "Fx_vector.of_fx: empty array";
  let fmt = Fx.format arr.(0) in
  Array.iter
    (fun x ->
      if not (Qformat.equal (Fx.format x) fmt) then
        invalid_arg "Fx_vector.of_fx: mixed formats")
    arr;
  { fmt; raws = Array.map Fx.raw arr }

let to_floats { fmt; raws } = Array.map (Qformat.value_of_raw fmt) raws
let to_fx { fmt; raws } = Array.map (Fx.create fmt) raws
let length t = Array.length t.raws
let format t = t.fmt
let get t i = Fx.create t.fmt t.raws.(i)

let set t i x =
  if not (Qformat.equal (Fx.format x) t.fmt) then
    invalid_arg "Fx_vector.set: format mismatch";
  t.raws.(i) <- Fx.raw x

let map f t = { t with raws = Array.map (fun r -> Fx.raw (f (Fx.create t.fmt r))) t.raws }

let check_compatible op a b =
  if not (Qformat.equal a.fmt b.fmt) then
    invalid_arg (Printf.sprintf "Fx_vector.%s: format mismatch" op);
  if Array.length a.raws <> Array.length b.raws then
    invalid_arg (Printf.sprintf "Fx_vector.%s: length mismatch" op)

let dot ?(mode = Rounding.Nearest) ?(product_ov = Rounding.Wrap) a b =
  check_compatible "dot" a b;
  let fmt = a.fmt in
  let f = fmt.Qformat.f in
  let acc = ref 0 in
  for i = 0 to Array.length a.raws - 1 do
    let p = a.raws.(i) * b.raws.(i) in
    let p = Rounding.shift_right_rounded mode p f in
    let p = Rounding.apply_overflow product_ov fmt ~what:"Fx_vector.dot" p in
    acc := Qformat.wrap_raw fmt (!acc + p)
  done;
  Fx.create fmt !acc

let dot_wide ?(mode = Rounding.Nearest) a b =
  check_compatible "dot_wide" a b;
  let fmt = a.fmt in
  if 2 * Qformat.word_length fmt + 8 > 62 then
    invalid_arg "Fx_vector.dot_wide: accumulator would exceed 62 bits";
  let acc = ref 0 in
  for i = 0 to Array.length a.raws - 1 do
    acc := !acc + (a.raws.(i) * b.raws.(i))
  done;
  let r = Rounding.shift_right_rounded mode !acc fmt.Qformat.f in
  Fx.create fmt r

let dot_reference a b =
  check_compatible "dot_reference" a b;
  let fa = to_floats a and fb = to_floats b in
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. fb.(i))) fa;
  !s

let map2 op name ?(ov = Rounding.Wrap) a b =
  check_compatible name a b;
  { fmt = a.fmt;
    raws =
      Array.mapi
        (fun i ra ->
          Rounding.apply_overflow ov a.fmt
            ~what:("Fx_vector." ^ name)
            (op ra b.raws.(i)))
        a.raws }

let add ?ov a b = map2 ( + ) "add" ?ov a b
let sub ?ov a b = map2 ( - ) "sub" ?ov a b

let neg ?(ov = Rounding.Wrap) a =
  { a with
    raws =
      Array.map
        (fun r -> Rounding.apply_overflow ov a.fmt ~what:"Fx_vector.neg" (-r))
        a.raws }

let scale ?(mode = Rounding.Nearest) ?(ov = Rounding.Wrap) c a =
  if not (Qformat.equal (Fx.format c) a.fmt) then
    invalid_arg "Fx_vector.scale: format mismatch";
  { a with
    raws =
      Array.map
        (fun r ->
          let p = Fx.raw c * r in
          let p = Rounding.shift_right_rounded mode p a.fmt.Qformat.f in
          Rounding.apply_overflow ov a.fmt ~what:"Fx_vector.scale" p)
        a.raws }

let linf_norm t =
  Array.fold_left
    (fun m r -> Float.max m (Float.abs (Qformat.value_of_raw t.fmt r)))
    0.0 t.raws

let equal a b =
  Qformat.equal a.fmt b.fmt
  && Array.length a.raws = Array.length b.raws
  && Array.for_all2 ( = ) a.raws b.raws

let pp ppf t =
  Format.fprintf ppf "[@[%a@]]:%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list (to_floats t))
    Qformat.pp t.fmt
