(** Policies for splitting a total word length into integer and fractional
    bits.

    The paper sweeps the total word length [WL = K + F] (Tables 1 and 2)
    without stating the split; features are pre-scaled into [[-1, 1)], so a
    small fixed number of integer bits suffices.  The repository default is
    {!fixed_k}[ ~k:2], giving weights the range [[-2, 2)]; alternatives are
    provided for the K/F ablation bench. *)

type t = int -> Qformat.t
(** A policy maps a total word length to a format. *)

val fixed_k : k:int -> t
(** [fixed_k ~k wl] is [Q k.(wl-k)].
    @raise Invalid_argument when [wl <= k]. *)

val fixed_f : f:int -> t
(** [fixed_f ~f wl] is [Q (wl-f).f]. *)

val balanced : t
(** Split as evenly as possible, integer part gets the extra bit. *)

val default : t
(** The repository default, [fixed_k ~k:2]. *)

val name : [ `Fixed_k of int | `Fixed_f of int | `Balanced ] -> string
val of_spec : [ `Fixed_k of int | `Fixed_f of int | `Balanced ] -> t
