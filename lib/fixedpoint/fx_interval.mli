(** Grid-aligned closed intervals of fixed-point values.

    The LDA-FP branch-and-bound partitions each weight's range into boxes
    whose endpoints always lie on the [QK.F] grid, so a box is "atomic"
    exactly when it contains a single grid point.  This module provides the
    interval bookkeeping for that search. *)

type t = private {
  fmt : Qformat.t;
  lo_raw : int;  (** raw code of the lower endpoint *)
  hi_raw : int;  (** raw code of the upper endpoint; [>= lo_raw] *)
}

val of_raw : Qformat.t -> lo:int -> hi:int -> t
(** @raise Invalid_argument if [lo > hi] or either is out of raw range. *)

val of_values : Qformat.t -> lo:float -> hi:float -> t
(** Shrink [lo] up and [hi] down onto the grid (so the result is the set of
    grid points inside [[lo, hi]]), clamped to the representable range.

    @raise Invalid_argument if no grid point lies in [[lo, hi]]. *)

val full : Qformat.t -> t
(** The whole representable range, eq. (28). *)

val lo : t -> float
val hi : t -> float
val count : t -> int
(** Number of grid points contained. *)

val is_singleton : t -> bool
val singleton_value : t -> float option
val mem : t -> float -> bool
(** Membership of the {e real} interval [[lo, hi]] (not just grid points). *)

val mid : t -> float
(** Grid point nearest the midpoint. *)

val split : ?at:float -> t -> (t * t) option
(** [split iv] cuts the interval into two disjoint, non-empty grid-aligned
    halves; [None] when the interval is a singleton.  [?at] biases the cut
    toward the grid point nearest [at] (it is clamped so both halves remain
    non-empty). *)

val clamp_value : t -> float -> float
(** Nearest grid point of the interval to a real number. *)

val width : t -> float
(** [hi - lo]. *)

val values : t -> float array
(** All contained grid values, ascending.
    @raise Invalid_argument when the interval holds more than 2^20 points. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
