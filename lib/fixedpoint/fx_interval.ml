type t = { fmt : Qformat.t; lo_raw : int; hi_raw : int }

let of_raw fmt ~lo ~hi =
  if lo > hi then invalid_arg "Fx_interval.of_raw: lo > hi";
  if lo < Qformat.min_raw fmt || hi > Qformat.max_raw fmt then
    invalid_arg "Fx_interval.of_raw: endpoints out of raw range";
  { fmt; lo_raw = lo; hi_raw = hi }

let of_values fmt ~lo ~hi =
  let lo_g = Float.max lo (Qformat.min_value fmt) in
  let hi_g = Float.min hi (Qformat.max_value fmt) in
  let lo_r = int_of_float (Float.ceil (ldexp lo_g fmt.Qformat.f -. 1e-9)) in
  let hi_r = int_of_float (Float.floor (ldexp hi_g fmt.Qformat.f +. 1e-9)) in
  if lo_r > hi_r then
    invalid_arg
      (Printf.sprintf "Fx_interval.of_values: no %s grid point in [%g, %g]"
         (Qformat.to_string fmt) lo hi);
  of_raw fmt ~lo:lo_r ~hi:hi_r

let full fmt = { fmt; lo_raw = Qformat.min_raw fmt; hi_raw = Qformat.max_raw fmt }
let lo t = Qformat.value_of_raw t.fmt t.lo_raw
let hi t = Qformat.value_of_raw t.fmt t.hi_raw
let count t = t.hi_raw - t.lo_raw + 1
let is_singleton t = t.lo_raw = t.hi_raw
let singleton_value t = if is_singleton t then Some (lo t) else None
let mem t x = x >= lo t && x <= hi t

(* Floor division by 2: [/] truncates toward zero, which for negative
   raw sums biases midpoints upward and makes splits of mirrored
   intervals asymmetric (e.g. [-5,-2] would cut into 3+1 raws where
   [2,5] cuts 2+2). *)
let half_raw_sum t = (t.lo_raw + t.hi_raw) asr 1

let mid t = Qformat.value_of_raw t.fmt (half_raw_sum t)

let split ?at t =
  if is_singleton t then None
  else
    let cut =
      match at with
      | None -> half_raw_sum t
      | Some x ->
          let r = Rounding.round_scaled Rounding.Nearest (ldexp x t.fmt.Qformat.f) in
          (* Left half is [lo, cut]; ensure both halves non-empty. *)
          let r = max t.lo_raw (min r (t.hi_raw - 1)) in
          r
    in
    let cut = max t.lo_raw (min cut (t.hi_raw - 1)) in
    Some
      ( { t with hi_raw = cut },
        { t with lo_raw = cut + 1 } )

let clamp_value t x =
  let r = Rounding.round_scaled Rounding.Nearest (ldexp x t.fmt.Qformat.f) in
  let r = max t.lo_raw (min r t.hi_raw) in
  Qformat.value_of_raw t.fmt r

let width t = hi t -. lo t

let values t =
  let n = count t in
  if n > 1 lsl 20 then invalid_arg "Fx_interval.values: interval too large";
  Array.init n (fun i -> Qformat.value_of_raw t.fmt (t.lo_raw + i))

let equal a b =
  Qformat.equal a.fmt b.fmt && a.lo_raw = b.lo_raw && a.hi_raw = b.hi_raw

let pp ppf t =
  Format.fprintf ppf "[%g, %g]@%a" (lo t) (hi t) Qformat.pp t.fmt
