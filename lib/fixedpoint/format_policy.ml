type t = int -> Qformat.t

let fixed_k ~k wl =
  if wl <= k then
    invalid_arg
      (Printf.sprintf "Format_policy.fixed_k: word length %d <= k = %d" wl k);
  Qformat.make ~k ~f:(wl - k)

let fixed_f ~f wl =
  if wl <= f then
    invalid_arg
      (Printf.sprintf "Format_policy.fixed_f: word length %d <= f = %d" wl f);
  Qformat.make ~k:(wl - f) ~f

let balanced wl =
  if wl < 1 then invalid_arg "Format_policy.balanced: word length < 1";
  let k = (wl + 1) / 2 in
  Qformat.make ~k ~f:(wl - k)

let default = fixed_k ~k:2

let name = function
  | `Fixed_k k -> Printf.sprintf "K=%d" k
  | `Fixed_f f -> Printf.sprintf "F=%d" f
  | `Balanced -> "balanced"

let of_spec = function
  | `Fixed_k k -> fixed_k ~k
  | `Fixed_f f -> fixed_f ~f
  | `Balanced -> balanced
