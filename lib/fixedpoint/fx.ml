type t = { raw : int; fmt : Qformat.t }

let create fmt raw = { raw = Qformat.wrap_raw fmt raw; fmt }

let check_same_format op a b =
  if not (Qformat.equal a.fmt b.fmt) then
    invalid_arg
      (Printf.sprintf "Fx.%s: format mismatch (%s vs %s)" op
         (Qformat.to_string a.fmt)
         (Qformat.to_string b.fmt))

let of_float ?(mode = Rounding.Nearest) ?(ov = Rounding.Wrap) fmt x =
  if Float.is_nan x then invalid_arg "Fx.of_float: nan";
  let scaled = ldexp x fmt.Qformat.f in
  (* Guard against floats far outside any raw range before int conversion. *)
  let limit = ldexp 1.0 62 in
  let scaled = Float.max (-.limit) (Float.min limit scaled) in
  let r = Rounding.round_scaled mode scaled in
  { raw = Rounding.apply_overflow ov fmt ~what:"Fx.of_float" r; fmt }

let to_float { raw; fmt } = Qformat.value_of_raw fmt raw
let raw t = t.raw
let format t = t.fmt
let zero fmt = { raw = 0; fmt }
let one ?(ov = Rounding.Wrap) fmt = of_float ~ov fmt 1.0
let min_val fmt = { raw = Qformat.min_raw fmt; fmt }
let max_val fmt = { raw = Qformat.max_raw fmt; fmt }

let add ?(ov = Rounding.Wrap) a b =
  check_same_format "add" a b;
  { raw = Rounding.apply_overflow ov a.fmt ~what:"Fx.add" (a.raw + b.raw);
    fmt = a.fmt }

let sub ?(ov = Rounding.Wrap) a b =
  check_same_format "sub" a b;
  { raw = Rounding.apply_overflow ov a.fmt ~what:"Fx.sub" (a.raw - b.raw);
    fmt = a.fmt }

let neg ?(ov = Rounding.Wrap) a =
  { raw = Rounding.apply_overflow ov a.fmt ~what:"Fx.neg" (-a.raw);
    fmt = a.fmt }

let abs ?(ov = Rounding.Wrap) a = if a.raw < 0 then neg ~ov a else a

let mul_exact_raw a b =
  check_same_format "mul_exact_raw" a b;
  if 2 * Qformat.word_length a.fmt > 62 then
    invalid_arg "Fx.mul_exact_raw: product precision exceeds 62 bits";
  a.raw * b.raw

let mul ?(mode = Rounding.Nearest) ?(ov = Rounding.Wrap) a b =
  let p = mul_exact_raw a b in
  (* p is in units of 2^(-2f); shift back to 2^(-f) with rounding. *)
  let r = Rounding.shift_right_rounded mode p a.fmt.Qformat.f in
  { raw = Rounding.apply_overflow ov a.fmt ~what:"Fx.mul" r; fmt = a.fmt }

let shift_left ?(ov = Rounding.Wrap) a n =
  if n < 0 then invalid_arg "Fx.shift_left: negative shift";
  { raw = Rounding.apply_overflow ov a.fmt ~what:"Fx.shift_left" (a.raw lsl n);
    fmt = a.fmt }

let shift_right ?(mode = Rounding.Nearest) a n =
  if n < 0 then invalid_arg "Fx.shift_right: negative shift";
  { raw = Rounding.shift_right_rounded mode a.raw n; fmt = a.fmt }

let compare a b =
  check_same_format "compare" a b;
  Stdlib.compare a.raw b.raw

let equal a b = Qformat.equal a.fmt b.fmt && a.raw = b.raw
let sign a = Stdlib.compare a.raw 0
let is_zero a = a.raw = 0

let quantization_error fmt x =
  to_float (of_float ~ov:Rounding.Saturate fmt x) -. x

let pp ppf t = Format.fprintf ppf "%g:%a" (to_float t) Qformat.pp t.fmt
let to_string t = Format.asprintf "%a" pp t
