(** Rounding and overflow policies for fixed-point conversion.

    A fixed-point datapath is characterised by how it quantises real values
    onto the grid ({!mode}) and what it does when a value exceeds the
    representable range ({!overflow}).  The LDA-FP paper assumes
    round-to-nearest quantisation and two's-complement {e wrapping} on
    overflow; saturation and error-raising variants are provided for
    testing and for comparing datapath choices. *)

type mode =
  | Nearest  (** round to nearest, ties to even raw code (default) *)
  | Nearest_away  (** round to nearest, ties away from zero *)
  | Toward_zero  (** truncate toward zero *)
  | Floor  (** round toward negative infinity (drop low bits) *)
  | Ceil  (** round toward positive infinity *)

type overflow =
  | Wrap  (** two's-complement wrap-around (hardware register semantics) *)
  | Saturate  (** clamp to the representable range *)
  | Error  (** raise {!Fixed_point_overflow} *)

exception Fixed_point_overflow of string
(** Raised by conversions under the {!Error} overflow policy. *)

val round_scaled : mode -> float -> int
(** [round_scaled mode s] rounds the already-scaled value [s] (in units of
    one ulp) to an integer raw code according to [mode].  Magnitudes
    beyond the [int] range saturate to [max_int]/[min_int] (where
    [int_of_float] would be unspecified) so callers can clamp them into
    format bounds; NaN raises [Invalid_argument]. *)

val shift_right_rounded : mode -> int -> int -> int
(** [shift_right_rounded mode r n] computes [round(r / 2^n)] on integers
    without going through floats; exact for any raw magnitude that fits in
    an OCaml [int].  [n >= 0]. *)

val apply_overflow : overflow -> Qformat.t -> what:string -> int -> int
(** Resolve an out-of-range raw code according to the overflow policy.
    [what] names the operation for the {!Error} message. *)

val pp_mode : Format.formatter -> mode -> unit
val pp_overflow : Format.formatter -> overflow -> unit
