type mode = Nearest | Nearest_away | Toward_zero | Floor | Ceil
type overflow = Wrap | Saturate | Error

exception Fixed_point_overflow of string

(* [int_of_float] is unspecified outside the [int] range, so extreme
   scaled values (e.g. 1e300 · 2^f) must saturate rather than convert to
   garbage; callers then clamp the saturated raw into their format's
   bounds.  2^62 is the smallest magnitude that can overflow a 63-bit
   OCaml int. *)
let saturated_int_of_float what s =
  if Float.is_nan s then
    invalid_arg (Printf.sprintf "%s: NaN has no rounding" what)
  else if s >= 0x1p62 then max_int
  else if s <= -0x1p62 then min_int
  else int_of_float s

let round_scaled mode s =
  let lo = Float.floor s in
  let hi = Float.ceil s in
  let pick =
    if lo = hi then lo
    else
      match mode with
      | Floor -> lo
      | Ceil -> hi
      | Toward_zero -> if s >= 0.0 then lo else hi
      | Nearest_away ->
          let dl = s -. lo and dh = hi -. s in
          if dl < dh then lo
          else if dh < dl then hi
          else if s >= 0.0 then hi
          else lo
      | Nearest ->
          let dl = s -. lo and dh = hi -. s in
          if dl < dh then lo
          else if dh < dl then hi
          else if Float.rem lo 2.0 = 0.0 then lo
          else hi
  in
  saturated_int_of_float "Rounding.round_scaled" pick

let shift_right_rounded mode r n =
  if n < 0 then invalid_arg "Rounding.shift_right_rounded: negative shift";
  if n = 0 then r
  else
    let q = r asr n in
    (* remainder in [0, 2^n): arithmetic shift floors, so r = q*2^n + rem *)
    let rem = r - (q lsl n) in
    let half = 1 lsl (n - 1) in
    match mode with
    | Floor -> q
    | Ceil -> if rem = 0 then q else q + 1
    | Toward_zero -> if r >= 0 || rem = 0 then q else q + 1
    | Nearest_away ->
        if rem > half then q + 1
        else if rem < half then q
        else if r >= 0 then q + 1 (* tie: away from zero, value positive *)
        else q (* tie on a negative value: away from zero is more negative *)
    | Nearest ->
        if rem > half then q + 1
        else if rem < half then q
        else if q land 1 = 0 then q
        else q + 1

let apply_overflow ov fmt ~what r =
  if r >= Qformat.min_raw fmt && r <= Qformat.max_raw fmt then r
  else
    match ov with
    | Wrap -> Qformat.wrap_raw fmt r
    | Saturate -> Qformat.saturate_raw fmt r
    | Error ->
        raise
          (Fixed_point_overflow
             (Printf.sprintf "%s: raw %d exceeds %s range [%d, %d]" what r
                (Qformat.to_string fmt) (Qformat.min_raw fmt)
                (Qformat.max_raw fmt)))

let pp_mode ppf = function
  | Nearest -> Format.pp_print_string ppf "nearest-even"
  | Nearest_away -> Format.pp_print_string ppf "nearest-away"
  | Toward_zero -> Format.pp_print_string ppf "toward-zero"
  | Floor -> Format.pp_print_string ppf "floor"
  | Ceil -> Format.pp_print_string ppf "ceil"

let pp_overflow ppf = function
  | Wrap -> Format.pp_print_string ppf "wrap"
  | Saturate -> Format.pp_print_string ppf "saturate"
  | Error -> Format.pp_print_string ppf "error"
