(** Scalar fixed-point values.

    A value carries its format; mixing formats in binary operations raises
    [Invalid_argument] — the LDA-FP datapath keeps every operand in the same
    [QK.F] format (paper §3), and silently mixing formats is invariably a
    modelling bug.  All operations take an [?ov] overflow policy
    (default {!Rounding.Wrap}, matching two's-complement hardware) and,
    where quantisation occurs, a [?mode] rounding mode
    (default {!Rounding.Nearest}). *)

type t = private { raw : int; fmt : Qformat.t }

val create : Qformat.t -> int -> t
(** [create fmt raw] wraps [raw] into range and builds a value. *)

val of_float :
  ?mode:Rounding.mode -> ?ov:Rounding.overflow -> Qformat.t -> float -> t
(** Quantise a real number onto the grid of [fmt]. *)

val to_float : t -> float
val raw : t -> int
val format : t -> Qformat.t

val zero : Qformat.t -> t
val one : ?ov:Rounding.overflow -> Qformat.t -> t
(** The value [1.0]; saturates/wraps per [ov] if [k = 1] cannot hold it. *)

val min_val : Qformat.t -> t
val max_val : Qformat.t -> t

val add : ?ov:Rounding.overflow -> t -> t -> t
val sub : ?ov:Rounding.overflow -> t -> t -> t
val neg : ?ov:Rounding.overflow -> t -> t
(** Note: negating [min_val] overflows (two's complement asymmetry). *)

val abs : ?ov:Rounding.overflow -> t -> t

val mul : ?mode:Rounding.mode -> ?ov:Rounding.overflow -> t -> t -> t
(** Full-precision product, rounded back into the common format. *)

val mul_exact_raw : t -> t -> int
(** Raw product in the doubled-precision format [Q(2k).(2f)]; never rounds.
    Useful for wide-accumulator datapaths. *)

val shift_left : ?ov:Rounding.overflow -> t -> int -> t
(** Multiply by [2^n] ([n >= 0]). *)

val shift_right : ?mode:Rounding.mode -> t -> int -> t
(** Divide by [2^n] ([n >= 0]), rounding. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val quantization_error : Qformat.t -> float -> float
(** [quantization_error fmt x] = [to_float (of_float fmt x) -. x] under
    nearest rounding with saturation; magnitude [<= ulp/2] when [x] is in
    range. *)

val pp : Format.formatter -> t -> unit
(** Prints as e.g. ["-0.625:Q2.4"]. *)

val to_string : t -> string
