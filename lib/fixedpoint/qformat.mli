(** Fixed-point number formats.

    A format [QK.F] (two's complement) has [K] integer bits — including the
    sign bit — and [F] fractional bits, for a total word length of [K + F]
    bits.  A word with raw integer value [r] represents the real number
    [r * 2^(-F)], so the representable range is
    [[-2^(K-1), 2^(K-1) - 2^(-F)]] with a uniform grid step ("ulp") of
    [2^(-F)].  This is the format assumed throughout the LDA-FP paper
    (Figure 3). *)

type t = private {
  k : int;  (** integer bits, including the sign bit; [k >= 1] *)
  f : int;  (** fractional bits; [f >= 0] *)
}

val make : k:int -> f:int -> t
(** [make ~k ~f] builds a format.

    @raise Invalid_argument if [k < 1], [f < 0], or [k + f > 62]
    (raw values must fit in an OCaml [int] with headroom for products). *)

val word_length : t -> int
(** Total number of bits, [k + f]. *)

val ulp : t -> float
(** Grid step [2^(-f)] — the value of one least-significant bit. *)

val min_value : t -> float
(** Smallest representable value, [-2^(k-1)]. *)

val max_value : t -> float
(** Largest representable value, [2^(k-1) - 2^(-f)]. *)

val min_raw : t -> int
(** Smallest raw (integer) code, [-2^(k+f-1)]. *)

val max_raw : t -> int
(** Largest raw code, [2^(k+f-1) - 1]. *)

val cardinality : t -> int
(** Number of representable values, [2^(k+f)]. *)

val in_range : t -> float -> bool
(** [in_range fmt x] is [true] iff [min_value fmt <= x <= max_value fmt]. *)

val raw_of_value_exn : t -> float -> int
(** Raw code of a value that lies exactly on the grid.

    @raise Invalid_argument if the value is off-grid or out of range. *)

val value_of_raw : t -> int -> float
(** Real value of a raw code.  The code is wrapped into the representable
    raw range first (two's-complement semantics). *)

val wrap_raw : t -> int -> int
(** Two's-complement wrap of an arbitrary integer into
    [[min_raw fmt, max_raw fmt]].  This models overflow of a [k+f]-bit
    register. *)

val saturate_raw : t -> int -> int
(** Clamp an arbitrary integer into [[min_raw fmt, max_raw fmt]]. *)

val floor_to_grid : t -> float -> float
(** Largest grid value [<= x] (not range-clamped). *)

val ceil_to_grid : t -> float -> float
(** Smallest grid value [>= x] (not range-clamped). *)

val nearest_on_grid : t -> float -> float
(** Nearest grid value (ties toward even raw code; not range-clamped). *)

val clamp : t -> float -> float
(** Clamp a real number into [[min_value, max_value]] (no rounding). *)

val values : t -> float array
(** All representable values in increasing order.

    @raise Invalid_argument if the word length exceeds 24 bits (the
    enumeration would not fit in memory sensibly). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints as ["Q3.5"]. *)

val to_string : t -> string
