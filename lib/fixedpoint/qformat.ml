type t = { k : int; f : int }

let make ~k ~f =
  if k < 1 then invalid_arg "Qformat.make: k must be >= 1 (sign bit)";
  if f < 0 then invalid_arg "Qformat.make: f must be >= 0";
  if k + f > 62 then invalid_arg "Qformat.make: word length must be <= 62";
  { k; f }

let word_length { k; f } = k + f
let ulp { f; _ } = ldexp 1.0 (-f)
let min_value { k; _ } = -.ldexp 1.0 (k - 1)
let max_value { k; f } = ldexp 1.0 (k - 1) -. ldexp 1.0 (-f)
let min_raw { k; f } = -(1 lsl (k + f - 1))
let max_raw { k; f } = (1 lsl (k + f - 1)) - 1
let cardinality { k; f } = 1 lsl (k + f)
let in_range fmt x = x >= min_value fmt && x <= max_value fmt

let wrap_raw fmt r =
  let bits = word_length fmt in
  let m = 1 lsl bits in
  (* Reduce modulo 2^bits, then sign-extend. *)
  let r = r land (m - 1) in
  if r >= 1 lsl (bits - 1) then r - m else r

let saturate_raw fmt r =
  if r < min_raw fmt then min_raw fmt
  else if r > max_raw fmt then max_raw fmt
  else r

let value_of_raw fmt r = ldexp (float_of_int (wrap_raw fmt r)) (-fmt.f)

let raw_of_value_exn fmt x =
  let scaled = ldexp x fmt.f in
  let r = Float.round scaled in
  if Float.abs (scaled -. r) > 1e-9 then
    invalid_arg
      (Printf.sprintf "Qformat.raw_of_value_exn: %g is not on the Q%d.%d grid"
         x fmt.k fmt.f);
  (* Range-check as floats: [int_of_float] is unspecified once the
     scaled value exceeds the [int] range. *)
  if r < float_of_int (min_raw fmt) || r > float_of_int (max_raw fmt) then
    invalid_arg
      (Printf.sprintf "Qformat.raw_of_value_exn: %g out of Q%d.%d range" x
         fmt.k fmt.f);
  int_of_float r

let floor_to_grid fmt x = ldexp (Float.floor (ldexp x fmt.f)) (-fmt.f)
let ceil_to_grid fmt x = ldexp (Float.ceil (ldexp x fmt.f)) (-fmt.f)

let nearest_on_grid fmt x =
  (* Float.round is round-half-away-from-zero; use banker-ish behaviour by
     rounding the scaled value with [Float.round] on the half-offset grid.
     We follow IEEE round-to-nearest-even on the scaled integer. *)
  let s = ldexp x fmt.f in
  let lo = Float.floor s and hi = Float.ceil s in
  let r =
    if lo = hi then lo
    else
      let dl = s -. lo and dh = hi -. s in
      if dl < dh then lo
      else if dh < dl then hi
      else if Float.rem lo 2.0 = 0.0 then lo
      else hi
  in
  ldexp r (-fmt.f)

let clamp fmt x =
  if x < min_value fmt then min_value fmt
  else if x > max_value fmt then max_value fmt
  else x

let values fmt =
  if word_length fmt > 24 then
    invalid_arg "Qformat.values: word length too large to enumerate";
  let lo = min_raw fmt in
  Array.init (cardinality fmt) (fun i -> value_of_raw fmt (lo + i))

let equal a b = a.k = b.k && a.f = b.f
let compare a b = Stdlib.compare (a.k, a.f) (b.k, b.f)
let pp ppf { k; f } = Format.fprintf ppf "Q%d.%d" k f
let to_string fmt = Format.asprintf "%a" pp fmt
