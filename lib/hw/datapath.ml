open Fixedpoint

type cycle = {
  index : int;
  w_raw : int;
  x_raw : int;
  product_raw : int;
  product_overflowed : bool;
  acc_raw : int;
  acc_wrapped : bool;
}

type trace = {
  fmt : Qformat.t;
  cycles : cycle list;
  y_raw : int;
  decision : bool;
}

let run ?(polarity = true) ~w ~x ~threshold () =
  let fmt = Fx_vector.format w in
  if not (Qformat.equal fmt (Fx_vector.format x)) then
    invalid_arg "Datapath.run: w/x format mismatch";
  if not (Qformat.equal fmt (Fx.format threshold)) then
    invalid_arg "Datapath.run: threshold format mismatch";
  if Fx_vector.length w <> Fx_vector.length x then
    invalid_arg "Datapath.run: w/x length mismatch";
  let f = fmt.Qformat.f in
  let acc = ref 0 in
  let cycles = ref [] in
  for i = 0 to Fx_vector.length w - 1 do
    let w_raw = Fx.raw (Fx_vector.get w i) in
    let x_raw = Fx.raw (Fx_vector.get x i) in
    let full = w_raw * x_raw in
    let rounded = Rounding.shift_right_rounded Rounding.Nearest full f in
    let product_overflowed =
      rounded < Qformat.min_raw fmt || rounded > Qformat.max_raw fmt
    in
    let product_raw = Qformat.wrap_raw fmt rounded in
    let sum = !acc + product_raw in
    let wrapped = sum < Qformat.min_raw fmt || sum > Qformat.max_raw fmt in
    acc := Qformat.wrap_raw fmt sum;
    cycles :=
      {
        index = i;
        w_raw;
        x_raw;
        product_raw;
        product_overflowed;
        acc_raw = !acc;
        acc_wrapped = wrapped;
      }
      :: !cycles
  done;
  let ge = !acc >= Fx.raw threshold in
  {
    fmt;
    cycles = List.rev !cycles;
    y_raw = !acc;
    decision = (if polarity then ge else not ge);
  }

let run_parallel ?(polarity = true) ~w ~x ~threshold () =
  let fmt = Fx_vector.format w in
  if not (Qformat.equal fmt (Fx_vector.format x)) then
    invalid_arg "Datapath.run_parallel: w/x format mismatch";
  if not (Qformat.equal fmt (Fx.format threshold)) then
    invalid_arg "Datapath.run_parallel: threshold format mismatch";
  if Fx_vector.length w <> Fx_vector.length x then
    invalid_arg "Datapath.run_parallel: w/x length mismatch";
  let f = fmt.Qformat.f in
  let m = Fx_vector.length w in
  (* Product stage: all multipliers fire at once. *)
  let products =
    Array.init m (fun i ->
        let w_raw = Fx.raw (Fx_vector.get w i) in
        let x_raw = Fx.raw (Fx_vector.get x i) in
        let rounded =
          Rounding.shift_right_rounded Rounding.Nearest (w_raw * x_raw) f
        in
        let overflowed =
          rounded < Qformat.min_raw fmt || rounded > Qformat.max_raw fmt
        in
        (w_raw, x_raw, Qformat.wrap_raw fmt rounded, overflowed))
  in
  (* Balanced wrapping adder tree. *)
  let rec reduce level =
    match Array.length level with
    | 0 -> 0
    | 1 -> level.(0)
    | n ->
        reduce
          (Array.init
             ((n + 1) / 2)
             (fun i ->
               if (2 * i) + 1 < n then
                 Qformat.wrap_raw fmt (level.(2 * i) + level.((2 * i) + 1))
               else level.(2 * i)))
  in
  let y_raw = reduce (Array.map (fun (_, _, p, _) -> p) products) in
  let cycles =
    Array.to_list
      (Array.mapi
         (fun i (w_raw, x_raw, product_raw, product_overflowed) ->
           {
             index = i;
             w_raw;
             x_raw;
             product_raw;
             product_overflowed;
             acc_raw = product_raw;
             acc_wrapped = false;
           })
         products)
  in
  let ge = y_raw >= Fx.raw threshold in
  { fmt; cycles; y_raw; decision = (if polarity then ge else not ge) }

let y trace = Fx.create trace.fmt trace.y_raw

let wrap_events trace =
  List.length (List.filter (fun c -> c.acc_wrapped) trace.cycles)

let pp ppf trace =
  Format.fprintf ppf "@[<v>datapath %a:" Qformat.pp trace.fmt;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  cyc %2d: w=%d x=%d p=%d%s acc=%d%s" c.index
        c.w_raw c.x_raw c.product_raw
        (if c.product_overflowed then "!" else "")
        c.acc_raw
        (if c.acc_wrapped then " (wrap)" else ""))
    trace.cycles;
  Format.fprintf ppf "@,  y=%d decision=%b@]" trace.y_raw trace.decision
