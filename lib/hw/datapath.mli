(** Cycle-accurate register-transfer simulation of the serial MAC
    classifier.

    One multiplier, one adder, one accumulator register, all [QK.F]: per
    cycle the datapath multiplies [w_m · x_m], rounds the product into the
    register format, and accumulates with two's-complement wrap-around —
    exactly the arithmetic assumed by the LDA-FP constraints, and exactly
    the circuit {!Verilog_gen} emits.  [run] returns the full cycle trace
    so tests can assert bit-level equivalence with
    {!Fixedpoint.Fx_vector.dot} and inspect intermediate wrap-arounds
    (the paper's §3 "3 + 3 − 4 in Q3.0" example is one such trace). *)

type cycle = {
  index : int;
  w_raw : int;  (** weight operand, raw code *)
  x_raw : int;  (** feature operand, raw code *)
  product_raw : int;  (** product after rounding into the register format *)
  product_overflowed : bool;  (** the full-precision product left the range *)
  acc_raw : int;  (** accumulator after this cycle *)
  acc_wrapped : bool;  (** the accumulation step wrapped around *)
}

type trace = {
  fmt : Fixedpoint.Qformat.t;
  cycles : cycle list;
  y_raw : int;  (** final accumulator *)
  decision : bool;  (** comparator output (polarity applied) *)
}

val run :
  ?polarity:bool ->
  w:Fixedpoint.Fx_vector.t ->
  x:Fixedpoint.Fx_vector.t ->
  threshold:Fixedpoint.Fx.t ->
  unit ->
  trace
(** @raise Invalid_argument on format or length mismatch. *)

val run_parallel :
  ?polarity:bool ->
  w:Fixedpoint.Fx_vector.t ->
  x:Fixedpoint.Fx_vector.t ->
  threshold:Fixedpoint.Fx.t ->
  unit ->
  trace
(** Parallel architecture: [M] multipliers feeding a balanced wrapping
    adder tree (single logical cycle; the [cycles] list records the
    product stage only, with [acc_raw] the partial tree sums in input
    order for inspection).

    Because two's-complement wrapping addition is associative and
    commutative modulo [2^WL], the tree produces {e exactly} the same
    word as the serial accumulator — architecture choice changes
    latency/area, never the answer.  Property-tested against {!run}. *)

val y : trace -> Fixedpoint.Fx.t
val wrap_events : trace -> int
(** Number of cycles whose accumulation wrapped — nonzero wrap counts with
    a correct final value demonstrate the §3 intermediate-overflow
    property. *)

val pp : Format.formatter -> trace -> unit
