let quadratic_relative ~word_length =
  if word_length < 1 then
    invalid_arg "Power_model.quadratic_relative: word length must be >= 1";
  let w = float_of_int word_length in
  w *. w

let quadratic_ratio ~from_wl ~to_wl =
  quadratic_relative ~word_length:from_wl
  /. quadratic_relative ~word_length:to_wl

(* Activity factors: rough toggle probabilities per cell class in a
   serial MAC (multiplier array busy every cycle; storage mostly idle). *)
let activity_fa = 0.5
let activity_and = 0.4
let activity_ff = 0.1
let activity_cmp = 0.05

let gate_based ~word_length ~n_features =
  let c = Gate_model.classifier ~width:word_length ~n_features in
  (activity_fa *. 5.0 *. float_of_int c.Gate_model.full_adders)
  +. (activity_and *. float_of_int c.Gate_model.and_cells)
  +. (activity_ff *. 6.0 *. float_of_int c.Gate_model.flipflops)
  +. (activity_cmp *. 3.5 *. float_of_int c.Gate_model.comparators)

let energy_per_classification ~word_length ~n_features =
  gate_based ~word_length ~n_features *. float_of_int (n_features + 1)
