(** Relative power/energy model of the fixed-point classifier.

    Dynamic power of a CMOS datapath scales with switched capacitance,
    which for a multiplier-dominated MAC grows quadratically with word
    length — the relationship the paper invokes ("the power consumption of
    on-chip fixed-point arithmetic is almost a quadratic function of the
    word length", §5.1).  Two models are provided:

    - {!quadratic_relative}: the paper's idealised [P ∝ WL²] used for its
      headline arithmetic (3× word length ⇒ 9× power, 8b→6b ⇒ 1.8×);
    - {!gate_based}: switched-capacitance proxy from the structural
      {!Gate_model} counts, which includes the linear adder/register terms
      and therefore deviates from the pure square at small word lengths.

    Both are relative (unitless) models; absolute μW would require a
    technology library the paper does not provide either. *)

val quadratic_relative : word_length:int -> float
(** [WL²], normalised to nothing — use ratios. *)

val quadratic_ratio : from_wl:int -> to_wl:int -> float
(** Power ratio when reducing word length: [(from/to)²] inverted — e.g.
    [quadratic_ratio ~from_wl:8 ~to_wl:6 ≈ 1.78]: the 1.8× saving of
    Table 2's discussion. *)

val gate_based : word_length:int -> n_features:int -> float
(** Switched-capacitance proxy: gate equivalents of the classifier
    weighted by per-cell activity (multiplier cells toggle every cycle,
    ROM bits do not). *)

val energy_per_classification :
  word_length:int -> n_features:int -> float
(** Gate-based proxy × cycles ([n_features] MAC cycles + compare). *)
