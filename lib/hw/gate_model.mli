(** First-order gate-count model of the classifier datapath.

    The paper's power argument (§5.1) rests on fixed-point arithmetic
    cost being "almost a quadratic function of the word length"
    [Padgett & Anderson].  This module makes that concrete with textbook
    structural counts for the serial multiply-accumulate classifier:

    - ripple-carry adder of width [n]: [n] full adders;
    - array (Baugh-Wooley) multiplier [n × n]: [n²] AND cells and
      [n(n−2)+...] ≈ [n² − 2n] full adders — the quadratic term;
    - registers: one flip-flop per bit.

    Counts are exact integers from the structural formulas, not
    technology-calibrated — they support relative comparisons (the 3×
    word-length ⇒ ≈9× area/power claim), which is all the paper uses. *)

type counts = {
  full_adders : int;
  and_cells : int;
  flipflops : int;
  comparators : int;  (** magnitude-comparator bit slices *)
}

val zero : counts
val ( ++ ) : counts -> counts -> counts

val ripple_adder : width:int -> counts
val array_multiplier : width:int -> counts
(** [width × width] two's-complement (Baugh-Wooley) array multiplier
    producing [2·width] bits. *)

val register : width:int -> counts
val comparator : width:int -> counts

val mac_datapath : width:int -> counts
(** One serial MAC slice: multiplier + accumulator adder + accumulator
    register (the paper's classifier computes [wᵀx] with one such slice
    over [M] cycles). *)

val classifier : width:int -> n_features:int -> counts
(** Full classifier: MAC slice, weight ROM modelled as registers
    ([n_features] words), threshold register, final comparator. *)

val gate_equivalents : counts -> float
(** Scalar complexity: FA = 5 gates, AND = 1, FF = 6, comparator slice =
    3.5 (standard-cell rules of thumb). *)

val pp : Format.formatter -> counts -> unit
