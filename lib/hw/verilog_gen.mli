(** Synthesizable Verilog-2001 for a trained fixed-point classifier.

    Emits a self-contained module implementing the serial MAC datapath of
    {!Datapath}: a weight ROM holding the trained [QK.F] codes, one
    [WL × WL] signed multiplier with round-to-nearest-even truncation of
    the low fractional bits, a wrapping accumulator, and a signed
    comparator against the threshold — i.e. the circuit the LDA-FP
    constraints were designed for.  A matching self-checking testbench can
    be emitted from a set of input/expected-output vectors produced by the
    OCaml datapath simulation. *)

type spec = {
  module_name : string;
  fmt : Fixedpoint.Qformat.t;
  weights : Fixedpoint.Fx_vector.t;
  threshold : Fixedpoint.Fx.t;
  polarity : bool;
}

val spec_of_weights :
  ?module_name:string ->
  ?polarity:bool ->
  fmt:Fixedpoint.Qformat.t ->
  weights:Linalg.Vec.t ->
  threshold:float ->
  unit ->
  spec
(** Quantise a float solution into a hardware spec. *)

val module_source : spec -> string
(** The classifier module: ports [clk], [rst], [start], [x_in] (one
    feature per cycle), [valid], [class_a]. *)

type test_vector = { inputs : Fixedpoint.Fx_vector.t; expected : bool }

val testbench_source : spec -> test_vector list -> string
(** Self-checking testbench driving the module with the vectors and
    [$fatal]-ing on mismatch. *)

val rom_contents : spec -> (int * string) list
(** [(index, binary-string)] rows of the weight ROM, for documentation
    and for tests of the emitter itself. *)
