type counts = {
  full_adders : int;
  and_cells : int;
  flipflops : int;
  comparators : int;
}

let zero = { full_adders = 0; and_cells = 0; flipflops = 0; comparators = 0 }

let ( ++ ) a b =
  {
    full_adders = a.full_adders + b.full_adders;
    and_cells = a.and_cells + b.and_cells;
    flipflops = a.flipflops + b.flipflops;
    comparators = a.comparators + b.comparators;
  }

let check_width name w =
  if w < 1 then invalid_arg (name ^ ": width must be >= 1")

let ripple_adder ~width =
  check_width "Gate_model.ripple_adder" width;
  { zero with full_adders = width }

let array_multiplier ~width =
  check_width "Gate_model.array_multiplier" width;
  (* Baugh-Wooley n x n: n² partial-product cells, and (n-1) rows of n
     adders plus the final merge row. *)
  {
    zero with
    and_cells = width * width;
    full_adders = (if width = 1 then 0 else width * (width - 1));
  }

let register ~width =
  check_width "Gate_model.register" width;
  { zero with flipflops = width }

let comparator ~width =
  check_width "Gate_model.comparator" width;
  { zero with comparators = width }

let mac_datapath ~width =
  array_multiplier ~width ++ ripple_adder ~width ++ register ~width

let classifier ~width ~n_features =
  if n_features < 1 then
    invalid_arg "Gate_model.classifier: n_features must be >= 1";
  let rom = { zero with flipflops = width * n_features } in
  mac_datapath ~width ++ rom ++ register ~width ++ comparator ~width

let gate_equivalents c =
  (5.0 *. float_of_int c.full_adders)
  +. float_of_int c.and_cells
  +. (6.0 *. float_of_int c.flipflops)
  +. (3.5 *. float_of_int c.comparators)

let pp ppf c =
  Format.fprintf ppf "{FA=%d AND=%d FF=%d CMP=%d (~%.0f gates)}" c.full_adders
    c.and_cells c.flipflops c.comparators (gate_equivalents c)
