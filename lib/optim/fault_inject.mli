(** Deterministic fault injection for branch-and-bound oracles.

    Wraps a {!Bnb.oracle} so that individual [bound]/[branch] calls
    fail — raise {!Injected}, return a NaN lower bound, or stall in a
    short sleep — with configured probabilities.  This is the test
    harness for the driver's containment guarantees: under injected
    faults the search must still terminate, never deadlock across
    domain counts, report every failure in {!Bnb.stats}, and return a
    valid incumbent.

    Randomness is a counter-hashed SplitMix64 stream: each oracle
    invocation draws from an atomic call counter, so the combinator is
    domain-safe and a given [seed] yields the same fault {e rate}
    regardless of scheduling (the exact set of faulted calls depends on
    call order, which is scheduling-dependent when [domains > 1]). *)

exception Injected of string
(** The exception thrown by exception-faults; carries the call index so
    failures are traceable in logs. *)

type config = {
  seed : int;
  bound_exn_prob : float;  (** P[[bound] raises {!Injected}] *)
  bound_nan_prob : float;  (** P[[bound] returns a NaN lower bound] *)
  branch_exn_prob : float;  (** P[[branch] raises {!Injected}] *)
  delay_prob : float;  (** P[a call sleeps [delay_seconds] first] *)
  delay_seconds : float;
      (** scheduling perturbation for deadlock hunting; keep small *)
}

val none : config
(** All probabilities 0 — the wrapped oracle behaves identically. *)

val config :
  ?bound_exn_prob:float ->
  ?bound_nan_prob:float ->
  ?branch_exn_prob:float ->
  ?delay_prob:float ->
  ?delay_seconds:float ->
  seed:int ->
  unit ->
  config
(** Unspecified probabilities default to 0; [delay_seconds] to 1 ms. *)

val wrap :
  config -> ('region, 'sol) Bnb.oracle ->
  ('region, 'sol) Bnb.oracle * (unit -> int)
(** [wrap cfg oracle] is the faulty oracle plus a live counter of
    injected {e failures} (exceptions and NaN bounds; delays are not
    failures).  Tests assert the counter equals
    {!Bnb.stats}[.oracle_failures] — every injection must be observed,
    none double-counted. *)
