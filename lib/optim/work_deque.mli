(** Sharded work-stealing scheduler for the parallel branch-and-bound
    driver.

    Each worker owns a {e shard}: a private best-first min-heap plus a
    single in-flight slot, guarded by a per-shard lock.  Workers push
    their own expansions to their own shard and pop locally; a worker
    whose heap runs dry steals the best half of a victim's heap
    ({!Pqueue.steal_half}) instead of contending on a central queue.
    Cross-shard reads (the frontier-bound gap test, victim selection,
    termination detection) go through per-shard atomic mirrors, so in
    steady state no lock is shared between workers.

    Concurrency contract:
    - [push]/[take]/[release] with a given [~worker] index must only be
      called by that worker (shard ownership); [try_steal ~thief]
      likewise.
    - Items must never be mutated after being pushed (the B&B contract),
      which is what makes {!snapshot} and node migration race-free.
    - [frontier_bound] is conservative: at every instant it is [<=] the
      true minimum key over live (queued + in-flight) work, even while
      steals are mid-transfer.
    - [drained] is exact: it flips true only when the search space is
      genuinely exhausted (children are pushed before their parent is
      released).

    Termination protocol: a worker with no local work and nothing to
    steal calls {!park}, which blocks on a condition variable signalled
    only when work appears ({!push} with idlers present) or the deque is
    {!close}d — no busy-spin, no per-push broadcast. *)

type 'a t

val create : ?carries_warm:('a -> bool) -> workers:int -> unit -> 'a t
(** A deque with one shard per worker (ids [0 .. workers-1]).
    [?carries_warm] is a pure predicate for "this item migrates with
    usable warm-start state" (e.g. a B&B region holding its parent's
    relaxation optimum); when given, {!try_steal} counts matching
    stolen items into {!stolen_warm}, turning "warm state survives
    steals" from an assumption into a measured fact.  The predicate
    runs under both shard locks — keep it O(1) and never let it touch
    the deque.
    @raise Invalid_argument if [workers < 1]. *)

val workers : 'a t -> int

val push : 'a t -> worker:int -> float -> 'a -> unit
(** Queue an item on [worker]'s own shard and wake one parked worker if
    any are parked. *)

val take : 'a t -> worker:int -> (float * 'a) option
(** Pop the minimum-key item of [worker]'s own shard and mark it in
    flight there; [None] when the local shard is empty (work may exist
    on other shards — try {!try_steal}).  Each worker holds at most one
    in-flight item at a time. *)

val release : 'a t -> worker:int -> unit
(** Mark [worker]'s in-flight item finished.  Its children, if any, must
    have been {!push}ed first, so the live count can only reach zero
    when the search space is exhausted. *)

val try_steal : 'a t -> thief:int -> (float * 'a) option
(** Scan other shards round-robin (starting after [thief]) for one with
    queued work; transfer the best half of the first victim found into
    [thief]'s shard (both shard locks held, in ascending index order)
    and return the best stolen item, already marked in flight on
    [thief].  [None] when every other shard looks empty.  The thief's
    bound mirror is refreshed before the victim's so the global frontier
    bound never overshoots mid-transfer. *)

val prune : 'a t -> (float -> 'a -> bool) -> unit
(** Drop queued items not satisfying the predicate on every shard
    (in-flight items are unaffected).  Shards are pruned one at a time;
    callable by any worker. *)

val shed : 'a t -> worker:int -> keep:int -> (int * float) option
(** [shed t ~worker ~keep] drops the {e largest}-key queued items of
    [worker]'s own shard until at most [keep] remain (the in-flight item
    is untouched), returning [Some (dropped, min_dropped_key)] or [None]
    when the shard was already within budget.  The bounded-memory
    frontier primitive: shed nodes are gone for good, so soundness
    requires the caller to fold [min_dropped_key] into every bound and
    gap it subsequently reports ({!Pqueue.drop_worst} explains why that
    suffices).  Shard-ownership contract as for {!push}. *)

val snapshot : 'a t -> (float * 'a) list
(** Every live item with its key: queued {e and} in-flight, across all
    shards.  Holds all shard locks (ascending order) for the duration,
    so no item can be lost mid-steal — this is the full frontier a
    checkpoint must persist. *)

val frontier_bound : 'a t -> float
(** Minimum key over queued and in-flight items, read from the atomic
    mirrors: conservative (never above the true minimum) at every
    instant, exact at quiescence.  [infinity] when drained. *)

val live : 'a t -> int
(** Queued + in-flight items across all shards. *)

val drained : 'a t -> bool
(** [live t = 0]: the search space is exhausted. *)

val queue_length : 'a t -> int
(** Total queued (not in-flight) items, from the length mirrors —
    approximate while workers are active. *)

val close : 'a t -> unit
(** Initiate shutdown and wake every parked worker. *)

val is_closed : 'a t -> bool

val park : 'a t -> [ `Work | `Drained | `Closed ]
(** Block until work appears somewhere ([`Work] — go steal or take),
    the deque drains ([`Drained]) or is closed ([`Closed]).  Returns
    without blocking if any of these already holds.  Each pass through
    the wait counts one idle wake-up. *)

val idle_wakeups : 'a t -> int
(** Times a worker actually blocked waiting for work — the
    starvation observability counter. *)

val steals : 'a t -> int
(** Successful steal-half transfers. *)

val stolen_nodes : 'a t -> int
(** Total items moved by steals. *)

val stolen_warm : 'a t -> int
(** Stolen items that satisfied the [?carries_warm] predicate at steal
    time — the migrated-warm-state observability counter.  0 when the
    predicate was not supplied. *)
