(** Sharded work-stealing scheduler for the parallel branch-and-bound
    driver.

    Each worker owns a {e shard}: a private best-first min-heap plus a
    single in-flight slot, guarded by a per-shard lock.  Workers push
    their own expansions to their own shard and pop locally; a worker
    whose heap runs dry steals the best half of a victim's heap
    ({!Pqueue.steal_half}) instead of contending on a central queue.
    Cross-shard reads (the frontier-bound gap test, victim selection,
    termination detection) go through per-shard atomic mirrors, so in
    steady state no lock is shared between workers.

    Mirror publication is {e batched}: an exact publish happens every
    few dozen shard mutations and on every steal boundary, not on every
    push/pop.  Between publishes the mirrors are stale in the only
    directions that are safe — the bound mirror stale {e low} (a push
    that undercuts it lowers it immediately; pops merely raise the
    truth), the length mirror stale {e high} except that it reads zero
    only when the queue is truly empty (a push onto an empty-looking
    shard publishes the length immediately).  Call {!sync_mirrors} at
    quiescence to make them exact.

    Concurrency contract:
    - [push]/[take]/[release] with a given [~worker] index must only be
      called by that worker (shard ownership); [try_steal ~thief]
      likewise.  Exception: before any worker has started (e.g. while
      the driver deals a seeded frontier across shards), the setup
      thread may [push] to any shard.
    - Items must never be mutated after being pushed (the B&B contract),
      which is what makes {!snapshot} and node migration race-free.
    - [frontier_bound] is conservative: at every instant it is [<=] the
      true minimum key over live (queued + in-flight) work, even while
      steals are mid-transfer and between batched publishes.
    - [drained] is exact: it flips true only when the search space is
      genuinely exhausted (children are pushed before their parent is
      released).

    Termination protocol: a worker with no local work and nothing to
    steal calls {!park}, which blocks on its own condition variable.  A
    {!push} with idlers present wakes exactly one parked worker (a
    {e targeted} signal — no thundering herd); {!close} wakes them
    all. *)

type 'a t

val create : ?carries_warm:('a -> bool) -> workers:int -> unit -> 'a t
(** A deque with one shard per worker (ids [0 .. workers-1]).
    [?carries_warm] is a pure predicate for "this item migrates with
    usable warm-start state" (e.g. a B&B region holding its parent's
    relaxation optimum); when given, {!try_steal} counts matching
    stolen items into {!stolen_warm}, turning "warm state survives
    steals" from an assumption into a measured fact.  The predicate
    runs under both shard locks — keep it O(1) and never let it touch
    the deque.
    @raise Invalid_argument if [workers < 1]. *)

val workers : 'a t -> int

val push : 'a t -> worker:int -> float -> 'a -> unit
(** Queue an item on [worker]'s shard and wake one parked worker if any
    are parked.  Mirror updates are batched, except the two safety
    cases published immediately: a key below the shard's bound mirror,
    and work arriving on a shard whose length mirror reads zero. *)

val take : 'a t -> worker:int -> (float * 'a) option
(** Pop the minimum-key item of [worker]'s own shard and mark it in
    flight there; [None] when the local shard is empty (work may exist
    on other shards — try {!try_steal}).  Each worker holds at most one
    in-flight item at a time. *)

val release : 'a t -> worker:int -> unit
(** Mark [worker]'s in-flight item finished.  Its children, if any, must
    have been {!push}ed first, so the live count can only reach zero
    when the search space is exhausted. *)

val try_steal : 'a t -> thief:int -> (float * 'a) option
(** Pick the victim by mirrored bound quality: among shards whose length
    mirror shows queued work, steal from the one advertising the lowest
    (most promising) bound; on a stale miss, publish the victim's true
    state and retry the next-best candidate.  Transfers the best half of
    the victim's heap into [thief]'s shard (both shard locks held, in
    ascending index order) and returns the best stolen item, already
    marked in flight on [thief].  [None] when every other shard is
    empty.  The thief's bound mirror is published before the victim's so
    the global frontier bound never overshoots mid-transfer; both shards
    leave a steal with exact mirrors. *)

val prune : 'a t -> (float -> 'a -> bool) -> unit
(** Drop queued items not satisfying the predicate on every shard
    (in-flight items are unaffected).  Shards are pruned one at a time;
    callable by any worker.  Publishes exact mirrors per shard. *)

val shed : 'a t -> worker:int -> keep:int -> (int * float) option
(** [shed t ~worker ~keep] drops the {e largest}-key queued items of
    [worker]'s own shard until at most [keep] remain (the in-flight item
    is untouched), returning [Some (dropped, min_dropped_key)] or [None]
    when the shard was already within budget.  The bounded-memory
    frontier primitive: shed nodes are gone for good, so soundness
    requires the caller to fold [min_dropped_key] into every bound and
    gap it subsequently reports ({!Pqueue.drop_worst} explains why that
    suffices).  Shard-ownership contract as for {!push}. *)

val snapshot : 'a t -> (float * 'a) list
(** Every live item with its key: queued {e and} in-flight, across all
    shards.  Holds all shard locks (ascending order) for the duration,
    so no item can be lost mid-steal — this is the full frontier a
    checkpoint must persist. *)

val sync_mirrors : 'a t -> unit
(** Publish exact mirrors on every shard (each under its own lock).
    With no concurrent mutators — after the workers have joined —
    {!frontier_bound} and {!queue_length} are exact afterwards instead
    of up to one publish epoch stale.  The driver calls this before
    computing the final reported bound/gap. *)

val frontier_bound : 'a t -> float
(** Minimum key over queued and in-flight items, read from the atomic
    mirrors: conservative (never above the true minimum) at every
    instant, exact at quiescence after {!sync_mirrors}.  [infinity]
    when drained. *)

val live : 'a t -> int
(** Queued + in-flight items across all shards. *)

val drained : 'a t -> bool
(** [live t = 0]: the search space is exhausted. *)

val queue_length : 'a t -> int
(** Total queued (not in-flight) items, from the length mirrors —
    approximate while workers are active (exact after
    {!sync_mirrors} at quiescence). *)

val close : 'a t -> unit
(** Initiate shutdown and wake every parked worker. *)

val is_closed : 'a t -> bool

val park : 'a t -> worker:int -> [ `Work | `Drained | `Closed ]
(** Block [worker] until work appears somewhere ([`Work] — go steal or
    take), the deque drains ([`Drained]) or is closed ([`Closed]).
    Returns without blocking if any of these already holds.  Each pass
    through the wait counts one idle wake-up.  The worker parks on its
    own condition variable so pushers can wake exactly one sleeper. *)

val idle_wakeups : 'a t -> int
(** Times a worker actually blocked waiting for work — the
    starvation observability counter. *)

val targeted_wakeups : 'a t -> int array
(** Per-worker targeted-signal counts: [targeted_wakeups t].(w) is the
    number of times worker [w] was woken by a push's targeted signal
    (indexed by the woken worker).  The sum is the total number of
    single-worker wakeups that under the old protocol would each have
    been a broadcast to the whole herd. *)

val steals : 'a t -> int
(** Successful steal-half transfers. *)

val stolen_nodes : 'a t -> int
(** Total items moved by steals. *)

val steals_best_victim : 'a t -> int array
(** Per-thief victim-quality counts: [steals_best_victim t].(w) is the
    number of worker [w]'s successful steals that landed on its first
    choice — the victim advertising the globally minimal mirrored
    bound.  A low ratio against {!steals} means the mirrors are too
    stale to guide victim selection. *)

val stolen_warm : 'a t -> int
(** Stolen items that satisfied the [?carries_warm] predicate at steal
    time — the migrated-warm-state observability counter.  0 when the
    predicate was not supplied. *)
