(** Generic best-first branch-and-bound for global minimisation.

    Abstracts Algorithm 1 of the paper: the caller supplies a [bound]
    oracle that, for a region, returns a certified lower bound on the cost
    over that region (or proves the region infeasible) together with an
    optional feasible incumbent candidate, and a [branch] rule that splits
    a region into sub-regions.  The driver keeps a min-heap of live regions
    keyed by lower bound, prunes regions whose bound exceeds the incumbent
    and stops on proof of optimality, a gap tolerance, or a budget.

    With [params.domains > 1] the driver runs the same search across
    that many OCaml 5 domains sharing one work pool (see
    {!Work_pool}): the oracle must then be safe to call concurrently
    from several domains on {e distinct} regions (pure per-node
    functions of the shared read-only problem qualify; region-local
    mutation is fine because each region is processed by exactly one
    domain).  With [domains = 1] (the default) the code path is the
    sequential driver, unchanged. *)

type 'sol bound_info = {
  lower : float;
      (** certified lower bound on the cost over the region; [+infinity]
          allowed (prunes immediately) *)
  candidate : ('sol * float) option;
      (** a feasible solution found inside the region and its exact cost *)
}

type ('region, 'sol) oracle = {
  bound : 'region -> 'sol bound_info option;
      (** [None] = region proved infeasible *)
  branch : 'region -> 'region list;
      (** split a region; return [[]] when atomic (fully explored by
          [bound]) *)
}

type params = {
  max_nodes : int;
  rel_gap : float;  (** stop when (incumbent − best bound) ≤ rel_gap·|incumbent| *)
  abs_gap : float;
  time_limit : float option;
      (** wall-clock seconds (measured with [Unix.gettimeofday]; CPU
          time would overshoot the budget and scale ~N× wrong across N
          domains) *)
  log_every : int;  (** emit a [Logs] debug line every n nodes; 0 = never *)
  domains : int;
      (** number of domains exploring the tree; 1 = sequential driver *)
}

val default_params : params
(** [max_nodes = 100_000], [rel_gap = 1e-6], [abs_gap = 1e-12],
    no time limit, no logging, [domains = 1]. *)

type stop_reason =
  | Proved_optimal  (** queue exhausted or bound met incumbent *)
  | Gap_reached
  | Node_budget
  | Time_budget

type stats = {
  infeasible_regions : int;  (** regions the bound oracle proved empty *)
  bound_pruned : int;  (** regions rejected because their bound met the incumbent *)
  stale_pops : int;  (** queue entries dominated by a newer incumbent *)
  incumbent_updates : int;
  children_generated : int;
  domains_used : int;  (** 1 for the sequential driver *)
  idle_wakeups : int;
      (** times a worker domain found the queue empty and had to wait
          for siblings' children; 0 for the sequential driver *)
}
(** Search statistics — the observability the ablation benches report. *)

type 'sol result = {
  best : ('sol * float) option;  (** incumbent and its cost *)
  bound : float;  (** greatest certified global lower bound *)
  gap : float;  (** incumbent − bound; [infinity] without incumbent *)
  nodes_explored : int;
  stop_reason : stop_reason;
  stats : stats;
}

val minimize :
  ?params:params -> ('region, 'sol) oracle -> 'region -> 'sol result
(** Explore from the root region, on [params.domains] domains.  The
    root is always bounded on the calling domain before workers start.
    Termination semantics (gap, node budget, wall-clock limit) are
    identical across domain counts; in parallel the gap test uses the
    minimum bound over queued {e and} in-flight regions, so it is never
    optimistic. *)

val minimize_parallel :
  ?params:params ->
  domains:int ->
  ('region, 'sol) oracle ->
  'region ->
  'sol result
(** [minimize] with [params.domains] overridden by [domains]. *)
