(** Generic best-first branch-and-bound for global minimisation.

    Abstracts Algorithm 1 of the paper: the caller supplies a [bound]
    oracle that, for a region, returns a certified lower bound on the cost
    over that region (or proves the region infeasible) together with an
    optional feasible incumbent candidate, and a [branch] rule that splits
    a region into sub-regions.  The driver keeps a min-heap of live regions
    keyed by lower bound, prunes regions whose bound exceeds the incumbent
    and stops on proof of optimality, a gap tolerance, or a budget.

    With [params.domains > 1] the driver runs the same search across
    that many OCaml 5 domains over a sharded work-stealing scheduler
    (see {!Work_deque}): each domain expands nodes from its own
    best-first shard and steals the best half of a sibling's shard when
    dry.  The oracle must be safe to call concurrently from several
    domains on {e distinct} regions (pure per-node functions of the
    shared read-only problem qualify; region-local mutation is fine
    because each region is processed by exactly one domain, even after
    being stolen).  The incumbent cost and feasibility are identical to
    the sequential search on a run-to-completion; the explored node
    {e count} and ordering are scheduling-dependent under stealing.
    With [domains = 1] (the default) the code path is the sequential
    driver, unchanged.

    {2 Fault containment}

    Every [oracle.bound] / [oracle.branch] invocation is guarded: an
    escaping exception or a non-finite (NaN / [-infinity]) lower bound is
    classified (see {!Fault}) and handled by the configured policy —
    retried, degraded to the caller's cheap conservative fallback bound,
    or, as a recorded last resort, dropped.  A worker domain always
    releases its in-flight slot in a finaliser and closes the scheduler
    before an exception escapes, so one poisoned region can neither
    hang parked siblings nor corrupt the live-work count; with
    {!Fault.propagate} the pre-containment fail-fast behaviour is
    restored.

    {2 Checkpointing}

    With [?checkpointing] the driver periodically (every
    [every_nodes] explored nodes, and on any budget/interrupt stop)
    serialises the live frontier, incumbent and statistics to disk via
    {!Checkpoint} — atomically, tmp + rename — and {!resume} restarts
    from such a snapshot instead of the root.  The contract required for
    parallel snapshots: [branch] must not mutate the region it splits
    (both the LDA-FP oracle and anything purely functional satisfy
    this). *)

type 'sol bound_info = {
  lower : float;
      (** certified lower bound on the cost over the region; [+infinity]
          allowed (prunes immediately) *)
  candidate : ('sol * float) option;
      (** a feasible solution found inside the region and its exact cost *)
}

type ('region, 'sol) oracle = {
  bound : 'region -> 'sol bound_info option;
      (** [None] = region proved infeasible *)
  branch : 'region -> 'region list;
      (** split a region; return [[]] when atomic (fully explored by
          [bound]) *)
}

type params = {
  max_nodes : int;
  rel_gap : float;  (** stop when (incumbent − best bound) ≤ rel_gap·|incumbent| *)
  abs_gap : float;
  time_limit : float option;
      (** wall-clock seconds, measured on the monotonic {!Obs.Clock}
          (CPU time would overshoot the budget and scale ~N× wrong
          across N domains; [Unix.gettimeofday] is NTP-steppable
          mid-search) *)
  log_every : int;  (** emit a [Logs] debug line every n nodes; 0 = never *)
  domains : int;
      (** number of domains exploring the tree; 1 = sequential driver *)
  max_frontier : int;
      (** bounded-memory frontier: when positive, the queued frontier is
          capped at this many regions (split evenly across shards when
          [domains > 1]) and the {e worst}-bound regions are shed on
          overflow.  Shedding stays {e sound}: the best bound among shed
          regions is folded into every reported [bound] and [gap] (and
          into the gap-tolerance test), so the anytime result never
          claims a tolerance it reached by discarding work — it may
          merely fail to converge below the shed residue.  [0] (default)
          = unlimited.  Shed counts surface in
          {!stats.frontier_shed}. *)
  seed_factor : int;
      (** eager frontier seeding (only with [domains > 1]): before the
          worker domains start, the calling domain best-first expands
          the root (or a restored frontier) until it holds at least
          [seed_factor * domains] regions, then deals them round-robin
          by bound rank across the shards — so every worker starts
          with local work instead of parking while shard 0 grows the
          tree alone.  Seeding honours every stop condition, the
          certified-pruning contract and the frontier cap, and its
          expansions count against [max_nodes] like any other node.
          [0] disables the expansion (the frontier is still dealt by
          rank).  Default 4. *)
}

val default_params : params
(** [max_nodes = 100_000], [rel_gap = 1e-6], [abs_gap = 1e-12],
    no time limit, no logging, [domains = 1], unlimited frontier,
    [seed_factor = 4]. *)

type ('region, 'sol) faults = {
  policy : Fault.policy;
  retry_bound : (attempt:int -> 'region -> 'sol bound_info option) option;
      (** used instead of [oracle.bound] for retry attempt [attempt >= 1]
          — the hook for jittered solver parameters (loosened barrier
          tolerances, perturbed start).  [None]: retries re-call
          [oracle.bound] unchanged (still useful against transient /
          injected faults). *)
  fallback_bound : ('region -> float) option;
      (** cheap {e certified} conservative lower bound (e.g. interval
          arithmetic) used to keep a region alive when its real bound
          keeps failing; must return a finite value or [+infinity].
          [None] disables degradation even when [policy.degrade]. *)
}

val default_faults : ('region, 'sol) faults
(** {!Fault.default_policy} with no retry override and no fallback:
    failures are retried once and then dropped (recorded). *)

type stop_reason =
  | Proved_optimal  (** queue exhausted or bound met incumbent *)
  | Gap_reached
  | Node_budget
  | Time_budget
  | Interrupted  (** the [?interrupt] poll returned [true] *)

val stop_reason_name : stop_reason -> string
(** Stable snake-case name (["proved_optimal"], ["gap_reached"], ...)
    used by the bench records, the run ledger and the [/healthz]
    telemetry phase. *)

type stats = {
  infeasible_regions : int;  (** regions the bound oracle proved empty *)
  bound_pruned : int;  (** regions rejected because their bound met the incumbent *)
  stale_pops : int;  (** queue entries dominated by a newer incumbent *)
  incumbent_updates : int;
  children_generated : int;
  domains_used : int;  (** 1 for the sequential driver *)
  idle_wakeups : int;
      (** times a worker domain ran out of local work, found nothing to
          steal, and actually parked; 0 for the sequential driver *)
  steals : int;
      (** successful steal-half transfers between shards; 0 for the
          sequential driver *)
  stolen_nodes : int;
      (** total queued regions moved by steals *)
  seed_nodes : int;
      (** nodes expanded by the eager seeding phase (see
          {!params.seed_factor}) before the worker domains started;
          cumulative across a resume chain and persisted through
          checkpoints; 0 for a purely sequential chain *)
  seed_seconds : float;
      (** wall-clock duration of the seeding phase (expansion + dealing),
          cumulative across a resume chain and persisted through
          checkpoints (microsecond resolution) *)
  targeted_wakeups : int;
      (** single-worker wakeup signals sent by pushes to parked workers —
          each one would have been a whole-herd broadcast under the old
          protocol; 0 for the sequential driver *)
  steals_best_victim : int;
      (** successful steals that landed on the thief's first-choice
          victim — the shard advertising the globally minimal mirrored
          bound; low against [steals] means the batched mirrors are too
          stale to guide victim selection *)
  domain_targeted_wakeups : int array;
      (** current-run per-worker breakdown of [targeted_wakeups],
          indexed by the woken worker (length [domains_used]); not
          persisted across checkpoints *)
  domain_steals_best_victim : int array;
      (** current-run per-thief breakdown of [steals_best_victim]
          (length [domains_used]); not persisted across checkpoints *)
  domain_first_node_seconds : float array;
      (** current-run time from search start until each worker expanded
          its first node (length [domains_used]; [-1.0] for a worker
          that never expanded one) — the time-to-first-node startup
          diagnostic the seeding phase exists to shrink.  Not persisted
          across checkpoints. *)
  oracle_failures : int;
      (** failing oracle invocations (exceptions and non-finite bounds),
          including failing retry attempts *)
  retries : int;  (** oracle re-invocations made by the fault policy *)
  degraded_bounds : int;
      (** regions kept alive with the conservative fallback bound *)
  dropped_regions : int;
      (** regions abandoned after the policy ran out of options — each
          one weakens the optimality claim, which is why they are
          counted rather than silent *)
  warm_start_hits : int;
      (** bound solves started from an inherited (parent) optimum — see
          {!oracle_counters}; 0 unless the oracle reports them *)
  phase1_skipped : int;
      (** phase-I feasibility solves avoided because a warm start was
          already strictly interior; 0 unless the oracle reports them *)
  warm_pull_ins : int;
      (** inherited optima repaired by the analytic-center pull-in
          ({!Socp.pull_to_interior}) before warm-starting — each one is
          a would-have-been [warm_miss_not_interior] *)
  warm_newton_corrections : int;
      (** inherited optima repaired by the one-step infeasible-start
          Newton correction ({!Socp.correct_to_interior}) after the
          pull-in failed *)
  warm_miss_no_parent : int;
      (** bound solves that went cold because the region carried no
          parent optimum (root, restored frontier, or never solved) *)
  warm_miss_not_interior : int;
      (** bound solves that went cold because the clipped parent optimum
          was not strictly interior to the child's cones *)
  warm_miss_fault_cleared : int;
      (** bound solves that went cold because a fault retry had
          deliberately discarded a tainted warm point *)
  stolen_warm : int;
      (** stolen regions that carried usable warm-start state at steal
          time (see [?carries_warm] on {!minimize}); 0 for the
          sequential driver or without the predicate *)
  counters_reset : bool;
      (** the resume chain passed through a checkpoint written before
          the warm/miss counters existed: the warm counters restarted
          from zero mid-chain, so any rate computed over them
          (warm_hit_rate above all) covers only part of the search.
          Sticky — once raised it is persisted into every later
          snapshot of the chain.  Surfaced by [ldafp train]. *)
  cert_verified : int;
      (** bound solves whose dual certificate verified without repair —
          see {!Socp.certify_lower_bound}; 0 unless the oracle reports
          them via {!count_cert_verified} *)
  cert_repaired : int;
      (** verified certificates that needed the closed-form multiplier
          repair first (still fully certified — repair is projection
          onto the dual-feasible set, never a leap of faith) *)
  cert_fallbacks : int;
      (** bound calls whose certificate could not be established even
          after retries, so the region was degraded to the certified
          interval fallback (or dropped).  The search never pruned on
          the unverified value, so this does {e not} clear
          [certified_sound] — it measures how often the expensive bound
          had to be distrusted. *)
  certified_sound : bool;
      (** every pruning decision of the search — across the whole resume
          chain — compared the incumbent against a verified dual
          certificate or a certified interval fallback, never a raw
          primal objective.  [false] when the oracle ran with
          certification disabled ({!mark_uncertified}) or the chain
          passed through a pre-certificate snapshot.  Sticky once
          cleared; persisted through checkpoints. *)
  frontier_shed : int;
      (** queued regions shed by {!params.max_frontier}; their residual
          bound is already folded into [bound] and [gap] *)
  retry_budget_exhausted : int;
      (** node expansions whose {!Fault.policy.retry_budget} ran out, so
          later failures inside them skipped straight to
          degrade/drop *)
  retry_backoff_seconds : float;
      (** total wall-clock the containment policy spent sleeping between
          retries (capped exponential backoff; see
          {!Fault.backoff_delay}) *)
  oracle_seconds : float;
      (** cumulative wall-clock time spent inside [oracle.bound] calls
          (including retries and fallbacks), summed across domains and
          across a resume chain — {e not} comparable to wall-clock when
          [domains > 1]; see [domain_oracle_seconds] *)
  domain_oracle_seconds : float array;
      (** current-run oracle wall-time attributed to each worker domain
          (length [domains_used]); each entry is bounded by the run's
          wall-clock, so per-domain utilization is
          [domain_oracle_seconds.(i) / wall].  Not persisted across
          checkpoints. *)
  wall_seconds : float;
      (** wall-clock duration of the search on the monotonic
          {!Obs.Clock} — immune to NTP steps, unlike timing the call
          with [Unix.gettimeofday].  Cumulative across a resume chain
          (the pre-resume elapsed time is restored from the
          checkpoint), so [time_limit] and [wall_seconds] speak the
          same clock. *)
}
(** Search statistics — the observability the ablation benches report.
    All fields except the per-domain arrays ([domain_oracle_seconds],
    [domain_targeted_wakeups], [domain_steals_best_victim],
    [domain_first_node_seconds]) and the scheduler diagnostics
    ([idle_wakeups], [steals], [stolen_nodes], [targeted_wakeups],
    [steals_best_victim]) survive a checkpoint/resume cycle; snapshots
    taken before the warm-start, warm-miss or seed fields existed
    restore them as 0. *)

val stats_to_json : stats -> Obs.Json.t
(** Every {!stats} field as a flat JSON object (per-domain arrays as
    JSON arrays), in declaration order — the shape persisted into
    bench experiment records and {!Obs.Run_ledger} records, and the
    leaf names [ldafp runs diff] keys its regression heuristics on
    ([certified_sound], [cert_fallbacks], ...). *)

type oracle_counters
(** Warm-start accounting shared between the driver and the bound
    oracle.  The driver cannot see {e how} an oracle solved a node, so an
    oracle that warm-starts reports it here; the driver merges the
    counts (plus its own oracle wall-time measurement) into {!stats} and
    persists them across checkpoints.  Counters are atomic — safe to
    bump from any worker domain. *)

val oracle_counters : unit -> oracle_counters
(** Fresh zeroed counters.  Pass the same value to [?counters] and to
    the oracle closure that increments it. *)

val count_warm_start_hit : oracle_counters -> unit
(** Record one bound solve started from an inherited optimum. *)

val count_phase1_skipped : oracle_counters -> unit
(** Record one phase-I solve skipped thanks to a strictly interior warm
    start. *)

val count_warm_pull_in : oracle_counters -> unit
(** Record one inherited optimum repaired by the analytic-center
    pull-in before warm-starting. *)

val count_warm_newton_correction : oracle_counters -> unit
(** Record one inherited optimum repaired by the one-step Newton
    correction after the pull-in failed. *)

val count_warm_miss_no_parent : oracle_counters -> unit
(** Record one cold bound solve on a region with no inherited optimum. *)

val count_warm_miss_not_interior : oracle_counters -> unit
(** Record one cold bound solve whose inherited optimum failed the
    strict-interior test after clipping. *)

val count_warm_miss_fault_cleared : oracle_counters -> unit
(** Record one cold bound solve whose inherited optimum had been
    discarded by a fault retry. *)

val count_cert_verified : oracle_counters -> unit
(** Record one bound whose dual certificate verified as extracted. *)

val count_cert_repaired : oracle_counters -> unit
(** Record one bound whose certificate verified after the closed-form
    multiplier repair. *)

val mark_uncertified : oracle_counters -> unit
(** Clear the sticky [certified_sound] flag: the oracle is about to
    prune on unverified primal objectives (certification explicitly
    disabled).  There is deliberately no way to set it back. *)

val warm_counter_keys : string list
(** The checkpoint counter keys the warm/miss accounting lives under.  A
    snapshot that lacks any of them predates the oracle-counter schema;
    resuming through one raises the sticky [counters_reset] marker in
    {!stats}.  Exposed so tests (and migration tooling) can construct
    such snapshots deliberately. *)

val cert_counter_keys : string list
(** The checkpoint counter keys the certificate accounting lives under.
    A snapshot lacking any of them predates certified pruning: its
    frontier keys may have been computed by the old trusting formula,
    so resuming through one raises the sticky [counters_reset] marker
    {e and} clears [certified_sound] for the rest of the chain. *)

val seed_counter_keys : string list
(** The checkpoint counter keys the seed-phase accounting lives under
    ([seed_nodes], [seed_time_us]).  A snapshot lacking them predates
    the eager-seeding scheduler; resuming through one raises the sticky
    [counters_reset] marker (the cumulative seed totals restart at
    zero — seeding itself still works on the restored frontier). *)

type 'sol result = {
  best : ('sol * float) option;  (** incumbent and its cost *)
  bound : float;  (** greatest certified global lower bound *)
  gap : float;  (** incumbent − bound; [infinity] without incumbent *)
  nodes_explored : int;
  stop_reason : stop_reason;
  stats : stats;
}

type checkpointing = {
  path : string;
  every_nodes : int;
      (** snapshot cadence in explored nodes; [0] = only on stop *)
  fingerprint : string;
      (** problem identity written into the file and verified on load *)
  save_on_stop : bool;
      (** also snapshot when stopping on [Node_budget] / [Time_budget] /
          [Interrupted] (never on a completed search — a finished run
          needs no resume) *)
}

val checkpointing : ?every_nodes:int -> ?save_on_stop:bool ->
  fingerprint:string -> string -> checkpointing
(** [checkpointing ~fingerprint path] with [every_nodes = 0] and
    [save_on_stop = true] by default. *)

val minimize :
  ?params:params ->
  ?faults:('region, 'sol) faults ->
  ?checkpointing:checkpointing ->
  ?interrupt:(unit -> bool) ->
  ?counters:oracle_counters ->
  ?progress:Obs.Progress.t ->
  ?carries_warm:('region -> bool) ->
  ('region, 'sol) oracle ->
  'region ->
  'sol result
(** Explore from the root region, on [params.domains] domains.  The
    root is always bounded on the calling domain before workers start;
    with [domains > 1] the calling domain then runs the eager seeding
    phase ({!params.seed_factor}) before spawning workers.
    Termination semantics (gap, node budget, wall-clock limit) are
    identical across domain counts; in parallel the gap test uses the
    minimum bound over queued {e and} in-flight regions across all
    shards (read from conservative atomic mirrors), so it is never
    optimistic, and the node budget may overshoot by at most
    [domains - 1] nodes already claimed when the budget trips.
    [?interrupt] is polled between nodes by every worker, without any
    lock held; returning [true] stops the search with {!Interrupted} —
    the hook for signal handlers.  [?carries_warm] is a pure O(1)
    predicate for "this region migrates with usable warm-start state";
    when given (and [domains > 1]) stolen regions satisfying it are
    counted into [stats.stolen_warm], turning "warm state survives
    steals" into a measured fact.  [?progress] emits a throttled
    search-wide status line (nodes/s, incumbent, bound, gap, steals,
    per-domain oracle utilization) after node expansions; with
    [domains > 1] the workers share the reporter's rate limit, so the
    cadence is unchanged.

    Tracing and metrics need no per-call wiring: when a {!Obs.Trace}
    collector is installed / {!Obs.Metrics} is enabled, the driver
    emits node and bound-oracle spans, incumbent and fault-containment
    instants, and latency histograms (see {!page-observability});
    disabled, each site costs one branch and allocates nothing. *)

val resume :
  ?params:params ->
  ?faults:('region, 'sol) faults ->
  ?checkpointing:checkpointing ->
  ?interrupt:(unit -> bool) ->
  ?counters:oracle_counters ->
  ?progress:Obs.Progress.t ->
  ?carries_warm:('region -> bool) ->
  ('region, 'sol) oracle ->
  ('region, 'sol) Checkpoint.state ->
  'sol result
(** Continue a search from a {!Checkpoint} snapshot: the saved frontier
    is re-queued at its certified keys (without re-bounding), the
    incumbent, node count, statistics and elapsed wall-clock time are
    restored, so [max_nodes] and [time_limit] budget the {e whole}
    search across restarts.  A sequential ([domains = 1]) search killed
    at any point and resumed reaches the same incumbent cost as the
    uninterrupted run (verified by property tests).  The caller is
    responsible for loading the state with a fingerprint check
    ({!Checkpoint.load}). *)

val minimize_parallel :
  ?params:params ->
  domains:int ->
  ('region, 'sol) oracle ->
  'region ->
  'sol result
(** [minimize] with [params.domains] overridden by [domains]. *)
