open Linalg

type problem = { p : Mat.t; q : Vec.t; a : Mat.t; l : Vec.t; u : Vec.t }

let problem ?p ?q ~a ~l ~u () =
  let m, n = Mat.dims a in
  if m = 0 || n = 0 then invalid_arg "Admm_qp.problem: empty constraint matrix";
  let p = match p with Some p -> p | None -> Mat.zeros n n in
  let q = match q with Some q -> q | None -> Vec.zeros n in
  if Mat.dims p <> (n, n) then invalid_arg "Admm_qp.problem: P must be n x n";
  if not (Mat.is_symmetric ~tol:1e-8 p) then
    invalid_arg "Admm_qp.problem: P must be symmetric";
  if Vec.dim q <> n then invalid_arg "Admm_qp.problem: q dimension";
  if Vec.dim l <> m || Vec.dim u <> m then
    invalid_arg "Admm_qp.problem: bound dimensions";
  Array.iteri
    (fun i li ->
      if li > u.(i) then invalid_arg "Admm_qp.problem: l > u")
    l;
  { p = Mat.symmetrize p; q = Vec.copy q; a = Mat.copy a; l = Vec.copy l;
    u = Vec.copy u }

let box_problem ?p ?q ~lo ~hi () =
  problem ?p ?q ~a:(Mat.identity (Vec.dim lo)) ~l:lo ~u:hi ()

type params = {
  rho : float;
  sigma : float;
  alpha : float;
  eps_abs : float;
  eps_rel : float;
  max_iter : int;
}

let default_params =
  { rho = 1.0; sigma = 1e-6; alpha = 1.6; eps_abs = 1e-8; eps_rel = 1e-8;
    max_iter = 20_000 }

type status = Solved | Max_iterations

type solution = {
  x : Vec.t;
  objective : float;
  iterations : int;
  primal_residual : float;
  dual_residual : float;
  status : status;
}

let clamp l u v = Array.mapi (fun i x -> Float.max l.(i) (Float.min u.(i) x)) v

let solve ?(params = default_params) pb =
  let { rho; sigma; alpha; eps_abs; eps_rel; max_iter } = params in
  let n = Mat.cols pb.a and m = Mat.rows pb.a in
  (* KKT matrix P + sigma I + rho AᵀA, factored once. *)
  let ata = Mat.mul (Mat.transpose pb.a) pb.a in
  let kkt =
    Mat.add_scaled_identity sigma (Mat.add pb.p (Mat.scale rho ata))
  in
  let factor, _ = Cholesky.factor_jittered kkt in
  let x = ref (Vec.zeros n) in
  let z = ref (clamp pb.l pb.u (Vec.zeros m)) in
  let y = ref (Vec.zeros m) in
  let iterations = ref 0 in
  let primal_res = ref Float.infinity in
  let dual_res = ref Float.infinity in
  let status = ref Max_iterations in
  (try
     for it = 1 to max_iter do
       iterations := it;
       (* x-update *)
       let rhs =
         Vec.add
           (Vec.sub (Vec.scale sigma !x) pb.q)
           (Mat.tmul_vec pb.a (Vec.sub (Vec.scale rho !z) !y))
       in
       let x_tilde = Cholesky.solve_factored factor rhs in
       let ax_tilde = Mat.mul_vec pb.a x_tilde in
       (* over-relaxation on the constraint image *)
       let ax_rel =
         Vec.add (Vec.scale alpha ax_tilde) (Vec.scale (1.0 -. alpha) !z)
       in
       let z_next = clamp pb.l pb.u (Vec.add ax_rel (Vec.scale (1.0 /. rho) !y)) in
       let y_next = Vec.add !y (Vec.scale rho (Vec.sub ax_rel z_next)) in
       let z_prev = !z in
       x := x_tilde;
       z := z_next;
       y := y_next;
       (* residuals *)
       let ax = Mat.mul_vec pb.a !x in
       primal_res := Vec.norm_inf (Vec.sub ax !z);
       dual_res :=
         Vec.norm_inf
           (Mat.tmul_vec pb.a (Vec.scale rho (Vec.sub !z z_prev)));
       let eps_pri =
         eps_abs +. (eps_rel *. Float.max (Vec.norm_inf ax) (Vec.norm_inf !z))
       in
       let eps_dua =
         eps_abs
         +. eps_rel
            *. Vec.norm_inf (Vec.add (Mat.mul_vec pb.p !x) pb.q)
       in
       if !primal_res <= eps_pri && !dual_res <= eps_dua then begin
         status := Solved;
         raise Exit
       end
     done
   with Exit -> ());
  {
    x = !x;
    objective = (0.5 *. Mat.quadratic_form pb.p !x) +. Vec.dot pb.q !x;
    iterations = !iterations;
    primal_residual = !primal_res;
    dual_residual = !dual_res;
    status = !status;
  }
