(** Domain-safe best-first work pool for the parallel branch-and-bound
    driver.

    A mutex-protected min-heap of keyed work items plus the bookkeeping
    the B&B termination rules need: which items are currently being
    processed (in flight) and at what keys, whether the pool has been
    drained (nothing queued, nothing in flight), and a cooperative
    shutdown flag.

    Locking discipline: every operation below except {!locked} must be
    called while holding the pool lock, i.e. from inside the callback of
    {!locked}.  The lock is not reentrant — do not nest {!locked}
    calls. *)

type 'a t

val create : workers:int -> 'a t
(** A pool serving [workers] worker slots (ids [0 .. workers-1]). *)

val locked : 'a t -> (unit -> 'b) -> 'b
(** [locked t f] runs [f ()] holding the pool lock, releasing it on
    return or exception. *)

val push : 'a t -> float -> 'a -> unit
(** Queue an item and wake waiting workers.  Requires the lock. *)

val take : 'a t -> worker:int -> (float * 'a) option
(** Pop the minimum-key item and mark it in flight on [worker]; [None]
    when the queue is empty (work may still be in flight elsewhere).
    Each worker may hold at most one item at a time.  Requires the
    lock. *)

val release : 'a t -> worker:int -> unit
(** Mark [worker]'s in-flight item finished and wake waiting workers
    (its children, if any, must have been {!push}ed first).  Requires
    the lock. *)

val wait : 'a t -> unit
(** Block until the pool state changes (push / release / close).
    Re-check conditions on wake-up: wake-ups can be spurious.  Counts
    one idle wake-up.  Requires the lock (released while blocked). *)

val close : 'a t -> unit
(** Initiate shutdown and wake everyone.  Requires the lock. *)

val is_closed : 'a t -> bool

val drained : 'a t -> bool
(** Nothing queued and nothing in flight: the search space is
    exhausted.  Requires the lock. *)

val queue_is_empty : 'a t -> bool
val queue_length : 'a t -> int

val min_queue_key : 'a t -> float
(** [infinity] when empty.  Requires the lock. *)

val frontier_bound : 'a t -> float
(** Minimum key over queued {e and} in-flight items — the certified
    global lower bound of the live frontier; [infinity] when drained.
    Requires the lock. *)

val snapshot : 'a t -> (float * 'a) list
(** Every live item with its key: queued {e and} in-flight.  This is the
    full frontier a checkpoint must persist — losing an in-flight region
    would silently discard its whole unexplored subtree on resume.
    Sound to serialise under the lock provided oracles never mutate a
    region after it has been pushed (the B&B contract: [bound] may
    mutate the region it is bounding, [branch] must not mutate the
    region it splits).  Requires the lock. *)

val in_flight : 'a t -> int

val prune : 'a t -> (float -> 'a -> bool) -> unit
(** Drop queued items not satisfying the predicate (in-flight items are
    unaffected).  Requires the lock. *)

val idle_wakeups : 'a t -> int
(** Number of times a worker went idle waiting for work — the
    contention/starvation observability counter.  Requires the lock. *)
