(** Atomic on-disk snapshots of a branch-and-bound search.

    A checkpoint captures everything the driver needs to restart a
    search where it left off: the live frontier (queued {e and}
    in-flight regions, each with its certified lower-bound key), the
    incumbent, the node count, the statistics counters and a caller
    fingerprint binding the file to one specific problem instance.

    {2 File format and atomicity}

    A checkpoint file is a text header followed by a [Marshal] blob:

    {v ldafp-bnb-checkpoint v1
       <fingerprint>
       <marshalled state> v}

    The header is validated {e before} anything is unmarshalled, so a
    garbage file or a checkpoint from a different problem fails with
    {!Corrupt} instead of undefined behaviour.  [save] writes to
    [path ^ ".tmp"], flushes and fsyncs, then [Sys.rename]s over the
    target — on POSIX filesystems the checkpoint at [path] is therefore
    always either the complete previous snapshot or the complete new
    one, never a torn write, even if the process is killed mid-save.

    Regions and solutions are serialised with [Marshal]; they must not
    contain closures (the search regions of the LDA-FP solver are plain
    records of floats and arrays). *)

exception Corrupt of string
(** Missing file, bad magic, version mismatch, fingerprint mismatch, or
    truncated payload. *)

type ('region, 'sol) state = {
  fingerprint : string;
      (** problem identity; {!load} rejects the file when it does not
          match the expectation *)
  frontier : (float * 'region) array;
      (** live regions keyed by certified lower bound — every region
          that was queued or in flight at snapshot time *)
  incumbent : ('sol * float) option;
  nodes_explored : int;
  counters : (string * int) list;
      (** statistics snapshot keyed by counter name (schema-agnostic so
          old checkpoints survive new counters) *)
  elapsed : float;  (** wall-clock seconds consumed before the snapshot *)
}

val counter : ('region, 'sol) state -> string -> int
(** Named counter from the snapshot; 0 when absent. *)

val has_counter : ('region, 'sol) state -> string -> bool
(** Whether the snapshot actually recorded the named counter.  {!counter}
    deliberately degrades missing keys to 0 so old snapshots resume; this
    is how a consumer tells "recorded as zero" from "written before the
    counter existed" — silently merging the latter skews any rate
    computed across the resume (see the [counters_reset] marker in
    {!Bnb.stats}). *)

val save : path:string -> ('region, 'sol) state -> unit
(** Atomically (tmp + fsync + rename) persist the state.
    @raise Sys_error on I/O failure. *)

val load : ?expect_fingerprint:string -> path:string -> unit ->
  ('region, 'sol) state
(** Read a checkpoint back.  The caller is responsible for instantiating
    ['region]/['sol] at the same types that were saved — the
    [fingerprint] check is the guard rail for that.
    @raise Corrupt on any validation failure. *)
