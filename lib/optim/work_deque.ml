(* Sharded work-stealing scheduler for the parallel branch-and-bound
   driver.  Each worker owns a shard: a private best-first heap plus a
   single in-flight slot, both guarded by a per-shard lock.  A worker
   whose own heap runs dry steals the best half of a victim's heap
   instead of blocking on a central queue, so in steady state queue
   operations touch only worker-local state and no lock is contended.

   Lock ordering (deadlock-freedom): whenever two shard locks are held
   at once — stealing and whole-frontier snapshots — they are taken in
   ascending shard-index order.  The park lock is never held while
   acquiring a shard lock, and shard locks are never held while
   acquiring the park lock beyond the leaf signal in [push] (which takes
   the park lock *after* releasing the shard lock, see below).

   Mirrors: each shard keeps its minimum live key and queue length in
   [Atomic.t] mirrors.  Readers (the gap test, victim selection, the
   park re-check) read the mirrors without locks.  Publication is
   batched: a full (exact) publish happens only every [publish_epoch]
   mutations, on steal boundaries, and on quiescence-relevant
   transitions — not on every push/pop — so the hot path pays at most
   one cheap conditional atomic store per operation instead of two
   unconditional ones.  Batching is safe because staleness is one-sided
   where it matters:

   - the bound mirror may only ever be stale LOW.  A push whose key
     undercuts the mirror lowers it immediately (stale-high would let
     the gap test overshoot the true minimum — unsound); pops and
     releases raise the true minimum and are allowed to leave the
     mirror behind (stale-low merely delays a Gap_reached by at most
     one epoch — conservative).  The steal protocol additionally
     publishes the thief's mirror (which can only lower the global
     minimum) before the victim's (which may raise it), so the
     mirror-derived frontier bound never overshoots mid-transfer.
   - the length mirror may only read zero when the queue is truly
     empty.  A push onto a shard whose length mirror reads zero
     publishes the length immediately (a parker or thief must be able
     to see the work — liveness); pops leave it stale HIGH, which
     costs at most one wasted steal attempt that then publishes the
     exact value under the victim's lock. *)

(* Exact mirror publications are amortized over this many shard
   mutations.  Small enough that a stale-low bound delays the gap test
   by a handful of nodes at worst; large enough that the per-node
   mirror cost disappears from profiles. *)
let publish_epoch = 32

(* Scheduler metrics, registered eagerly at module init; recording is
   guarded by [Obs.Metrics.enabled] at every site (see Obs).  Glossary:
   doc/observability.mld. *)
let m_steal_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"successful steal-half transfers between shards"
    "ldafp_sched_steal_total"

let m_steal_miss_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"steal scans that found every sibling shard empty"
    "ldafp_sched_steal_miss_total"

let m_park_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"times a worker parked on its idle condvar"
    "ldafp_sched_park_total"

let m_targeted_wakeup_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"pushes that woke exactly one parked worker (targeted signal)"
    "ldafp_sched_targeted_wakeup_total"

let m_steal_seconds =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-8 ~hi:1.0
    ~help:"wall time of a successful steal (victim scan to acquisition)"
    "ldafp_sched_steal_seconds"

let m_queue_depth =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1.0 ~hi:1e6
    ~help:"owner-shard queue length sampled after each push"
    "ldafp_sched_queue_depth"

let m_frontier_size =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:
      "queued regions across all shards, republished on every exact \
       mirror publication (epoch-batched; approximate between epochs)"
    "ldafp_bnb_frontier_size"

type 'a shard = {
  lock : Mutex.t;
  queue : 'a Pqueue.t;
  mutable busy : (float * 'a) option;
      (* The owner's in-flight item and its key; None when idle.  The
         item itself is kept (not just the key) so checkpoints can
         snapshot the full live frontier. *)
  bound_mirror : float Atomic.t;
      (* min(queue min key, busy key) at the last publish; never above
         the true value (see the staleness argument above);
         +infinity when the shard holds no live work. *)
  len_mirror : int Atomic.t;
      (* queue length at the last publish, for victim selection and the
         park re-check; reads zero only when the queue is truly empty *)
  mutable dirty : int;
      (* mutations since the last exact publish, under the shard lock *)
}

type 'a t = {
  shards : 'a shard array;
  live : int Atomic.t;
      (* Queued + in-flight items across all shards.  Children are
         pushed (incrementing) before their parent is released
         (decrementing), so [live] can only reach 0 when the search
         space is genuinely exhausted. *)
  closed : bool Atomic.t;
  idlers : int Atomic.t;  (* workers inside [park], under park_lock *)
  park_lock : Mutex.t;
  park_conds : Condition.t array;
      (* One condvar per worker: a pusher wakes exactly the worker it
         pops off [idler_stack], never the whole herd. *)
  mutable idler_stack : int list;
      (* Parked worker ids, most recently parked first, under
         [park_lock].  LIFO so the wakened worker has the warmest
         cache. *)
  idle_wakeups : int Atomic.t;
  targeted_wakeups : int Atomic.t array;
      (* targeted_wakeups.(w): times worker [w] was woken by a targeted
         signal (indexed by the woken worker, not the signaller) *)
  steals : int Atomic.t;
  stolen : int Atomic.t;
  steals_best : int Atomic.t array;
      (* steals_best.(thief): successful steals whose victim held the
         globally minimal mirrored bound at selection time — the
         victim-quality counter *)
  carries_warm : ('a -> bool) option;
      (* Caller's predicate for "this item migrates with usable warm-
         start state"; counted per stolen item so the migration claim is
         measured, not assumed. *)
  stolen_warm : int Atomic.t;
}

let create ?carries_warm ~workers () =
  if workers < 1 then invalid_arg "Work_deque.create: workers < 1";
  {
    shards =
      Array.init workers (fun _ ->
          {
            lock = Mutex.create ();
            queue = Pqueue.create ();
            busy = None;
            bound_mirror = Atomic.make Float.infinity;
            len_mirror = Atomic.make 0;
            dirty = 0;
          });
    live = Atomic.make 0;
    closed = Atomic.make false;
    idlers = Atomic.make 0;
    park_lock = Mutex.create ();
    park_conds = Array.init workers (fun _ -> Condition.create ());
    idler_stack = [];
    idle_wakeups = Atomic.make 0;
    targeted_wakeups = Array.init workers (fun _ -> Atomic.make 0);
    steals = Atomic.make 0;
    stolen = Atomic.make 0;
    steals_best = Array.init workers (fun _ -> Atomic.make 0);
    carries_warm;
    stolen_warm = Atomic.make 0;
  }

let workers t = Array.length t.shards

(* Exact mirror publication.  Must hold [s.lock].  The frontier-size
   gauge rides the same epoch batching: summing the length mirrors is
   [workers] atomic loads, paid only on exact publishes — never on the
   per-push/pop hot path — and nothing at all when metrics are off. *)
let publish_mirrors t s =
  let b =
    match s.busy with
    | Some (k, _) -> Float.min k (Pqueue.min_key s.queue)
    | None -> Pqueue.min_key s.queue
  in
  Atomic.set s.bound_mirror b;
  Atomic.set s.len_mirror (Pqueue.length s.queue);
  s.dirty <- 0;
  if Obs.Metrics.enabled () then begin
    let total =
      Array.fold_left
        (fun acc sh -> acc + Atomic.get sh.len_mirror)
        0 t.shards
    in
    Obs.Metrics.set m_frontier_size (float_of_int total)
  end

(* Count one mutation against the publish epoch.  Must hold [s.lock]. *)
let note_mutation t s =
  s.dirty <- s.dirty + 1;
  if s.dirty >= publish_epoch then publish_mirrors t s

(* Wake exactly one parked worker iff anyone is parked.  [idlers] is
   only incremented under the park lock, and a parker re-checks the
   length mirrors after incrementing it (before waiting), so this
   read-then-signal cannot lose a wakeup: either the pusher sees
   idlers > 0 and signals, or the parker's re-check sees the pusher's
   len_mirror update (both are SC atomics) and never waits.  The signal
   is targeted: the pusher pops one worker id off the idler stack and
   signals only that worker's condvar, so a push never stampedes the
   whole parked herd into a steal race it mostly loses. *)
let signal_work t =
  if Atomic.get t.idlers > 0 then begin
    Mutex.lock t.park_lock;
    (match t.idler_stack with
    | [] -> ()
    | w :: rest ->
        t.idler_stack <- rest;
        Atomic.incr t.targeted_wakeups.(w);
        if Obs.Metrics.enabled () then
          Obs.Metrics.incr m_targeted_wakeup_total;
        Condition.signal t.park_conds.(w));
    Mutex.unlock t.park_lock
  end

let push t ~worker key value =
  let s = t.shards.(worker) in
  Mutex.lock s.lock;
  Pqueue.push s.queue key value;
  Atomic.incr t.live;
  (* Soundness: a key below the published bound must be visible to the
     gap test immediately — the mirror may be stale low, never high. *)
  if key < Atomic.get s.bound_mirror then Atomic.set s.bound_mirror key;
  (* Liveness: work arriving on a shard whose length mirror reads zero
     must become visible to thieves and the park re-check now, or a
     targeted wakeup could be lost. *)
  if Atomic.get s.len_mirror = 0 then
    Atomic.set s.len_mirror (Pqueue.length s.queue);
  note_mutation t s;
  Mutex.unlock s.lock;
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe m_queue_depth (float_of_int (Atomic.get s.len_mirror));
  signal_work t

let take t ~worker =
  let s = t.shards.(worker) in
  Mutex.lock s.lock;
  let r =
    match Pqueue.pop s.queue with
    | None ->
        (* The owner found its shard dry: publish exactly so its own
           stale-high length mirror cannot keep [park] spinning on a
           shard only this worker could have drained. *)
        publish_mirrors t s;
        None
    | Some (key, value) ->
        (* Queue -> busy slot: the item stays live, [t.live] unchanged,
           and the bound mirror still covers the key via [busy]. *)
        s.busy <- Some (key, value);
        note_mutation t s;
        Some (key, value)
  in
  Mutex.unlock s.lock;
  r

let release t ~worker =
  let s = t.shards.(worker) in
  Mutex.lock s.lock;
  s.busy <- None;
  Atomic.decr t.live;
  (* Releasing can only raise the true minimum: leaving the bound
     mirror stale low is conservative and costs nothing sound. *)
  note_mutation t s;
  Mutex.unlock s.lock
(* No signal here: the releasing worker is awake and will either find
   work (its children were pushed before this release, each signalling
   if needed) or detect the drain itself in [park]. *)

(* Lock [a] and [b] in ascending shard-index order.  [a] != [b]. *)
let lock_pair t ia ib =
  let lo, hi = if ia < ib then (ia, ib) else (ib, ia) in
  Mutex.lock t.shards.(lo).lock;
  Mutex.lock t.shards.(hi).lock

let unlock_pair t ia ib =
  Mutex.unlock t.shards.(ia).lock;
  Mutex.unlock t.shards.(ib).lock

(* Victim selection is by mirrored bound quality, not scan order: among
   the shards whose length mirror shows queued work, steal from the one
   advertising the most promising (lowest) bound — that is where the
   best-first frontier actually lives.  A miss (stale length mirror)
   publishes the victim's true state under its lock and falls back to
   the next-best candidate, so a stale mirror costs one extra scan, not
   a lost steal. *)
let try_steal t ~thief =
  let n = Array.length t.shards in
  let mine = t.shards.(thief) in
  (* Unconditional clock read: ~20 ns against a lock handoff; keeping
     the scan free of enabled-checks keeps the steal latency honest. *)
  let t0 = Obs.Clock.now_ns () in
  let tried = Array.make n false in
  tried.(thief) <- true;
  let pick () =
    let best = ref (-1) and best_b = ref Float.infinity in
    for v = 0 to n - 1 do
      if (not tried.(v)) && Atomic.get t.shards.(v).len_mirror > 0 then begin
        let b = Atomic.get t.shards.(v).bound_mirror in
        if !best < 0 || b < !best_b then begin
          best := v;
          best_b := b
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  let rec attempt ~first =
    match pick () with
    | None -> None
    | Some v ->
        tried.(v) <- true;
        let victim = t.shards.(v) in
        lock_pair t thief v;
        let moved = Pqueue.steal_half victim.queue mine.queue in
        let taken =
          if moved = 0 then None
          else begin
            Atomic.incr t.steals;
            ignore (Atomic.fetch_and_add t.stolen moved);
            (* The first candidate is the argmin of the mirrored bounds,
               i.e. the best victim the thief could have chosen given
               what the mirrors advertised. *)
            if first then Atomic.incr t.steals_best.(thief);
            (* The thief only steals when its own shard is dry, so right
               now [mine.queue] holds exactly the transferred items:
               count how many migrate with warm-start state attached. *)
            (match t.carries_warm with
            | Some pred ->
                let warm =
                  Pqueue.fold
                    (fun acc _ v -> if pred v then acc + 1 else acc)
                    0 mine.queue
                in
                if warm > 0 then
                  ignore (Atomic.fetch_and_add t.stolen_warm warm)
            | None -> ());
            (* The thief immediately claims its best stolen node, so a
               successful steal always yields work. *)
            match Pqueue.pop mine.queue with
            | Some (key, value) ->
                mine.busy <- Some (key, value);
                Some (key, value)
            | None -> assert false (* moved > 0 entries just arrived *)
          end
        in
        (* Publish the thief's mirror (can only lower the global min
           seen by readers) before the victim's (which raises it): at
           every instant the mirror-derived frontier bound stays <= the
           true minimum over live work.  Steal boundaries are also
           where batched staleness is flushed — both shards leave this
           section exact. *)
        publish_mirrors t mine;
        publish_mirrors t victim;
        unlock_pair t thief v;
        (match taken with
        | None -> attempt ~first:false
        | Some _ as some ->
            let dns = Obs.Clock.now_ns () - t0 in
            if Obs.Metrics.enabled () then begin
              Obs.Metrics.incr m_steal_total;
              Obs.Metrics.observe m_steal_seconds (float_of_int dns *. 1e-9)
            end;
            if Obs.Trace.enabled () then
              Obs.Trace.complete ~cat:"sched" "sched.steal" ~t0_ns:t0
                ~dur_ns:dns
                ~args:
                  [
                    ("thief", Obs.Trace.Int thief);
                    ("victim", Obs.Trace.Int v);
                    ("moved", Obs.Trace.Int moved);
                    ("best_victim", Obs.Trace.Int (if first then 1 else 0));
                  ];
            some)
  in
  let r = attempt ~first:true in
  (match r with
  | None ->
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_steal_miss_total;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"sched" "sched.steal_miss"
          ~args:[ ("thief", Obs.Trace.Int thief) ]
  | Some _ -> ());
  r

let prune t pred =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      let before = Pqueue.length s.queue in
      Pqueue.filter_in_place s.queue pred;
      let dropped = before - Pqueue.length s.queue in
      if dropped > 0 then ignore (Atomic.fetch_and_add t.live (-dropped));
      publish_mirrors t s;
      Mutex.unlock s.lock)
    t.shards

(* Bounded-memory frontier: shed the worst (largest-key) queued items
   of the caller's own shard down to [keep].  The shed nodes leave the
   live count (they will never be expanded), so the caller MUST fold
   the returned minimum shed key into its reported bound/gap — see
   {!Pqueue.drop_worst} — or the anytime result would silently claim
   optimality over subtrees that were thrown away. *)
let shed t ~worker ~keep =
  let s = t.shards.(worker) in
  Mutex.lock s.lock;
  let dropped, min_key = Pqueue.drop_worst s.queue ~keep in
  if dropped > 0 then ignore (Atomic.fetch_and_add t.live (-dropped));
  publish_mirrors t s;
  Mutex.unlock s.lock;
  if dropped > 0 then Some (dropped, min_key) else None

(* Whole-frontier snapshot: hold *all* shard locks (ascending index, so
   this composes with the thieves' ordered pair-locking) while
   collecting queued and in-flight items.  With every lock held no item
   can be mid-transfer, so the snapshot is lossless — an in-transit
   region dropped from a checkpoint would silently discard its whole
   unexplored subtree on resume. *)
let snapshot t =
  Array.iter (fun s -> Mutex.lock s.lock) t.shards;
  let acc =
    Array.fold_left
      (fun acc s ->
        let acc =
          match s.busy with Some item -> item :: acc | None -> acc
        in
        Pqueue.fold (fun acc key v -> (key, v) :: acc) acc s.queue)
      [] t.shards
  in
  Array.iter (fun s -> Mutex.unlock s.lock) t.shards;
  acc

(* Flush every shard's batched staleness: after this (and with no
   concurrent mutators) the mirrors are exact, not merely
   conservative.  The driver calls it once after the worker joins so
   the final reported bound/gap is the true frontier minimum instead
   of an up-to-one-epoch-stale value. *)
let sync_mirrors t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      publish_mirrors t s;
      Mutex.unlock s.lock)
    t.shards

let frontier_bound t =
  Array.fold_left
    (fun acc s -> Float.min acc (Atomic.get s.bound_mirror))
    Float.infinity t.shards

let live t = Atomic.get t.live
let drained t = Atomic.get t.live = 0

let queue_length t =
  Array.fold_left (fun acc s -> acc + Atomic.get s.len_mirror) 0 t.shards

let close t =
  Atomic.set t.closed true;
  Mutex.lock t.park_lock;
  (* Shutdown is the one broadcast left: every parked worker must see
     [closed], whichever condvar it waits on. *)
  Array.iter Condition.signal t.park_conds;
  Mutex.unlock t.park_lock

let is_closed t = Atomic.get t.closed

let park t ~worker =
  Mutex.lock t.park_lock;
  Atomic.incr t.idlers;
  let rec wait_loop () =
    if Atomic.get t.closed then `Closed
    else if Atomic.get t.live = 0 then `Drained
    else if
      (* Re-check under park_lock with idlers already published: any
         push after this scan sees idlers > 0 and signals.  The length
         mirror reads zero only when the queue is truly empty (see
         [push]), so a parker can never sleep through live work. *)
      Array.exists (fun s -> Atomic.get s.len_mirror > 0) t.shards
    then `Work
    else begin
      Atomic.incr t.idle_wakeups;
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_park_total;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"sched" "sched.park"
          ~args:[ ("worker", Obs.Trace.Int worker) ];
      t.idler_stack <- worker :: t.idler_stack;
      Condition.wait t.park_conds.(worker) t.park_lock;
      (* A close broadcast or a spurious wake can return with our stack
         entry still present; drop it so a later targeted signal is
         not spent on a worker that is already awake. *)
      t.idler_stack <- List.filter (fun w -> w <> worker) t.idler_stack;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"sched" "sched.wake"
          ~args:[ ("worker", Obs.Trace.Int worker) ];
      wait_loop ()
    end
  in
  let outcome = wait_loop () in
  if outcome = `Drained && Obs.Trace.enabled () then
    Obs.Trace.instant ~cat:"sched" "sched.drain";
  Atomic.decr t.idlers;
  Mutex.unlock t.park_lock;
  outcome

let idle_wakeups t = Atomic.get t.idle_wakeups
let targeted_wakeups t = Array.map Atomic.get t.targeted_wakeups
let steals t = Atomic.get t.steals
let stolen_nodes t = Atomic.get t.stolen
let steals_best_victim t = Array.map Atomic.get t.steals_best
let stolen_warm t = Atomic.get t.stolen_warm
