(** Convex quadratic programs with linear and second-order-cone
    constraints, solved by a log-barrier interior-point method.

    This is the engine behind the LDA-FP lower/upper bound estimation
    (paper eq. 25): each branch-and-bound box yields a problem

    {v minimize (1/2) xᵀP x + qᵀx
      s.t.  aᵢᵀx ≤ bᵢ                      (box, per-element overflow, t-range)
            ‖Lⱼx + gⱼ‖₂ ≤ cⱼᵀx + dⱼ       (projection overflow, eq. 20) v}

    with [P] positive semidefinite.  The barrier for a second-order cone is
    the standard self-concordant [−log((cᵀx+d)² − ‖Lx+g‖²)]. *)

type lin = { a : Linalg.Vec.t; b : float }
(** The half-space [aᵀx <= b]. *)

type soc = {
  l : Linalg.Mat.t;
  g : Linalg.Vec.t;
  c : Linalg.Vec.t;
  d : float;
}
(** The cone [‖l x + g‖₂ <= cᵀx + d]. *)

type problem = private {
  n : int;  (** number of variables *)
  p : Linalg.Mat.t;  (** quadratic term; symmetric PSD, [n × n] *)
  q : Linalg.Vec.t;
  lins : lin array;
  socs : soc array;
  obj_scale : float;
      (** the objective is [obj_scale · ((1/2)xᵀPx + qᵀx)]; lets callers
          share one [P] across a family of problems that differ only by a
          positive scalar (the per-node [1/η] of paper eq. 26) *)
}

val problem :
  ?p:Linalg.Mat.t ->
  ?q:Linalg.Vec.t ->
  ?lins:lin list ->
  ?socs:soc list ->
  int ->
  problem
(** [problem n] with omitted pieces defaulting to zero and
    [obj_scale = 1].  Copies and symmetrises [P].
    @raise Invalid_argument on any dimension mismatch. *)

val of_parts :
  ?obj_scale:float ->
  p:Linalg.Mat.t ->
  q:Linalg.Vec.t ->
  lins:lin array ->
  socs:soc array ->
  int ->
  problem
(** Allocation-lean constructor for callers assembling many problems from
    shared pieces (the branch-and-bound bound oracle): dimension-checks
    only, {b shares} the given arrays instead of copying, and trusts [p]
    to be symmetric.  Callers must not mutate the parts afterwards.
    @raise Invalid_argument on any dimension mismatch. *)

val with_objective_scale : problem -> float -> problem
(** O(1) copy with a different {!field-obj_scale}; constraints and [P]
    are shared.  This is how one relaxation template serves both the
    lower bound ([1/η]) and the upper estimate ([1/η_inf]). *)

val box_constraints : Linalg.Vec.t -> Linalg.Vec.t -> lin list
(** [box_constraints lo hi] is the [2n] half-spaces of [lo <= x <= hi]. *)

val objective_value : problem -> Linalg.Vec.t -> float

val max_violation : problem -> Linalg.Vec.t -> float
(** Largest constraint violation at a point ([<= 0] means feasible);
    for cones this is [‖Lx+g‖ − (cᵀx+d)]. *)

val is_feasible : ?tol:float -> problem -> Linalg.Vec.t -> bool
(** [max_violation <= tol] (default [1e-9]). *)

val is_strictly_interior : problem -> Linalg.Vec.t -> bool
(** Every half-space slack and every cone slack strictly positive (the
    barrier's domain), or [false] on a dimension mismatch.  Cheap —
    O(constraints · n), no derivatives — so warm starts can be tested on
    the hot path. *)

type params = {
  tau0 : float;  (** initial barrier weight on the objective *)
  mu : float;  (** barrier growth factor per outer iteration *)
  gap_tol : float;  (** stop when [ν/τ] (suboptimality bound) is below *)
  newton : Newton.params;
  max_outer : int;
  start_margin : float;
      (** starts violating constraints by at most this much are nudged
          into the interior (phase-I) instead of rejected *)
}

val default_params : params

val warm_start_params : ?levels:int -> params -> params
(** [tau0 ← tau0 · mu^levels] (default 5): the interior-point warm-start
    schedule advance.  Starting {!solve} from a point near the optimum —
    a parent node's relaxation optimum, a previous solve over the same
    constraints — makes the early low-[τ] centering steps redundant;
    skipping them changes neither the final [τ] the schedule reaches nor
    the certified [ν/τ] gap bound, only how many Newton iterations the
    path spends getting there.  From a badly-centered start the boosted
    solve is merely slower (damped Newton still converges), never less
    certified. *)

type status = Optimal | Suboptimal
(** [Suboptimal]: an outer-iteration limit, a stalled centering step, or
    a diverged (NaN) Newton solve; the returned point is feasible but
    the gap bound may exceed [gap_tol]. *)

type solution = {
  x : Linalg.Vec.t;
  objective : float;
  gap_bound : float;  (** certified bound on suboptimality, [ν/τ] *)
  outer_iterations : int;
  newton_iterations : int;
  status : status;
}

val solve :
  ?params:params ->
  ?certificate:Linalg.Vec.t ->
  problem ->
  start:Linalg.Vec.t ->
  solution
(** Path-following from a strictly feasible [start].  A start that is
    feasible only up to roundoff — violating no constraint by more than
    [params.start_margin] — is repaired before the barrier loop runs:

    - with [?certificate] (a point the caller knows to be strictly
      interior, e.g. a phase-I output or a previous barrier solution for
      the same constraints), the start is blended toward the certificate
      until strictly interior — no phase-I solve, so warm starts clipped
      to a box boundary do not silently pay the cold cost;
    - otherwise it is nudged into the interior via
      {!find_strictly_feasible} (a full phase-I solve).

    An invalid certificate (wrong dimension or not interior) is ignored.
    [start] is never mutated and no longer copied up front.
    @raise Invalid_argument if [start] violates a constraint by more
    than [params.start_margin], or the phase-I nudge fails. *)

type feasibility =
  | Strictly_feasible of Linalg.Vec.t
  | Infeasible of float  (** certified positive lower bound on violation *)
  | Unknown of Linalg.Vec.t  (** best point found; violation within noise *)

val find_strictly_feasible :
  ?params:params -> ?margin:float -> problem -> start:Linalg.Vec.t -> feasibility
(** Phase-I: minimise the auxiliary slack [s] with every constraint relaxed
    by [s], from an arbitrary [start].  Succeeds as soon as an iterate has
    [max_violation <= -margin] (default [1e-9]). *)

val solve_auto : ?params:params -> problem -> start:Linalg.Vec.t -> solution option
(** Phase-I then phase-II; [None] when phase-I proves or suspects
    infeasibility. [start] need not be feasible. *)

(**/**)

val centering_oracle_for_tests : problem -> float -> Newton.oracle
(** The centering objective [τ·f + barrier] — exposed so the test suite
    can finite-difference the hand-derived cone calculus. Not part of the
    stable API. *)
