(** Convex quadratic programs with linear and second-order-cone
    constraints, solved by a log-barrier interior-point method.

    This is the engine behind the LDA-FP lower/upper bound estimation
    (paper eq. 25): each branch-and-bound box yields a problem

    {v minimize (1/2) xᵀP x + qᵀx
      s.t.  aᵢᵀx ≤ bᵢ                      (box, per-element overflow, t-range)
            ‖Lⱼx + gⱼ‖₂ ≤ cⱼᵀx + dⱼ       (projection overflow, eq. 20) v}

    with [P] positive semidefinite.  The barrier for a second-order cone is
    the standard self-concordant [−log((cᵀx+d)² − ‖Lx+g‖²)]. *)

type lin = { a : Linalg.Vec.t; b : float }
(** The half-space [aᵀx <= b]. *)

type soc = {
  l : Linalg.Mat.t;
  g : Linalg.Vec.t;
  c : Linalg.Vec.t;
  d : float;
}
(** The cone [‖l x + g‖₂ <= cᵀx + d]. *)

type problem = private {
  n : int;  (** number of variables *)
  p : Linalg.Mat.t;  (** quadratic term; symmetric PSD, [n × n] *)
  q : Linalg.Vec.t;
  lins : lin array;
  socs : soc array;
  obj_scale : float;
      (** the objective is [obj_scale · ((1/2)xᵀPx + qᵀx)]; lets callers
          share one [P] across a family of problems that differ only by a
          positive scalar (the per-node [1/η] of paper eq. 26) *)
}

val problem :
  ?p:Linalg.Mat.t ->
  ?q:Linalg.Vec.t ->
  ?lins:lin list ->
  ?socs:soc list ->
  int ->
  problem
(** [problem n] with omitted pieces defaulting to zero and
    [obj_scale = 1].  Copies and symmetrises [P].
    @raise Invalid_argument on any dimension mismatch. *)

val of_parts :
  ?obj_scale:float ->
  p:Linalg.Mat.t ->
  q:Linalg.Vec.t ->
  lins:lin array ->
  socs:soc array ->
  int ->
  problem
(** Allocation-lean constructor for callers assembling many problems from
    shared pieces (the branch-and-bound bound oracle): dimension-checks
    only, {b shares} the given arrays instead of copying, and trusts [p]
    to be symmetric.  Callers must not mutate the parts afterwards.
    @raise Invalid_argument on any dimension mismatch. *)

val with_objective_scale : problem -> float -> problem
(** O(1) copy with a different {!field-obj_scale}; constraints and [P]
    are shared.  This is how one relaxation template serves both the
    lower bound ([1/η]) and the upper estimate ([1/η_inf]). *)

val box_constraints : Linalg.Vec.t -> Linalg.Vec.t -> lin list
(** [box_constraints lo hi] is the [2n] half-spaces of [lo <= x <= hi]. *)

(** {2 Variable fixing}

    A problem whose constraints pin a coordinate exactly (the
    [x_j <= c, -x_j <= -c] pair a branch-and-bound box split produces
    once a dimension narrows to a singleton) has an {e empty} strict
    interior: the log barrier cannot run and no warm start — repaired or
    not — can ever pass the interiority test.  {!restrict} eliminates
    such coordinates by exact substitution, restoring a nonempty strict
    interior over the free ones. *)

type restriction = private {
  full_n : int;
  free : int array;  (** reduced index → full index, ascending *)
  pinned : Linalg.Vec.t;  (** full-dimensional; free entries are 0 *)
  reduced : problem;  (** over the free coordinates only *)
  obj_const : float;
      (** unscaled objective offset of the substitution — see
          {!restriction_objective_const} *)
}

val restrict : problem -> fixed:(int * float) array -> restriction option
(** Substitute [x_j = value] for every [(j, value)] in [fixed] — exactly,
    so the reduced optimum embeds back ({!restriction_embed}) to the
    full-space optimum of the pinned slice with the same certified gap.
    Constraints left without any free variable become constants: the
    satisfied ones (a pinned pair's own half-spaces, slack exactly 0)
    are dropped, and one that is violated makes the slice empty —
    [None], which the caller should treat as region infeasibility.
    @raise Invalid_argument when [fixed] is empty, fixes every variable,
    or indexes out of range. *)

val restriction_embed : restriction -> Linalg.Vec.t -> Linalg.Vec.t
(** Reduced-space point → full-space point (free coordinates from the
    argument, pinned ones from the restriction).  Fresh vector. *)

val restriction_project : restriction -> Linalg.Vec.t -> Linalg.Vec.t
(** Full-space point → its free coordinates.  Projection then embedding
    is the identity on the pinned slice. *)

val restriction_objective_const : restriction -> float
(** The scaled objective offset: [objective_value reduced y +
    restriction_objective_const r] equals [objective_value full (embed
    r y)].  Tracks [reduced]'s current {!field-obj_scale}. *)

val objective_value : problem -> Linalg.Vec.t -> float

val max_violation : problem -> Linalg.Vec.t -> float
(** Largest constraint violation at a point ([<= 0] means feasible);
    for cones this is [‖Lx+g‖ − (cᵀx+d)]. *)

val is_feasible : ?tol:float -> problem -> Linalg.Vec.t -> bool
(** [max_violation <= tol] (default [1e-9]). *)

val min_relative_slack : problem -> Linalg.Vec.t -> float
(** The smallest relative constraint slack at a point: over half-spaces,
    [(b − aᵀx) / (1 + |b| + |aᵀx|)]; over cones, the
    [σ = (cᵀx+d) − ‖Lx+g‖] slack divided by [1 + |cᵀx+d| + ‖Lx+g‖]
    (computed roundoff-consistently with the barrier's own domain test).
    Positive iff strictly interior; the margin {!is_strictly_interior}
    compares against.  Exposed for tests and diagnostics. *)

val is_strictly_interior : ?margin:float -> problem -> Linalg.Vec.t -> bool
(** Every half-space slack and every cone slack strictly positive (the
    barrier's domain), or [false] on a dimension mismatch.  Cheap —
    O(constraints · n), no derivatives — so warm starts can be tested on
    the hot path.  [margin] (default [0.]) is {e relative}: each
    constraint must clear [margin × (1 + |b| + |aᵀx|)] (half-spaces)
    resp. [margin × (1 + |cᵀx+d| + ‖Lx+g‖)] (cones, in the
    [σ = (cᵀx+d) − ‖Lx+g‖] slack form), so the verdict is invariant
    under rescaling the constraint coefficients — an absolute tolerance
    here silently rejected valid warm starts on large-coefficient
    relaxations. *)

type params = {
  tau0 : float;  (** initial barrier weight on the objective *)
  mu : float;  (** barrier growth factor per outer iteration *)
  gap_tol : float;  (** stop when [ν/τ] (suboptimality bound) is below *)
  newton : Newton.params;
  max_outer : int;
  start_margin : float;
      (** starts violating each constraint by at most this fraction of
          its residual scale (see {!is_strictly_interior}) are nudged
          into the interior (phase-I) instead of rejected *)
}

val default_params : params

val warm_start_params : ?levels:int -> params -> params
(** [tau0 ← tau0 · mu^levels] (default 5): the interior-point warm-start
    schedule advance.  Starting {!solve} from a point near the optimum —
    a parent node's relaxation optimum, a previous solve over the same
    constraints — makes the early low-[τ] centering steps redundant;
    skipping them changes neither the final [τ] the schedule reaches nor
    the certified [ν/τ] gap bound, only how many Newton iterations the
    path spends getting there.  From a badly-centered start the boosted
    solve is merely slower (damped Newton still converges), never less
    certified. *)

val restart_levels : ?back:int -> params -> tau_final:float -> int
(** The [levels] to hand {!warm_start_params} when the warm point comes
    from a solve that terminated at barrier weight [tau_final] (its
    {!solution.tau_final}): the largest whole number of rungs the
    ladder can skip while still running at least [back] (default 1,
    clamped >= 1) centering rungs below the producing solve's terminal
    tau.  Integer rungs of the same geometric ladder, so the terminal
    tau — and the certified gap — is exactly what a cold solve reaches;
    a start that skipped {e too} far would run zero centering steps and
    return the parent's point unrefined, which the clamp rules out.
    Callers pass a larger [back] for starts that were repaired
    ({!prepare_warm_start}) rather than inherited verbatim.  0 when
    [tau_final] is not finite (no ladder ran) or does not exceed
    [tau0]. *)

(** {2 Warm-start interiority repair}

    A parent optimum clipped into a child's box almost always lands
    {e on} the child's new half-space boundary (the branch cut passes
    through it), so the plain interiority test rejects it and the solve
    pays a full phase-I.  These helpers repair such a start instead —
    the decision tree is {!prepare_warm_start}; taxonomy and measurement
    guide in {!page-solver}. *)

val pull_to_interior :
  ?margin:float ->
  problem ->
  target:Linalg.Vec.t ->
  Linalg.Vec.t ->
  Linalg.Vec.t option
(** Blend [x] toward [target] by the smallest α ∈ [0, 1] such that every
    constraint clears [margin] (default [1e-8]) × its residual scale —
    certified, not searched: half-space slacks are affine in α and cone
    slacks [σ = u − ‖v‖] are concave (affine minus convex), so the
    chord bound [(1−α)σ(x) + ασ(target)] under-estimates the true slack
    and the per-constraint safe α is closed-form.  [None] when [target]
    itself does not clear the margin (it must be strictly interior with
    room to spare) or the blend fails the final rounding re-check.  The
    result is within the segment [x]–[target], so any convex constraint
    set containing both contains it. *)

val correct_to_interior :
  ?params:params -> ?margin:float -> problem -> Linalg.Vec.t -> Linalg.Vec.t option
(** One-step infeasible-start Newton correction: relax every constraint
    offset by the smallest absolute δ that makes [x] clear
    [margin × scale] on the relaxed problem, take a single damped
    Newton step ({!Newton.step_into}, in the per-domain scratch — O(1)
    heap allocation beyond the returned vector) on the relaxed pure
    barrier (τ = 0, so the step aims at the relaxed analytic center,
    i.e. straight inward), and return the result iff it is strictly
    interior to the {e true} constraints.  The backstop of
    {!prepare_warm_start} when no pull-in target is available or the
    pull failed; [None] sends the caller to phase-I. *)

type warm_prep =
  | Warm_interior  (** accepted as-is: already margin-interior *)
  | Warm_pulled  (** repaired by {!pull_to_interior} *)
  | Warm_corrected  (** repaired by {!correct_to_interior} *)

val prepare_warm_start :
  ?params:params ->
  ?margin:float ->
  ?target:Linalg.Vec.t ->
  problem ->
  Linalg.Vec.t ->
  (Linalg.Vec.t * warm_prep) option
(** The warm-start decision tree: [x] if it is already certifiably
    interior ([margin] relative, default [1e-8]); else the
    analytic-center pull-in toward [?target]; else the one-step Newton
    correction; else [None] — solve cold.  The returned point is safe to
    pass to {!solve} as [start] with a {!warm_start_params} schedule
    advance ({!restart_levels}); callers should budget more [back]
    rungs for [Warm_pulled] / [Warm_corrected] starts, which moved away
    from the parent optimum.  Emits the [socp.warm_pull] /
    [socp.warm_correct] trace instants and bumps the matching metrics
    counters when repair runs. *)

type status = Optimal | Suboptimal
(** [Suboptimal]: an outer-iteration limit, a stalled centering step, or
    a diverged (NaN) Newton solve; the returned point is feasible but
    the gap bound may exceed [gap_tol]. *)

type solution = {
  x : Linalg.Vec.t;
  objective : float;
  gap_bound : float;  (** certified bound on suboptimality, [ν/τ] *)
  tau_final : float;
      (** the barrier weight the point was last centered at, so
          [gap_bound = ν / tau_final]; [infinity] for an unconstrained
          problem (no ladder).  The dual-side warm information a child
          solve feeds to {!restart_levels} — carrying it with the point
          is what lets stolen and checkpoint-restored nodes skip the
          early rungs too. *)
  outer_iterations : int;
  newton_iterations : int;
  status : status;
}

val solve :
  ?params:params ->
  ?certificate:Linalg.Vec.t ->
  problem ->
  start:Linalg.Vec.t ->
  solution
(** Path-following from a strictly feasible [start].  A start that is
    feasible only up to roundoff — violating no constraint by more than
    [params.start_margin] × its residual scale — is repaired before the
    barrier loop runs:

    - with [?certificate] (a point the caller knows to be strictly
      interior, e.g. a phase-I output or a previous barrier solution for
      the same constraints), the start is blended toward the certificate
      until strictly interior — no phase-I solve, so warm starts clipped
      to a box boundary do not silently pay the cold cost;
    - otherwise it is nudged into the interior via
      {!find_strictly_feasible} (a full phase-I solve).

    An invalid certificate (wrong dimension or not interior) is ignored.
    [start] is never mutated and no longer copied up front.
    @raise Invalid_argument if [start] violates a constraint by more
    than [params.start_margin], or the phase-I nudge fails. *)

type feasibility =
  | Strictly_feasible of Linalg.Vec.t
  | Infeasible of float  (** certified positive lower bound on violation *)
  | Unknown of Linalg.Vec.t  (** best point found; violation within noise *)

val find_strictly_feasible :
  ?params:params -> ?margin:float -> problem -> start:Linalg.Vec.t -> feasibility
(** Phase-I: minimise the auxiliary slack [s] with every constraint relaxed
    by [s], from an arbitrary [start].  Succeeds as soon as an iterate
    clears [margin] (default [1e-9]) × each constraint's residual scale
    (the relative-slack convention of {!is_strictly_interior}). *)

val solve_auto : ?params:params -> problem -> start:Linalg.Vec.t -> solution option
(** Phase-I then phase-II; [None] when phase-I proves or suspects
    infeasibility. [start] need not be feasible. *)

(** {2 Independent dual certificates}

    A barrier solve's primal objective is {e not} a safe lower bound on
    the problem optimum: a stalled or diverged solve can return a value
    above the truth, and a branch-and-bound search pruning on it would
    silently discard the optimum.  {!certify_lower_bound} turns the
    terminal iterate into an independently verified fact: it extracts
    approximate dual multipliers from barrier stationarity, repairs
    them onto the dual-feasible set with a closed-form projection
    (clipping negative half-space multipliers, shrinking cone
    multiplier pairs onto the cone against an upward-rounded norm), and
    evaluates the resulting dual objective in outward-rounded interval
    arithmetic ({!Interval.wide_add} and friends) with the Lagrangian
    stationarity residual absorbed over the problem's coordinate box
    (Neumaier–Shcherbina).  Weak duality then makes the result a true
    lower bound regardless of primal solve quality — the certificate
    depends on the primal point only through the {e tightness} of the
    bound, never its {e validity}. *)

type certificate = {
  dual_value : float;
      (** verified lower bound on the problem optimum (includes
          {!field-obj_scale}, like {!solution.objective}) *)
  slack : float;  (** [solution.objective − dual_value]; may be negative
                      when the primal iterate overshot *)
  repaired : bool;  (** at least one multiplier needed projection *)
}

type cert_failure =
  | Cert_repair_failed of string
      (** no dual-feasible point could be built (unusable terminal
          barrier weight, non-finite iterate, …) or the interval
          evaluation did not produce a finite value (a nonzero
          stationarity residual on a coordinate the constraints leave
          unbounded) *)
  | Cert_gap_excessive of float
      (** a valid bound was produced but its primal-dual slack (the
          payload) exceeds [max_rel_slack × (1 + |objective|)] — the
          solve is too poor to trust either side; callers should
          re-solve or fall back *)

val describe_cert_failure : cert_failure -> string

val certify_lower_bound :
  ?max_rel_slack:float -> problem -> solution -> (certificate, cert_failure) result
(** Requires what {!val-problem} already guarantees — [P] PSD and
    [obj_scale > 0] (checked) — and nothing about the solution: the
    primal point need not be feasible, only finite.  At a properly
    centered iterate the certified slack is about [ν/τ], i.e. the bound
    is typically {e tighter} than the heuristic
    [objective − 2·gap_bound].  [max_rel_slack] (default [0.1])
    triggers {!Cert_gap_excessive}, relative to [1 + |objective|].
    Bumps the [ldafp_socp_cert_*] metrics and observes the slack
    histogram when {!Obs.Metrics} is enabled.  Cost: one [P·x*] product
    plus one pass over the constraint data in interval arithmetic —
    O(n² + constraints·n), no factorisation. *)

(**/**)

val centering_oracle_for_tests : problem -> float -> Newton.oracle
(** The centering objective [τ·f + barrier] — exposed so the test suite
    can finite-difference the hand-derived cone calculus. Not part of the
    stable API. *)
