(** Convex quadratic programs with linear and second-order-cone
    constraints, solved by a log-barrier interior-point method.

    This is the engine behind the LDA-FP lower/upper bound estimation
    (paper eq. 25): each branch-and-bound box yields a problem

    {v minimize (1/2) xᵀP x + qᵀx
      s.t.  aᵢᵀx ≤ bᵢ                      (box, per-element overflow, t-range)
            ‖Lⱼx + gⱼ‖₂ ≤ cⱼᵀx + dⱼ       (projection overflow, eq. 20) v}

    with [P] positive semidefinite.  The barrier for a second-order cone is
    the standard self-concordant [−log((cᵀx+d)² − ‖Lx+g‖²)]. *)

type lin = { a : Linalg.Vec.t; b : float }
(** The half-space [aᵀx <= b]. *)

type soc = {
  l : Linalg.Mat.t;
  g : Linalg.Vec.t;
  c : Linalg.Vec.t;
  d : float;
}
(** The cone [‖l x + g‖₂ <= cᵀx + d]. *)

type problem = private {
  n : int;  (** number of variables *)
  p : Linalg.Mat.t;  (** quadratic term; symmetric PSD, [n × n] *)
  q : Linalg.Vec.t;
  lins : lin array;
  socs : soc array;
}

val problem :
  ?p:Linalg.Mat.t ->
  ?q:Linalg.Vec.t ->
  ?lins:lin list ->
  ?socs:soc list ->
  int ->
  problem
(** [problem n] with omitted pieces defaulting to zero.
    @raise Invalid_argument on any dimension mismatch. *)

val box_constraints : Linalg.Vec.t -> Linalg.Vec.t -> lin list
(** [box_constraints lo hi] is the [2n] half-spaces of [lo <= x <= hi]. *)

val objective_value : problem -> Linalg.Vec.t -> float

val max_violation : problem -> Linalg.Vec.t -> float
(** Largest constraint violation at a point ([<= 0] means feasible);
    for cones this is [‖Lx+g‖ − (cᵀx+d)]. *)

val is_feasible : ?tol:float -> problem -> Linalg.Vec.t -> bool
(** [max_violation <= tol] (default [1e-9]). *)

type params = {
  tau0 : float;  (** initial barrier weight on the objective *)
  mu : float;  (** barrier growth factor per outer iteration *)
  gap_tol : float;  (** stop when [ν/τ] (suboptimality bound) is below *)
  newton : Newton.params;
  max_outer : int;
  start_margin : float;
      (** starts violating constraints by at most this much are nudged
          into the interior (phase-I) instead of rejected *)
}

val default_params : params

type status = Optimal | Suboptimal
(** [Suboptimal]: an outer-iteration limit, a stalled centering step, or
    a diverged (NaN) Newton solve; the returned point is feasible but
    the gap bound may exceed [gap_tol]. *)

type solution = {
  x : Linalg.Vec.t;
  objective : float;
  gap_bound : float;  (** certified bound on suboptimality, [ν/τ] *)
  outer_iterations : int;
  newton_iterations : int;
  status : status;
}

val solve : ?params:params -> problem -> start:Linalg.Vec.t -> solution
(** Path-following from a strictly feasible [start].  A start that is
    feasible only up to roundoff — violating no constraint by more than
    [params.start_margin] — is first nudged into the strict interior via
    {!find_strictly_feasible} rather than rejected.
    @raise Invalid_argument if [start] violates a constraint by more
    than [params.start_margin], or the phase-I nudge fails. *)

type feasibility =
  | Strictly_feasible of Linalg.Vec.t
  | Infeasible of float  (** certified positive lower bound on violation *)
  | Unknown of Linalg.Vec.t  (** best point found; violation within noise *)

val find_strictly_feasible :
  ?params:params -> ?margin:float -> problem -> start:Linalg.Vec.t -> feasibility
(** Phase-I: minimise the auxiliary slack [s] with every constraint relaxed
    by [s], from an arbitrary [start].  Succeeds as soon as an iterate has
    [max_violation <= -margin] (default [1e-9]). *)

val solve_auto : ?params:params -> problem -> start:Linalg.Vec.t -> solution option
(** Phase-I then phase-II; [None] when phase-I proves or suspects
    infeasibility. [start] need not be feasible. *)

(**/**)

val centering_oracle_for_tests : problem -> float -> Newton.oracle
(** The centering objective [τ·f + barrier] — exposed so the test suite
    can finite-difference the hand-derived cone calculus. Not part of the
    stable API. *)
