type t = { lo : float; hi : float }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %g > hi %g" lo hi);
  { lo; hi }

let point x = make ~lo:x ~hi:x
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let mem t x = x >= t.lo && x <= t.hi

let clamp t x =
  if x < t.lo then t.lo else if x > t.hi then t.hi else x

let sup_sq t = Float.max (t.lo *. t.lo) (t.hi *. t.hi)

let inf_sq t =
  if t.lo <= 0.0 && t.hi >= 0.0 then 0.0
  else Float.min (t.lo *. t.lo) (t.hi *. t.hi)

let split ?at t =
  let c = match at with None -> mid t | Some x -> x in
  let c = Float.max t.lo (Float.min t.hi c) in
  (* Keep both halves non-degenerate when possible. *)
  let c =
    if c = t.lo || c = t.hi then mid t else c
  in
  ({ lo = t.lo; hi = c }, { lo = c; hi = t.hi })

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let scale c t =
  if c >= 0.0 then { lo = c *. t.lo; hi = c *. t.hi }
  else { lo = c *. t.hi; hi = c *. t.lo }

let shift d t = { lo = t.lo +. d; hi = t.hi +. d }
let contains_zero t = mem t 0.0
let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi

(* ------------------------------------------------------------------ *)
(* Directed ("outward") rounding                                       *)
(* ------------------------------------------------------------------ *)

(* OCaml floats round to nearest, so the true real result of one IEEE
   +, −, × is strictly within one ulp of the computed value; stepping
   one representable float outward therefore encloses it.  [Float.pred
   infinity = max_float] would *shrink* an infinite endpoint, hence the
   guards. *)
let down x = if x = Float.neg_infinity then x else Float.pred x
let up x = if x = Float.infinity then x else Float.succ x

let wide t = { lo = down t.lo; hi = up t.hi }

let wide_add a b = make ~lo:(down (a.lo +. b.lo)) ~hi:(up (a.hi +. b.hi))

let neg t = { lo = -.t.hi; hi = -.t.lo }

let wide_sub a b = wide_add a (neg b)

(* Kahan convention: 0 · ±∞ = 0.  An exactly-zero factor contributes
   exactly zero to the product range even when the other interval is
   unbounded — the case the certificate's residual-absorption step hits
   when a stationarity residual is exactly 0 on a half-open box. *)
let prod x y = if x = 0.0 || y = 0.0 then 0.0 else x *. y

let wide_mul a b =
  let p1 = prod a.lo b.lo and p2 = prod a.lo b.hi in
  let p3 = prod a.hi b.lo and p4 = prod a.hi b.hi in
  let lo = Float.min (Float.min p1 p2) (Float.min p3 p4) in
  let hi = Float.max (Float.max p1 p2) (Float.max p3 p4) in
  make ~lo:(down lo) ~hi:(up hi)
