type t = { lo : float; hi : float }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %g > hi %g" lo hi);
  { lo; hi }

let point x = make ~lo:x ~hi:x
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let mem t x = x >= t.lo && x <= t.hi

let clamp t x =
  if x < t.lo then t.lo else if x > t.hi then t.hi else x

let sup_sq t = Float.max (t.lo *. t.lo) (t.hi *. t.hi)

let inf_sq t =
  if t.lo <= 0.0 && t.hi >= 0.0 then 0.0
  else Float.min (t.lo *. t.lo) (t.hi *. t.hi)

let split ?at t =
  let c = match at with None -> mid t | Some x -> x in
  let c = Float.max t.lo (Float.min t.hi c) in
  (* Keep both halves non-degenerate when possible. *)
  let c =
    if c = t.lo || c = t.hi then mid t else c
  in
  ({ lo = t.lo; hi = c }, { lo = c; hi = t.hi })

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let scale c t =
  if c >= 0.0 then { lo = c *. t.lo; hi = c *. t.hi }
  else { lo = c *. t.hi; hi = c *. t.lo }

let shift d t = { lo = t.lo +. d; hi = t.hi +. d }
let contains_zero t = mem t 0.0
let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
