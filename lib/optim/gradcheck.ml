open Linalg

type report = { max_grad_error : float; max_hess_error : float }

let central_diff ~h f x i =
  let step = h *. (1.0 +. Float.abs x.(i)) in
  let xp = Vec.copy x and xm = Vec.copy x in
  xp.(i) <- xp.(i) +. step;
  xm.(i) <- xm.(i) -. step;
  (f xp -. f xm) /. (2.0 *. step)

let rel_err a b = Float.abs (a -. b) /. (1.0 +. Float.abs b)

let check ?(h = 1e-5) ?hessian ~f ~grad ?hess x =
  let n = Vec.dim x in
  let g = grad x in
  let max_grad_error = ref 0.0 in
  for i = 0 to n - 1 do
    let numeric = central_diff ~h f x i in
    max_grad_error := Float.max !max_grad_error (rel_err g.(i) numeric)
  done;
  let do_hess =
    match (hessian, hess) with
    | Some b, _ -> b && hess <> None
    | None, Some _ -> true
    | None, None -> false
  in
  let max_hess_error = ref 0.0 in
  if do_hess then begin
    let hm = (Option.get hess) x in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        (* d/dx_j of grad_i, central difference on the gradient *)
        let step = h *. (1.0 +. Float.abs x.(j)) in
        let xp = Vec.copy x and xm = Vec.copy x in
        xp.(j) <- xp.(j) +. step;
        xm.(j) <- xm.(j) -. step;
        let numeric = ((grad xp).(i) -. (grad xm).(i)) /. (2.0 *. step) in
        max_hess_error := Float.max !max_hess_error (rel_err hm.(i).(j) numeric)
      done
    done
  end;
  { max_grad_error = !max_grad_error; max_hess_error = !max_hess_error }

let check_oracle ?h (oracle : Newton.oracle) x =
  match oracle x with
  | None -> None
  | Some _ ->
      let f y = match oracle y with Some (v, _, _) -> v | None -> Float.nan in
      let grad y =
        match oracle y with
        | Some (_, g, _) -> g
        | None -> Vec.make (Vec.dim y) Float.nan
      in
      let hess y =
        match oracle y with
        | Some (_, _, h) -> h
        | None -> Mat.make (Vec.dim y) (Vec.dim y) Float.nan
      in
      Some (check ?h ~f ~grad ~hess x)
