exception Corrupt of string

let magic = "ldafp-bnb-checkpoint v1"

type ('region, 'sol) state = {
  fingerprint : string;
  frontier : (float * 'region) array;
  incumbent : ('sol * float) option;
  nodes_explored : int;
  counters : (string * int) list;
  elapsed : float;
}

let counter state name =
  match List.assoc_opt name state.counters with Some n -> n | None -> 0

let has_counter state name = List.mem_assoc name state.counters

(* Snapshot metrics, registered eagerly at module init (see Obs). *)
let m_save_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"checkpoint snapshots written (tmp + fsync + rename)"
    "ldafp_ckpt_save_total"

let m_save_seconds =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-5 ~hi:100.0
    ~help:"wall time of one checkpoint write (serialize + fsync + rename)"
    "ldafp_ckpt_save_seconds"

let save ~path state =
  let t0 = Obs.Clock.now_ns () in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      output_string oc state.fingerprint;
      output_char oc '\n';
      Marshal.to_channel oc state [];
      flush oc;
      Unix.fsync fd);
  Sys.rename tmp path;
  let dns = Obs.Clock.now_ns () - t0 in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_save_total;
    Obs.Metrics.observe m_save_seconds (float_of_int dns *. 1e-9)
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.complete ~cat:"ckpt" "ckpt.save" ~t0_ns:t0 ~dur_ns:dns
      ~args:
        [
          ("frontier", Obs.Trace.Int (Array.length state.frontier));
          ("nodes", Obs.Trace.Int state.nodes_explored);
        ]

let load ?expect_fingerprint ~path () =
  if not (Sys.file_exists path) then
    raise (Corrupt (Printf.sprintf "no checkpoint at %s" path));
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line () = try input_line ic with End_of_file -> "" in
      let got_magic = line () in
      if got_magic <> magic then
        raise
          (Corrupt
             (Printf.sprintf "%s: bad header %S (expected %S)" path got_magic
                magic));
      let fingerprint = line () in
      (match expect_fingerprint with
      | Some expected when expected <> fingerprint ->
          raise
            (Corrupt
               (Printf.sprintf
                  "%s: checkpoint is for a different problem (fingerprint %s, \
                   expected %s)"
                  path fingerprint expected))
      | _ -> ());
      let state =
        try (Marshal.from_channel ic : ('region, 'sol) state)
        with End_of_file | Failure _ ->
          raise (Corrupt (Printf.sprintf "%s: truncated or corrupt payload" path))
      in
      if state.fingerprint <> fingerprint then
        raise (Corrupt (Printf.sprintf "%s: header/payload fingerprint mismatch" path));
      state)
