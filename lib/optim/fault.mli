(** Failure taxonomy and containment policy for the branch-and-bound
    oracle calls.

    The per-node bound of the LDA-FP search is a barrier SOCP solve that
    can fail numerically on near-degenerate boxes: a Cholesky factor
    loses positive definiteness, a Newton start is pushed out of the
    barrier domain by roundoff, or the centering objective evaluates to
    NaN.  Uncontained, any such failure either destroys the whole search
    (an escaping exception) or poisons it silently (a NaN lower bound
    compares false with everything and wedges the frontier).  This
    module classifies those failures and describes what the driver
    should do about them; {!Bnb} applies the policy around every
    [oracle.bound] / [oracle.branch] call. *)

type failure =
  | Oracle_raised of string
      (** the oracle raised; the payload is [Printexc.to_string] of the
          exception *)
  | Non_finite_bound of float
      (** the oracle returned a NaN or [-infinity] lower bound
          ([+infinity] is legal and prunes the region) *)
  | Certificate_failed of string
      (** the primal solve finished but its independent dual
          certificate could not be established
          ({!Socp.certify_lower_bound} returned an error): the bound is
          unverified and must not be used.  Retried like any other
          failure (a jittered re-solve gets a fresh certificate
          chance), then degraded to the certified interval fallback. *)

exception Certificate_error of string
(** Raised by a bound oracle when certification of an otherwise
    successful solve fails, so the containment machinery classifies it
    as {!Certificate_failed} rather than a generic [Oracle_raised]. *)

val describe : failure -> string

val containable : exn -> bool
(** Whether an exception may be absorbed by the containment policy.
    Resource-exhaustion and user-interrupt exceptions ([Out_of_memory],
    [Stack_overflow], [Sys.Break]) always propagate. *)

type policy = {
  max_retries : int;
      (** re-invocations of a failing oracle call before degrading
          (each may use jittered solver parameters via
          {!Bnb.faults}[.retry_bound]) *)
  degrade : bool;
      (** after retries are exhausted, fall back to the caller's cheap
          conservative bound ({!Bnb.faults}[.fallback_bound]) so the
          region stays alive with a certified-but-loose key *)
  reraise : bool;
      (** if no handling remains, re-raise the original exception
          instead of dropping the region — restores the
          pre-containment fail-fast behaviour *)
  backoff_base : float;
      (** first-retry sleep in seconds; retry [k] sleeps
          [min (backoff_cap, backoff_base * 2^(k-1))].  Transient
          failures (an OS-level memory spike, a noisy neighbour) often
          clear if the re-solve is not immediate.  [<= 0] disables
          sleeping. *)
  backoff_cap : float;  (** upper bound on any single backoff sleep *)
  retry_budget : int;
      (** total retries allowed across one node {e expansion} (the
          bound calls of all children plus the branching call).  A
          pathological region that fails every jitter level would
          otherwise pay [max_retries] on each of its children; the
          budget caps the worst-case time spent on one node.
          Exhaustion skips straight to degrade/drop and is counted in
          {!Bnb.stats}[.retry_budget_exhausted]. *)
}

val default_policy : policy
(** [max_retries = 1], [degrade = true], [reraise = false]: retry once,
    then degrade when a fallback bound exists, then drop (recorded in
    {!Bnb.stats}[.dropped_regions]) as the last resort.  Backoff
    [base = 1 ms], [cap = 0.25 s], [retry_budget = 8]. *)

val propagate : policy
(** [max_retries = 0], [degrade = false], [reraise = true]: fail fast on
    the first oracle failure. *)

val backoff_delay : policy -> attempt:int -> float
(** Sleep before retry [attempt] (1-based), in seconds:
    [min (cap, base * 2^(attempt-1))], or [0] when backoff is
    disabled. *)

type counters = {
  failures : int Atomic.t;  (** failing oracle invocations *)
  retries : int Atomic.t;  (** re-invocations made *)
  degraded : int Atomic.t;  (** regions kept alive via the fallback bound *)
  dropped : int Atomic.t;  (** regions (or branchings) abandoned *)
  budget_exhausted : int Atomic.t;
      (** expansions whose retry budget ran out before [max_retries] *)
  backoff_ns : int Atomic.t;  (** total backoff sleep, nanoseconds *)
}
(** Shared fault telemetry, atomic so worker domains update them without
    the pool lock. *)

val fresh_counters : unit -> counters
