(** Failure taxonomy and containment policy for the branch-and-bound
    oracle calls.

    The per-node bound of the LDA-FP search is a barrier SOCP solve that
    can fail numerically on near-degenerate boxes: a Cholesky factor
    loses positive definiteness, a Newton start is pushed out of the
    barrier domain by roundoff, or the centering objective evaluates to
    NaN.  Uncontained, any such failure either destroys the whole search
    (an escaping exception) or poisons it silently (a NaN lower bound
    compares false with everything and wedges the frontier).  This
    module classifies those failures and describes what the driver
    should do about them; {!Bnb} applies the policy around every
    [oracle.bound] / [oracle.branch] call. *)

type failure =
  | Oracle_raised of string
      (** the oracle raised; the payload is [Printexc.to_string] of the
          exception *)
  | Non_finite_bound of float
      (** the oracle returned a NaN or [-infinity] lower bound
          ([+infinity] is legal and prunes the region) *)

val describe : failure -> string

val containable : exn -> bool
(** Whether an exception may be absorbed by the containment policy.
    Resource-exhaustion and user-interrupt exceptions ([Out_of_memory],
    [Stack_overflow], [Sys.Break]) always propagate. *)

type policy = {
  max_retries : int;
      (** re-invocations of a failing oracle call before degrading
          (each may use jittered solver parameters via
          {!Bnb.faults}[.retry_bound]) *)
  degrade : bool;
      (** after retries are exhausted, fall back to the caller's cheap
          conservative bound ({!Bnb.faults}[.fallback_bound]) so the
          region stays alive with a certified-but-loose key *)
  reraise : bool;
      (** if no handling remains, re-raise the original exception
          instead of dropping the region — restores the
          pre-containment fail-fast behaviour *)
}

val default_policy : policy
(** [max_retries = 1], [degrade = true], [reraise = false]: retry once,
    then degrade when a fallback bound exists, then drop (recorded in
    {!Bnb.stats}[.dropped_regions]) as the last resort. *)

val propagate : policy
(** [max_retries = 0], [degrade = false], [reraise = true]: fail fast on
    the first oracle failure. *)

type counters = {
  failures : int Atomic.t;  (** failing oracle invocations *)
  retries : int Atomic.t;  (** re-invocations made *)
  degraded : int Atomic.t;  (** regions kept alive via the fallback bound *)
  dropped : int Atomic.t;  (** regions (or branchings) abandoned *)
}
(** Shared fault telemetry, atomic so worker domains update them without
    the pool lock. *)

val fresh_counters : unit -> counters
