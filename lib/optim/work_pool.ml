type 'a t = {
  lock : Mutex.t;
  changed : Condition.t;
  queue : 'a Pqueue.t;
  working : (float * 'a) option array;
      (* per-worker in-flight item and its key; None when idle.  Items
         are kept (not just their keys) so checkpoints can snapshot the
         full live frontier. *)
  mutable in_flight : int;
  mutable closed : bool;
  mutable idle_wakeups : int;
}

let create ~workers =
  if workers < 1 then invalid_arg "Work_pool.create: workers < 1";
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    queue = Pqueue.create ();
    working = Array.make workers None;
    in_flight = 0;
    closed = false;
    idle_wakeups = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t key value =
  Pqueue.push t.queue key value;
  Condition.broadcast t.changed

let take t ~worker =
  match Pqueue.pop t.queue with
  | None -> None
  | Some (key, value) ->
      t.working.(worker) <- Some (key, value);
      t.in_flight <- t.in_flight + 1;
      Some (key, value)

let release t ~worker =
  t.working.(worker) <- None;
  t.in_flight <- t.in_flight - 1;
  Condition.broadcast t.changed

let wait t =
  t.idle_wakeups <- t.idle_wakeups + 1;
  Condition.wait t.changed t.lock

let close t =
  t.closed <- true;
  Condition.broadcast t.changed

let is_closed t = t.closed
let drained t = Pqueue.is_empty t.queue && t.in_flight = 0
let queue_is_empty t = Pqueue.is_empty t.queue
let queue_length t = Pqueue.length t.queue
let min_queue_key t = Pqueue.min_key t.queue

let frontier_bound t =
  Array.fold_left
    (fun acc slot ->
      match slot with Some (key, _) -> Float.min acc key | None -> acc)
    (Pqueue.min_key t.queue) t.working

let snapshot t =
  let queued = Pqueue.fold (fun acc key v -> (key, v) :: acc) [] t.queue in
  Array.fold_left
    (fun acc slot -> match slot with Some item -> item :: acc | None -> acc)
    queued t.working

let in_flight t = t.in_flight
let prune t pred = Pqueue.filter_in_place t.queue pred
let idle_wakeups t = t.idle_wakeups
