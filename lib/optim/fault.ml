type failure =
  | Oracle_raised of string
  | Non_finite_bound of float
  | Certificate_failed of string

exception Certificate_error of string

let describe = function
  | Oracle_raised msg -> Printf.sprintf "oracle raised: %s" msg
  | Non_finite_bound b -> Printf.sprintf "non-finite lower bound %h" b
  | Certificate_failed msg -> Printf.sprintf "bound certificate failed: %s" msg

let containable = function
  | Out_of_memory | Stack_overflow | Sys.Break -> false
  | _ -> true

type policy = {
  max_retries : int;
  degrade : bool;
  reraise : bool;
  backoff_base : float;
  backoff_cap : float;
  retry_budget : int;
}

let default_policy =
  {
    max_retries = 1;
    degrade = true;
    reraise = false;
    backoff_base = 1e-3;
    backoff_cap = 0.25;
    retry_budget = 8;
  }

let propagate = { default_policy with max_retries = 0; degrade = false;
                  reraise = true }

(* Capped exponential backoff: retry [k] (1-based) sleeps
   [min (cap, base * 2^(k-1))].  A non-positive base disables sleeping
   entirely (used by the fast test configurations). *)
let backoff_delay policy ~attempt =
  if policy.backoff_base <= 0.0 || attempt < 1 then 0.0
  else
    Float.min policy.backoff_cap
      (policy.backoff_base *. Float.pow 2.0 (float_of_int (attempt - 1)))

type counters = {
  failures : int Atomic.t;
  retries : int Atomic.t;
  degraded : int Atomic.t;
  dropped : int Atomic.t;
  budget_exhausted : int Atomic.t;
  backoff_ns : int Atomic.t;
}

let fresh_counters () =
  {
    failures = Atomic.make 0;
    retries = Atomic.make 0;
    degraded = Atomic.make 0;
    dropped = Atomic.make 0;
    budget_exhausted = Atomic.make 0;
    backoff_ns = Atomic.make 0;
  }
