type failure =
  | Oracle_raised of string
  | Non_finite_bound of float

let describe = function
  | Oracle_raised msg -> Printf.sprintf "oracle raised: %s" msg
  | Non_finite_bound b -> Printf.sprintf "non-finite lower bound %h" b

let containable = function
  | Out_of_memory | Stack_overflow | Sys.Break -> false
  | _ -> true

type policy = { max_retries : int; degrade : bool; reraise : bool }

let default_policy = { max_retries = 1; degrade = true; reraise = false }
let propagate = { max_retries = 0; degrade = false; reraise = true }

type counters = {
  failures : int Atomic.t;
  retries : int Atomic.t;
  degraded : int Atomic.t;
  dropped : int Atomic.t;
}

let fresh_counters () =
  {
    failures = Atomic.make 0;
    retries = Atomic.make 0;
    degraded = Atomic.make 0;
    dropped = Atomic.make 0;
  }
