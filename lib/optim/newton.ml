open Linalg

type oracle = Vec.t -> (float * Vec.t * Mat.t) option

type params = { tol : float; max_iter : int; alpha : float; beta : float }

let default_params = { tol = 1e-9; max_iter = 80; alpha = 0.25; beta = 0.5 }

type status = Converged | Iteration_limit | Stalled | Diverged

type result = {
  x : Vec.t;
  value : float;
  iterations : int;
  decrement : float;
  status : status;
}

type oracle_into = Vec.t -> grad:Vec.t -> hess:Mat.t -> float option

type workspace = {
  n : int;
  grad : Vec.t;
  hess : Mat.t;
  sym : Mat.t;  (* symmetrized Hessian, input to the factorisation *)
  chol : Mat.t;  (* Cholesky factor scratch *)
  dir : Vec.t;  (* Newton direction *)
  mutable xa : Vec.t;  (* current iterate *)
  mutable xb : Vec.t;  (* line-search candidate; swapped on acceptance *)
}

let workspace n =
  if n < 0 then invalid_arg "Newton.workspace: negative dimension";
  {
    n;
    grad = Vec.zeros n;
    hess = Mat.zeros n n;
    sym = Mat.zeros n n;
    chol = Mat.zeros n n;
    dir = Vec.zeros n;
    xa = Vec.zeros n;
    xb = Vec.zeros n;
  }

let workspace_dim ws = ws.n

let minimize_into ?(params = default_params) ws oracle x0 =
  if Vec.dim x0 <> ws.n then
    invalid_arg "Newton.minimize_into: dimension mismatch";
  Array.blit x0 0 ws.xa 0 ws.n;
  match oracle ws.xa ~grad:ws.grad ~hess:ws.hess with
  | None -> invalid_arg "Newton.minimize: start point outside domain"
  | Some f0 ->
      let fx = ref f0 in
      let iter = ref 0 in
      let dec = ref Float.infinity in
      let status = ref Iteration_limit in
      let continue = ref true in
      while !continue && !iter < params.max_iter do
        incr iter;
        (* Newton direction H d = -g, via jittered Cholesky into scratch:
           the barrier Hessian is positive definite in the domain interior
           but may be numerically semidefinite near the analytic center of
           a thin box. *)
        Mat.symmetrize_into ws.hess ~dst:ws.sym;
        let (_ : float) = Cholesky.factor_jittered_into ws.sym ~dst:ws.chol in
        for i = 0 to ws.n - 1 do
          ws.dir.(i) <- -.ws.grad.(i)
        done;
        Cholesky.solve_factored_into ws.chol ws.dir ~dst:ws.dir;
        (* gd = g·d must be taken now: candidate evaluations below clobber
           the shared gradient buffer, and the line-search test needs the
           current point's directional derivative on every try. *)
        let gd = Vec.dot ws.grad ws.dir in
        let lambda_sq = -.gd in
        dec := 0.5 *. lambda_sq;
        if Float.is_nan !dec then begin
          (* A NaN decrement (NaN gradient/Hessian entries, or a Newton
             system solved into NaNs) used to be reported as Converged,
             silently handing callers a bogus centering point.  Surface
             it so Socp can report Suboptimal instead. *)
          status := Diverged;
          continue := false
        end
        else if !dec <= params.tol then begin
          status := Converged;
          continue := false
        end
        else begin
          (* Backtracking line search on f with domain rejection. *)
          let t = ref 1.0 in
          let accepted = ref false in
          let tries = ref 0 in
          while (not !accepted) && !tries < 60 do
            incr tries;
            Vec.axpy_into !t ws.dir ws.xa ~dst:ws.xb;
            (match oracle ws.xb ~grad:ws.grad ~hess:ws.hess with
            | Some fc
              when fc <= !fx +. (params.alpha *. !t *. gd)
                   && not (Float.is_nan fc) ->
                let tmp = ws.xa in
                ws.xa <- ws.xb;
                ws.xb <- tmp;
                fx := fc;
                accepted := true
            | _ -> t := params.beta *. !t)
          done;
          if not !accepted then begin
            status := Stalled;
            continue := false
          end
        end
      done;
      { x = Vec.copy ws.xa; value = !fx; iterations = !iter; decrement = !dec;
        status = !status }

let step_into ?(params = default_params) ws oracle x0 ~dst =
  if Vec.dim x0 <> ws.n || Vec.dim dst <> ws.n then
    invalid_arg "Newton.step_into: dimension mismatch";
  Array.blit x0 0 ws.xa 0 ws.n;
  match oracle ws.xa ~grad:ws.grad ~hess:ws.hess with
  | None -> false
  | Some f0 ->
      Mat.symmetrize_into ws.hess ~dst:ws.sym;
      let (_ : float) = Cholesky.factor_jittered_into ws.sym ~dst:ws.chol in
      for i = 0 to ws.n - 1 do
        ws.dir.(i) <- -.ws.grad.(i)
      done;
      Cholesky.solve_factored_into ws.chol ws.dir ~dst:ws.dir;
      let gd = Vec.dot ws.grad ws.dir in
      if Float.is_nan gd then false
      else begin
        (* Backtracking with domain rejection, exactly as in
           [minimize_into]; the first accepted candidate is the step. *)
        let t = ref 1.0 in
        let accepted = ref false in
        let tries = ref 0 in
        while (not !accepted) && !tries < 60 do
          incr tries;
          Vec.axpy_into !t ws.dir ws.xa ~dst:ws.xb;
          (match oracle ws.xb ~grad:ws.grad ~hess:ws.hess with
          | Some fc
            when fc <= f0 +. (params.alpha *. !t *. gd)
                 && not (Float.is_nan fc) ->
              Array.blit ws.xb 0 dst 0 ws.n;
              accepted := true
          | _ -> t := params.beta *. !t)
        done;
        !accepted
      end

let oracle_into_of_oracle n oracle : oracle_into =
 fun x ~grad ~hess ->
  match oracle x with
  | None -> None
  | Some (f, g, h) ->
      Array.blit g 0 grad 0 n;
      for i = 0 to n - 1 do
        Array.blit h.(i) 0 hess.(i) 0 n
      done;
      Some f

let minimize ?params oracle x0 =
  let n = Vec.dim x0 in
  minimize_into ?params (workspace n) (oracle_into_of_oracle n oracle) x0
