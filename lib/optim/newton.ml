open Linalg

type oracle = Vec.t -> (float * Vec.t * Mat.t) option

type params = { tol : float; max_iter : int; alpha : float; beta : float }

let default_params = { tol = 1e-9; max_iter = 80; alpha = 0.25; beta = 0.5 }

type status = Converged | Iteration_limit | Stalled | Diverged

type result = {
  x : Vec.t;
  value : float;
  iterations : int;
  decrement : float;
  status : status;
}

let solve_step hess grad =
  (* Newton direction H d = -g, via jittered Cholesky: the barrier Hessian
     is positive definite in the domain interior but may be numerically
     semidefinite near the analytic center of a thin box. *)
  let l, _ = Cholesky.factor_jittered (Mat.symmetrize hess) in
  Cholesky.solve_factored l (Vec.neg grad)

let minimize ?(params = default_params) oracle x0 =
  let eval x = oracle x in
  match eval x0 with
  | None -> invalid_arg "Newton.minimize: start point outside domain"
  | Some (f0, g0, h0) ->
      let x = ref (Vec.copy x0) in
      let fx = ref f0 in
      let gx = ref g0 in
      let hx = ref h0 in
      let iter = ref 0 in
      let dec = ref Float.infinity in
      let status = ref Iteration_limit in
      let continue = ref true in
      while !continue && !iter < params.max_iter do
        incr iter;
        let d = solve_step !hx !gx in
        let lambda_sq = -.Vec.dot !gx d in
        dec := 0.5 *. lambda_sq;
        if Float.is_nan !dec then begin
          (* A NaN decrement (NaN gradient/Hessian entries, or a Newton
             system solved into NaNs) used to be reported as Converged,
             silently handing callers a bogus centering point.  Surface
             it so Socp can report Suboptimal instead. *)
          status := Diverged;
          continue := false
        end
        else if !dec <= params.tol then begin
          status := Converged;
          continue := false
        end
        else begin
          (* Backtracking line search on f with domain rejection. *)
          let t = ref 1.0 in
          let accepted = ref false in
          let tries = ref 0 in
          while (not !accepted) && !tries < 60 do
            incr tries;
            let cand = Vec.axpy !t d !x in
            (match eval cand with
            | Some (fc, gc, hc)
              when fc <= !fx +. (params.alpha *. !t *. Vec.dot !gx d)
                   && not (Float.is_nan fc) ->
                x := cand;
                fx := fc;
                gx := gc;
                hx := hc;
                accepted := true
            | _ -> t := params.beta *. !t)
          done;
          if not !accepted then begin
            status := Stalled;
            continue := false
          end
        end
      done;
      { x = !x; value = !fx; iterations = !iter; decrement = !dec;
        status = !status }
