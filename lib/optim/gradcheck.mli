(** Finite-difference verification of gradient/Hessian oracles.

    Every hand-derived derivative in this repository (the SOC barrier of
    {!Socp}, the logistic loss of the comparison classifier, test
    oracles) is validated against central differences — the cheapest
    insurance against the classic sign-and-factor-of-two bugs that
    silently degrade Newton methods into gradient descent. *)

type report = {
  max_grad_error : float;
      (** max over coordinates of |analytic − numeric| / (1 + |numeric|) *)
  max_hess_error : float;  (** same for Hessian entries; 0 if not checked *)
}

val check :
  ?h:float ->
  ?hessian:bool ->
  f:(Linalg.Vec.t -> float) ->
  grad:(Linalg.Vec.t -> Linalg.Vec.t) ->
  ?hess:(Linalg.Vec.t -> Linalg.Mat.t) ->
  Linalg.Vec.t ->
  report
(** Central differences with step [h] (default [1e-5], scaled by
    [1 + |x_i|] per coordinate).  [hessian] (default true when [hess]
    given) differentiates the gradient. *)

val check_oracle : ?h:float -> Newton.oracle -> Linalg.Vec.t -> report option
(** Convenience for a combined {!Newton.oracle}; [None] if the point is
    outside the oracle's domain. *)
