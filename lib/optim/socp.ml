open Linalg

type lin = { a : Vec.t; b : float }
type soc = { l : Mat.t; g : Vec.t; c : Vec.t; d : float }

type problem = {
  n : int;
  p : Mat.t;
  q : Vec.t;
  lins : lin array;
  socs : soc array;
}

let problem ?p ?q ?(lins = []) ?(socs = []) n =
  if n <= 0 then invalid_arg "Socp.problem: n must be positive";
  let p = match p with Some p -> p | None -> Mat.zeros n n in
  let q = match q with Some q -> q | None -> Vec.zeros n in
  if Mat.dims p <> (n, n) then invalid_arg "Socp.problem: P must be n x n";
  if not (Mat.is_symmetric ~tol:1e-8 p) then
    invalid_arg "Socp.problem: P must be symmetric";
  if Vec.dim q <> n then invalid_arg "Socp.problem: q must have length n";
  List.iter
    (fun { a; _ } ->
      if Vec.dim a <> n then
        invalid_arg "Socp.problem: linear constraint dimension mismatch")
    lins;
  List.iter
    (fun { l; g; c; _ } ->
      if Mat.cols l <> n || Vec.dim c <> n || Vec.dim g <> Mat.rows l then
        invalid_arg "Socp.problem: cone constraint dimension mismatch")
    socs;
  { n; p = Mat.symmetrize p; q; lins = Array.of_list lins;
    socs = Array.of_list socs }

let box_constraints lo hi =
  if Vec.dim lo <> Vec.dim hi then
    invalid_arg "Socp.box_constraints: dimension mismatch";
  let n = Vec.dim lo in
  List.concat
    (List.init n (fun i ->
         [ { a = Vec.basis n i; b = hi.(i) };
           { a = Vec.neg (Vec.basis n i); b = -.lo.(i) } ]))

let objective_value pb x = (0.5 *. Mat.quadratic_form pb.p x) +. Vec.dot pb.q x

let soc_violation { l; g; c; d } x =
  let v = Vec.add (Mat.mul_vec l x) g in
  Vec.norm2 v -. (Vec.dot c x +. d)

let max_violation pb x =
  let worst = ref Float.neg_infinity in
  Array.iter (fun { a; b } -> worst := Float.max !worst (Vec.dot a x -. b)) pb.lins;
  Array.iter (fun s -> worst := Float.max !worst (soc_violation s x)) pb.socs;
  if !worst = Float.neg_infinity then 0.0 else !worst

let is_feasible ?(tol = 1e-9) pb x = max_violation pb x <= tol

type params = {
  tau0 : float;
  mu : float;
  gap_tol : float;
  newton : Newton.params;
  max_outer : int;
  start_margin : float;
}

let default_params =
  { tau0 = 1.0; mu = 15.0; gap_tol = 1e-8;
    newton = { Newton.default_params with tol = 1e-10 }; max_outer = 60;
    start_margin = 1e-6 }

type status = Optimal | Suboptimal

type solution = {
  x : Vec.t;
  objective : float;
  gap_bound : float;
  outer_iterations : int;
  newton_iterations : int;
  status : status;
}

(* Total barrier parameter: 1 per half-space, 2 per cone. *)
let barrier_nu pb = Array.length pb.lins + (2 * Array.length pb.socs)

(* Oracle for tau * f(x) + phi(x); None outside the barrier domain. *)
let centering_oracle pb tau : Newton.oracle =
 fun x ->
  let n = pb.n in
  let fx = objective_value pb x in
  let grad = Vec.axpy tau (Vec.add (Mat.mul_vec pb.p x) pb.q) (Vec.zeros n) in
  let hess = Mat.scale tau pb.p in
  let value = ref (tau *. fx) in
  let ok = ref true in
  Array.iter
    (fun { a; b } ->
      if !ok then begin
        let s = b -. Vec.dot a x in
        if s <= 0.0 then ok := false
        else begin
          value := !value -. log s;
          let inv_s = 1.0 /. s in
          for i = 0 to n - 1 do
            grad.(i) <- grad.(i) +. (a.(i) *. inv_s);
            if a.(i) <> 0.0 then
              for j = 0 to n - 1 do
                hess.(i).(j) <- hess.(i).(j) +. (a.(i) *. a.(j) *. inv_s *. inv_s)
              done
          done
        end
      end)
    pb.lins;
  Array.iter
    (fun { l; g; c; d } ->
      if !ok then begin
        let u = Vec.dot c x +. d in
        let v = Vec.add (Mat.mul_vec l x) g in
        let h = (u *. u) -. Vec.dot v v in
        if u <= 0.0 || h <= 0.0 then ok := false
        else begin
          value := !value -. log h;
          (* grad h = 2u c - 2 Lᵀ v *)
          let ltv = Mat.tmul_vec l v in
          let gh = Vec.sub (Vec.scale (2.0 *. u) c) (Vec.scale 2.0 ltv) in
          let inv_h = 1.0 /. h in
          for i = 0 to n - 1 do
            grad.(i) <- grad.(i) -. (gh.(i) *. inv_h)
          done;
          (* hess(-log h) = (gh ghᵀ)/h² − (2ccᵀ − 2LᵀL)/h *)
          let rows_l = Mat.rows l in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let ltl = ref 0.0 in
              for r = 0 to rows_l - 1 do
                ltl := !ltl +. (l.(r).(i) *. l.(r).(j))
              done;
              hess.(i).(j) <-
                hess.(i).(j)
                +. (gh.(i) *. gh.(j) *. inv_h *. inv_h)
                -. (((2.0 *. c.(i) *. c.(j)) -. (2.0 *. !ltl)) *. inv_h)
            done
          done
        end
      end)
    pb.socs;
  if !ok && not (Float.is_nan !value) then Some (!value, grad, hess) else None

let strictly_feasible_for_barrier pb x =
  match centering_oracle pb 0.0 x with Some _ -> true | None -> false

type feasibility =
  | Strictly_feasible of Vec.t
  | Infeasible of float
  | Unknown of Vec.t

(* Augment with a slack variable s (index n): every half-space becomes
   aᵀx − s <= b and every cone ‖Lx+g‖ <= cᵀx + d + s; minimise s. *)
let phase1_problem pb =
  let n = pb.n in
  let extend v extra = Array.append v [| extra |] in
  let lins =
    Array.to_list
      (Array.map (fun { a; b } -> { a = extend a (-1.0); b }) pb.lins)
  in
  let socs =
    Array.to_list
      (Array.map
         (fun { l; g; c; d } ->
           let l' = Mat.init (Mat.rows l) (n + 1) (fun i j ->
               if j < n then l.(i).(j) else 0.0)
           in
           { l = l'; g; c = extend c 1.0; d })
         pb.socs)
  in
  problem ~q:(extend (Vec.zeros n) 1.0) ~lins ~socs (n + 1)

let find_strictly_feasible ?(params = default_params) ?(margin = 1e-9) pb
    ~start =
  if Vec.dim start <> pb.n then
    invalid_arg "Socp.find_strictly_feasible: start dimension";
  let v0 = max_violation pb start in
  if v0 <= -.margin then Strictly_feasible (Vec.copy start)
  else begin
    let aug = phase1_problem pb in
    let s0 = (Float.max v0 0.0) +. 1.0 +. (0.1 *. Float.abs v0) in
    let z = ref (Array.append start [| s0 |]) in
    (* Custom outer loop so we can stop as soon as s goes negative. *)
    let nu = float_of_int (barrier_nu aug) in
    let tau = ref params.tau0 in
    let result = ref None in
    let outer = ref 0 in
    while !result = None && !outer < params.max_outer do
      incr outer;
      let r = Newton.minimize ~params:params.newton (centering_oracle aug !tau) !z in
      z := r.x;
      let s = !z.(aug.n - 1) in
      let x = Array.sub !z 0 pb.n in
      if max_violation pb x <= -.margin then result := Some (Strictly_feasible x)
      else begin
        let gap = nu /. !tau in
        let dead =
          match r.status with
          | Newton.Stalled | Newton.Diverged -> true
          | Newton.Converged | Newton.Iteration_limit -> false
        in
        if gap <= params.gap_tol || dead then begin
          (* s is an upper bound on s*; s - gap is a lower bound. *)
          if s -. gap > margin then result := Some (Infeasible (s -. gap))
          else result := Some (Unknown x)
        end
        else tau := params.mu *. !tau
      end
    done;
    match !result with
    | Some r -> r
    | None -> Unknown (Array.sub !z 0 pb.n)
  end

let solve ?(params = default_params) pb ~start =
  if Vec.dim start <> pb.n then invalid_arg "Socp.solve: start dimension";
  let start =
    if strictly_feasible_for_barrier pb start then Vec.copy start
    else if max_violation pb start <= params.start_margin then
      (* The start sits on (or within roundoff of) the constraint
         boundary — common when a caller clips a warm start to the box.
         Nudge it into the interior with a phase-I solve rather than
         rejecting it. *)
      match find_strictly_feasible ~params pb ~start with
      | Strictly_feasible x -> x
      | Infeasible _ | Unknown _ ->
          invalid_arg "Socp.solve: start point not strictly feasible"
    else invalid_arg "Socp.solve: start point not strictly feasible"
  in
  let nu = float_of_int (barrier_nu pb) in
  if nu = 0.0 then begin
    (* Unconstrained QP: single Newton solve. *)
    let r = Newton.minimize ~params:params.newton (centering_oracle pb 1.0) start in
    let diverged = r.status = Newton.Diverged in
    { x = r.x; objective = objective_value pb r.x;
      gap_bound = (if diverged then Float.infinity else 0.0);
      outer_iterations = 0; newton_iterations = r.iterations;
      status = (if diverged then Suboptimal else Optimal) }
  end
  else begin
    let x = ref start in
    let tau = ref params.tau0 in
    let outer = ref 0 in
    let newton_total = ref 0 in
    let stalled = ref false in
    while nu /. !tau > params.gap_tol && !outer < params.max_outer
          && not !stalled do
      incr outer;
      let r = Newton.minimize ~params:params.newton (centering_oracle pb !tau) !x in
      newton_total := !newton_total + r.iterations;
      x := r.x;
      (match r.status with
      | Newton.Stalled | Newton.Diverged -> stalled := true
      | Newton.Converged | Newton.Iteration_limit -> ());
      tau := params.mu *. !tau
    done;
    let gap = nu /. !tau *. params.mu (* gap before the last multiply *) in
    let status =
      if nu /. !tau <= params.gap_tol || gap <= params.gap_tol then Optimal
      else Suboptimal
    in
    { x = !x; objective = objective_value pb !x; gap_bound = gap;
      outer_iterations = !outer; newton_iterations = !newton_total; status }
  end

let centering_oracle_for_tests = centering_oracle

let solve_auto ?(params = default_params) pb ~start =
  match find_strictly_feasible ~params pb ~start with
  | Strictly_feasible x -> Some (solve ~params pb ~start:x)
  | Infeasible _ | Unknown _ -> None
