open Linalg

(* Barrier-solver metrics, registered eagerly at module init; recording
   is guarded by [Obs.Metrics.enabled] at every site (see Obs).
   Glossary: doc/observability.mld. *)
let m_solve_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"barrier SOCP solves (warm or cold)" "ldafp_socp_solve_total"

let m_phase1_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"phase-I feasibility solves actually run (the path warm starts \
           skip)"
    "ldafp_socp_phase1_total"

let m_warm_pull_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"warm starts repaired by the analytic-center pull-in"
    "ldafp_socp_warm_pull_total"

let m_warm_correct_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"warm starts repaired by the one-step Newton correction"
    "ldafp_socp_warm_correct_total"

let m_solve_seconds =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-7 ~hi:100.0
    ~help:"wall time of one Socp.solve call (incl. any interior nudge)"
    "ldafp_socp_solve_seconds"

let m_newton_iterations =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1.0 ~hi:1e4
    ~help:"Newton iterations per Socp.solve (summed over the tau ladder)"
    "ldafp_socp_newton_iterations"

let m_cert_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"dual-certificate evaluations attempted" "ldafp_socp_cert_total"

let m_cert_repaired_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"certificates whose multipliers needed the feasibility repair \
           projection"
    "ldafp_socp_cert_repaired_total"

let m_cert_failed_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"certificate evaluations that failed (repair impossible or \
           primal-dual slack excessive)"
    "ldafp_socp_cert_failed_total"

let m_cert_slack =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-12 ~hi:1e3
    ~help:"primal objective minus certified dual value per certificate \
           (clamped below at 1e-12)"
    "ldafp_socp_cert_slack"

type lin = { a : Vec.t; b : float }
type soc = { l : Mat.t; g : Vec.t; c : Vec.t; d : float }

type problem = {
  n : int;
  p : Mat.t;
  q : Vec.t;
  lins : lin array;
  socs : soc array;
  obj_scale : float;
}

let of_parts ?(obj_scale = 1.0) ~p ~q ~lins ~socs n =
  if n <= 0 then invalid_arg "Socp.of_parts: n must be positive";
  if Mat.dims p <> (n, n) then invalid_arg "Socp.of_parts: P must be n x n";
  if Vec.dim q <> n then invalid_arg "Socp.of_parts: q must have length n";
  Array.iter
    (fun { a; _ } ->
      if Vec.dim a <> n then
        invalid_arg "Socp.of_parts: linear constraint dimension mismatch")
    lins;
  Array.iter
    (fun { l; g; c; _ } ->
      if Mat.cols l <> n || Vec.dim c <> n || Vec.dim g <> Mat.rows l then
        invalid_arg "Socp.of_parts: cone constraint dimension mismatch")
    socs;
  { n; p; q; lins; socs; obj_scale }

let with_objective_scale pb obj_scale = { pb with obj_scale }

(* ------------------------------------------------------------------ *)
(* Variable fixing (restriction to a coordinate subspace)              *)
(* ------------------------------------------------------------------ *)

(* A box-split branch-and-bound search pins variables to singletons long
   before its boxes become atomic, and a pinned coordinate pair
   [x_j <= c, -x_j <= -c] has {e no} strict interior: the log barrier
   cannot even evaluate there, so every such node used to fall through
   phase-I to an uncertified lower bound of 0 — and every warm start on
   one was unrepairable by construction.  Exact substitution fixes both:
   eliminate the pinned coordinates, solve over the free ones (whose
   strict interior is back), and embed the optimum. *)
type restriction = {
  full_n : int;
  free : int array;  (* reduced index -> full index, ascending *)
  pinned : Vec.t;  (* full-dimensional; free entries are 0 *)
  reduced : problem;
  obj_const : float;
      (* unscaled objective offset of the substitution,
         ½ vᵀPv + qᵀv over the pinned part *)
}

let restrict pb ~fixed =
  if Array.length fixed = 0 then invalid_arg "Socp.restrict: nothing to fix";
  let keep = Array.make pb.n true in
  let v = Vec.zeros pb.n in
  Array.iter
    (fun (j, value) ->
      if j < 0 || j >= pb.n then
        invalid_arg "Socp.restrict: index out of range";
      keep.(j) <- false;
      v.(j) <- value)
    fixed;
  let free =
    Array.of_list (List.filter (fun j -> keep.(j)) (List.init pb.n Fun.id))
  in
  let nf = Array.length free in
  if nf = 0 then invalid_arg "Socp.restrict: every variable fixed";
  (* Full x = y on the free coordinates, v on the fixed ones.  Every
     part below is the exact substitution — no approximation — so the
     reduced optimum embeds back to the optimum of the full problem
     restricted to the pinned slice, with identical certified gaps. *)
  let pv = Mat.mul_vec pb.p v in
  let p = Mat.init nf nf (fun i j -> pb.p.(free.(i)).(free.(j))) in
  let q = Vec.init nf (fun i -> pb.q.(free.(i)) +. pv.(free.(i))) in
  let obj_const = (0.5 *. Mat.quadratic_form pb.p v) +. Vec.dot pb.q v in
  let sub_vec a = Vec.init nf (fun i -> a.(free.(i))) in
  let all_zero a = Array.for_all (fun x -> x = 0.0) a in
  let infeasible = ref false in
  let lins =
    Array.to_list pb.lins
    |> List.filter_map (fun { a; b } ->
           let b = b -. Vec.dot a v in
           let a = sub_vec a in
           if all_zero a then begin
             (* Fixed-variables-only constraint: now a constant.
                Satisfied (the pinned pair's own half-spaces, with slack
                exactly 0) — drop it; violated — the slice is empty. *)
             if b < 0.0 then infeasible := true;
             None
           end
           else Some { a; b })
    |> Array.of_list
  in
  let socs =
    Array.map
      (fun { l; g; c; d } ->
        let rows = Mat.rows l in
        let lv = Mat.mul_vec l v in
        {
          l = Mat.init rows nf (fun r i -> l.(r).(free.(i)));
          g = Vec.init rows (fun r -> g.(r) +. lv.(r));
          c = sub_vec c;
          d = d +. Vec.dot c v;
        })
      pb.socs
  in
  Array.iter
    (fun { l; g; c; d } ->
      if
        all_zero c
        && Array.for_all all_zero l
        && Vec.norm2 g > d
      then infeasible := true)
    socs;
  if !infeasible then None
  else
    Some
      {
        full_n = pb.n;
        free;
        pinned = v;
        reduced = { n = nf; p; q; lins; socs; obj_scale = pb.obj_scale };
        obj_const;
      }

let restriction_embed r y =
  if Vec.dim y <> Array.length r.free then
    invalid_arg "Socp.restriction_embed: dimension mismatch";
  let x = Vec.copy r.pinned in
  Array.iteri (fun i j -> x.(j) <- y.(i)) r.free;
  x

let restriction_project r x =
  if Vec.dim x <> r.full_n then
    invalid_arg "Socp.restriction_project: dimension mismatch";
  Vec.init (Array.length r.free) (fun i -> x.(r.free.(i)))

let restriction_objective_const r = r.reduced.obj_scale *. r.obj_const

let problem ?p ?q ?(lins = []) ?(socs = []) n =
  if n <= 0 then invalid_arg "Socp.problem: n must be positive";
  let p = match p with Some p -> p | None -> Mat.zeros n n in
  let q = match q with Some q -> q | None -> Vec.zeros n in
  if Mat.dims p <> (n, n) then invalid_arg "Socp.problem: P must be n x n";
  if not (Mat.is_symmetric ~tol:1e-8 p) then
    invalid_arg "Socp.problem: P must be symmetric";
  of_parts ~p:(Mat.symmetrize p) ~q ~lins:(Array.of_list lins)
    ~socs:(Array.of_list socs) n

let box_constraints lo hi =
  if Vec.dim lo <> Vec.dim hi then
    invalid_arg "Socp.box_constraints: dimension mismatch";
  let n = Vec.dim lo in
  List.concat
    (List.init n (fun i ->
         [ { a = Vec.basis n i; b = hi.(i) };
           { a = Vec.neg (Vec.basis n i); b = -.lo.(i) } ]))

let objective_value pb x =
  pb.obj_scale *. ((0.5 *. Mat.quadratic_form pb.p x) +. Vec.dot pb.q x)

let soc_violation { l; g; c; d } x =
  let v = Vec.add (Mat.mul_vec l x) g in
  Vec.norm2 v -. (Vec.dot c x +. d)

let max_violation pb x =
  let worst = ref Float.neg_infinity in
  Array.iter (fun { a; b } -> worst := Float.max !worst (Vec.dot a x -. b)) pb.lins;
  Array.iter (fun s -> worst := Float.max !worst (soc_violation s x)) pb.socs;
  if !worst = Float.neg_infinity then 0.0 else !worst

let is_feasible ?(tol = 1e-9) pb x = max_violation pb x <= tol

type params = {
  tau0 : float;
  mu : float;
  gap_tol : float;
  newton : Newton.params;
  max_outer : int;
  start_margin : float;
}

let default_params =
  { tau0 = 1.0; mu = 15.0; gap_tol = 1e-8;
    newton = { Newton.default_params with tol = 1e-10 }; max_outer = 60;
    start_margin = 1e-6 }

(* Warm-start schedule advance: from a near-optimal start the early
   low-tau centerings are redundant, and because the tau sequence is the
   same geometric ladder, the final tau (hence the certified gap) is
   unchanged — only the number of rungs climbed differs. *)
let warm_start_params ?(levels = 5) params =
  { params with tau0 = params.tau0 *. (params.mu ** float_of_int levels) }

(* How many rungs a solve seeded near an optimum certified at
   [tau_final] may skip.  Integer rungs of the same geometric ladder, so
   the terminal tau — and with it the certified gap — is exactly the
   cold solve's; [back] extra rungs of headroom for starts that were
   repaired rather than inherited verbatim.  The clamp to >= 1 remaining
   rung matters: a ladder that starts at or beyond the parent's terminal
   tau would run zero centering steps and return the (parent's!) start
   unrefined. *)
let restart_levels ?(back = 1) params ~tau_final =
  if
    (not (Float.is_finite tau_final))
    || tau_final <= params.tau0 || params.mu <= 1.0
  then 0
  else
    let rungs = floor (log (tau_final /. params.tau0) /. log params.mu) in
    max 0 (int_of_float rungs - max 1 back)

type status = Optimal | Suboptimal

type solution = {
  x : Vec.t;
  objective : float;
  gap_bound : float;
  tau_final : float;
  outer_iterations : int;
  newton_iterations : int;
  status : status;
}

(* Total barrier parameter: 1 per half-space, 2 per cone. *)
let barrier_nu pb = Array.length pb.lins + (2 * Array.length pb.socs)

(* Per-domain scratch for the centering oracle and the Newton solver,
   keyed by problem dimension.  Domain-local (Domain.DLS), so workers of
   the parallel B&B driver never share buffers even when regions migrate
   between shards (Work_deque); the phase-I augmented problem has
   dimension n+1 and therefore its own entry, so phase-I and phase-II
   never clobber each other either. *)
type scratch = {
  ws : Newton.workspace;
  px : Vec.t;  (* P x *)
  mutable v : Vec.t;  (* cone residual Lx + g; sized to the largest cone *)
  ltv : Vec.t;  (* Lᵀ v *)
  gh : Vec.t;  (* gradient of the cone slack h *)
}

let scratch_key : (int, scratch) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 7)

let scratch_for pb =
  let tbl = Domain.DLS.get scratch_key in
  let max_rows =
    Array.fold_left (fun m { l; _ } -> max m (Mat.rows l)) 0 pb.socs
  in
  let sc =
    match Hashtbl.find_opt tbl pb.n with
    | Some sc -> sc
    | None ->
        let sc =
          {
            ws = Newton.workspace pb.n;
            px = Vec.zeros pb.n;
            v = Vec.zeros max_rows;
            ltv = Vec.zeros pb.n;
            gh = Vec.zeros pb.n;
          }
        in
        Hashtbl.replace tbl pb.n sc;
        sc
  in
  if Vec.dim sc.v < max_rows then sc.v <- Vec.zeros max_rows;
  sc

(* In-place oracle for tau * f(x) + phi(x); None outside the barrier
   domain.  All temporaries live in [sc]; [grad]/[hess] are the Newton
   workspace buffers.  [relax] loosens every constraint offset by that
   absolute amount (b ← b + relax, d ← d + relax): the δ-relaxed barrier
   of the one-step interiority correction, whose domain contains points
   just outside the true feasible set. *)
let centering_into ?(relax = 0.0) pb sc tau : Newton.oracle_into =
 fun x ~grad ~hess ->
  let n = pb.n in
  let s_obj = tau *. pb.obj_scale in
  Mat.mul_vec_into pb.p x ~dst:sc.px;
  let fx = (0.5 *. Vec.dot x sc.px) +. Vec.dot pb.q x in
  for i = 0 to n - 1 do
    grad.(i) <- s_obj *. (sc.px.(i) +. pb.q.(i))
  done;
  Mat.scale_into s_obj pb.p ~dst:hess;
  let value = ref (s_obj *. fx) in
  let ok = ref true in
  Array.iter
    (fun { a; b } ->
      if !ok then begin
        let s = b +. relax -. Vec.dot a x in
        if s <= 0.0 then ok := false
        else begin
          value := !value -. log s;
          let inv_s = 1.0 /. s in
          for i = 0 to n - 1 do
            grad.(i) <- grad.(i) +. (a.(i) *. inv_s);
            if a.(i) <> 0.0 then
              for j = 0 to n - 1 do
                hess.(i).(j) <- hess.(i).(j) +. (a.(i) *. a.(j) *. inv_s *. inv_s)
              done
          done
        end
      end)
    pb.lins;
  Array.iter
    (fun { l; g; c; d } ->
      if !ok then begin
        let u = Vec.dot c x +. d +. relax in
        let rows_l = Mat.rows l in
        let vv = ref 0.0 in
        for r = 0 to rows_l - 1 do
          let vr = Vec.dot l.(r) x +. g.(r) in
          sc.v.(r) <- vr;
          vv := !vv +. (vr *. vr)
        done;
        let h = (u *. u) -. !vv in
        if u <= 0.0 || h <= 0.0 then ok := false
        else begin
          value := !value -. log h;
          (* grad h = 2u c - 2 Lᵀ v *)
          Array.fill sc.ltv 0 n 0.0;
          for r = 0 to rows_l - 1 do
            let vr = sc.v.(r) in
            if vr <> 0.0 then
              let lr = l.(r) in
              for j = 0 to n - 1 do
                sc.ltv.(j) <- sc.ltv.(j) +. (vr *. lr.(j))
              done
          done;
          for i = 0 to n - 1 do
            sc.gh.(i) <- (2.0 *. u *. c.(i)) -. (2.0 *. sc.ltv.(i))
          done;
          let inv_h = 1.0 /. h in
          for i = 0 to n - 1 do
            grad.(i) <- grad.(i) -. (sc.gh.(i) *. inv_h)
          done;
          (* hess(-log h) = (gh ghᵀ)/h² − (2ccᵀ − 2LᵀL)/h *)
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let ltl = ref 0.0 in
              for r = 0 to rows_l - 1 do
                ltl := !ltl +. (l.(r).(i) *. l.(r).(j))
              done;
              hess.(i).(j) <-
                hess.(i).(j)
                +. (sc.gh.(i) *. sc.gh.(j) *. inv_h *. inv_h)
                -. (((2.0 *. c.(i) *. c.(j)) -. (2.0 *. !ltl)) *. inv_h)
            done
          done
        end
      end)
    pb.socs;
  if !ok && not (Float.is_nan !value) then Some !value else None

(* Allocating wrapper, kept for the derivative tests. *)
let centering_oracle pb tau : Newton.oracle =
 fun x ->
  let sc = scratch_for pb in
  let grad = Vec.zeros pb.n in
  let hess = Mat.zeros pb.n pb.n in
  match centering_into pb sc tau x ~grad ~hess with
  | Some value -> Some (value, grad, hess)
  | None -> None

(* Residual scale of one half-space at x: the natural size of the
   numbers whose difference is the slack.  Dividing a slack by it turns
   an absolute margin into a scale-free one, so a problem with its
   coefficients multiplied by 1e6 accepts exactly the same warm starts
   as the original (the absolute 1e-6 [start_margin] used to reject
   them). *)
let lin_scale b ax = 1.0 +. Float.abs b +. Float.abs ax

let soc_scale u nv = 1.0 +. Float.abs u +. nv

(* ‖Lx + g‖² without materialising the residual vector. *)
let soc_vv { l; g; _ } x =
  let vv = ref 0.0 in
  for r = 0 to Mat.rows l - 1 do
    let vr = Vec.dot l.(r) x +. g.(r) in
    vv := !vv +. (vr *. vr)
  done;
  !vv

(* Minimum over all constraints of slack / residual scale, in the
   σ = (cᵀx+d) − ‖Lx+g‖ form for cones.  Positive iff x is strictly
   interior.  The cone sign is decided on h = u² − ‖v‖² — the exact
   expression the barrier oracle tests — so a point this function calls
   interior is never rejected by [centering_into] over a rounding
   disagreement between the two algebraically-equal forms. *)
let min_relative_slack pb x =
  let worst = ref Float.infinity in
  Array.iter
    (fun { a; b } ->
      let ax = Vec.dot a x in
      worst := Float.min !worst ((b -. ax) /. lin_scale b ax))
    pb.lins;
  Array.iter
    (fun ({ c; d; _ } as s) ->
      let u = Vec.dot c x +. d in
      let vv = soc_vv s x in
      let nv = sqrt vv in
      let scale = soc_scale u nv in
      let rel =
        if u <= 0.0 then (u -. nv) /. scale
        else ((u *. u) -. vv) /. (u +. nv) /. scale
      in
      worst := Float.min !worst rel)
    pb.socs;
  !worst

(* Strict interiority without derivatives, O(constraints · n) — cheap
   enough to test warm starts on the bound-oracle hot path (the full
   oracle evaluation it replaces builds an n×n Hessian).  [margin] is
   {e relative}: every constraint must clear margin × its residual
   scale, so the test is invariant under rescaling the constraint
   coefficients.  [margin = 0.] is the barrier's exact domain. *)
let is_strictly_interior ?(margin = 0.0) pb x =
  Vec.dim x = pb.n && min_relative_slack pb x > margin

type feasibility =
  | Strictly_feasible of Vec.t
  | Infeasible of float
  | Unknown of Vec.t

(* Augment with a slack variable s (index n): every half-space becomes
   aᵀx − s <= b and every cone ‖Lx+g‖ <= cᵀx + d + s; minimise s. *)
let phase1_problem pb =
  let n = pb.n in
  let extend v extra = Array.append v [| extra |] in
  let lins =
    Array.to_list
      (Array.map (fun { a; b } -> { a = extend a (-1.0); b }) pb.lins)
  in
  let socs =
    Array.to_list
      (Array.map
         (fun { l; g; c; d } ->
           let l' = Mat.init (Mat.rows l) (n + 1) (fun i j ->
               if j < n then l.(i).(j) else 0.0)
           in
           { l = l'; g; c = extend c 1.0; d })
         pb.socs)
  in
  problem ~q:(extend (Vec.zeros n) 1.0) ~lins ~socs (n + 1)

let find_strictly_feasible ?(params = default_params) ?(margin = 1e-9) pb
    ~start =
  if Vec.dim start <> pb.n then
    invalid_arg "Socp.find_strictly_feasible: start dimension";
  let v0 = max_violation pb start in
  (* The margin is relative (slack over residual scale), so the
     feasibility verdict does not change under a rescaling of the
     constraint coefficients. *)
  if min_relative_slack pb start >= margin then
    Strictly_feasible (Vec.copy start)
  else begin
    (* The expensive path: an actual phase-I barrier solve (the early
       return above is the cheap already-interior case and stays
       unobserved).  This span vs. its absence is exactly the
       phase-I-paid vs. warm-path distinction in a trace. *)
    let t0 = Obs.Clock.now_ns () in
    let aug = phase1_problem pb in
    let s0 = (Float.max v0 0.0) +. 1.0 +. (0.1 *. Float.abs v0) in
    let z = ref (Array.append start [| s0 |]) in
    let sc = scratch_for aug in
    (* Custom outer loop so we can stop as soon as s goes negative. *)
    let nu = float_of_int (barrier_nu aug) in
    let tau = ref params.tau0 in
    let result = ref None in
    let outer = ref 0 in
    while !result = None && !outer < params.max_outer do
      incr outer;
      let r =
        Newton.minimize_into ~params:params.newton sc.ws
          (centering_into aug sc !tau) !z
      in
      z := r.x;
      let s = !z.(aug.n - 1) in
      let x = Array.sub !z 0 pb.n in
      if min_relative_slack pb x >= margin then
        result := Some (Strictly_feasible x)
      else begin
        let gap = nu /. !tau in
        let dead =
          match r.status with
          | Newton.Stalled | Newton.Diverged -> true
          | Newton.Converged | Newton.Iteration_limit -> false
        in
        if gap <= params.gap_tol || dead then begin
          (* s is an upper bound on s*; s - gap is a lower bound. *)
          if s -. gap > margin then result := Some (Infeasible (s -. gap))
          else result := Some (Unknown x)
        end
        else tau := params.mu *. !tau
      end
    done;
    let fr =
      match !result with
      | Some r -> r
      | None -> Unknown (Array.sub !z 0 pb.n)
    in
    if Obs.Metrics.enabled () then Obs.Metrics.incr m_phase1_total;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"socp" "socp.phase1" ~t0_ns:t0
        ~dur_ns:(Obs.Clock.now_ns () - t0)
        ~args:
          [
            ("outer", Obs.Trace.Int !outer);
            ( "result",
              Obs.Trace.Str
                (match fr with
                | Strictly_feasible _ -> "strictly_feasible"
                | Infeasible _ -> "infeasible"
                | Unknown _ -> "unknown") );
          ];
    fr
  end

(* ------------------------------------------------------------------ *)
(* Warm-start interiority repair                                       *)
(* ------------------------------------------------------------------ *)

(* Pull x toward [target] just far enough that every constraint clears
   margin × its residual scale.  Per-constraint safe blends are exact
   for half-spaces (affine slack) and certified for cones by concavity:
   σ(α) = u(α) − ‖v(α)‖ is concave along the segment (affine minus
   convex), so the chord (1−α)σ(x) + ασ(target) under-estimates it and
   a blend clearing the chord bound clears the true slack.  The residual
   scales are likewise bounded by their endpoint maxima (|aᵀ·|, |u| and
   ‖v‖ are convex).  [None] when the target itself does not clear the
   margin — the caller falls back to the Newton correction. *)
let pull_to_interior ?(margin = 1e-8) pb ~target x =
  if Vec.dim x <> pb.n || Vec.dim target <> pb.n then None
  else begin
    let alpha = ref 0.0 in
    let ok = ref true in
    (* A constraint with slack below its safe margin at x needs at least
       α = (m − σx)/(σt − σx) of the way toward the target. *)
    let need m sx st =
      if st <= m then ok := false
      else if sx < m then alpha := Float.max !alpha ((m -. sx) /. (st -. sx))
    in
    Array.iter
      (fun { a; b } ->
        if !ok then begin
          let ax = Vec.dot a x and at = Vec.dot a target in
          let scale = Float.max (lin_scale b ax) (lin_scale b at) in
          need (margin *. scale) (b -. ax) (b -. at)
        end)
      pb.lins;
    Array.iter
      (fun ({ c; d; _ } as s) ->
        if !ok then begin
          let ux = Vec.dot c x +. d and ut = Vec.dot c target +. d in
          let nvx = sqrt (soc_vv s x) and nvt = sqrt (soc_vv s target) in
          let scale = Float.max (soc_scale ux nvx) (soc_scale ut nvt) in
          need (margin *. scale) (ux -. nvx) (ut -. nvt)
        end)
      pb.socs;
    if not !ok then None
    else begin
      let a = Float.min 1.0 !alpha in
      let y =
        if a <= 0.0 then Vec.copy x
        else Vec.init pb.n (fun i -> x.(i) +. (a *. (target.(i) -. x.(i))))
      in
      (* The chord bound is exact arithmetic; re-verify against floating
         rounding at a fraction of the margin before handing the point
         to the barrier. *)
      if is_strictly_interior ~margin:(0.25 *. margin) pb y then Some y
      else None
    end
  end

(* One-step infeasible-start Newton correction: relax every constraint
   by the smallest absolute δ that makes x clear margin × scale on the
   relaxed problem (so x is certifiably inside the relaxed barrier's
   domain), take a single damped Newton step on the relaxed pure barrier
   (τ = 0 — the step aims at the relaxed analytic center, i.e. straight
   inward), and keep the result iff it is strictly interior to the
   {e true} constraints.  O(1) heap allocation beyond the returned
   vector: the oracle and the step run in the per-domain scratch. *)
let correct_to_interior ?(params = default_params) ?(margin = 1e-8) pb x =
  if Vec.dim x <> pb.n then None
  else begin
    let delta = ref 0.0 in
    Array.iter
      (fun { a; b } ->
        let ax = Vec.dot a x in
        let need = (margin *. lin_scale b ax) -. (b -. ax) in
        delta := Float.max !delta need)
      pb.lins;
    Array.iter
      (fun ({ c; d; _ } as s) ->
        let u = Vec.dot c x +. d in
        let nv = sqrt (soc_vv s x) in
        let need = (margin *. soc_scale u nv) -. (u -. nv) in
        delta := Float.max !delta need)
      pb.socs;
    if not (Float.is_finite !delta) then None
    else if !delta <= 0.0 then Some (Vec.copy x)
    else begin
      let sc = scratch_for pb in
      let dst = Vec.zeros pb.n in
      if
        Newton.step_into ~params:params.newton sc.ws
          (centering_into ~relax:!delta pb sc 0.0)
          x ~dst
        && is_strictly_interior ~margin:(0.25 *. margin) pb dst
      then Some dst
      else None
    end
  end

type warm_prep = Warm_interior | Warm_pulled | Warm_corrected

(* The warm-start decision tree (doc/solver.mld): accept a certifiably
   interior start as-is; otherwise pull it toward the caller's interior
   target; otherwise take one corrective Newton step.  [None] means the
   caller must solve cold (phase-I). *)
let prepare_warm_start ?(params = default_params) ?(margin = 1e-8) ?target pb
    x =
  if Vec.dim x <> pb.n then None
  else if is_strictly_interior ~margin pb x then Some (x, Warm_interior)
  else begin
    let pulled =
      match target with
      | Some t -> pull_to_interior ~margin pb ~target:t x
      | None -> None
    in
    match pulled with
    | Some y ->
        if Obs.Metrics.enabled () then Obs.Metrics.incr m_warm_pull_total;
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~cat:"socp" "socp.warm_pull";
        Some (y, Warm_pulled)
    | None -> (
        match correct_to_interior ~params ~margin pb x with
        | Some y ->
            if Obs.Metrics.enabled () then
              Obs.Metrics.incr m_warm_correct_total;
            if Obs.Trace.enabled () then
              Obs.Trace.instant ~cat:"socp" "socp.warm_correct";
            Some (y, Warm_corrected)
        | None -> None)
  end

let solve ?(params = default_params) ?certificate pb ~start =
  if Vec.dim start <> pb.n then invalid_arg "Socp.solve: start dimension";
  (* The span covers the whole solve including any interior nudge, so a
     phase-I span nested inside it shows up as exactly the overhead the
     warm path avoids. *)
  let t0 = Obs.Clock.now_ns () in
  let finish sol =
    let dns = Obs.Clock.now_ns () - t0 in
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_solve_total;
      Obs.Metrics.observe m_solve_seconds (float_of_int dns *. 1e-9);
      Obs.Metrics.observe m_newton_iterations
        (float_of_int sol.newton_iterations)
    end;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"socp" "socp.solve" ~t0_ns:t0 ~dur_ns:dns
        ~args:
          [
            ("outer", Obs.Trace.Int sol.outer_iterations);
            ("newton", Obs.Trace.Int sol.newton_iterations);
            ( "status",
              Obs.Trace.Str
                (match sol.status with
                | Optimal -> "optimal"
                | Suboptimal -> "suboptimal") );
          ];
    sol
  in
  let start =
    if is_strictly_interior pb start then start
    else begin
      (* The start sits on (or within roundoff of) the constraint
         boundary — common when a caller clips a warm start to the box. *)
      let blended =
        match certificate with
        | Some cert when Vec.dim cert = pb.n && is_strictly_interior pb cert
          ->
            (* Pull the start toward a point the caller certifies as
               strictly interior (a phase-I output or a previous barrier
               iterate): by convexity some blend is interior, so no
               phase-I solve is needed.  Small alphas first to stay close
               to the warm start; alpha = 1 recovers the certificate. *)
            let rec go = function
              | [] -> None
              | alpha :: rest ->
                  let cand =
                    Vec.init pb.n (fun i ->
                        start.(i) +. (alpha *. (cert.(i) -. start.(i))))
                  in
                  if is_strictly_interior pb cand then Some cand else go rest
            in
            go [ 0.01; 0.1; 0.5; 1.0 ]
        | _ -> None
      in
      match blended with
      | Some x -> x
      | None ->
          (* Relative test: a start violating every constraint by at most
             start_margin × its residual scale is repairable regardless
             of how the problem is scaled. *)
          if min_relative_slack pb start >= -.params.start_margin then
            (* No certificate: nudge into the interior with a phase-I
               solve rather than rejecting. *)
            match find_strictly_feasible ~params pb ~start with
            | Strictly_feasible x -> x
            | Infeasible _ | Unknown _ ->
                invalid_arg "Socp.solve: start point not strictly feasible"
          else invalid_arg "Socp.solve: start point not strictly feasible"
    end
  in
  let sc = scratch_for pb in
  let nu = float_of_int (barrier_nu pb) in
  if nu = 0.0 then begin
    (* Unconstrained QP: single Newton solve. *)
    let r =
      Newton.minimize_into ~params:params.newton sc.ws
        (centering_into pb sc 1.0) start
    in
    let diverged = r.status = Newton.Diverged in
    finish
      { x = r.x; objective = objective_value pb r.x;
        gap_bound = (if diverged then Float.infinity else 0.0);
        tau_final = Float.infinity;
        outer_iterations = 0; newton_iterations = r.iterations;
        status = (if diverged then Suboptimal else Optimal) }
  end
  else begin
    let x = ref start in
    let tau = ref params.tau0 in
    let outer = ref 0 in
    let newton_total = ref 0 in
    let stalled = ref false in
    while nu /. !tau > params.gap_tol && !outer < params.max_outer
          && not !stalled do
      incr outer;
      let r =
        Newton.minimize_into ~params:params.newton sc.ws
          (centering_into pb sc !tau) !x
      in
      newton_total := !newton_total + r.iterations;
      x := r.x;
      (match r.status with
      | Newton.Stalled | Newton.Diverged -> stalled := true
      | Newton.Converged | Newton.Iteration_limit -> ());
      tau := params.mu *. !tau
    done;
    let gap = nu /. !tau *. params.mu (* gap before the last multiply *) in
    let status =
      if nu /. !tau <= params.gap_tol || gap <= params.gap_tol then Optimal
      else Suboptimal
    in
    (* If the loop never ran, !x still aliases the caller's start. *)
    let x = if !x == start then Vec.copy start else !x in
    finish
      { x; objective = objective_value pb x; gap_bound = gap;
        (* The tau the point was last centered at: !tau was multiplied
           once more after the final centering, so divide it back.
           gap_bound = ν / tau_final by construction. *)
        tau_final = !tau /. params.mu;
        outer_iterations = !outer; newton_iterations = !newton_total; status }
  end

let centering_oracle_for_tests = centering_oracle

let solve_auto ?(params = default_params) pb ~start =
  match find_strictly_feasible ~params pb ~start with
  | Strictly_feasible x -> Some (solve ~params pb ~start:x)
  | Infeasible _ | Unknown _ -> None

(* ------------------------------------------------------------------ *)
(* Independent dual certificates (Neumaier–Shcherbina safe bounds)     *)
(* ------------------------------------------------------------------ *)

(* The primal objective of a barrier solve is {e not} a lower bound on
   the optimum — a stalled Newton iteration, a jittered Cholesky or
   plain roundoff can leave it above or below the truth, and a bound
   that overstates silently prunes the true optimum out of a
   branch-and-bound search.  The cure is classical (Neumaier &
   Shcherbina, Math. Prog. 2004; Jansson's rigorous SDP/SOCP bounds):
   build a {e dual feasible} point from the terminal barrier iterate,
   repair its approximate feasibility with a closed-form projection,
   and evaluate the resulting dual objective in outward-rounded
   interval arithmetic.  Weak duality then makes the result a true
   lower bound {e whatever} the primal solve did.

   Derivation, in the sign convention of this file (minimise
   f(x) = s·(½xᵀPx + qᵀx), s = [obj_scale] > 0, over aᵢᵀx ≤ bᵢ and
   ‖Lⱼx+gⱼ‖ ≤ cⱼᵀx+dⱼ, P positive semidefinite):

   for any λ ≥ 0 and cone pairs (wⱼ, zⱼ) with ‖zⱼ‖ ≤ wⱼ, every
   feasible y satisfies

     f(y) ≥ ½s·yᵀPy + rᵀy − κ,
       r = s·q + Σᵢ λᵢaᵢ + Σⱼ (Lⱼᵀzⱼ − wⱼcⱼ),
       κ = Σᵢ λᵢbᵢ + Σⱼ (wⱼdⱼ − zⱼᵀgⱼ)

   (each added term is ≤ 0 on the feasible set: λᵢ(aᵢᵀy − bᵢ) ≤ 0 and
   zⱼᵀ(Lⱼy+gⱼ) − wⱼ(cⱼᵀy+dⱼ) ≤ 0 by cone self-duality).  Since s·P is
   PSD, the quadratic supports its tangent plane at the primal iterate
   x*:  ½s·yᵀPy ≥ [s·Px*]ᵀy − ½s·x*ᵀPx*.  Writing ρ = s·Px* + r — the
   Lagrangian stationarity residual, tiny at a centered iterate but
   never assumed zero — gives, over any coordinate box [xlo, xhi]
   containing the feasible set,

     f(y) ≥ Σᵢ min(ρᵢ·xloᵢ, ρᵢ·xhiᵢ) − ½s·x*ᵀPx* − κ.

   Validity needs {e only} λ ≥ 0 and ‖zⱼ‖ ≤ wⱼ (both enforced exactly,
   with an upward-rounded norm for the cone test); the {e quality} of
   the bound — how close it lands to the primal objective — is what
   depends on how well the solve actually converged.  At a τ-centered
   point the multipliers below give a slack of about ν/τ, i.e. the
   certified bound is typically {e tighter} than the heuristic
   [objective − 2·gap_bound] it replaces.

   Multipliers from the terminal iterate (barrier stationarity at
   weight τ = tau_final):  λᵢ = 1/(τ·sᵢ) with sᵢ = bᵢ − aᵢᵀx*, and per
   cone, with u = cᵀx*+d, v = Lx*+g, h = u² − ‖v‖²:  wⱼ = 2u/(τh),
   zⱼ = 2v/(τh).  Repair: any multiplier that comes out negative,
   non-finite, or from a violated constraint is clipped to 0 (always
   dual-feasible); a z with upward-rounded norm above w is shrunk onto
   the cone, or the pair is zeroed.  The only true failure modes are a
   non-finite dual value (a residual ρᵢ ≠ 0 on an unbounded
   coordinate) and an excessive primal-dual slack. *)

type certificate = { dual_value : float; slack : float; repaired : bool }

type cert_failure =
  | Cert_repair_failed of string
  | Cert_gap_excessive of float

let describe_cert_failure = function
  | Cert_repair_failed msg -> Printf.sprintf "repair failed: %s" msg
  | Cert_gap_excessive slack ->
      Printf.sprintf "primal-dual slack %.3g exceeds the trust threshold"
        slack

(* Directed-rounding scalar helpers (the interval ops live in
   {!Interval}; these cover the two places a bare float bound is
   needed: the cone-norm test and the box extraction). *)
let dir_up x = if x = Float.infinity then x else Float.succ x
let dir_down x = if x = Float.neg_infinity then x else Float.pred x

(* Upper bound on the Euclidean norm of a float vector: upward-rounded
   sum of upward-rounded squares, then an upward step over the
   correctly-rounded sqrt. *)
let norm2_up z =
  let s = Array.fold_left (fun acc zi -> dir_up (acc +. dir_up (zi *. zi))) 0.0 z in
  dir_up (sqrt s)

let certify_lower_bound ?(max_rel_slack = 0.1) pb sol =
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_cert_total;
  let fail reason =
    if Obs.Metrics.enabled () then Obs.Metrics.incr m_cert_failed_total;
    Error (Cert_repair_failed reason)
  in
  let x = sol.x in
  let tau = sol.tau_final in
  let n = pb.n in
  let s_obj = pb.obj_scale in
  let constrained = Array.length pb.lins > 0 || Array.length pb.socs > 0 in
  if Vec.dim x <> n then fail "solution dimension mismatch"
  else if not (Array.for_all Float.is_finite x) then
    fail "non-finite primal iterate"
  else if not (Float.is_finite s_obj && s_obj > 0.0) then
    fail "objective scale not positive"
  else if constrained && not (Float.is_finite tau && tau > 0.0) then
    fail (Printf.sprintf "unusable terminal barrier weight %h" tau)
  else begin
    let repaired = ref false in
    (* Half-space multipliers, clipped to the nonnegative orthant. *)
    let lambda =
      Array.map
        (fun { a; b } ->
          let sl = b -. Vec.dot a x in
          let lam = 1.0 /. (tau *. sl) in
          if sl > 0.0 && Float.is_finite lam && lam > 0.0 then lam
          else begin
            repaired := true;
            0.0
          end)
        pb.lins
    in
    (* Cone multiplier pairs; [None] = pair zeroed by the repair. *)
    let cone_mult =
      Array.map
        (fun ({ l; g; c; d } as soc) ->
          let u = Vec.dot c x +. d in
          let vv = soc_vv soc x in
          let h = (u *. u) -. vv in
          let w = 2.0 *. u /. (tau *. h) in
          if not (u > 0.0 && h > 0.0 && Float.is_finite w && w > 0.0) then begin
            repaired := true;
            None
          end
          else begin
            let rows = Mat.rows l in
            let z =
              Vec.init rows (fun r ->
                  2.0 *. (Vec.dot l.(r) x +. g.(r)) /. (tau *. h))
            in
            (* ‖z‖ ≤ w is part of dual feasibility, so the norm test must
               be rigorous: shrink z onto the cone (checking with the
               upward-rounded norm each time), zero the pair if a few
               shrinks do not land inside. *)
            let rec fit tries z =
              let nz = norm2_up z in
              if Float.is_finite nz && nz <= w then Some (w, z)
              else if tries = 0 then None
              else begin
                repaired := true;
                let scale = w /. nz *. (1.0 -. 1e-12) in
                if Float.is_finite scale && scale > 0.0 then
                  fit (tries - 1) (Vec.scale scale z)
                else None
              end
            in
            match fit 3 z with
            | Some wz -> Some wz
            | None ->
                repaired := true;
                None
          end)
        pb.socs
    in
    (* Everything from here on is a rigorous enclosure: outward-rounded
       interval ops over {!Interval}, NaN surfacing as Invalid_argument
       (caught below and reported as a certification failure, never as
       a bound). *)
    match
      let ip = Interval.point in
      (* r = s·q + Σ λᵢaᵢ + Σ (Lⱼᵀzⱼ − wⱼcⱼ) *)
      let r = Array.init n (fun i -> Interval.wide_mul (ip s_obj) (ip pb.q.(i))) in
      let kappa = ref (ip 0.0) in
      Array.iteri
        (fun k { a; b } ->
          let lam = lambda.(k) in
          if lam <> 0.0 then begin
            for i = 0 to n - 1 do
              if a.(i) <> 0.0 then
                r.(i) <-
                  Interval.wide_add r.(i) (Interval.wide_mul (ip lam) (ip a.(i)))
            done;
            kappa := Interval.wide_add !kappa (Interval.wide_mul (ip lam) (ip b))
          end)
        pb.lins;
      Array.iteri
        (fun k { l; g; c; d } ->
          match cone_mult.(k) with
          | None -> ()
          | Some (w, z) ->
              let rows = Mat.rows l in
              for i = 0 to n - 1 do
                let acc = ref (Interval.wide_mul (Interval.neg (ip w)) (ip c.(i))) in
                for rr = 0 to rows - 1 do
                  if z.(rr) <> 0.0 && l.(rr).(i) <> 0.0 then
                    acc :=
                      Interval.wide_add !acc
                        (Interval.wide_mul (ip z.(rr)) (ip l.(rr).(i)))
                done;
                r.(i) <- Interval.wide_add r.(i) !acc
              done;
              kappa := Interval.wide_add !kappa (Interval.wide_mul (ip w) (ip d));
              for rr = 0 to rows - 1 do
                if z.(rr) <> 0.0 && g.(rr) <> 0.0 then
                  kappa :=
                    Interval.wide_sub !kappa
                      (Interval.wide_mul (ip z.(rr)) (ip g.(rr)))
              done)
        pb.socs;
      (* ρ = s·Px* + r and the tangent offset ½s·x*ᵀPx*, sharing the
         s·Px* enclosures. *)
      let quad = ref (ip 0.0) in
      let rho =
        Array.init n (fun i ->
            let pxi = ref (ip 0.0) in
            for j = 0 to n - 1 do
              if pb.p.(i).(j) <> 0.0 && x.(j) <> 0.0 then
                pxi :=
                  Interval.wide_add !pxi
                    (Interval.wide_mul (ip pb.p.(i).(j)) (ip x.(j)))
            done;
            let spxi = Interval.wide_mul (ip s_obj) !pxi in
            quad := Interval.wide_add !quad (Interval.wide_mul (ip x.(i)) spxi);
            Interval.wide_add spxi r.(i))
      in
      (* Coordinate box containing the feasible set, harvested from the
         single-nonzero half-space rows (the ±eᵢ box rows every LDA-FP
         relaxation carries; restriction preserves the shape).  Directed
         division keeps the harvested box outer. *)
      let xlo = Array.make n Float.neg_infinity in
      let xhi = Array.make n Float.infinity in
      Array.iter
        (fun { a; b } ->
          let idx = ref (-1) in
          let count = ref 0 in
          Array.iteri
            (fun i ai ->
              if ai <> 0.0 then begin
                incr count;
                idx := i
              end)
            a;
          if !count = 1 then begin
            let i = !idx in
            let ai = a.(i) in
            if ai > 0.0 then xhi.(i) <- Float.min xhi.(i) (dir_up (b /. ai))
            else xlo.(i) <- Float.max xlo.(i) (dir_down (b /. ai))
          end)
        pb.lins;
      (* bound = Σ min over the box of ρᵢ·xᵢ − ½s·x*ᵀPx* − κ. *)
      let lower =
        ref (Interval.wide_sub (Interval.neg (Interval.scale 0.5 !quad)) !kappa)
      in
      for i = 0 to n - 1 do
        lower :=
          Interval.wide_add !lower
            (Interval.wide_mul rho.(i) (Interval.make ~lo:xlo.(i) ~hi:xhi.(i)))
      done;
      Interval.lo !lower
    with
    | exception Invalid_argument msg ->
        fail (Printf.sprintf "interval evaluation: %s" msg)
    | dual_value ->
        if not (Float.is_finite dual_value) then
          fail
            "dual value not finite (nonzero residual on an unbounded \
             coordinate)"
        else begin
          let slack = sol.objective -. dual_value in
          if Obs.Metrics.enabled () then
            Obs.Metrics.observe m_cert_slack (Float.max slack 1e-12);
          if slack > max_rel_slack *. (1.0 +. Float.abs sol.objective) then begin
            if Obs.Metrics.enabled () then
              Obs.Metrics.incr m_cert_failed_total;
            Error (Cert_gap_excessive slack)
          end
          else begin
            if !repaired && Obs.Metrics.enabled () then
              Obs.Metrics.incr m_cert_repaired_total;
            Ok { dual_value; slack; repaired = !repaired }
          end
        end
  end
