(** Minimal mutable binary min-heap keyed by floats.

    Drives the best-first branch-and-bound: nodes are popped in order of
    increasing lower bound. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element. *)

val peek_key : 'a t -> float option
val filter_in_place : 'a t -> (float -> 'a -> bool) -> unit
(** Drop entries not satisfying the predicate, restoring heap order —
    used to prune queued boxes whose lower bound exceeds a new incumbent.
    O(n): compacts survivors in place and re-heapifies bottom-up; dead
    slots are cleared so dropped values do not stay pinned in memory. *)

val steal_half : 'a t -> 'a t -> int
(** [steal_half src dst] moves the ⌈n/2⌉ {e smallest}-key entries of
    [src] into [dst] (best keys first) and returns how many moved; 0
    when [src] is empty.  Heap order is restored on both sides.  The
    work-stealing batch transfer of {!Work_deque}. *)

val drop_worst : 'a t -> keep:int -> int * float
(** [drop_worst t ~keep] sheds the {e largest}-key entries until at most
    [keep] remain, returning [(dropped, min_dropped_key)] —
    [(0, infinity)] when nothing was shed.  The minimum shed key is what
    a sound bounded-memory frontier must fold into its reported gap:
    every shed node's subtree optimum is ≥ that key, so
    [min (frontier_bound, min_dropped_key)] stays a true global lower
    bound even though the nodes are gone.  O(n log n); called only on
    overflow. *)

val drain : 'a t -> (int -> float -> 'a -> unit) -> unit
(** [drain t f] pops every entry in ascending key order, calling
    [f rank key value] with [rank] counting up from 0; the heap is
    empty afterwards.  Used by the seed-phase dealer to place the
    seeded frontier round-robin by bound rank across shards. *)

val fold : ('acc -> float -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val min_key : 'a t -> float
(** [infinity] when empty. *)
