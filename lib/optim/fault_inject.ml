exception Injected of string

type config = {
  seed : int;
  bound_exn_prob : float;
  bound_nan_prob : float;
  branch_exn_prob : float;
  delay_prob : float;
  delay_seconds : float;
}

let none =
  {
    seed = 0;
    bound_exn_prob = 0.0;
    bound_nan_prob = 0.0;
    branch_exn_prob = 0.0;
    delay_prob = 0.0;
    delay_seconds = 0.0;
  }

let config ?(bound_exn_prob = 0.0) ?(bound_nan_prob = 0.0)
    ?(branch_exn_prob = 0.0) ?(delay_prob = 0.0) ?(delay_seconds = 1e-3) ~seed
    () =
  { seed; bound_exn_prob; bound_nan_prob; branch_exn_prob; delay_prob;
    delay_seconds }

(* SplitMix64 finaliser over (seed, call index, salt): a stateless,
   domain-safe uniform draw per decision.  No shared RNG state beyond the
   one atomic call counter. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform ~seed ~call ~salt =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int call) 0x9E3779B97F4A7C15L)
      (Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int salt) 0xD6E8FEB86659FD93L))
  in
  let bits = Int64.shift_right_logical (mix64 z) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let wrap cfg (oracle : _ Bnb.oracle) =
  let calls = Atomic.make 0 in
  let injected = Atomic.make 0 in
  let maybe_delay call =
    if cfg.delay_prob > 0.0 && uniform ~seed:cfg.seed ~call ~salt:3 < cfg.delay_prob
    then Unix.sleepf cfg.delay_seconds
  in
  let bound region =
    let call = Atomic.fetch_and_add calls 1 in
    maybe_delay call;
    if uniform ~seed:cfg.seed ~call ~salt:1 < cfg.bound_exn_prob then begin
      Atomic.incr injected;
      raise (Injected (Printf.sprintf "bound call %d" call))
    end
    else if uniform ~seed:cfg.seed ~call ~salt:2 < cfg.bound_nan_prob then begin
      Atomic.incr injected;
      Some { Bnb.lower = Float.nan; candidate = None }
    end
    else oracle.Bnb.bound region
  in
  let branch region =
    let call = Atomic.fetch_and_add calls 1 in
    maybe_delay call;
    if uniform ~seed:cfg.seed ~call ~salt:4 < cfg.branch_exn_prob then begin
      Atomic.incr injected;
      raise (Injected (Printf.sprintf "branch call %d" call))
    end
    else oracle.Bnb.branch region
  in
  ({ Bnb.bound; branch }, fun () -> Atomic.get injected)
