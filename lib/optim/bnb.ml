type 'sol bound_info = {
  lower : float;
  candidate : ('sol * float) option;
}

type ('region, 'sol) oracle = {
  bound : 'region -> 'sol bound_info option;
  branch : 'region -> 'region list;
}

type params = {
  max_nodes : int;
  rel_gap : float;
  abs_gap : float;
  time_limit : float option;
  log_every : int;
  domains : int;
}

let default_params =
  { max_nodes = 100_000; rel_gap = 1e-6; abs_gap = 1e-12; time_limit = None;
    log_every = 0; domains = 1 }

type ('region, 'sol) faults = {
  policy : Fault.policy;
  retry_bound : (attempt:int -> 'region -> 'sol bound_info option) option;
  fallback_bound : ('region -> float) option;
}

let default_faults =
  { policy = Fault.default_policy; retry_bound = None; fallback_bound = None }

type stop_reason =
  | Proved_optimal
  | Gap_reached
  | Node_budget
  | Time_budget
  | Interrupted

type stats = {
  infeasible_regions : int;
  bound_pruned : int;
  stale_pops : int;
  incumbent_updates : int;
  children_generated : int;
  domains_used : int;
  idle_wakeups : int;
  oracle_failures : int;
  retries : int;
  degraded_bounds : int;
  dropped_regions : int;
  warm_start_hits : int;
  phase1_skipped : int;
  oracle_seconds : float;
}

type oracle_counters = {
  warm_hits : int Atomic.t;
  phase1_skips : int Atomic.t;
  oracle_time_us : int Atomic.t;
}

let oracle_counters () =
  {
    warm_hits = Atomic.make 0;
    phase1_skips = Atomic.make 0;
    oracle_time_us = Atomic.make 0;
  }

let count_warm_start_hit oc = Atomic.incr oc.warm_hits
let count_phase1_skipped oc = Atomic.incr oc.phase1_skips

type 'sol result = {
  best : ('sol * float) option;
  bound : float;
  gap : float;
  nodes_explored : int;
  stop_reason : stop_reason;
  stats : stats;
}

type checkpointing = {
  path : string;
  every_nodes : int;
  fingerprint : string;
  save_on_stop : bool;
}

let checkpointing ?(every_nodes = 0) ?(save_on_stop = true) ~fingerprint path =
  { path; every_nodes; fingerprint; save_on_stop }

let src = Logs.Src.create "ldafp.bnb" ~doc:"branch-and-bound driver"

module Log = (val Logs.src_log src : Logs.LOG)

(* Budgets are wall-clock: [Sys.time] is process CPU time, which both
   overshoots wall budgets on a busy machine and inflates ~N× once N
   domains burn CPU concurrently. *)
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Fault containment around the oracle                                 *)
(* ------------------------------------------------------------------ *)

(* Outcome of a policy-guarded [bound] call: [Dropped_bound] means the
   policy ran out of options and abandoned the region (already counted). *)
type 'sol guarded = Bounded of 'sol bound_info option | Dropped_bound

(* A NaN candidate cost is poison: it compares false with everything, so
   it can neither be installed nor pruned coherently.  Strip it, keep the
   (valid) bound, and count the bad invocation.  [+infinity] candidates
   pass through — they are merely useless, never winning a comparison. *)
let sanitize_candidate (fc : Fault.counters) = function
  | Some { lower; candidate = Some (_, c) } when Float.is_nan c ->
      Atomic.incr fc.Fault.failures;
      Log.warn (fun m -> m "discarding candidate with NaN cost");
      Some { lower; candidate = None }
  | info -> info

let guarded_bound ~(faults : _ faults) ~(fc : Fault.counters)
    (oracle : _ oracle) region =
  let policy = faults.policy in
  let call attempt =
    let f =
      if attempt = 0 then oracle.bound
      else
        match faults.retry_bound with
        | Some retry -> retry ~attempt
        | None -> oracle.bound
    in
    match f region with
    | Some { lower; _ }
      when Float.is_nan lower || lower = Float.neg_infinity ->
        Error (Fault.Non_finite_bound lower, None)
    | info -> Ok info
    | exception e when Fault.containable e ->
        Error (Fault.Oracle_raised (Printexc.to_string e), Some e)
  in
  let rec attempt k =
    match call k with
    | Ok info -> Bounded (sanitize_candidate fc info)
    | Error (failure, original) ->
        Atomic.incr fc.Fault.failures;
        Log.debug (fun m ->
            m "bound failure (attempt %d): %s" (k + 1) (Fault.describe failure));
        if k < policy.Fault.max_retries then begin
          Atomic.incr fc.Fault.retries;
          attempt (k + 1)
        end
        else begin
          let degraded =
            if not policy.Fault.degrade then None
            else
              match faults.fallback_bound with
              | None -> None
              | Some fb -> (
                  match fb region with
                  | lb when Float.is_nan lb || lb = Float.neg_infinity -> None
                  | lb -> Some lb
                  | exception e when Fault.containable e ->
                      Log.warn (fun m ->
                          m "fallback bound itself failed: %s"
                            (Printexc.to_string e));
                      None)
          in
          match degraded with
          | Some lb ->
              Atomic.incr fc.Fault.degraded;
              Log.debug (fun m ->
                  m "degraded region to fallback bound %.6g after: %s" lb
                    (Fault.describe failure));
              Bounded (Some { lower = lb; candidate = None })
          | None ->
              if policy.Fault.reraise then
                match original with
                | Some e -> raise e
                | None -> failwith ("Bnb: " ^ Fault.describe failure)
              else begin
                Atomic.incr fc.Fault.dropped;
                Log.warn (fun m ->
                    m "dropping region after %d attempt(s): %s" (k + 1)
                      (Fault.describe failure));
                Dropped_bound
              end
        end
  in
  attempt 0

(* Cumulative oracle wall-time, accumulated in integer microseconds so
   parallel workers can add without a lock (no atomic float add). *)
let timed_guarded_bound ~faults ~fc ~(oc : oracle_counters) oracle region =
  let t0 = now () in
  Fun.protect
    ~finally:(fun () ->
      let dus = int_of_float ((now () -. t0) *. 1e6) in
      ignore (Atomic.fetch_and_add oc.oracle_time_us dus))
    (fun () -> guarded_bound ~faults ~fc oracle region)

let guarded_branch ~(faults : _ faults) ~(fc : Fault.counters) oracle region =
  let policy = faults.policy in
  let rec attempt k =
    match oracle.branch region with
    | children -> children
    | exception e when Fault.containable e ->
        Atomic.incr fc.Fault.failures;
        Log.debug (fun m ->
            m "branch failure (attempt %d): %s" (k + 1) (Printexc.to_string e));
        if k < policy.Fault.max_retries then begin
          Atomic.incr fc.Fault.retries;
          attempt (k + 1)
        end
        else if policy.Fault.reraise then raise e
        else begin
          Atomic.incr fc.Fault.dropped;
          Log.warn (fun m ->
              m "dropping unsplittable region after %d attempt(s): %s" (k + 1)
                (Printexc.to_string e));
          []
        end
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Checkpoint plumbing                                                 *)
(* ------------------------------------------------------------------ *)

(* The search either starts fresh from a root region (bounded first, as
   callers may rely on — e.g. to install a seeded incumbent) or restores
   a frontier whose entries were already bounded before the snapshot. *)
type ('region, 'sol) source =
  | Root of 'region
  | Restored of ('region, 'sol) Checkpoint.state

let counters_alist ~infeasible ~pruned ~stale ~updates ~children
    ~(fc : Fault.counters) ~(oc : oracle_counters) =
  [
    ("infeasible_regions", infeasible);
    ("bound_pruned", pruned);
    ("stale_pops", stale);
    ("incumbent_updates", updates);
    ("children_generated", children);
    ("oracle_failures", Atomic.get fc.Fault.failures);
    ("retries", Atomic.get fc.Fault.retries);
    ("degraded_bounds", Atomic.get fc.Fault.degraded);
    ("dropped_regions", Atomic.get fc.Fault.dropped);
    ("warm_start_hits", Atomic.get oc.warm_hits);
    ("phase1_skipped", Atomic.get oc.phase1_skips);
    ("oracle_time_us", Atomic.get oc.oracle_time_us);
  ]

(* Old checkpoints lack the warm-start counters; [Checkpoint.counter]
   returns 0 for missing keys, so resuming them is safe. *)
let restore_counters (fc : Fault.counters) (oc : oracle_counters) = function
  | Root _ -> (0, 0, 0, 0, 0, 0.0)
  | Restored (s : _ Checkpoint.state) ->
      let c = Checkpoint.counter s in
      Atomic.set fc.Fault.failures (c "oracle_failures");
      Atomic.set fc.Fault.retries (c "retries");
      Atomic.set fc.Fault.degraded (c "degraded_bounds");
      Atomic.set fc.Fault.dropped (c "dropped_regions");
      Atomic.set oc.warm_hits (c "warm_start_hits");
      Atomic.set oc.phase1_skips (c "phase1_skipped");
      Atomic.set oc.oracle_time_us (c "oracle_time_us");
      ( c "infeasible_regions", c "bound_pruned", c "stale_pops",
        c "incumbent_updates", c "children_generated", s.Checkpoint.elapsed )

(* A failed snapshot must not kill a multi-hour search: log and carry on
   (the previous checkpoint, if any, is intact thanks to tmp + rename). *)
let try_save ck state =
  try Checkpoint.save ~path:ck.path state
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    Log.warn (fun m -> m "checkpoint save to %s failed: %s" ck.path msg)

let stop_wants_save = function
  | Node_budget | Time_budget | Interrupted -> true
  | Proved_optimal | Gap_reached -> false

(* ------------------------------------------------------------------ *)
(* Sequential driver                                                   *)
(* ------------------------------------------------------------------ *)

let run_seq : type region sol.
    params:params ->
    faults:(region, sol) faults ->
    checkpointing:checkpointing option ->
    interrupt:(unit -> bool) option ->
    counters:oracle_counters option ->
    (region, sol) oracle ->
    (region, sol) source ->
    sol result =
 fun ~params ~faults ~checkpointing ~interrupt ~counters oracle source ->
  let queue = Pqueue.create () in
  let fc = Fault.fresh_counters () in
  let oc = match counters with Some c -> c | None -> oracle_counters () in
  let infeasible0, pruned0, stale0, updates0, children0, elapsed0 =
    restore_counters fc oc source
  in
  let incumbent =
    ref (match source with Root _ -> None | Restored s -> s.Checkpoint.incumbent)
  in
  let incumbent_cost =
    ref (match !incumbent with Some (_, c) -> c | None -> Float.infinity)
  in
  let nodes =
    ref (match source with Root _ -> 0 | Restored s -> s.Checkpoint.nodes_explored)
  in
  let start_time = now () in
  let elapsed () = elapsed0 +. (now () -. start_time) in
  let stop = ref None in
  let infeasible_regions = ref infeasible0 in
  let bound_pruned = ref pruned0 in
  let stale_pops = ref stale0 in
  let incumbent_updates = ref updates0 in
  let children_generated = ref children0 in
  let consider_candidate = function
    | Some (sol, cost) when cost < !incumbent_cost ->
        incumbent := Some (sol, cost);
        incumbent_cost := cost;
        incr incumbent_updates;
        (* New incumbent: drop queued regions it dominates. *)
        Pqueue.filter_in_place queue (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let enqueue region =
    match timed_guarded_bound ~faults ~fc ~oc oracle region with
    | Dropped_bound -> ()
    | Bounded None -> incr infeasible_regions
    | Bounded (Some { lower; candidate }) ->
        consider_candidate candidate;
        if lower < !incumbent_cost then Pqueue.push queue lower region
        else incr bound_pruned
  in
  (match source with
  | Root root -> enqueue root
  | Restored s ->
      Array.iter (fun (lb, region) -> Pqueue.push queue lb region)
        s.Checkpoint.frontier);
  let snapshot_state ck =
    {
      Checkpoint.fingerprint = ck.fingerprint;
      frontier =
        Array.of_list (Pqueue.fold (fun acc k v -> (k, v) :: acc) [] queue);
      incumbent = !incumbent;
      nodes_explored = !nodes;
      counters =
        counters_alist ~infeasible:!infeasible_regions ~pruned:!bound_pruned
          ~stale:!stale_pops ~updates:!incumbent_updates
          ~children:!children_generated ~fc ~oc;
      elapsed = elapsed ();
    }
  in
  let maybe_periodic_save () =
    match checkpointing with
    | Some ck when ck.every_nodes > 0 && !nodes mod ck.every_nodes = 0 ->
        try_save ck (snapshot_state ck)
    | _ -> ()
  in
  let gap_ok () =
    !incumbent_cost < Float.infinity
    &&
    let bound = Pqueue.min_key queue in
    let gap = !incumbent_cost -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs !incumbent_cost
  in
  let interrupted () = match interrupt with Some f -> f () | None -> false in
  while !stop = None do
    if Pqueue.is_empty queue then stop := Some Proved_optimal
    else if gap_ok () then stop := Some Gap_reached
    else if !nodes >= params.max_nodes then stop := Some Node_budget
    else if
      match params.time_limit with
      | Some limit -> elapsed () > limit
      | None -> false
    then stop := Some Time_budget
    else if interrupted () then stop := Some Interrupted
    else begin
      match Pqueue.pop queue with
      | None -> stop := Some Proved_optimal
      | Some (lb, region) ->
          if lb >= !incumbent_cost then
            (* Stale entry dominated by a newer incumbent. *)
            incr stale_pops
          else begin
            incr nodes;
            if params.log_every > 0 && !nodes mod params.log_every = 0 then
              Log.debug (fun m ->
                  m "node %d: bound %.6g incumbent %.6g queue %d" !nodes lb
                    !incumbent_cost (Pqueue.length queue));
            let children = guarded_branch ~faults ~fc oracle region in
            children_generated := !children_generated + List.length children;
            List.iter enqueue children;
            maybe_periodic_save ()
          end
    end
  done;
  let stop_reason = match !stop with Some r -> r | None -> Proved_optimal in
  (match checkpointing with
  | Some ck when ck.save_on_stop && stop_wants_save stop_reason ->
      try_save ck (snapshot_state ck)
  | _ -> ());
  let bound =
    if Pqueue.is_empty queue then
      (* Everything explored or pruned: the incumbent is optimal. *)
      Float.min !incumbent_cost (Pqueue.min_key queue)
    else Pqueue.min_key queue
  in
  {
    best = !incumbent;
    bound;
    gap =
      (if !incumbent_cost = Float.infinity then Float.infinity
       else !incumbent_cost -. bound);
    nodes_explored = !nodes;
    stop_reason;
    stats =
      {
        infeasible_regions = !infeasible_regions;
        bound_pruned = !bound_pruned;
        stale_pops = !stale_pops;
        incumbent_updates = !incumbent_updates;
        children_generated = !children_generated;
        domains_used = 1;
        idle_wakeups = 0;
        oracle_failures = Atomic.get fc.Fault.failures;
        retries = Atomic.get fc.Fault.retries;
        degraded_bounds = Atomic.get fc.Fault.degraded;
        dropped_regions = Atomic.get fc.Fault.dropped;
        warm_start_hits = Atomic.get oc.warm_hits;
        phase1_skipped = Atomic.get oc.phase1_skips;
        oracle_seconds = float_of_int (Atomic.get oc.oracle_time_us) *. 1e-6;
      };
  }

(* ------------------------------------------------------------------ *)
(* Parallel driver                                                     *)
(* ------------------------------------------------------------------ *)

(* The calling domain plus [params.domains - 1] spawned domains run the
   same worker loop over a shared Work_pool.  Expensive oracle calls
   (bound/branch) run outside the pool lock; every queue or counter
   mutation happens under it.  The incumbent cost is mirrored in an
   Atomic so workers prune against the freshest bound without locking.
   Termination mirrors the sequential checks, with the global bound
   taken over queued *and* in-flight regions so a gap can never be
   declared while a better region is still being processed.

   Fault containment is what makes the pool robust: oracle calls are
   policy-guarded, and the in-flight slot of an expanding worker is
   released in a [Fun.protect] finaliser, so even a non-containable
   exception re-broadcasts before propagating — one poisoned region can
   never leave siblings blocked in [wait]. *)
let run_par : type region sol.
    params:params ->
    faults:(region, sol) faults ->
    checkpointing:checkpointing option ->
    interrupt:(unit -> bool) option ->
    counters:oracle_counters option ->
    (region, sol) oracle ->
    (region, sol) source ->
    sol result =
 fun ~params ~faults ~checkpointing ~interrupt ~counters oracle source ->
  let workers = params.domains in
  let pool : region Work_pool.t = Work_pool.create ~workers in
  let fc = Fault.fresh_counters () in
  let oc = match counters with Some c -> c | None -> oracle_counters () in
  let infeasible0, pruned0, stale0, updates0, children0, elapsed0 =
    restore_counters fc oc source
  in
  let incumbent =
    ref (match source with Root _ -> None | Restored s -> s.Checkpoint.incumbent)
    (* under the pool lock *)
  in
  let incumbent_cost =
    Atomic.make
      (match !incumbent with Some (_, c) -> c | None -> Float.infinity)
  in
  let nodes =
    ref (match source with Root _ -> 0 | Restored s -> s.Checkpoint.nodes_explored)
  in
  let start_time = now () in
  let elapsed () = elapsed0 +. (now () -. start_time) in
  let stop = ref None in
  (* Counters below are mutated under the pool lock only. *)
  let infeasible_regions = ref infeasible0 in
  let bound_pruned = ref pruned0 in
  let stale_pops = ref stale0 in
  let incumbent_updates = ref updates0 in
  let children_generated = ref children0 in
  let last_saved_nodes = ref !nodes in
  let consider_candidate_locked = function
    | Some (sol, cost) when cost < Atomic.get incumbent_cost ->
        incumbent := Some (sol, cost);
        Atomic.set incumbent_cost cost;
        incr incumbent_updates;
        Work_pool.prune pool (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let record_bounded_locked region = function
    | None -> incr infeasible_regions
    | Some { lower; candidate } ->
        consider_candidate_locked candidate;
        if lower < Atomic.get incumbent_cost then
          Work_pool.push pool lower region
        else incr bound_pruned
  in
  (match source with
  | Root root ->
      (* The root is bounded on the calling domain before any worker
         starts, exactly as in the sequential driver (callers may rely on
         the root bound running first, e.g. to install a seeded
         incumbent). *)
      let root_info = timed_guarded_bound ~faults ~fc ~oc oracle root in
      Work_pool.locked pool (fun () ->
          match root_info with
          | Dropped_bound -> ()
          | Bounded info -> record_bounded_locked root info)
  | Restored s ->
      Work_pool.locked pool (fun () ->
          Array.iter (fun (lb, region) -> Work_pool.push pool lb region)
            s.Checkpoint.frontier));
  (* Snapshot under the lock: queued and in-flight regions are never
     mutated once visible to the pool (see Work_pool.snapshot), so
     marshalling them here is race-free.  Siblings pause on the lock for
     the duration of the write — the price of a consistent frontier. *)
  let snapshot_state_locked ck =
    {
      Checkpoint.fingerprint = ck.fingerprint;
      frontier = Array.of_list (Work_pool.snapshot pool);
      incumbent = !incumbent;
      nodes_explored = !nodes;
      counters =
        counters_alist ~infeasible:!infeasible_regions ~pruned:!bound_pruned
          ~stale:!stale_pops ~updates:!incumbent_updates
          ~children:!children_generated ~fc ~oc;
      elapsed = elapsed ();
    }
  in
  let maybe_periodic_save_locked () =
    match checkpointing with
    | Some ck
      when ck.every_nodes > 0 && !nodes - !last_saved_nodes >= ck.every_nodes
      ->
        last_saved_nodes := !nodes;
        try_save ck (snapshot_state_locked ck)
    | _ -> ()
  in
  let gap_ok_locked () =
    let inc = Atomic.get incumbent_cost in
    inc < Float.infinity
    &&
    let bound = Work_pool.frontier_bound pool in
    let gap = inc -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs inc
  in
  let interrupted () = match interrupt with Some f -> f () | None -> false in
  let halt_locked reason =
    if !stop = None then stop := Some reason;
    Work_pool.close pool
  in
  let worker i () =
    let rec loop () =
      let action =
        Work_pool.locked pool (fun () ->
            let rec decide () =
              if Work_pool.is_closed pool then `Exit
              else if Work_pool.drained pool then begin
                halt_locked Proved_optimal;
                `Exit
              end
              else if gap_ok_locked () then begin
                halt_locked Gap_reached;
                `Exit
              end
              else if !nodes >= params.max_nodes then begin
                halt_locked Node_budget;
                `Exit
              end
              else if
                match params.time_limit with
                | Some limit -> elapsed () > limit
                | None -> false
              then begin
                halt_locked Time_budget;
                `Exit
              end
              else if interrupted () then begin
                halt_locked Interrupted;
                `Exit
              end
              else
                match Work_pool.take pool ~worker:i with
                | None ->
                    (* Empty queue but siblings still expanding: their
                       children may refill it. *)
                    Work_pool.wait pool;
                    decide ()
                | Some (lb, region) ->
                    if lb >= Atomic.get incumbent_cost then begin
                      incr stale_pops;
                      Work_pool.release pool ~worker:i;
                      decide ()
                    end
                    else begin
                      incr nodes;
                      if params.log_every > 0 && !nodes mod params.log_every = 0
                      then
                        Log.debug (fun m ->
                            m "node %d [w%d]: bound %.6g incumbent %.6g queue %d"
                              !nodes i lb
                              (Atomic.get incumbent_cost)
                              (Work_pool.queue_length pool));
                      `Expand region
                    end
            in
            decide ())
      in
      match action with
      | `Exit -> ()
      | `Expand region ->
          (* The in-flight slot is released in a finaliser: even if an
             exception escapes the guards (non-containable, or a
             [reraise] policy), siblings blocked in [wait] are woken
             before it propagates. *)
          Fun.protect
            ~finally:(fun () ->
              Work_pool.locked pool (fun () -> Work_pool.release pool ~worker:i))
            (fun () ->
              let children = guarded_branch ~faults ~fc oracle region in
              Work_pool.locked pool (fun () ->
                  children_generated :=
                    !children_generated + List.length children);
              (* Bound each child outside the lock; publish immediately so
                 siblings prune against fresh incumbents. *)
              List.iter
                (fun child ->
                  match timed_guarded_bound ~faults ~fc ~oc oracle child with
                  | Dropped_bound -> ()
                  | Bounded info ->
                      Work_pool.locked pool (fun () ->
                          record_bounded_locked child info))
                children);
          Work_pool.locked pool (fun () -> maybe_periodic_save_locked ());
          loop ()
    in
    (* An oracle exception must not leave sibling domains blocked on the
       pool: close it, then re-raise (Domain.join propagates). *)
    try loop ()
    with e ->
      Work_pool.locked pool (fun () -> Work_pool.close pool);
      raise e
  in
  let spawned =
    Array.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  Array.iter Domain.join spawned;
  let stop_reason = match !stop with Some r -> r | None -> Proved_optimal in
  (match checkpointing with
  | Some ck when ck.save_on_stop && stop_wants_save stop_reason ->
      (* All workers have joined: nothing is in flight, the pool queue is
         the complete frontier. *)
      Work_pool.locked pool (fun () -> try_save ck (snapshot_state_locked ck))
  | _ -> ());
  let bound, idle_wakeups =
    Work_pool.locked pool (fun () ->
        let inc = Atomic.get incumbent_cost in
        let b =
          if Work_pool.queue_is_empty pool then
            Float.min inc (Work_pool.min_queue_key pool)
          else Work_pool.min_queue_key pool
        in
        (b, Work_pool.idle_wakeups pool))
  in
  let incumbent_cost = Atomic.get incumbent_cost in
  {
    best = !incumbent;
    bound;
    gap =
      (if incumbent_cost = Float.infinity then Float.infinity
       else incumbent_cost -. bound);
    nodes_explored = !nodes;
    stop_reason;
    stats =
      {
        infeasible_regions = !infeasible_regions;
        bound_pruned = !bound_pruned;
        stale_pops = !stale_pops;
        incumbent_updates = !incumbent_updates;
        children_generated = !children_generated;
        domains_used = workers;
        idle_wakeups;
        oracle_failures = Atomic.get fc.Fault.failures;
        retries = Atomic.get fc.Fault.retries;
        degraded_bounds = Atomic.get fc.Fault.degraded;
        dropped_regions = Atomic.get fc.Fault.dropped;
        warm_start_hits = Atomic.get oc.warm_hits;
        phase1_skipped = Atomic.get oc.phase1_skips;
        oracle_seconds = float_of_int (Atomic.get oc.oracle_time_us) *. 1e-6;
      };
  }

let run ~params ~faults ~checkpointing ~interrupt ~counters oracle source =
  if params.domains <= 1 then
    run_seq ~params ~faults ~checkpointing ~interrupt ~counters oracle source
  else run_par ~params ~faults ~checkpointing ~interrupt ~counters oracle source

let minimize ?(params = default_params) ?(faults = default_faults)
    ?checkpointing ?interrupt ?counters oracle root =
  run ~params ~faults ~checkpointing ~interrupt ~counters oracle (Root root)

let resume ?(params = default_params) ?(faults = default_faults)
    ?checkpointing ?interrupt ?counters oracle state =
  run ~params ~faults ~checkpointing ~interrupt ~counters oracle
    (Restored state)

let minimize_parallel ?(params = default_params) ~domains oracle root =
  minimize ~params:{ params with domains } oracle root
