type 'sol bound_info = {
  lower : float;
  candidate : ('sol * float) option;
}

type ('region, 'sol) oracle = {
  bound : 'region -> 'sol bound_info option;
  branch : 'region -> 'region list;
}

type params = {
  max_nodes : int;
  rel_gap : float;
  abs_gap : float;
  time_limit : float option;
  log_every : int;
}

let default_params =
  { max_nodes = 100_000; rel_gap = 1e-6; abs_gap = 1e-12; time_limit = None;
    log_every = 0 }

type stop_reason = Proved_optimal | Gap_reached | Node_budget | Time_budget

type stats = {
  infeasible_regions : int;
  bound_pruned : int;
  stale_pops : int;
  incumbent_updates : int;
  children_generated : int;
}

type 'sol result = {
  best : ('sol * float) option;
  bound : float;
  gap : float;
  nodes_explored : int;
  stop_reason : stop_reason;
  stats : stats;
}

let src = Logs.Src.create "ldafp.bnb" ~doc:"branch-and-bound driver"

module Log = (val Logs.src_log src : Logs.LOG)

let minimize : type region sol.
    ?params:params -> (region, sol) oracle -> region -> sol result =
 fun ?(params = default_params) oracle root ->
  let queue = Pqueue.create () in
  let incumbent = ref None in
  let incumbent_cost = ref Float.infinity in
  let nodes = ref 0 in
  let start_time = Sys.time () in
  let stop = ref None in
  let infeasible_regions = ref 0 in
  let bound_pruned = ref 0 in
  let stale_pops = ref 0 in
  let incumbent_updates = ref 0 in
  let children_generated = ref 0 in
  let consider_candidate = function
    | Some (sol, cost) when cost < !incumbent_cost ->
        incumbent := Some (sol, cost);
        incumbent_cost := cost;
        incr incumbent_updates;
        (* New incumbent: drop queued regions it dominates. *)
        Pqueue.filter_in_place queue (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let enqueue region =
    match oracle.bound region with
    | None -> incr infeasible_regions
    | Some { lower; candidate } ->
        consider_candidate candidate;
        if lower < !incumbent_cost then Pqueue.push queue lower region
        else incr bound_pruned
  in
  enqueue root;
  let gap_ok () =
    !incumbent_cost < Float.infinity
    &&
    let bound = Pqueue.min_key queue in
    let gap = !incumbent_cost -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs !incumbent_cost
  in
  while !stop = None do
    if Pqueue.is_empty queue then stop := Some Proved_optimal
    else if gap_ok () then stop := Some Gap_reached
    else if !nodes >= params.max_nodes then stop := Some Node_budget
    else if
      match params.time_limit with
      | Some limit -> Sys.time () -. start_time > limit
      | None -> false
    then stop := Some Time_budget
    else begin
      match Pqueue.pop queue with
      | None -> stop := Some Proved_optimal
      | Some (lb, region) ->
          if lb >= !incumbent_cost then
            (* Stale entry dominated by a newer incumbent. *)
            incr stale_pops
          else begin
            incr nodes;
            if params.log_every > 0 && !nodes mod params.log_every = 0 then
              Log.debug (fun m ->
                  m "node %d: bound %.6g incumbent %.6g queue %d" !nodes lb
                    !incumbent_cost (Pqueue.length queue));
            let children = oracle.branch region in
            children_generated := !children_generated + List.length children;
            List.iter enqueue children
          end
    end
  done;
  let bound =
    if Pqueue.is_empty queue then
      (* Everything explored or pruned: the incumbent is optimal. *)
      Float.min !incumbent_cost (Pqueue.min_key queue)
    else Pqueue.min_key queue
  in
  {
    best = !incumbent;
    bound;
    gap =
      (if !incumbent_cost = Float.infinity then Float.infinity
       else !incumbent_cost -. bound);
    nodes_explored = !nodes;
    stop_reason = (match !stop with Some r -> r | None -> Proved_optimal);
    stats =
      {
        infeasible_regions = !infeasible_regions;
        bound_pruned = !bound_pruned;
        stale_pops = !stale_pops;
        incumbent_updates = !incumbent_updates;
        children_generated = !children_generated;
      };
  }
