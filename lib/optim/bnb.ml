type 'sol bound_info = {
  lower : float;
  candidate : ('sol * float) option;
}

type ('region, 'sol) oracle = {
  bound : 'region -> 'sol bound_info option;
  branch : 'region -> 'region list;
}

type params = {
  max_nodes : int;
  rel_gap : float;
  abs_gap : float;
  time_limit : float option;
  log_every : int;
  domains : int;
  max_frontier : int;
  seed_factor : int;
}

let default_params =
  { max_nodes = 100_000; rel_gap = 1e-6; abs_gap = 1e-12; time_limit = None;
    log_every = 0; domains = 1; max_frontier = 0; seed_factor = 4 }

type ('region, 'sol) faults = {
  policy : Fault.policy;
  retry_bound : (attempt:int -> 'region -> 'sol bound_info option) option;
  fallback_bound : ('region -> float) option;
}

let default_faults =
  { policy = Fault.default_policy; retry_bound = None; fallback_bound = None }

type stop_reason =
  | Proved_optimal
  | Gap_reached
  | Node_budget
  | Time_budget
  | Interrupted

let stop_reason_name = function
  | Proved_optimal -> "proved_optimal"
  | Gap_reached -> "gap_reached"
  | Node_budget -> "node_budget"
  | Time_budget -> "time_budget"
  | Interrupted -> "interrupted"

type stats = {
  infeasible_regions : int;
  bound_pruned : int;
  stale_pops : int;
  incumbent_updates : int;
  children_generated : int;
  domains_used : int;
  idle_wakeups : int;
  steals : int;
  stolen_nodes : int;
  seed_nodes : int;
  seed_seconds : float;
  targeted_wakeups : int;
  steals_best_victim : int;
  domain_targeted_wakeups : int array;
  domain_steals_best_victim : int array;
  domain_first_node_seconds : float array;
  oracle_failures : int;
  retries : int;
  degraded_bounds : int;
  dropped_regions : int;
  warm_start_hits : int;
  phase1_skipped : int;
  warm_pull_ins : int;
  warm_newton_corrections : int;
  warm_miss_no_parent : int;
  warm_miss_not_interior : int;
  warm_miss_fault_cleared : int;
  stolen_warm : int;
  counters_reset : bool;
  cert_verified : int;
  cert_repaired : int;
  cert_fallbacks : int;
  certified_sound : bool;
  frontier_shed : int;
  retry_budget_exhausted : int;
  retry_backoff_seconds : float;
  oracle_seconds : float;
  domain_oracle_seconds : float array;
  wall_seconds : float;
}

(* Every stats field, flat, in declaration order — the shape the bench
   records and the run ledger persist.  Keep in lockstep with [stats]:
   a new field that never reaches the ledger cannot be regression-
   diffed. *)
let stats_to_json (s : stats) =
  let open Obs.Json in
  let ints = List.map (fun v -> Int v) in
  let floats = List.map (fun v -> Float v) in
  Obj
    [
      ("infeasible_regions", Int s.infeasible_regions);
      ("bound_pruned", Int s.bound_pruned);
      ("stale_pops", Int s.stale_pops);
      ("incumbent_updates", Int s.incumbent_updates);
      ("children_generated", Int s.children_generated);
      ("domains_used", Int s.domains_used);
      ("idle_wakeups", Int s.idle_wakeups);
      ("steals", Int s.steals);
      ("stolen_nodes", Int s.stolen_nodes);
      ("seed_nodes", Int s.seed_nodes);
      ("seed_seconds", Float s.seed_seconds);
      ("targeted_wakeups", Int s.targeted_wakeups);
      ("steals_best_victim", Int s.steals_best_victim);
      ( "domain_targeted_wakeups",
        List (ints (Array.to_list s.domain_targeted_wakeups)) );
      ( "domain_steals_best_victim",
        List (ints (Array.to_list s.domain_steals_best_victim)) );
      ( "domain_first_node_seconds",
        List (floats (Array.to_list s.domain_first_node_seconds)) );
      ("oracle_failures", Int s.oracle_failures);
      ("retries", Int s.retries);
      ("degraded_bounds", Int s.degraded_bounds);
      ("dropped_regions", Int s.dropped_regions);
      ("warm_start_hits", Int s.warm_start_hits);
      ("phase1_skipped", Int s.phase1_skipped);
      ("warm_pull_ins", Int s.warm_pull_ins);
      ("warm_newton_corrections", Int s.warm_newton_corrections);
      ("warm_miss_no_parent", Int s.warm_miss_no_parent);
      ("warm_miss_not_interior", Int s.warm_miss_not_interior);
      ("warm_miss_fault_cleared", Int s.warm_miss_fault_cleared);
      ("stolen_warm", Int s.stolen_warm);
      ("counters_reset", Bool s.counters_reset);
      ("cert_verified", Int s.cert_verified);
      ("cert_repaired", Int s.cert_repaired);
      ("cert_fallbacks", Int s.cert_fallbacks);
      ("certified_sound", Bool s.certified_sound);
      ("frontier_shed", Int s.frontier_shed);
      ("retry_budget_exhausted", Int s.retry_budget_exhausted);
      ("retry_backoff_seconds", Float s.retry_backoff_seconds);
      ("oracle_seconds", Float s.oracle_seconds);
      ( "domain_oracle_seconds",
        List (floats (Array.to_list s.domain_oracle_seconds)) );
      ("wall_seconds", Float s.wall_seconds);
    ]

type oracle_counters = {
  warm_hits : int Atomic.t;
  phase1_skips : int Atomic.t;
  pull_ins : int Atomic.t;
  corrections : int Atomic.t;
  miss_no_parent : int Atomic.t;
  miss_not_interior : int Atomic.t;
  miss_fault_cleared : int Atomic.t;
  oracle_time_us : int Atomic.t;
  cert_verified : int Atomic.t;
  cert_repaired : int Atomic.t;
  cert_fallbacks : int Atomic.t;
  certified_sound : bool Atomic.t;
      (* True while every pruning decision of the search (including any
         resumed-from prefix) rested on a verified dual certificate or
         a certified interval fallback.  Cleared — never re-set — when
         the oracle runs with certification disabled or the resume
         chain passes through a pre-certificate snapshot whose frontier
         keys have unknown provenance. *)
}

let oracle_counters () =
  {
    warm_hits = Atomic.make 0;
    phase1_skips = Atomic.make 0;
    pull_ins = Atomic.make 0;
    corrections = Atomic.make 0;
    miss_no_parent = Atomic.make 0;
    miss_not_interior = Atomic.make 0;
    miss_fault_cleared = Atomic.make 0;
    oracle_time_us = Atomic.make 0;
    cert_verified = Atomic.make 0;
    cert_repaired = Atomic.make 0;
    cert_fallbacks = Atomic.make 0;
    certified_sound = Atomic.make true;
  }

let count_warm_start_hit oc = Atomic.incr oc.warm_hits
let count_phase1_skipped oc = Atomic.incr oc.phase1_skips
let count_warm_pull_in oc = Atomic.incr oc.pull_ins
let count_warm_newton_correction oc = Atomic.incr oc.corrections
let count_warm_miss_no_parent oc = Atomic.incr oc.miss_no_parent
let count_warm_miss_not_interior oc = Atomic.incr oc.miss_not_interior
let count_warm_miss_fault_cleared oc = Atomic.incr oc.miss_fault_cleared
let count_cert_verified oc = Atomic.incr oc.cert_verified
let count_cert_repaired oc = Atomic.incr oc.cert_repaired
let mark_uncertified oc = Atomic.set oc.certified_sound false

type 'sol result = {
  best : ('sol * float) option;
  bound : float;
  gap : float;
  nodes_explored : int;
  stop_reason : stop_reason;
  stats : stats;
}

type checkpointing = {
  path : string;
  every_nodes : int;
  fingerprint : string;
  save_on_stop : bool;
}

let checkpointing ?(every_nodes = 0) ?(save_on_stop = true) ~fingerprint path =
  { path; every_nodes; fingerprint; save_on_stop }

let src = Logs.Src.create "ldafp.bnb" ~doc:"branch-and-bound driver"

module Log = (val Logs.src_log src : Logs.LOG)

(* Budgets are wall-clock: [Sys.time] is process CPU time, which both
   overshoots wall budgets on a busy machine and inflates ~N× once N
   domains burn CPU concurrently.  Monotonic rather than
   [Unix.gettimeofday]: an NTP step mid-search would otherwise stretch
   or shrink the time budget (and could make [elapsed] negative). *)
let now () = Obs.Clock.now ()

(* Solver-stack metrics, registered eagerly at module init (single
   threaded; concurrent [Lazy.force] is unsafe in OCaml 5).  They only
   record when [Obs.Metrics.enabled ()] — call sites guard on it so the
   disabled path allocates nothing.  Glossary: doc/observability.mld. *)
let m_node_seconds =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-6 ~hi:100.0
    ~help:"wall time to expand one B&B node (branch + bound all children)"
    "ldafp_bnb_node_seconds"

let m_bound_seconds =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-7 ~hi:100.0
    ~help:"wall time of one policy-guarded bound-oracle call"
    "ldafp_bnb_bound_seconds"

let m_incumbents =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"incumbent improvements installed" "ldafp_bnb_incumbent_total"

let m_fault_retries =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"oracle calls retried by the containment policy"
    "ldafp_fault_retry_total"

let m_fault_degraded =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"regions degraded to the certified fallback bound"
    "ldafp_fault_degrade_total"

let m_fault_dropped =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"regions dropped after exhausting the containment policy"
    "ldafp_fault_drop_total"

let m_cert_fallbacks =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"regions degraded or dropped because their dual certificate failed"
    "ldafp_fault_cert_fallback_total"

let m_frontier_shed =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"queued regions shed by the bounded-memory frontier cap"
    "ldafp_bnb_frontier_shed_total"

let m_seed_seconds =
  Obs.Metrics.histogram Obs.Metrics.default ~lo:1e-6 ~hi:100.0
    ~help:"wall time of the pre-worker frontier seeding phase"
    "ldafp_bnb_seed_seconds"

(* One line for [Obs.Progress]: the search-wide picture an operator
   needs to decide whether a long run is still converging. *)
let progress_line ~nodes ~elapsed ~incumbent ~bound ~steals ~oracle_us =
  let rate = if elapsed > 0.0 then float_of_int nodes /. elapsed else 0.0 in
  let gap =
    if incumbent < Float.infinity then incumbent -. bound else Float.infinity
  in
  let util us =
    100.0 *. Float.min 1.0 (float_of_int us *. 1e-6 /. Float.max 1e-9 elapsed)
  in
  let utils =
    String.concat "/"
      (Array.to_list
         (Array.map (fun us -> Printf.sprintf "%.0f%%" (util us)) oracle_us))
  in
  Printf.sprintf
    "[bnb] %6.1fs  nodes %d (%.0f/s)  incumbent %.6g  bound %.6g  gap %.3g  \
     steals %d  oracle-util %s"
    elapsed nodes rate incumbent bound gap steals utils

(* ------------------------------------------------------------------ *)
(* Fault containment around the oracle                                 *)
(* ------------------------------------------------------------------ *)

(* Outcome of a policy-guarded [bound] call: [Dropped_bound] means the
   policy ran out of options and abandoned the region (already counted). *)
type 'sol guarded = Bounded of 'sol bound_info option | Dropped_bound

(* A NaN candidate cost is poison: it compares false with everything, so
   it can neither be installed nor pruned coherently.  Strip it, keep the
   (valid) bound, and count the bad invocation.  [+infinity] candidates
   pass through — they are merely useless, never winning a comparison. *)
let sanitize_candidate (fc : Fault.counters) = function
  | Some { lower; candidate = Some (_, c) } when Float.is_nan c ->
      Atomic.incr fc.Fault.failures;
      Log.warn (fun m -> m "discarding candidate with NaN cost");
      Some { lower; candidate = None }
  | info -> info

(* Capped-exponential backoff before a retry, charged to the shared
   fault counters so operators can see how much wall-clock containment
   cost.  Sleeping holds no lock (the caller's in-flight slot is not a
   lock); siblings keep exploring. *)
let sleep_backoff (policy : Fault.policy) (fc : Fault.counters) ~attempt =
  let d = Fault.backoff_delay policy ~attempt in
  if d > 0.0 then begin
    Unix.sleepf d;
    ignore (Atomic.fetch_and_add fc.Fault.backoff_ns (int_of_float (d *. 1e9)))
  end

(* Per-expansion retry budget: [!budget > 0] retries remain; [0] just
   ran out (count the exhaustion once, then mark with -1). *)
let budget_allows (fc : Fault.counters) budget =
  if !budget > 0 then true
  else begin
    if !budget = 0 then begin
      budget := -1;
      Atomic.incr fc.Fault.budget_exhausted;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"fault" "fault.budget_exhausted"
    end;
    false
  end

let guarded_bound ~(faults : _ faults) ~(fc : Fault.counters)
    ~(oc : oracle_counters) ~(budget : int ref) (oracle : _ oracle) region =
  let policy = faults.policy in
  let call attempt =
    let f =
      if attempt = 0 then oracle.bound
      else
        match faults.retry_bound with
        | Some retry -> retry ~attempt
        | None -> oracle.bound
    in
    match f region with
    | Some { lower; _ }
      when Float.is_nan lower || lower = Float.neg_infinity ->
        Error (Fault.Non_finite_bound lower, None)
    | info -> Ok info
    | exception (Fault.Certificate_error msg as e) ->
        Error (Fault.Certificate_failed msg, Some e)
    | exception e when Fault.containable e ->
        Error (Fault.Oracle_raised (Printexc.to_string e), Some e)
  in
  let rec attempt k =
    match call k with
    | Ok info -> Bounded (sanitize_candidate fc info)
    | Error (failure, original) ->
        Atomic.incr fc.Fault.failures;
        Log.debug (fun m ->
            m "bound failure (attempt %d): %s" (k + 1) (Fault.describe failure));
        if k < policy.Fault.max_retries && budget_allows fc budget then begin
          decr budget;
          Atomic.incr fc.Fault.retries;
          if Obs.Metrics.enabled () then Obs.Metrics.incr m_fault_retries;
          if Obs.Trace.enabled () then
            Obs.Trace.instant ~cat:"fault" "fault.retry"
              ~args:[ ("attempt", Obs.Trace.Int (k + 1)) ];
          sleep_backoff policy fc ~attempt:(k + 1);
          attempt (k + 1)
        end
        else begin
          (* A certificate failure that ends in degrade or drop is a
             certified-fallback event: the primal solve's bound was
             discarded in favour of the (certified) interval fallback,
             or the region died.  Either way the search never pruned on
             an unverified value — count it, don't poison
             [certified_sound]. *)
          let note_cert_fallback () =
            match failure with
            | Fault.Certificate_failed _ ->
                Atomic.incr oc.cert_fallbacks;
                if Obs.Metrics.enabled () then Obs.Metrics.incr m_cert_fallbacks;
                if Obs.Trace.enabled () then
                  Obs.Trace.instant ~cat:"fault" "fault.cert_fallback"
            | _ -> ()
          in
          let degraded =
            if not policy.Fault.degrade then None
            else
              match faults.fallback_bound with
              | None -> None
              | Some fb -> (
                  match fb region with
                  | lb when Float.is_nan lb || lb = Float.neg_infinity -> None
                  | lb -> Some lb
                  | exception e when Fault.containable e ->
                      Log.warn (fun m ->
                          m "fallback bound itself failed: %s"
                            (Printexc.to_string e));
                      None)
          in
          match degraded with
          | Some lb ->
              note_cert_fallback ();
              Atomic.incr fc.Fault.degraded;
              if Obs.Metrics.enabled () then Obs.Metrics.incr m_fault_degraded;
              if Obs.Trace.enabled () then
                Obs.Trace.instant ~cat:"fault" "fault.degrade"
                  ~args:[ ("fallback_bound", Obs.Trace.Float lb) ];
              Log.debug (fun m ->
                  m "degraded region to fallback bound %.6g after: %s" lb
                    (Fault.describe failure));
              Bounded (Some { lower = lb; candidate = None })
          | None ->
              if policy.Fault.reraise then
                match original with
                | Some e -> raise e
                | None -> failwith ("Bnb: " ^ Fault.describe failure)
              else begin
                note_cert_fallback ();
                Atomic.incr fc.Fault.dropped;
                if Obs.Metrics.enabled () then Obs.Metrics.incr m_fault_dropped;
                if Obs.Trace.enabled () then
                  Obs.Trace.instant ~cat:"fault" "fault.drop"
                    ~args:[ ("attempts", Obs.Trace.Int (k + 1)) ];
                Log.warn (fun m ->
                    m "dropping region after %d attempt(s): %s" (k + 1)
                      (Fault.describe failure));
                Dropped_bound
              end
        end
  in
  attempt 0

(* Cumulative oracle wall-time, accumulated in integer microseconds so
   parallel workers can add without a lock (no atomic float add).
   [?cell] additionally attributes the time to the calling worker's
   private accumulator — the per-domain utilization numbers.  Timed in
   integer nanoseconds off the monotonic clock, so the measurement
   itself never allocates. *)
let timed_guarded_bound ?cell ~faults ~fc ~(oc : oracle_counters) ~budget
    oracle region =
  let t0 = Obs.Clock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dns = Obs.Clock.now_ns () - t0 in
      let dus = dns / 1000 in
      ignore (Atomic.fetch_and_add oc.oracle_time_us dus);
      (match cell with Some c -> c := !c + dus | None -> ());
      if Obs.Trace.enabled () then
        Obs.Trace.complete ~cat:"bnb" "bnb.bound" ~t0_ns:t0 ~dur_ns:dns;
      if Obs.Metrics.enabled () then
        Obs.Metrics.observe m_bound_seconds (float_of_int dns *. 1e-9))
    (fun () -> guarded_bound ~faults ~fc ~oc ~budget oracle region)

let guarded_branch ~(faults : _ faults) ~(fc : Fault.counters) ~budget oracle
    region =
  let policy = faults.policy in
  let rec attempt k =
    match oracle.branch region with
    | children -> children
    | exception e when Fault.containable e ->
        Atomic.incr fc.Fault.failures;
        Log.debug (fun m ->
            m "branch failure (attempt %d): %s" (k + 1) (Printexc.to_string e));
        if k < policy.Fault.max_retries && budget_allows fc budget then begin
          decr budget;
          Atomic.incr fc.Fault.retries;
          sleep_backoff policy fc ~attempt:(k + 1);
          attempt (k + 1)
        end
        else if policy.Fault.reraise then raise e
        else begin
          Atomic.incr fc.Fault.dropped;
          Log.warn (fun m ->
              m "dropping unsplittable region after %d attempt(s): %s" (k + 1)
                (Printexc.to_string e));
          []
        end
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Checkpoint plumbing                                                 *)
(* ------------------------------------------------------------------ *)

(* The search either starts fresh from a root region (bounded first, as
   callers may rely on — e.g. to install a seeded incumbent) or restores
   a frontier whose entries were already bounded before the snapshot. *)
type ('region, 'sol) source =
  | Root of 'region
  | Restored of ('region, 'sol) Checkpoint.state

(* A shed-frontier bound is a float that must survive the int-counter
   checkpoint schema bit-exactly (rounding it could claim a gap the
   search did not prove).  Split the IEEE bit pattern across two
   counters — each half fits comfortably in OCaml's 63-bit int. *)
let float_to_counters x =
  let bits = Int64.bits_of_float x in
  ( Int64.to_int (Int64.shift_right_logical bits 32),
    Int64.to_int (Int64.logand bits 0xFFFFFFFFL) )

let float_of_counters hi lo =
  Int64.float_of_bits
    (Int64.logor
       (Int64.shift_left (Int64.of_int hi) 32)
       (Int64.logand (Int64.of_int lo) 0xFFFFFFFFL))

let counters_alist ~infeasible ~pruned ~stale ~updates ~children ~reset
    ~shed ~shed_bound ~seed_nodes ~seed_us ~(fc : Fault.counters)
    ~(oc : oracle_counters) =
  let shed_hi, shed_lo = float_to_counters shed_bound in
  [
    (* Sticky: once a resume hit a pre-schema snapshot, every later
       snapshot in the chain records that the warm counters restarted. *)
    ("counters_reset", Bool.to_int reset);
    ("infeasible_regions", infeasible);
    ("bound_pruned", pruned);
    ("stale_pops", stale);
    ("incumbent_updates", updates);
    ("children_generated", children);
    ("oracle_failures", Atomic.get fc.Fault.failures);
    ("retries", Atomic.get fc.Fault.retries);
    ("degraded_bounds", Atomic.get fc.Fault.degraded);
    ("dropped_regions", Atomic.get fc.Fault.dropped);
    ("retry_budget_exhausted", Atomic.get fc.Fault.budget_exhausted);
    ("retry_backoff_ns", Atomic.get fc.Fault.backoff_ns);
    ("warm_start_hits", Atomic.get oc.warm_hits);
    ("phase1_skipped", Atomic.get oc.phase1_skips);
    ("warm_pull_ins", Atomic.get oc.pull_ins);
    ("warm_newton_corrections", Atomic.get oc.corrections);
    ("warm_miss_no_parent", Atomic.get oc.miss_no_parent);
    ("warm_miss_not_interior", Atomic.get oc.miss_not_interior);
    ("warm_miss_fault_cleared", Atomic.get oc.miss_fault_cleared);
    ("oracle_time_us", Atomic.get oc.oracle_time_us);
    ("cert_verified", Atomic.get oc.cert_verified);
    ("cert_repaired", Atomic.get oc.cert_repaired);
    ("cert_fallbacks", Atomic.get oc.cert_fallbacks);
    ("certified_sound", Bool.to_int (Atomic.get oc.certified_sound));
    ("frontier_shed", shed);
    ("shed_bound_hi", shed_hi);
    ("shed_bound_lo", shed_lo);
    (* Seed-phase totals, cumulative across a resume chain.  Time in
       integer microseconds: the counter schema is int-only, and a
       microsecond of seeding is far below measurement noise. *)
    ("seed_nodes", seed_nodes);
    ("seed_time_us", seed_us);
  ]

(* The warm/miss counter keys whose absence marks a pre-oracle-counter
   checkpoint.  [Checkpoint.counter] degrades each missing key to 0 so
   such snapshots still resume — but then every rate computed over the
   chain (warm_hit_rate above all) silently mixes a zeroed prefix with
   live counts.  Resuming one therefore raises the explicit
   [counters_reset] marker instead of merging silently; surfaced by
   [ldafp train]. *)
let warm_counter_keys =
  [
    "warm_start_hits"; "phase1_skipped"; "warm_pull_ins";
    "warm_newton_corrections"; "warm_miss_no_parent";
    "warm_miss_not_interior"; "warm_miss_fault_cleared";
  ]

(* The certificate-accounting keys.  A snapshot missing any of them
   predates the certified-pruning schema: its frontier keys may have
   been produced by the old trusting formula, so resuming through one
   both raises the sticky [counters_reset] marker and clears
   [certified_sound] for the rest of the chain. *)
let cert_counter_keys =
  [ "cert_verified"; "cert_repaired"; "cert_fallbacks"; "certified_sound" ]

(* The seed-phase accounting keys.  A snapshot missing them predates the
   eager-seeding scheduler; the totals restart at zero, so resuming one
   raises the sticky [counters_reset] marker like the other schema
   upgrades (seeding itself is unaffected — only the cumulative
   accounting is). *)
let seed_counter_keys = [ "seed_nodes"; "seed_time_us" ]

(* Returned per-run restore state: plain counters, pre-resume elapsed
   time, sticky reset marker, the shed-frontier residue
   [(shed_count, shed_bound)] the resumed run must keep folding into
   its reported bound, and the cumulative seed totals
   [(seed_nodes, seed_us)]. *)
let restore_counters (fc : Fault.counters) (oc : oracle_counters) = function
  | Root _ -> (0, 0, 0, 0, 0, 0.0, false, (0, Float.infinity), (0, 0))
  | Restored (s : _ Checkpoint.state) ->
      let c = Checkpoint.counter s in
      Atomic.set fc.Fault.failures (c "oracle_failures");
      Atomic.set fc.Fault.retries (c "retries");
      Atomic.set fc.Fault.degraded (c "degraded_bounds");
      Atomic.set fc.Fault.dropped (c "dropped_regions");
      Atomic.set fc.Fault.budget_exhausted (c "retry_budget_exhausted");
      Atomic.set fc.Fault.backoff_ns (c "retry_backoff_ns");
      Atomic.set oc.warm_hits (c "warm_start_hits");
      Atomic.set oc.phase1_skips (c "phase1_skipped");
      Atomic.set oc.pull_ins (c "warm_pull_ins");
      Atomic.set oc.corrections (c "warm_newton_corrections");
      Atomic.set oc.miss_no_parent (c "warm_miss_no_parent");
      Atomic.set oc.miss_not_interior (c "warm_miss_not_interior");
      Atomic.set oc.miss_fault_cleared (c "warm_miss_fault_cleared");
      Atomic.set oc.oracle_time_us (c "oracle_time_us");
      Atomic.set oc.cert_verified (c "cert_verified");
      Atomic.set oc.cert_repaired (c "cert_repaired");
      Atomic.set oc.cert_fallbacks (c "cert_fallbacks");
      let cert_schema_ok =
        List.for_all (Checkpoint.has_counter s) cert_counter_keys
      in
      (* Only ever clear: a caller that already marked the search
         uncertified (certification disabled) must stay so. *)
      if not (cert_schema_ok && c "certified_sound" <> 0) then
        Atomic.set oc.certified_sound false;
      let reset =
        (not (List.for_all (Checkpoint.has_counter s) warm_counter_keys))
        || (not cert_schema_ok)
        || (not (List.for_all (Checkpoint.has_counter s) seed_counter_keys))
        || c "counters_reset" <> 0
      in
      let shed = c "frontier_shed" in
      let shed_bound =
        if shed > 0 then float_of_counters (c "shed_bound_hi") (c "shed_bound_lo")
        else Float.infinity
      in
      ( c "infeasible_regions", c "bound_pruned", c "stale_pops",
        c "incumbent_updates", c "children_generated", s.Checkpoint.elapsed,
        reset, (shed, shed_bound), (c "seed_nodes", c "seed_time_us") )

(* A failed snapshot must not kill a multi-hour search: log and carry on
   (the previous checkpoint, if any, is intact thanks to tmp + rename). *)
let try_save ck state =
  try Checkpoint.save ~path:ck.path state
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    Log.warn (fun m -> m "checkpoint save to %s failed: %s" ck.path msg)

let stop_wants_save = function
  | Node_budget | Time_budget | Interrupted -> true
  | Proved_optimal | Gap_reached -> false

(* ------------------------------------------------------------------ *)
(* Sequential driver                                                   *)
(* ------------------------------------------------------------------ *)

let run_seq : type region sol.
    params:params ->
    faults:(region, sol) faults ->
    checkpointing:checkpointing option ->
    interrupt:(unit -> bool) option ->
    counters:oracle_counters option ->
    progress:Obs.Progress.t option ->
    (region, sol) oracle ->
    (region, sol) source ->
    sol result =
 fun ~params ~faults ~checkpointing ~interrupt ~counters ~progress oracle
     source ->
  let queue = Pqueue.create () in
  let fc = Fault.fresh_counters () in
  let oc = match counters with Some c -> c | None -> oracle_counters () in
  let ( infeasible0, pruned0, stale0, updates0, children0, elapsed0, reset0,
        (shed0, shed_bound0), (seed0_nodes, seed0_us) ) =
    restore_counters fc oc source
  in
  (* Bounded-memory frontier residue: nodes shed by the cap are gone,
     but their best possible subtree optimum survives here and is
     folded into every bound and gap the search reports. *)
  let frontier_shed = ref shed0 in
  let shed_bound = ref shed_bound0 in
  let incumbent =
    ref (match source with Root _ -> None | Restored s -> s.Checkpoint.incumbent)
  in
  let incumbent_cost =
    ref (match !incumbent with Some (_, c) -> c | None -> Float.infinity)
  in
  let nodes =
    ref (match source with Root _ -> 0 | Restored s -> s.Checkpoint.nodes_explored)
  in
  let start_time = now () in
  let run_t0_ns = Obs.Clock.now_ns () in
  (* Time from run start to the first node expansion — the sequential
     baseline for the per-shard startup-latency diagnostic; -1 when the
     run never expanded a node. *)
  let first_node_us = ref (-1) in
  let elapsed () = elapsed0 +. (now () -. start_time) in
  let stop = ref None in
  let infeasible_regions = ref infeasible0 in
  let bound_pruned = ref pruned0 in
  let stale_pops = ref stale0 in
  let incumbent_updates = ref updates0 in
  let children_generated = ref children0 in
  (* Current-run oracle microseconds (oc.oracle_time_us also carries the
     pre-resume total): the [domain_oracle_seconds] attribution. *)
  let oracle_cell = ref 0 in
  let consider_candidate = function
    | Some (sol, cost) when cost < !incumbent_cost ->
        incumbent := Some (sol, cost);
        incumbent_cost := cost;
        incr incumbent_updates;
        if Obs.Metrics.enabled () then Obs.Metrics.incr m_incumbents;
        if Obs.Telemetry.enabled () then Obs.Telemetry.set_incumbent cost;
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~cat:"bnb" "bnb.incumbent"
            ~args:[ ("cost", Obs.Trace.Float cost) ];
        (* New incumbent: drop queued regions it dominates. *)
        Pqueue.filter_in_place queue (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let enqueue ~budget region =
    match
      timed_guarded_bound ~cell:oracle_cell ~faults ~fc ~oc ~budget oracle
        region
    with
    | Dropped_bound -> ()
    | Bounded None -> incr infeasible_regions
    | Bounded (Some { lower; candidate }) ->
        consider_candidate candidate;
        if lower < !incumbent_cost then Pqueue.push queue lower region
        else incr bound_pruned
  in
  let maybe_shed () =
    if params.max_frontier > 0 && Pqueue.length queue > params.max_frontier
    then begin
      let dropped, min_key = Pqueue.drop_worst queue ~keep:params.max_frontier in
      if dropped > 0 then begin
        frontier_shed := !frontier_shed + dropped;
        shed_bound := Float.min !shed_bound min_key;
        if Obs.Metrics.enabled () then Obs.Metrics.add m_frontier_shed dropped;
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~cat:"bnb" "bnb.frontier_shed"
            ~args:
              [
                ("dropped", Obs.Trace.Int dropped);
                ("shed_bound", Obs.Trace.Float !shed_bound);
              ]
      end
    end
  in
  (match source with
  | Root root -> enqueue ~budget:(ref faults.policy.Fault.retry_budget) root
  | Restored s ->
      Array.iter (fun (lb, region) -> Pqueue.push queue lb region)
        s.Checkpoint.frontier;
      maybe_shed ());
  let snapshot_state ck =
    {
      Checkpoint.fingerprint = ck.fingerprint;
      frontier =
        Array.of_list (Pqueue.fold (fun acc k v -> (k, v) :: acc) [] queue);
      incumbent = !incumbent;
      nodes_explored = !nodes;
      counters =
        counters_alist ~infeasible:!infeasible_regions ~pruned:!bound_pruned
          ~stale:!stale_pops ~updates:!incumbent_updates
          ~children:!children_generated ~reset:reset0 ~shed:!frontier_shed
          ~shed_bound:!shed_bound ~seed_nodes:seed0_nodes ~seed_us:seed0_us ~fc
          ~oc;
      elapsed = elapsed ();
    }
  in
  let maybe_periodic_save () =
    match checkpointing with
    | Some ck when ck.every_nodes > 0 && !nodes mod ck.every_nodes = 0 ->
        try_save ck (snapshot_state ck)
    | _ -> ()
  in
  let gap_ok () =
    !incumbent_cost < Float.infinity
    &&
    (* Shed subtrees count against the gap: the search cannot declare a
       tolerance it only reached by throwing work away. *)
    let bound = Float.min (Pqueue.min_key queue) !shed_bound in
    let gap = !incumbent_cost -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs !incumbent_cost
  in
  let interrupted () = match interrupt with Some f -> f () | None -> false in
  if Obs.Telemetry.enabled () then Obs.Telemetry.set_phase "searching";
  while !stop = None do
    if Pqueue.is_empty queue then stop := Some Proved_optimal
    else if gap_ok () then stop := Some Gap_reached
    else if !nodes >= params.max_nodes then stop := Some Node_budget
    else if
      match params.time_limit with
      | Some limit -> elapsed () > limit
      | None -> false
    then stop := Some Time_budget
    else if interrupted () then stop := Some Interrupted
    else begin
      match Pqueue.pop queue with
      | None -> stop := Some Proved_optimal
      | Some (lb, region) ->
          if lb >= !incumbent_cost then
            (* Stale entry dominated by a newer incumbent. *)
            incr stale_pops
          else begin
            incr nodes;
            if !first_node_us < 0 then
              first_node_us := (Obs.Clock.now_ns () - run_t0_ns) / 1000;
            if params.log_every > 0 && !nodes mod params.log_every = 0 then
              Log.debug (fun m ->
                  m "node %d: bound %.6g incumbent %.6g queue %d" !nodes lb
                    !incumbent_cost (Pqueue.length queue));
            let t_node = Obs.Clock.now_ns () in
            (* One retry budget per node expansion: the branch call and
               all child bounds draw from it, capping the worst-case
               time a pathological region can soak up. *)
            let budget = ref faults.policy.Fault.retry_budget in
            let children = guarded_branch ~faults ~fc ~budget oracle region in
            children_generated := !children_generated + List.length children;
            List.iter (enqueue ~budget) children;
            maybe_shed ();
            (* Exactly one node-seconds observation per explored node
               (the CI schema gate compares the histogram count against
               the reported node counts). *)
            let node_ns = Obs.Clock.now_ns () - t_node in
            if Obs.Trace.enabled () then
              Obs.Trace.complete ~cat:"bnb" "bnb.node" ~t0_ns:t_node
                ~dur_ns:node_ns
                ~args:
                  [ ("node", Obs.Trace.Int !nodes); ("lb", Obs.Trace.Float lb) ];
            if Obs.Metrics.enabled () then
              Obs.Metrics.observe m_node_seconds (float_of_int node_ns *. 1e-9);
            if Obs.Telemetry.enabled () then begin
              Obs.Telemetry.set_nodes !nodes;
              Obs.Telemetry.set_gap
                (!incumbent_cost
                -. Float.min (Pqueue.min_key queue) !shed_bound)
            end;
            (match progress with
            | Some p when Obs.Progress.due p ->
                Obs.Progress.emit p
                  (progress_line ~nodes:!nodes ~elapsed:(elapsed ())
                     ~incumbent:!incumbent_cost
                     ~bound:(Pqueue.min_key queue) ~steals:0
                     ~oracle_us:[| !oracle_cell |])
            | _ -> ());
            maybe_periodic_save ()
          end
    end
  done;
  let stop_reason = match !stop with Some r -> r | None -> Proved_optimal in
  if Obs.Telemetry.enabled () then begin
    Obs.Telemetry.set_nodes !nodes;
    Obs.Telemetry.set_phase ("done:" ^ stop_reason_name stop_reason)
  end;
  (match checkpointing with
  | Some ck when ck.save_on_stop && stop_wants_save stop_reason ->
      try_save ck (snapshot_state ck)
  | _ -> ());
  let bound =
    let b =
      if Pqueue.is_empty queue then
        (* Everything explored or pruned: the incumbent is optimal —
           unless subtrees were shed, whose residue caps the claim. *)
        Float.min !incumbent_cost (Pqueue.min_key queue)
      else Pqueue.min_key queue
    in
    Float.min b !shed_bound
  in
  {
    best = !incumbent;
    bound;
    gap =
      (if !incumbent_cost = Float.infinity then Float.infinity
       else !incumbent_cost -. bound);
    nodes_explored = !nodes;
    stop_reason;
    stats =
      {
        infeasible_regions = !infeasible_regions;
        bound_pruned = !bound_pruned;
        stale_pops = !stale_pops;
        incumbent_updates = !incumbent_updates;
        children_generated = !children_generated;
        domains_used = 1;
        idle_wakeups = 0;
        steals = 0;
        stolen_nodes = 0;
        (* A sequential run never seeds, but the cumulative totals of a
           resumed parallel prefix survive the chain. *)
        seed_nodes = seed0_nodes;
        seed_seconds = float_of_int seed0_us *. 1e-6;
        targeted_wakeups = 0;
        steals_best_victim = 0;
        domain_targeted_wakeups = [| 0 |];
        domain_steals_best_victim = [| 0 |];
        domain_first_node_seconds =
          [|
            (if !first_node_us < 0 then -1.0
             else float_of_int !first_node_us *. 1e-6);
          |];
        oracle_failures = Atomic.get fc.Fault.failures;
        retries = Atomic.get fc.Fault.retries;
        degraded_bounds = Atomic.get fc.Fault.degraded;
        dropped_regions = Atomic.get fc.Fault.dropped;
        warm_start_hits = Atomic.get oc.warm_hits;
        phase1_skipped = Atomic.get oc.phase1_skips;
        warm_pull_ins = Atomic.get oc.pull_ins;
        warm_newton_corrections = Atomic.get oc.corrections;
        warm_miss_no_parent = Atomic.get oc.miss_no_parent;
        warm_miss_not_interior = Atomic.get oc.miss_not_interior;
        warm_miss_fault_cleared = Atomic.get oc.miss_fault_cleared;
        stolen_warm = 0;
        counters_reset = reset0;
        cert_verified = Atomic.get oc.cert_verified;
        cert_repaired = Atomic.get oc.cert_repaired;
        cert_fallbacks = Atomic.get oc.cert_fallbacks;
        certified_sound = Atomic.get oc.certified_sound;
        frontier_shed = !frontier_shed;
        retry_budget_exhausted = Atomic.get fc.Fault.budget_exhausted;
        retry_backoff_seconds =
          float_of_int (Atomic.get fc.Fault.backoff_ns) *. 1e-9;
        oracle_seconds = float_of_int (Atomic.get oc.oracle_time_us) *. 1e-6;
        domain_oracle_seconds = [| float_of_int !oracle_cell *. 1e-6 |];
        wall_seconds = elapsed ();
      };
  }

(* ------------------------------------------------------------------ *)
(* Parallel driver                                                     *)
(* ------------------------------------------------------------------ *)

(* The calling domain plus [params.domains - 1] spawned domains run the
   same worker loop over a sharded work-stealing Work_deque: each worker
   pushes its own expansions to its own shard and pops locally, stealing
   the best half of a victim's shard only when dry, so in steady state no
   lock or cache line is shared between workers.  Search-wide state is
   synchronized through atomics: the incumbent cost mirror (CAS-checked
   under a dedicated incumbent mutex on update, read lock-free for
   pruning), the per-shard frontier-bound mirrors feeding the gap test
   (conservative at every instant — see Work_deque), the explored-node
   counter, and a write-once stop reason.  Per-worker statistics live in
   single-writer records merged after the joins, so hot-path counter
   bumps are plain stores.

   Termination mirrors the sequential checks.  [drained] is exact
   (children are pushed before their parent's in-flight slot is
   released) and is tested before the gap so an exhausted search reports
   Proved_optimal, not Gap_reached against an infinite frontier bound.
   The node budget is checked before claiming a node; workers already
   mid-expansion finish, so the budget can overshoot by at most
   [domains - 1] nodes — the price of not serializing the hot path.

   Fault containment: oracle calls are policy-guarded, and the in-flight
   slot of an expanding worker is released in a [Fun.protect] finaliser,
   so even a non-containable exception keeps the live count exact; the
   worker then closes the deque (waking parked siblings) before the
   exception propagates — one poisoned region can never hang the
   search. *)
let run_par : type region sol.
    params:params ->
    faults:(region, sol) faults ->
    checkpointing:checkpointing option ->
    interrupt:(unit -> bool) option ->
    counters:oracle_counters option ->
    progress:Obs.Progress.t option ->
    carries_warm:(region -> bool) option ->
    (region, sol) oracle ->
    (region, sol) source ->
    sol result =
 fun ~params ~faults ~checkpointing ~interrupt ~counters ~progress
     ~carries_warm oracle source ->
  let workers = params.domains in
  let deque : region Work_deque.t =
    Work_deque.create ?carries_warm ~workers ()
  in
  let fc = Fault.fresh_counters () in
  let oc = match counters with Some c -> c | None -> oracle_counters () in
  let ( infeasible0, pruned0, stale0, updates0, children0, elapsed0, reset0,
        (shed0, shed_bound0), (seed0_nodes, seed0_us) ) =
    restore_counters fc oc source
  in
  (* Shed-frontier residue, CAS-min so any worker can fold its shard's
     shed bound in without a lock. *)
  let shed_bound = Atomic.make shed_bound0 in
  let rec fold_shed_bound b =
    let cur = Atomic.get shed_bound in
    if b < cur && not (Atomic.compare_and_set shed_bound cur b) then
      fold_shed_bound b
  in
  (* Per-shard queue cap: the global budget split evenly; each worker
     polices only its own shard, so shedding needs no global lock. *)
  let shard_cap =
    if params.max_frontier <= 0 then 0
    else max 1 (params.max_frontier / workers)
  in
  (* The incumbent solution is guarded by its own mutex; its cost is
     mirrored in an Atomic read lock-free on every stale check, push
     decision and gap test. *)
  let inc_lock = Mutex.create () in
  let incumbent =
    ref (match source with Root _ -> None | Restored s -> s.Checkpoint.incumbent)
  in
  let incumbent_cost =
    Atomic.make
      (match !incumbent with Some (_, c) -> c | None -> Float.infinity)
  in
  let nodes =
    Atomic.make
      (match source with Root _ -> 0 | Restored s -> s.Checkpoint.nodes_explored)
  in
  let start_time = now () in
  let run_t0_ns = Obs.Clock.now_ns () in
  let elapsed () = elapsed0 +. (now () -. start_time) in
  let stop : stop_reason option Atomic.t = Atomic.make None in
  (* Current-run seed accounting; the restored totals are added on the
     way out (and into every checkpoint). *)
  let seed_nodes_run = ref 0 in
  let seed_us_run = ref 0 in
  (* Per-worker single-writer statistics; merged after the joins.
     Records (not an int array) so counters of one worker share no cache
     line with another's. *)
  let module W = struct
    type t = {
      mutable infeasible : int;
      mutable pruned : int;
      mutable stale : int;
      mutable updates : int;
      mutable children : int;
      mutable shed : int;
      mutable first_node_us : int;
          (* run start -> this worker's first node expansion; -1 while
             none — the time-to-first-node startup diagnostic *)
      oracle_cell : int ref;
    }
  end in
  let ws =
    Array.init workers (fun _ ->
        {
          W.infeasible = 0;
          pruned = 0;
          stale = 0;
          updates = 0;
          children = 0;
          shed = 0;
          first_node_us = -1;
          oracle_cell = ref 0;
        })
  in
  let note_first_node (w : W.t) =
    if w.W.first_node_us < 0 then
      w.W.first_node_us <- (Obs.Clock.now_ns () - run_t0_ns) / 1000
  in
  (* Reads of siblings' plain counter fields (periodic checkpoints, the
     final merge before the last join is not one — it runs after joins)
     may be stale by a few increments; fine for diagnostics.  The node
     counter, fault counters and oracle counters are atomics and exact. *)
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 ws in
  let merged_counters () =
    counters_alist
      ~infeasible:(infeasible0 + sum (fun w -> w.W.infeasible))
      ~pruned:(pruned0 + sum (fun w -> w.W.pruned))
      ~stale:(stale0 + sum (fun w -> w.W.stale))
      ~updates:(updates0 + sum (fun w -> w.W.updates))
      ~children:(children0 + sum (fun w -> w.W.children))
      ~reset:reset0
      ~shed:(shed0 + sum (fun w -> w.W.shed))
      ~shed_bound:(Atomic.get shed_bound)
      ~seed_nodes:(seed0_nodes + !seed_nodes_run)
      ~seed_us:(seed0_us + !seed_us_run) ~fc ~oc
  in
  let consider_candidate (w : W.t) = function
    | Some (sol, cost) when cost < Atomic.get incumbent_cost ->
        let improved =
          Mutex.lock inc_lock;
          (* Re-check under the lock: a sibling may have won the race. *)
          let better = cost < Atomic.get incumbent_cost in
          if better then begin
            incumbent := Some (sol, cost);
            Atomic.set incumbent_cost cost;
            w.W.updates <- w.W.updates + 1;
            if Obs.Metrics.enabled () then Obs.Metrics.incr m_incumbents;
            if Obs.Telemetry.enabled () then Obs.Telemetry.set_incumbent cost;
            if Obs.Trace.enabled () then
              Obs.Trace.instant ~cat:"bnb" "bnb.incumbent"
                ~args:[ ("cost", Obs.Trace.Float cost) ]
          end;
          Mutex.unlock inc_lock;
          better
        in
        (* Prune outside inc_lock: shard locks are leaves, but keeping
           inc_lock out of any nesting makes the no-deadlock argument
           one-line.  Concurrent pruning passes compose (both only
           remove dominated entries). *)
        if improved then Work_deque.prune deque (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let record_bounded ~worker (w : W.t) region = function
    | None -> w.W.infeasible <- w.W.infeasible + 1
    | Some { lower; candidate } ->
        consider_candidate w candidate;
        if lower < Atomic.get incumbent_cost then
          Work_deque.push deque ~worker lower region
        else w.W.pruned <- w.W.pruned + 1
  in
  (* Eager frontier seeding: before any worker starts, the calling
     domain best-first expands a private local queue until it holds
     enough nodes to give every shard a meaningful slice
     ([seed_factor * workers]), then deals them round-robin by bound
     rank.  Without this the search begins with a single root node and
     the first milliseconds are pure startup serialization: one shard
     works while the others park, wake, and thrash half-empty steals. *)
  let seedq : region Pqueue.t = Pqueue.create () in
  let seed_record_bounded (w : W.t) region = function
    | None -> w.W.infeasible <- w.W.infeasible + 1
    | Some { lower; candidate } ->
        consider_candidate w candidate;
        if lower < Atomic.get incumbent_cost then Pqueue.push seedq lower region
        else w.W.pruned <- w.W.pruned + 1
  in
  (match source with
  | Root root ->
      (* The root is bounded on the calling domain before anything else,
         exactly as in the sequential driver (callers may rely on the
         root bound running first, e.g. to install a seeded
         incumbent). *)
      let root_info =
        timed_guarded_bound ~cell:ws.(0).W.oracle_cell ~faults ~fc ~oc
          ~budget:(ref faults.policy.Fault.retry_budget) oracle root
      in
      (match root_info with
      | Dropped_bound -> ()
      | Bounded info -> seed_record_bounded ws.(0) root info)
  | Restored s ->
      (* A restored frontier enters the seed queue too: if it is
         already large enough the seed loop exits immediately and the
         dealer scatters it by bound rank; if the snapshot was taken
         early (even mid-seed) the loop grows it first. *)
      Array.iter
        (fun (lb, region) -> Pqueue.push seedq lb region)
        s.Checkpoint.frontier);
  (* Checkpoint snapshot ordering: frontier FIRST, then incumbent.  The
     frontier snapshot holds all shard locks, so it is internally
     consistent; reading the incumbent afterwards guarantees it is at
     least as good as whatever incumbent pruned that frontier — so no
     region dominated only by an unsaved incumbent can be missing its
     dominator on resume.  The reverse order can lose the optimum:
     incumbent read, sibling improves it and prunes, frontier saved
     without the pruned region or the new incumbent. *)
  let snapshot_state ~frontier ck =
    let inc =
      Mutex.lock inc_lock;
      let i = !incumbent in
      Mutex.unlock inc_lock;
      i
    in
    {
      Checkpoint.fingerprint = ck.fingerprint;
      frontier;
      incumbent = inc;
      nodes_explored = Atomic.get nodes;
      counters = merged_counters ();
      elapsed = elapsed ();
    }
  in
  (* Periodic saves race against each other only through [save_lock]:
     whoever gets it checks the cadence; everyone else skips (try_lock)
     rather than queueing up behind a disk write. *)
  let save_lock = Mutex.create () in
  let last_saved_nodes = ref (Atomic.get nodes) in
  let maybe_periodic_save () =
    match checkpointing with
    | Some ck when ck.every_nodes > 0 ->
        if Mutex.try_lock save_lock then
          Fun.protect
            ~finally:(fun () -> Mutex.unlock save_lock)
            (fun () ->
              if Atomic.get nodes - !last_saved_nodes >= ck.every_nodes then begin
                last_saved_nodes := Atomic.get nodes;
                try_save ck
                  (snapshot_state
                     ~frontier:(Array.of_list (Work_deque.snapshot deque))
                     ck)
              end)
    | _ -> ()
  in
  (* The frontier bound read from the shard mirrors is conservative
     (never above the true minimum over live work — Work_deque), so this
     can only under-report progress, never declare a gap early. *)
  let gap_ok () =
    let inc = Atomic.get incumbent_cost in
    inc < Float.infinity
    &&
    let bound =
      Float.min (Work_deque.frontier_bound deque) (Atomic.get shed_bound)
    in
    let gap = inc -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs inc
  in
  let interrupted () = match interrupt with Some f -> f () | None -> false in
  (* First halt wins the stop reason; close is idempotent and wakes any
     parked sibling. *)
  let halt reason =
    ignore (Atomic.compare_and_set stop None (Some reason));
    Work_deque.close deque
  in
  let worker i () =
    let w = ws.(i) in
    let expand lb region =
      if lb >= Atomic.get incumbent_cost then begin
        (* Stale entry dominated by a newer incumbent. *)
        w.W.stale <- w.W.stale + 1;
        Work_deque.release deque ~worker:i
      end
      else begin
        let n = 1 + Atomic.fetch_and_add nodes 1 in
        note_first_node w;
        if params.log_every > 0 && n mod params.log_every = 0 then
          Log.debug (fun m ->
              m "node %d [w%d]: bound %.6g incumbent %.6g queued %d" n i lb
                (Atomic.get incumbent_cost)
                (Work_deque.queue_length deque));
        (* The in-flight slot is released in a finaliser: even if an
           exception escapes the guards (non-containable, or a [reraise]
           policy), the live count stays exact and the region's children
           — pushed before this finaliser runs — are never lost. *)
        let t_node = Obs.Clock.now_ns () in
        Fun.protect
          ~finally:(fun () -> Work_deque.release deque ~worker:i)
          (fun () ->
            (* One retry budget per node expansion (branch + all child
               bounds), as in the sequential driver. *)
            let budget = ref faults.policy.Fault.retry_budget in
            let children = guarded_branch ~faults ~fc ~budget oracle region in
            w.W.children <- w.W.children + List.length children;
            (* Bound each child outside any lock; push to our own shard
               immediately so siblings can steal fresh work and prune
               against fresh incumbents.  Warm-start state lives inside
               the region values, so it migrates with steals for
               free. *)
            List.iter
              (fun child ->
                match
                  timed_guarded_bound ~cell:w.W.oracle_cell ~faults ~fc ~oc
                    ~budget oracle child
                with
                | Dropped_bound -> ()
                | Bounded info -> record_bounded ~worker:i w child info)
              children;
            if shard_cap > 0 then
              match Work_deque.shed deque ~worker:i ~keep:shard_cap with
              | None -> ()
              | Some (dropped, min_key) ->
                  w.W.shed <- w.W.shed + dropped;
                  fold_shed_bound min_key;
                  if Obs.Metrics.enabled () then
                    Obs.Metrics.add m_frontier_shed dropped;
                  if Obs.Trace.enabled () then
                    Obs.Trace.instant ~cat:"bnb" "bnb.frontier_shed"
                      ~args:
                        [
                          ("worker", Obs.Trace.Int i);
                          ("dropped", Obs.Trace.Int dropped);
                          ("shed_bound", Obs.Trace.Float (Atomic.get shed_bound));
                        ]);
        (* One node-seconds observation per explored node, as in the
           sequential driver (the CI schema gate counts on it). *)
        let node_ns = Obs.Clock.now_ns () - t_node in
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"bnb" "bnb.node" ~t0_ns:t_node
            ~dur_ns:node_ns
            ~args:[ ("node", Obs.Trace.Int n); ("lb", Obs.Trace.Float lb) ];
        if Obs.Metrics.enabled () then
          Obs.Metrics.observe m_node_seconds (float_of_int node_ns *. 1e-9);
        if Obs.Telemetry.enabled () then begin
          Obs.Telemetry.set_nodes (Atomic.get nodes);
          Obs.Telemetry.set_gap
            (Atomic.get incumbent_cost
            -. Float.min (Work_deque.frontier_bound deque)
                 (Atomic.get shed_bound))
        end;
        (match progress with
        | Some p when Obs.Progress.due p ->
            Obs.Progress.emit p
              (progress_line ~nodes:(Atomic.get nodes) ~elapsed:(elapsed ())
                 ~incumbent:(Atomic.get incumbent_cost)
                 ~bound:(Work_deque.frontier_bound deque)
                 ~steals:(Work_deque.steals deque)
                 ~oracle_us:(Array.map (fun w -> !(w.W.oracle_cell)) ws))
        | _ -> ());
        maybe_periodic_save ()
      end
    in
    let rec loop () =
      if Work_deque.is_closed deque then ()
      else if Work_deque.drained deque then halt Proved_optimal
        (* drained before gap: an exhausted search is Proved_optimal,
           not a Gap_reached against an infinite frontier bound. *)
      else if gap_ok () then halt Gap_reached
      else if Atomic.get nodes >= params.max_nodes then halt Node_budget
      else if
        match params.time_limit with
        | Some limit -> elapsed () > limit
        | None -> false
      then halt Time_budget
      else if interrupted () then halt Interrupted
      else begin
        let item =
          match Work_deque.take deque ~worker:i with
          | Some _ as it -> it
          | None -> Work_deque.try_steal deque ~thief:i
        in
        match item with
        | Some (lb, region) ->
            expand lb region;
            loop ()
        | None -> (
            (* Nothing local, nothing to steal: park until a sibling
               pushes, the search drains, or someone halts. *)
            match Work_deque.park deque ~worker:i with
            | `Drained -> halt Proved_optimal
            | `Closed -> ()
            | `Work -> loop ())
      end
    in
    (* An oracle exception must not leave sibling domains parked: close
       the deque, then re-raise (Domain.join propagates). *)
    try loop ()
    with e ->
      Work_deque.close deque;
      raise e
  in
  (* ---- Seed phase (single-threaded, on the calling domain) ---- *)
  (* Grow the seed queue best-first until it can feed every shard.
     The loop honours every stop condition (without closing the deque —
     [seed_halt] only records the reason), observes the same per-node
     metrics as the workers (the CI schema gate counts one node-seconds
     observation per explored node), polices the frontier cap, and
     checkpoints on cadence from the local queue — a snapshot taken
     mid-seed is indistinguishable from any other frontier snapshot. *)
  let seed_target = max 1 (params.seed_factor * workers) in
  (* Cap expansions so a tree that prunes as fast as it branches (or
     never branches) cannot pin the whole search in the serial phase. *)
  let seed_cap = max 64 (8 * seed_target) in
  let seed_halt reason =
    ignore (Atomic.compare_and_set stop None (Some reason))
  in
  let seed_gap_ok () =
    let inc = Atomic.get incumbent_cost in
    inc < Float.infinity
    &&
    let bound = Float.min (Pqueue.min_key seedq) (Atomic.get shed_bound) in
    let gap = inc -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs inc
  in
  let seed_frontier () =
    Array.of_list (Pqueue.fold (fun acc k v -> (k, v) :: acc) [] seedq)
  in
  let seed_periodic_save () =
    match checkpointing with
    | Some ck
      when ck.every_nodes > 0
           && Atomic.get nodes - !last_saved_nodes >= ck.every_nodes ->
        last_saved_nodes := Atomic.get nodes;
        try_save ck (snapshot_state ~frontier:(seed_frontier ()) ck)
    | _ -> ()
  in
  let seed_shed () =
    if params.max_frontier > 0 && Pqueue.length seedq > params.max_frontier
    then begin
      let dropped, min_key =
        Pqueue.drop_worst seedq ~keep:params.max_frontier
      in
      if dropped > 0 then begin
        ws.(0).W.shed <- ws.(0).W.shed + dropped;
        fold_shed_bound min_key;
        if Obs.Metrics.enabled () then Obs.Metrics.add m_frontier_shed dropped;
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~cat:"bnb" "bnb.frontier_shed"
            ~args:
              [
                ("dropped", Obs.Trace.Int dropped);
                ("shed_bound", Obs.Trace.Float (Atomic.get shed_bound));
              ]
      end
    end
  in
  let seed_t0_ns = Obs.Clock.now_ns () in
  if Obs.Telemetry.enabled () then Obs.Telemetry.set_phase "seeding";
  let w0 = ws.(0) in
  let rec seed_loop expansions =
    if
      Atomic.get stop <> None
      || Pqueue.is_empty seedq
      || Pqueue.length seedq >= seed_target
      || expansions >= seed_cap
    then ()
    else if seed_gap_ok () then seed_halt Gap_reached
    else if Atomic.get nodes >= params.max_nodes then seed_halt Node_budget
    else if
      match params.time_limit with
      | Some limit -> elapsed () > limit
      | None -> false
    then seed_halt Time_budget
    else if interrupted () then seed_halt Interrupted
    else begin
      match Pqueue.pop seedq with
      | None -> ()
      | Some (lb, region) ->
          if lb >= Atomic.get incumbent_cost then begin
            (* Stale entry dominated by a newer incumbent. *)
            w0.W.stale <- w0.W.stale + 1;
            seed_loop expansions
          end
          else begin
            let n = 1 + Atomic.fetch_and_add nodes 1 in
            note_first_node w0;
            incr seed_nodes_run;
            if params.log_every > 0 && n mod params.log_every = 0 then
              Log.debug (fun m ->
                  m "node %d [seed]: bound %.6g incumbent %.6g queued %d" n lb
                    (Atomic.get incumbent_cost) (Pqueue.length seedq));
            let t_node = Obs.Clock.now_ns () in
            let budget = ref faults.policy.Fault.retry_budget in
            let children = guarded_branch ~faults ~fc ~budget oracle region in
            w0.W.children <- w0.W.children + List.length children;
            List.iter
              (fun child ->
                match
                  timed_guarded_bound ~cell:w0.W.oracle_cell ~faults ~fc ~oc
                    ~budget oracle child
                with
                | Dropped_bound -> ()
                | Bounded info -> seed_record_bounded w0 child info)
              children;
            seed_shed ();
            let node_ns = Obs.Clock.now_ns () - t_node in
            if Obs.Trace.enabled () then
              Obs.Trace.complete ~cat:"bnb" "bnb.node" ~t0_ns:t_node
                ~dur_ns:node_ns
                ~args:
                  [ ("node", Obs.Trace.Int n); ("lb", Obs.Trace.Float lb) ];
            if Obs.Metrics.enabled () then
              Obs.Metrics.observe m_node_seconds (float_of_int node_ns *. 1e-9);
            seed_us_run := (Obs.Clock.now_ns () - seed_t0_ns) / 1000;
            seed_periodic_save ();
            seed_loop (expansions + 1)
          end
    end
  in
  seed_loop 0;
  (* Deal by bound rank, round-robin: consecutive ranks land on
     different shards, so every worker starts with a comparably
     promising slice of the frontier instead of queueing up to steal
     from shard 0.  Pre-start pushes from the setup thread are within
     the Work_deque ownership contract. *)
  Pqueue.drain seedq (fun rank lb region ->
      Work_deque.push deque ~worker:(rank mod workers) lb region);
  let seed_dur_ns = Obs.Clock.now_ns () - seed_t0_ns in
  seed_us_run := seed_dur_ns / 1000;
  if Obs.Trace.enabled () then
    Obs.Trace.complete ~cat:"bnb" "bnb.seed" ~t0_ns:seed_t0_ns
      ~dur_ns:seed_dur_ns
      ~args:
        [
          ("seed_nodes", Obs.Trace.Int !seed_nodes_run);
          ("frontier", Obs.Trace.Int (Work_deque.live deque));
        ];
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe m_seed_seconds (float_of_int seed_dur_ns *. 1e-9);
  (* A stop raised mid-seed (or a search the seed loop already
     exhausted) skips the workers entirely; the dealt deque is still
     the authoritative frontier for the save-on-stop snapshot and the
     final bound. *)
  if Atomic.get stop <> None || Work_deque.drained deque then
    Work_deque.close deque
  else begin
    if Obs.Telemetry.enabled () then Obs.Telemetry.set_phase "searching";
    let spawned =
      Array.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned
  end;
  let stop_reason =
    match Atomic.get stop with Some r -> r | None -> Proved_optimal
  in
  if Obs.Telemetry.enabled () then begin
    Obs.Telemetry.set_nodes (Atomic.get nodes);
    Obs.Telemetry.set_phase ("done:" ^ stop_reason_name stop_reason)
  end;
  (match checkpointing with
  | Some ck when ck.save_on_stop && stop_wants_save stop_reason ->
      (* All workers have joined: nothing is in flight, the shard queues
         are the complete frontier, and the merge is single-threaded and
         exact. *)
      try_save ck
        (snapshot_state
           ~frontier:(Array.of_list (Work_deque.snapshot deque))
           ck)
  | _ -> ());
  (* After the joins the deque is quiescent, but the batched mirrors may
     still be up to one publish epoch stale low: flush them so the
     reported bound/gap is the true frontier minimum, not a
     conservative under-estimate. *)
  Work_deque.sync_mirrors deque;
  let bound =
    let fb = Work_deque.frontier_bound deque in
    let b =
      if Work_deque.drained deque then
        (* Everything explored or pruned: the incumbent is optimal —
           unless subtrees were shed, whose residue caps the claim. *)
        Float.min (Atomic.get incumbent_cost) fb
      else fb
    in
    Float.min b (Atomic.get shed_bound)
  in
  let incumbent_cost = Atomic.get incumbent_cost in
  {
    best = !incumbent;
    bound;
    gap =
      (if incumbent_cost = Float.infinity then Float.infinity
       else incumbent_cost -. bound);
    nodes_explored = Atomic.get nodes;
    stop_reason;
    stats =
      {
        infeasible_regions = infeasible0 + sum (fun w -> w.W.infeasible);
        bound_pruned = pruned0 + sum (fun w -> w.W.pruned);
        stale_pops = stale0 + sum (fun w -> w.W.stale);
        incumbent_updates = updates0 + sum (fun w -> w.W.updates);
        children_generated = children0 + sum (fun w -> w.W.children);
        domains_used = workers;
        idle_wakeups = Work_deque.idle_wakeups deque;
        steals = Work_deque.steals deque;
        stolen_nodes = Work_deque.stolen_nodes deque;
        seed_nodes = seed0_nodes + !seed_nodes_run;
        seed_seconds = float_of_int (seed0_us + !seed_us_run) *. 1e-6;
        targeted_wakeups =
          Array.fold_left ( + ) 0 (Work_deque.targeted_wakeups deque);
        steals_best_victim =
          Array.fold_left ( + ) 0 (Work_deque.steals_best_victim deque);
        domain_targeted_wakeups = Work_deque.targeted_wakeups deque;
        domain_steals_best_victim = Work_deque.steals_best_victim deque;
        domain_first_node_seconds =
          Array.map
            (fun w ->
              if w.W.first_node_us < 0 then -1.0
              else float_of_int w.W.first_node_us *. 1e-6)
            ws;
        oracle_failures = Atomic.get fc.Fault.failures;
        retries = Atomic.get fc.Fault.retries;
        degraded_bounds = Atomic.get fc.Fault.degraded;
        dropped_regions = Atomic.get fc.Fault.dropped;
        warm_start_hits = Atomic.get oc.warm_hits;
        phase1_skipped = Atomic.get oc.phase1_skips;
        warm_pull_ins = Atomic.get oc.pull_ins;
        warm_newton_corrections = Atomic.get oc.corrections;
        warm_miss_no_parent = Atomic.get oc.miss_no_parent;
        warm_miss_not_interior = Atomic.get oc.miss_not_interior;
        warm_miss_fault_cleared = Atomic.get oc.miss_fault_cleared;
        stolen_warm = Work_deque.stolen_warm deque;
        counters_reset = reset0;
        cert_verified = Atomic.get oc.cert_verified;
        cert_repaired = Atomic.get oc.cert_repaired;
        cert_fallbacks = Atomic.get oc.cert_fallbacks;
        certified_sound = Atomic.get oc.certified_sound;
        frontier_shed = shed0 + sum (fun w -> w.W.shed);
        retry_budget_exhausted = Atomic.get fc.Fault.budget_exhausted;
        retry_backoff_seconds =
          float_of_int (Atomic.get fc.Fault.backoff_ns) *. 1e-9;
        oracle_seconds = float_of_int (Atomic.get oc.oracle_time_us) *. 1e-6;
        domain_oracle_seconds =
          Array.map (fun w -> float_of_int !(w.W.oracle_cell) *. 1e-6) ws;
        wall_seconds = elapsed ();
      };
  }

let run ~params ~faults ~checkpointing ~interrupt ~counters ~progress
    ~carries_warm oracle source =
  if params.domains <= 1 then
    run_seq ~params ~faults ~checkpointing ~interrupt ~counters ~progress
      oracle source
  else
    run_par ~params ~faults ~checkpointing ~interrupt ~counters ~progress
      ~carries_warm oracle source

let minimize ?(params = default_params) ?(faults = default_faults)
    ?checkpointing ?interrupt ?counters ?progress ?carries_warm oracle root =
  run ~params ~faults ~checkpointing ~interrupt ~counters ~progress
    ~carries_warm oracle (Root root)

let resume ?(params = default_params) ?(faults = default_faults)
    ?checkpointing ?interrupt ?counters ?progress ?carries_warm oracle state =
  run ~params ~faults ~checkpointing ~interrupt ~counters ~progress
    ~carries_warm oracle (Restored state)

let minimize_parallel ?(params = default_params) ~domains oracle root =
  minimize ~params:{ params with domains } oracle root
