type 'sol bound_info = {
  lower : float;
  candidate : ('sol * float) option;
}

type ('region, 'sol) oracle = {
  bound : 'region -> 'sol bound_info option;
  branch : 'region -> 'region list;
}

type params = {
  max_nodes : int;
  rel_gap : float;
  abs_gap : float;
  time_limit : float option;
  log_every : int;
  domains : int;
}

let default_params =
  { max_nodes = 100_000; rel_gap = 1e-6; abs_gap = 1e-12; time_limit = None;
    log_every = 0; domains = 1 }

type stop_reason = Proved_optimal | Gap_reached | Node_budget | Time_budget

type stats = {
  infeasible_regions : int;
  bound_pruned : int;
  stale_pops : int;
  incumbent_updates : int;
  children_generated : int;
  domains_used : int;
  idle_wakeups : int;
}

type 'sol result = {
  best : ('sol * float) option;
  bound : float;
  gap : float;
  nodes_explored : int;
  stop_reason : stop_reason;
  stats : stats;
}

let src = Logs.Src.create "ldafp.bnb" ~doc:"branch-and-bound driver"

module Log = (val Logs.src_log src : Logs.LOG)

(* Budgets are wall-clock: [Sys.time] is process CPU time, which both
   overshoots wall budgets on a busy machine and inflates ~N× once N
   domains burn CPU concurrently. *)
let now () = Unix.gettimeofday ()

let minimize_seq : type region sol.
    params:params -> (region, sol) oracle -> region -> sol result =
 fun ~params oracle root ->
  let queue = Pqueue.create () in
  let incumbent = ref None in
  let incumbent_cost = ref Float.infinity in
  let nodes = ref 0 in
  let start_time = now () in
  let stop = ref None in
  let infeasible_regions = ref 0 in
  let bound_pruned = ref 0 in
  let stale_pops = ref 0 in
  let incumbent_updates = ref 0 in
  let children_generated = ref 0 in
  let consider_candidate = function
    | Some (sol, cost) when cost < !incumbent_cost ->
        incumbent := Some (sol, cost);
        incumbent_cost := cost;
        incr incumbent_updates;
        (* New incumbent: drop queued regions it dominates. *)
        Pqueue.filter_in_place queue (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let enqueue region =
    match oracle.bound region with
    | None -> incr infeasible_regions
    | Some { lower; candidate } ->
        consider_candidate candidate;
        if lower < !incumbent_cost then Pqueue.push queue lower region
        else incr bound_pruned
  in
  enqueue root;
  let gap_ok () =
    !incumbent_cost < Float.infinity
    &&
    let bound = Pqueue.min_key queue in
    let gap = !incumbent_cost -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs !incumbent_cost
  in
  while !stop = None do
    if Pqueue.is_empty queue then stop := Some Proved_optimal
    else if gap_ok () then stop := Some Gap_reached
    else if !nodes >= params.max_nodes then stop := Some Node_budget
    else if
      match params.time_limit with
      | Some limit -> now () -. start_time > limit
      | None -> false
    then stop := Some Time_budget
    else begin
      match Pqueue.pop queue with
      | None -> stop := Some Proved_optimal
      | Some (lb, region) ->
          if lb >= !incumbent_cost then
            (* Stale entry dominated by a newer incumbent. *)
            incr stale_pops
          else begin
            incr nodes;
            if params.log_every > 0 && !nodes mod params.log_every = 0 then
              Log.debug (fun m ->
                  m "node %d: bound %.6g incumbent %.6g queue %d" !nodes lb
                    !incumbent_cost (Pqueue.length queue));
            let children = oracle.branch region in
            children_generated := !children_generated + List.length children;
            List.iter enqueue children
          end
    end
  done;
  let bound =
    if Pqueue.is_empty queue then
      (* Everything explored or pruned: the incumbent is optimal. *)
      Float.min !incumbent_cost (Pqueue.min_key queue)
    else Pqueue.min_key queue
  in
  {
    best = !incumbent;
    bound;
    gap =
      (if !incumbent_cost = Float.infinity then Float.infinity
       else !incumbent_cost -. bound);
    nodes_explored = !nodes;
    stop_reason = (match !stop with Some r -> r | None -> Proved_optimal);
    stats =
      {
        infeasible_regions = !infeasible_regions;
        bound_pruned = !bound_pruned;
        stale_pops = !stale_pops;
        incumbent_updates = !incumbent_updates;
        children_generated = !children_generated;
        domains_used = 1;
        idle_wakeups = 0;
      };
  }

(* Parallel driver: the calling domain plus [params.domains - 1] spawned
   domains run the same worker loop over a shared Work_pool.  Expensive
   oracle calls (bound/branch) run outside the pool lock; every queue or
   counter mutation happens under it.  The incumbent cost is mirrored in
   an Atomic so workers prune against the freshest bound without
   locking.  Termination mirrors the sequential checks, with the global
   bound taken over queued *and* in-flight regions so a gap can never be
   declared while a better region is still being processed. *)
let minimize_par : type region sol.
    params:params -> (region, sol) oracle -> region -> sol result =
 fun ~params oracle root ->
  let workers = params.domains in
  let pool : region Work_pool.t = Work_pool.create ~workers in
  let incumbent = ref None (* under the pool lock *) in
  let incumbent_cost = Atomic.make Float.infinity in
  let nodes = ref 0 in
  let start_time = now () in
  let stop = ref None in
  (* Counters below are mutated under the pool lock only. *)
  let infeasible_regions = ref 0 in
  let bound_pruned = ref 0 in
  let stale_pops = ref 0 in
  let incumbent_updates = ref 0 in
  let children_generated = ref 0 in
  let consider_candidate_locked = function
    | Some (sol, cost) when cost < Atomic.get incumbent_cost ->
        incumbent := Some (sol, cost);
        Atomic.set incumbent_cost cost;
        incr incumbent_updates;
        Work_pool.prune pool (fun lb _ -> lb < cost)
    | _ -> ()
  in
  let record_bounded_locked region = function
    | None -> incr infeasible_regions
    | Some { lower; candidate } ->
        consider_candidate_locked candidate;
        if lower < Atomic.get incumbent_cost then
          Work_pool.push pool lower region
        else incr bound_pruned
  in
  (* The root is bounded on the calling domain before any worker starts,
     exactly as in the sequential driver (callers may rely on the root
     bound running first, e.g. to install a seeded incumbent). *)
  let root_info = oracle.bound root in
  Work_pool.locked pool (fun () -> record_bounded_locked root root_info);
  let gap_ok_locked () =
    let inc = Atomic.get incumbent_cost in
    inc < Float.infinity
    &&
    let bound = Work_pool.frontier_bound pool in
    let gap = inc -. bound in
    gap <= params.abs_gap || gap <= params.rel_gap *. Float.abs inc
  in
  let halt_locked reason =
    if !stop = None then stop := Some reason;
    Work_pool.close pool
  in
  let worker i () =
    let rec loop () =
      let action =
        Work_pool.locked pool (fun () ->
            let rec decide () =
              if Work_pool.is_closed pool then `Exit
              else if Work_pool.drained pool then begin
                halt_locked Proved_optimal;
                `Exit
              end
              else if gap_ok_locked () then begin
                halt_locked Gap_reached;
                `Exit
              end
              else if !nodes >= params.max_nodes then begin
                halt_locked Node_budget;
                `Exit
              end
              else if
                match params.time_limit with
                | Some limit -> now () -. start_time > limit
                | None -> false
              then begin
                halt_locked Time_budget;
                `Exit
              end
              else
                match Work_pool.take pool ~worker:i with
                | None ->
                    (* Empty queue but siblings still expanding: their
                       children may refill it. *)
                    Work_pool.wait pool;
                    decide ()
                | Some (lb, region) ->
                    if lb >= Atomic.get incumbent_cost then begin
                      incr stale_pops;
                      Work_pool.release pool ~worker:i;
                      decide ()
                    end
                    else begin
                      incr nodes;
                      if params.log_every > 0 && !nodes mod params.log_every = 0
                      then
                        Log.debug (fun m ->
                            m "node %d [w%d]: bound %.6g incumbent %.6g queue %d"
                              !nodes i lb
                              (Atomic.get incumbent_cost)
                              (Work_pool.queue_length pool));
                      `Expand region
                    end
            in
            decide ())
      in
      match action with
      | `Exit -> ()
      | `Expand region ->
          let children = oracle.branch region in
          Work_pool.locked pool (fun () ->
              children_generated :=
                !children_generated + List.length children);
          (* Bound each child outside the lock; publish immediately so
             siblings prune against fresh incumbents. *)
          List.iter
            (fun child ->
              let info = oracle.bound child in
              Work_pool.locked pool (fun () ->
                  record_bounded_locked child info))
            children;
          Work_pool.locked pool (fun () -> Work_pool.release pool ~worker:i);
          loop ()
    in
    (* An oracle exception must not leave sibling domains blocked on the
       pool: close it, then re-raise (Domain.join propagates). *)
    try loop ()
    with e ->
      Work_pool.locked pool (fun () -> Work_pool.close pool);
      raise e
  in
  let spawned =
    Array.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  Array.iter Domain.join spawned;
  let bound, idle_wakeups =
    Work_pool.locked pool (fun () ->
        let inc = Atomic.get incumbent_cost in
        let b =
          if Work_pool.queue_is_empty pool then
            Float.min inc (Work_pool.min_queue_key pool)
          else Work_pool.min_queue_key pool
        in
        (b, Work_pool.idle_wakeups pool))
  in
  let incumbent_cost = Atomic.get incumbent_cost in
  {
    best = !incumbent;
    bound;
    gap =
      (if incumbent_cost = Float.infinity then Float.infinity
       else incumbent_cost -. bound);
    nodes_explored = !nodes;
    stop_reason = (match !stop with Some r -> r | None -> Proved_optimal);
    stats =
      {
        infeasible_regions = !infeasible_regions;
        bound_pruned = !bound_pruned;
        stale_pops = !stale_pops;
        incumbent_updates = !incumbent_updates;
        children_generated = !children_generated;
        domains_used = workers;
        idle_wakeups;
      };
  }

let minimize ?(params = default_params) oracle root =
  if params.domains <= 1 then minimize_seq ~params oracle root
  else minimize_par ~params oracle root

let minimize_parallel ?(params = default_params) ~domains oracle root =
  minimize ~params:{ params with domains } oracle root
