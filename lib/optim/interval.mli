(** Closed real intervals [[lo, hi]].

    Used for the auxiliary branch-and-bound variable [t = (μ_A−μ_B)ᵀw]
    (paper eq. 22) and as the continuous relaxation of weight boxes.  The
    bound constants of eqs. (26)–(27) — [sup t²] and [inf t²] over an
    interval — live here. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** @raise Invalid_argument if [lo > hi] or either bound is NaN. *)

val point : float -> t
val lo : t -> float
val hi : t -> float
val width : t -> float
val mid : t -> float
val mem : t -> float -> bool
val clamp : t -> float -> float

val sup_sq : t -> float
(** [sup { t² : t ∈ iv }] — eq. (26): the larger endpoint squared. *)

val inf_sq : t -> float
(** [inf { t² : t ∈ iv }] — eq. (27): zero if the interval straddles 0,
    otherwise the smaller endpoint-magnitude squared. *)

val split : ?at:float -> t -> t * t
(** Split at [at] (default the midpoint), clamped strictly inside. *)

val intersect : t -> t -> t option
val scale : float -> t -> t
val shift : float -> t -> t
val contains_zero : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
