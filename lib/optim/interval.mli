(** Closed real intervals [[lo, hi]].

    Used for the auxiliary branch-and-bound variable [t = (μ_A−μ_B)ᵀw]
    (paper eq. 22) and as the continuous relaxation of weight boxes.  The
    bound constants of eqs. (26)–(27) — [sup t²] and [inf t²] over an
    interval — live here. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** @raise Invalid_argument if [lo > hi] or either bound is NaN. *)

val point : float -> t
val lo : t -> float
val hi : t -> float
val width : t -> float
val mid : t -> float
val mem : t -> float -> bool
val clamp : t -> float -> float

val sup_sq : t -> float
(** [sup { t² : t ∈ iv }] — eq. (26): the larger endpoint squared. *)

val inf_sq : t -> float
(** [inf { t² : t ∈ iv }] — eq. (27): zero if the interval straddles 0,
    otherwise the smaller endpoint-magnitude squared. *)

val split : ?at:float -> t -> t * t
(** Split at [at] (default the midpoint), clamped strictly inside. *)

val intersect : t -> t -> t option
val scale : float -> t -> t
val shift : float -> t -> t
val contains_zero : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Directed (outward) rounding}

    Rigorous enclosures for the dual-certificate evaluation
    ({!Socp.certify_lower_bound}): every operation widens its result by
    one representable float on each side, so the true real-arithmetic
    result is guaranteed to lie inside the returned interval whatever
    the rounding mode did.  This over-approximates slightly (correctly
    rounded +, −, × are within half an ulp, we step a full ulp) but
    needs no FPU mode switching and composes freely.  Infinite
    endpoints are preserved, never stepped inward.  An operation whose
    endpoint arithmetic produces NaN (e.g. [∞ − ∞]) raises
    [Invalid_argument] via {!make} — callers computing certificates
    treat that as a certification failure, never as a bound. *)

val wide : t -> t
(** Step both endpoints one float outward. *)

val neg : t -> t
(** Exact negation (no widening needed: negation is exact in IEEE). *)

val wide_add : t -> t -> t
val wide_sub : t -> t -> t

val wide_mul : t -> t -> t
(** Endpoint-product enclosure with the Kahan convention [0 · ±∞ = 0]:
    an exactly-zero factor contributes zero even against an unbounded
    interval (the sound closure of the limit for products over closed
    sets containing 0). *)
