type 'a entry = { key : float; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }
let is_empty t = t.size = 0
let length t = t.size

let grow t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap t.data.(0) in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).key < t.data.(parent).key then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.data.(l).key < t.data.(!smallest).key then smallest := l;
  if r < t.size && t.data.(r).key < t.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  let e = { key; value } in
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 e;
  grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* The vacated slot now aliases the moved entry, which is live —
         no dangling reference to [top] remains in the array. *)
      sift_down t 0
    end
    else
      (* Drop the backing store so the popped value can be collected. *)
      t.data <- [||];
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key
let min_key t = match peek_key t with None -> Float.infinity | Some k -> k

(* Floyd's bottom-up heap construction: O(n). *)
let heapify t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let filter_in_place t pred =
  let old_size = t.size in
  let kept = ref 0 in
  for i = 0 to old_size - 1 do
    let e = t.data.(i) in
    if pred e.key e.value then begin
      t.data.(!kept) <- e;
      incr kept
    end
  done;
  t.size <- !kept;
  if !kept = 0 then t.data <- [||]
  else begin
    (* Alias dead slots to a surviving entry so dropped values (pruned
       regions, stale solutions) can be collected instead of staying
       pinned by the backing array. *)
    for i = !kept to old_size - 1 do
      t.data.(i) <- t.data.(0)
    done;
    heapify t
  end

(* Move the ceil(n/2) smallest-key entries of [src] into [dst] — the
   work-stealing transfer.  Best keys first: the thief inherits the most
   promising half of the victim's frontier, which keeps the global
   exploration order close to best-first even while nodes migrate.
   O(k log n) pops + pushes; steals are rare enough that this never
   shows up in profiles. *)
let steal_half src dst =
  let k = (src.size + 1) / 2 in
  for _ = 1 to k do
    match pop src with
    | Some (key, value) -> push dst key value
    | None -> assert false (* k <= src.size by construction *)
  done;
  k

(* Shed the largest-key entries until at most [keep] remain — the
   bounded-memory frontier cap.  Shedding is rare (only on overflow),
   so a full sort is fine; a sorted-ascending array is already a valid
   min-heap, and the fresh backing array releases the shed values. *)
let drop_worst t ~keep =
  let keep = max 0 keep in
  if t.size <= keep then (0, Float.infinity)
  else begin
    let entries = Array.sub t.data 0 t.size in
    Array.sort (fun a b -> Float.compare a.key b.key) entries;
    let dropped = t.size - keep in
    let min_dropped = entries.(keep).key in
    if keep = 0 then begin
      t.size <- 0;
      t.data <- [||]
    end
    else begin
      t.size <- keep;
      t.data <- Array.sub entries 0 keep
    end;
    (dropped, min_dropped)
  end

(* Drain the heap in ascending key order, handing each entry its rank.
   The seed-phase dealer uses the rank to place nodes round-robin
   across shards, so consecutive bound ranks land on different workers
   and every shard starts with a comparably promising slice of the
   frontier.  O(n log n) pops; runs once per search, before workers
   start. *)
let drain t f =
  let rec go rank =
    match pop t with
    | None -> ()
    | Some (key, value) ->
        f rank key value;
        go (rank + 1)
  in
  go 0

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    acc := f !acc e.key e.value
  done;
  !acc
