(** Damped Newton minimisation of smooth strictly convex functions.

    The inner loop of the barrier method: minimise [f] given a combined
    value/gradient/Hessian oracle.  The oracle returns [None] outside the
    function's domain (e.g. outside the barrier's cone), which the
    backtracking line search treats as [+∞]. *)

type oracle = Linalg.Vec.t -> (float * Linalg.Vec.t * Linalg.Mat.t) option

type params = {
  tol : float;  (** stop when the Newton decrement λ²/2 falls below this *)
  max_iter : int;
  alpha : float;  (** line-search sufficient-decrease fraction, in (0, ½) *)
  beta : float;  (** line-search backtracking factor, in (0, 1) *)
}

val default_params : params
(** [tol = 1e-9], [max_iter = 80], [alpha = 0.25], [beta = 0.5]. *)

type status = Converged | Iteration_limit | Stalled | Diverged
(** [Stalled]: the line search could not make progress (typically at the
    numerical boundary of the domain); the best iterate is still
    returned.  [Diverged]: the Newton decrement evaluated to NaN (a NaN
    in the oracle's gradient/Hessian, or a degenerate Newton system) —
    the returned iterate is the last {e finite} one, but it carries no
    optimality certificate and callers must not treat it as converged. *)

type result = {
  x : Linalg.Vec.t;
  value : float;
  iterations : int;
  decrement : float;  (** final λ²/2 *)
  status : status;
}

val minimize : ?params:params -> oracle -> Linalg.Vec.t -> result
(** @raise Invalid_argument if the starting point is outside the domain. *)
