(** Damped Newton minimisation of smooth strictly convex functions.

    The inner loop of the barrier method: minimise [f] given a combined
    value/gradient/Hessian oracle.  The oracle returns [None] outside the
    function's domain (e.g. outside the barrier's cone), which the
    backtracking line search treats as [+∞]. *)

type oracle = Linalg.Vec.t -> (float * Linalg.Vec.t * Linalg.Mat.t) option

type params = {
  tol : float;  (** stop when the Newton decrement λ²/2 falls below this *)
  max_iter : int;
  alpha : float;  (** line-search sufficient-decrease fraction, in (0, ½) *)
  beta : float;  (** line-search backtracking factor, in (0, 1) *)
}

val default_params : params
(** [tol = 1e-9], [max_iter = 80], [alpha = 0.25], [beta = 0.5]. *)

type status = Converged | Iteration_limit | Stalled | Diverged
(** [Stalled]: the line search could not make progress (typically at the
    numerical boundary of the domain); the best iterate is still
    returned.  [Diverged]: the Newton decrement evaluated to NaN (a NaN
    in the oracle's gradient/Hessian, or a degenerate Newton system) —
    the returned iterate is the last {e finite} one, but it carries no
    optimality certificate and callers must not treat it as converged. *)

type result = {
  x : Linalg.Vec.t;
  value : float;
  iterations : int;
  decrement : float;  (** final λ²/2 *)
  status : status;
}

val minimize : ?params:params -> oracle -> Linalg.Vec.t -> result
(** @raise Invalid_argument if the starting point is outside the domain. *)

(** {2 Allocation-lean interface}

    The barrier method calls Newton once per outer iteration on problems
    of a fixed dimension, so the iterate, direction, Hessian and
    factorisation buffers can be reused across calls.  A {!workspace} is
    {b not} thread-safe: share one per domain (e.g. via [Domain.DLS]),
    never across domains. *)

type oracle_into = Linalg.Vec.t -> grad:Linalg.Vec.t -> hess:Linalg.Mat.t -> float option
(** Like {!oracle}, but writes the gradient and Hessian into the supplied
    buffers and returns only the value ([None] outside the domain, in
    which case the buffers' contents are unspecified).  The buffers are
    owned by the solver and clobbered on every evaluation — oracles must
    not retain them. *)

type workspace
(** Reusable scratch for {!minimize_into}: iterate double-buffer,
    gradient, Hessian, symmetrisation and Cholesky scratch, direction. *)

val workspace : int -> workspace
(** [workspace n] allocates scratch for [n]-dimensional problems. *)

val workspace_dim : workspace -> int

val minimize_into : ?params:params -> workspace -> oracle_into -> Linalg.Vec.t -> result
(** Same algorithm and same results as {!minimize}, but all inner-loop
    temporaries live in the workspace, so each iteration allocates O(1)
    words.  [x0] is not mutated; the returned iterate is freshly
    allocated.
    @raise Invalid_argument if the starting point is outside the domain
    or its dimension does not match the workspace. *)

val step_into :
  ?params:params -> workspace -> oracle_into -> Linalg.Vec.t -> dst:Linalg.Vec.t -> bool
(** One damped Newton step from [x0], written into [dst]: direction via
    the jittered Cholesky, then the same backtracking line search (with
    domain rejection) as {!minimize_into}, stopping at the first
    accepted candidate.  Returns [false] — leaving [dst] unspecified —
    when [x0] is outside the oracle's domain, the Newton system is
    degenerate (NaN decrement) or the line search cannot find an
    acceptable point.  Heap-allocation-free: all temporaries live in the
    workspace.  This is the engine of the warm-start interiority
    correction (see {!Socp.correct_to_interior}), where a single pure
    barrier step from a slightly-relaxed start is enough to clear the
    boundary and a full {!minimize_into} would waste the budget.
    [dst] may alias [x0]; it must not alias the workspace buffers.
    @raise Invalid_argument on a dimension mismatch. *)
