(** ADMM solver for box-constrained quadratic programs (OSQP-style).

    {v minimize   (1/2) xᵀP x + qᵀx
       subject to l <= A x <= u v}

    A second, algorithmically independent convex solver.  Its role in this
    repository is {e verification}: the interior-point {!Socp} solver and
    this operator-splitting method share no code beyond the linear-algebra
    substrate, so agreement on random QPs (see [test/test_optim.ml]) is
    strong evidence both are correct — the same pattern the paper applies
    by checking LDA-FP against conventional LDA at large word lengths.

    Fixed-step ADMM with a single up-front Cholesky factorisation of
    [P + σI + ρAᵀA]; terminates on primal/dual residual tolerances. *)

type problem = {
  p : Linalg.Mat.t;  (** symmetric PSD *)
  q : Linalg.Vec.t;
  a : Linalg.Mat.t;  (** constraint matrix, [m × n] *)
  l : Linalg.Vec.t;  (** lower bounds, [-infinity] allowed *)
  u : Linalg.Vec.t;  (** upper bounds, [+infinity] allowed *)
}

val problem :
  ?p:Linalg.Mat.t ->
  ?q:Linalg.Vec.t ->
  a:Linalg.Mat.t ->
  l:Linalg.Vec.t ->
  u:Linalg.Vec.t ->
  unit ->
  problem
(** @raise Invalid_argument on dimension mismatch or [l > u]. *)

val box_problem :
  ?p:Linalg.Mat.t ->
  ?q:Linalg.Vec.t ->
  lo:Linalg.Vec.t ->
  hi:Linalg.Vec.t ->
  unit ->
  problem
(** Plain variable bounds ([A = I]). *)

type params = {
  rho : float;  (** ADMM penalty (default 1.0) *)
  sigma : float;  (** proximal regularisation (default 1e-6) *)
  alpha : float;  (** over-relaxation in (0, 2) (default 1.6) *)
  eps_abs : float;
  eps_rel : float;
  max_iter : int;
}

val default_params : params

type status = Solved | Max_iterations

type solution = {
  x : Linalg.Vec.t;
  objective : float;
  iterations : int;
  primal_residual : float;
  dual_residual : float;
  status : status;
}

val solve : ?params:params -> problem -> solution
