open Ldafp_core

(* ------------------------------------------------------------------ *)
(* Shared configuration                                                *)
(* ------------------------------------------------------------------ *)

let synthetic_train_per_class quick = if quick then 1000 else 2000
let synthetic_test_per_class quick = if quick then 10_000 else 50_000

let ldafp_config ~max_nodes =
  {
    Lda_fp.default_config with
    bnb_params =
      { Optim.Bnb.default_params with max_nodes; rel_gap = 1e-3 };
  }

let synthetic_nodes quick = if quick then 200 else 1500
let bci_nodes quick = if quick then 12 else 60

let fmt_of_wl wl = Fixedpoint.Format_policy.default wl

(* ------------------------------------------------------------------ *)
(* E1 — Table 1                                                        *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  wl : int;
  lda_err : float;
  ldafp_err : float;
  runtime : float;
  nodes : int;
  paper_lda : float;
  paper_ldafp : float;
  paper_runtime : float;
}

let paper_table1 =
  [
    (4, 0.5000, 0.2704, 0.81);
    (6, 0.5000, 0.2683, 5.87);
    (8, 0.5000, 0.2598, 20.42);
    (10, 0.5000, 0.2262, 29.16);
    (12, 0.2446, 0.1960, 29.11);
    (14, 0.1948, 0.1933, 0.06);
    (16, 0.1933, 0.1933, 0.06);
  ]

let table1 ?(quick = false) ?(seed = 42) () =
  let rng = Stats.Rng.create seed in
  let train =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_train_per_class quick)
      rng
  in
  let test =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_test_per_class quick)
      rng
  in
  let config = ldafp_config ~max_nodes:(synthetic_nodes quick) in
  List.map
    (fun (wl, paper_lda, paper_ldafp, paper_runtime) ->
      let fmt = fmt_of_wl wl in
      let conv = Pipeline.train_conventional ~fmt train in
      let lda_err = Eval.error_fixed conv test in
      match Pipeline.train_ldafp ~config ~fmt train with
      | None ->
          {
            wl; lda_err; ldafp_err = Float.nan; runtime = 0.0; nodes = 0;
            paper_lda; paper_ldafp; paper_runtime;
          }
      | Some r ->
          {
            wl;
            lda_err;
            ldafp_err = Eval.error_fixed r.Pipeline.classifier test;
            runtime = r.Pipeline.outcome.Lda_fp.diagnostics.train_seconds;
            nodes = r.Pipeline.outcome.Lda_fp.diagnostics.nodes;
            paper_lda;
            paper_ldafp;
            paper_runtime;
          })
    paper_table1

let error_columns =
  [
    Table.column "WL";
    Table.column "LDA err";
    Table.column "(paper)";
    Table.column "LDA-FP err";
    Table.column "(paper)";
    Table.column "runtime s";
    Table.column "(paper)";
  ]

let print_table1 rows =
  Table.print
    ~title:
      "Table 1 (E1): synthetic data - classification error and LDA-FP \
       runtime vs word length"
    ~columns:(error_columns @ [ Table.column "nodes" ])
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.wl;
             Table.pct r.lda_err;
             Table.pct r.paper_lda;
             Table.pct r.ldafp_err;
             Table.pct r.paper_ldafp;
             Table.secs r.runtime;
             Table.secs r.paper_runtime;
             string_of_int r.nodes;
           ])
         rows)
    ()

(* ------------------------------------------------------------------ *)
(* E2 — Figure 4                                                       *)
(* ------------------------------------------------------------------ *)

type fig4_row = { wl : int; lda_w : Linalg.Vec.t; ldafp_w : Linalg.Vec.t }

let normalize_or_zero w =
  if Linalg.Vec.norm_inf w = 0.0 then Linalg.Vec.copy w
  else Linalg.Vec.normalize_inf w

let figure4 ?(quick = false) ?(seed = 42) () =
  let rng = Stats.Rng.create seed in
  let train =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_train_per_class quick)
      rng
  in
  let config = ldafp_config ~max_nodes:(synthetic_nodes quick) in
  List.map
    (fun wl ->
      let fmt = fmt_of_wl wl in
      let conv = Pipeline.train_conventional ~fmt train in
      let lda_w = normalize_or_zero (Fixed_classifier.weights conv) in
      let ldafp_w =
        match Pipeline.train_ldafp ~config ~fmt train with
        | Some r -> normalize_or_zero r.Pipeline.outcome.Lda_fp.w
        | None -> Linalg.Vec.zeros 3
      in
      { wl; lda_w; ldafp_w })
    [ 4; 6; 8; 10; 12; 14; 16 ]

let print_figure4 rows =
  Table.print
    ~title:
      "Figure 4 (E2): normalised weight values vs word length (synthetic). \
       The paper's point: LDA rounds w1 to zero at short word lengths; \
       LDA-FP keeps it non-zero."
    ~columns:
      [
        Table.column "WL";
        Table.column "LDA w1";
        Table.column "LDA w2";
        Table.column "LDA w3";
        Table.column "FP w1";
        Table.column "FP w2";
        Table.column "FP w3";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.wl;
             Printf.sprintf "%.4f" r.lda_w.(0);
             Printf.sprintf "%.4f" r.lda_w.(1);
             Printf.sprintf "%.4f" r.lda_w.(2);
             Printf.sprintf "%.4f" r.ldafp_w.(0);
             Printf.sprintf "%.4f" r.ldafp_w.(1);
             Printf.sprintf "%.4f" r.ldafp_w.(2);
           ])
         rows)
    ()

(* ------------------------------------------------------------------ *)
(* E3 — Table 2                                                        *)
(* ------------------------------------------------------------------ *)

type t2_row = {
  wl : int;
  lda_err : float;
  ldafp_err : float;
  runtime : float;
  paper_lda : float;
  paper_ldafp : float;
  paper_runtime : float;
}

let paper_table2 =
  [
    (3, 0.5000, 0.5214, 39.9);
    (4, 0.4643, 0.3717, 219.7);
    (5, 0.4071, 0.3214, 1913.5);
    (6, 0.3214, 0.2071, 2977.0);
    (7, 0.2143, 0.1929, 152.8);
    (8, 0.2071, 0.2000, 221.1);
  ]

let table2 ?(quick = false) ?(seed = 7) () =
  let rng = Stats.Rng.create seed in
  let ds = Datasets.Ecog_sim.generate rng in
  let config = ldafp_config ~max_nodes:(bci_nodes quick) in
  List.map
    (fun (wl, paper_lda, paper_ldafp, paper_runtime) ->
      let fmt = fmt_of_wl wl in
      let cv_rng () = Stats.Rng.create (seed + 1000) in
      let lda_err =
        match
          Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:5
            ~train:(fun tr -> Some (Pipeline.train_conventional ~fmt tr))
            ds
        with
        | Some e -> e
        | None -> Float.nan
      in
      (* Monotonic wall clock, not [Sys.time]: the multi-domain search
         burns CPU time on every domain, so process CPU seconds
         overstate (and wall seconds are what the paper's Table 2
         reports as training time). *)
      let t0 = Obs.Clock.now () in
      let ldafp_err =
        match
          Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:5
            ~train:(fun tr ->
              Option.map
                (fun r -> r.Pipeline.classifier)
                (Pipeline.train_ldafp ~config ~fmt tr))
            ds
        with
        | Some e -> e
        | None -> Float.nan
      in
      let runtime = Obs.Clock.now () -. t0 in
      { wl; lda_err; ldafp_err; runtime; paper_lda; paper_ldafp;
        paper_runtime })
    paper_table2

let print_table2 rows =
  Table.print
    ~title:
      "Table 2 (E3): simulated ECoG BCI - 5-fold CV error and LDA-FP \
       training time (all folds) vs word length"
    ~columns:error_columns
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.wl;
             Table.pct r.lda_err;
             Table.pct r.paper_lda;
             Table.pct r.ldafp_err;
             Table.pct r.paper_ldafp;
             Table.secs r.runtime;
             Table.secs r.paper_runtime;
           ])
         rows)
    ()

(* ------------------------------------------------------------------ *)
(* E4 — Figure 2                                                       *)
(* ------------------------------------------------------------------ *)

type fig2_report = {
  wl : int;
  lda_nominal : float;
  lda_worst : float;
  ldafp_nominal : float;
  ldafp_worst : float;
}

(* A 2-D task in the spirit of Figure 2: one discriminative direction,
   one strongly correlated nuisance direction, so the float-LDA boundary
   depends on a delicate weight ratio that rounding perturbs. *)
let figure2_dataset ~n_per_class rng =
  let mean = 0.4 in
  let trial class_a =
    let e1 = Stats.Sampler.std_normal rng in
    let e2 = Stats.Sampler.std_normal rng in
    let m = if class_a then -.mean else mean in
    [| m +. (0.5 *. e1) +. (0.95 *. e2); e2 +. (0.02 *. e1) |]
  in
  let a = Array.init n_per_class (fun _ -> trial true) in
  let b = Array.init n_per_class (fun _ -> trial false) in
  Datasets.Dataset.of_class_matrices ~name:"figure2" ~a ~b

let perturbed_errors clf test = (Robustness.sweep clf test).Robustness.worst

let figure2 ?(quick = false) ?(seed = 11) () =
  let wl = 5 in
  let fmt = fmt_of_wl wl in
  let rng = Stats.Rng.create seed in
  let train =
    figure2_dataset ~n_per_class:(if quick then 1000 else 4000) rng
  in
  let test =
    figure2_dataset ~n_per_class:(if quick then 10_000 else 50_000) rng
  in
  let conv = Pipeline.train_conventional ~fmt train in
  let lda_nominal = Eval.error_fixed conv test in
  let lda_worst = perturbed_errors conv test in
  let config = ldafp_config ~max_nodes:(synthetic_nodes quick) in
  let ldafp_nominal, ldafp_worst =
    match Pipeline.train_ldafp ~config ~fmt train with
    | Some r ->
        ( Eval.error_fixed r.Pipeline.classifier test,
          perturbed_errors r.Pipeline.classifier test )
    | None -> (Float.nan, Float.nan)
  in
  { wl; lda_nominal; lda_worst; ldafp_nominal; ldafp_worst }

let print_figure2 r =
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 2 (E4): boundary robustness at WL=%d - error of the \
          nominal boundary vs the worst +/-1-ulp weight perturbation"
         r.wl)
    ~columns:
      [
        Table.column ~align:Table.Left "classifier";
        Table.column "nominal err";
        Table.column "worst perturbed";
      ]
    ~rows:
      [
        [ "LDA (rounded)"; Table.pct r.lda_nominal; Table.pct r.lda_worst ];
        [ "LDA-FP"; Table.pct r.ldafp_nominal; Table.pct r.ldafp_worst ];
      ]
    ()

(* ------------------------------------------------------------------ *)
(* E5 — power model                                                    *)
(* ------------------------------------------------------------------ *)

type power_row = { wl : int; quadratic : float; gate_based : float }

let power ?(n_features = 42) ?(wls = [ 3; 4; 5; 6; 7; 8; 10; 12; 14; 16 ]) ()
    =
  let ref_wl = 16 in
  let qref = Hw.Power_model.quadratic_relative ~word_length:ref_wl in
  let gref = Hw.Power_model.gate_based ~word_length:ref_wl ~n_features in
  List.map
    (fun wl ->
      {
        wl;
        quadratic = Hw.Power_model.quadratic_relative ~word_length:wl /. qref;
        gate_based =
          Hw.Power_model.gate_based ~word_length:wl ~n_features /. gref;
      })
    wls

let print_power rows =
  Table.print
    ~title:
      "Power model (E5): relative classifier power vs word length \
       (normalised to WL=16)"
    ~columns:
      [
        Table.column "WL";
        Table.column "P ~ WL^2";
        Table.column "gate model";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.wl;
             Printf.sprintf "%.3f" r.quadratic;
             Printf.sprintf "%.3f" r.gate_based;
           ])
         rows)
    ();
  Printf.printf
    "\nHeadline ratios: 12b -> 4b quadratic %.1fx (paper: ~9x for 3x word \
     length); 8b -> 6b quadratic %.2fx (paper: 1.8x)\n"
    (Hw.Power_model.quadratic_ratio ~from_wl:12 ~to_wl:4)
    (Hw.Power_model.quadratic_ratio ~from_wl:8 ~to_wl:6)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

type baseline_row = {
  wl : int;
  conventional : float;
  greedy : float;
  logreg : float;
  ldafp : float;
  float_reference : float;
  p_value : float;
      (* McNemar exact p for conventional-vs-LDA-FP on the shared test set *)
}

let baselines ?(quick = false) ?(seed = 42) () =
  let rng = Stats.Rng.create seed in
  let train =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_train_per_class quick)
      rng
  in
  let test =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_test_per_class quick)
      rng
  in
  let model, scaling = Pipeline.train_float train in
  let float_reference = Eval.error_float model ~scaling test in
  let config = ldafp_config ~max_nodes:(synthetic_nodes quick) in
  List.map
    (fun wl ->
      let fmt = fmt_of_wl wl in
      let conventional =
        Eval.error_fixed (Pipeline.train_conventional ~fmt train) test
      in
      let greedy =
        match Greedy_round.train_classifier ~fmt train with
        | Some clf -> Eval.error_fixed clf test
        | None -> Float.nan
      in
      let conv_clf = Pipeline.train_conventional ~fmt train in
      let logreg =
        Eval.error_fixed (Logreg.train_pipeline ~fmt ~swept:true train) test
      in
      let ldafp, p_value =
        match Pipeline.train_ldafp ~config ~fmt train with
        | Some r ->
            let predictions clf =
              Array.map
                (fun row -> Fixed_classifier.predict clf row)
                test.Datasets.Dataset.features
            in
            let mc =
              Stats.Mcnemar.compare ~truth:test.Datasets.Dataset.labels
                ~a:(predictions r.Pipeline.classifier)
                ~b:(predictions conv_clf)
            in
            (Eval.error_fixed r.Pipeline.classifier test,
             mc.Stats.Mcnemar.p_value)
        | None -> (Float.nan, Float.nan)
      in
      { wl; conventional; greedy; logreg; ldafp; float_reference; p_value })
    [ 4; 6; 8; 10; 12; 14; 16 ]

let print_baselines rows =
  Table.print
    ~title:
      "Baselines: conventional rounding vs greedy sequential rounding vs \
       LDA-FP (synthetic task)"
    ~columns:
      [
        Table.column "WL";
        Table.column "conventional";
        Table.column "greedy";
        Table.column "logreg-swept";
        Table.column "LDA-FP";
        Table.column "float ref";
        Table.column "p (LDA-FP vs conv)";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.wl;
             Table.pct r.conventional;
             Table.pct r.greedy;
             Table.pct r.logreg;
             Table.pct r.ldafp;
             Table.pct r.float_reference;
             (if Float.is_nan r.p_value then "n/a"
              else Printf.sprintf "%.2g" r.p_value);
           ])
         rows)
    ()

(* ------------------------------------------------------------------ *)
(* E9 - ECG                                                            *)
(* ------------------------------------------------------------------ *)

type ecg_row = { wl : int; lda_err : float; ldafp_err : float; energy : float }

let table_ecg ?(quick = false) ?(seed = 99) () =
  let rng = Stats.Rng.create seed in
  let params =
    { Datasets.Ecg_sim.default_params with
      Datasets.Ecg_sim.trials_per_class = (if quick then 200 else 400) }
  in
  let ds = Datasets.Ecg_sim.generate ~params rng in
  let n_features = Datasets.Dataset.n_features ds in
  let config = ldafp_config ~max_nodes:(if quick then 40 else 200) in
  let wls = [ 3; 4; 5; 6; 8; 10 ] in
  let e_max =
    Hw.Power_model.energy_per_classification
      ~word_length:(List.fold_left max 0 wls)
      ~n_features
  in
  List.map
    (fun wl ->
      let fmt = fmt_of_wl wl in
      let cv_rng () = Stats.Rng.create (seed + 5) in
      let lda_err =
        Option.value ~default:Float.nan
          (Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:5
             ~train:(fun tr -> Some (Pipeline.train_conventional ~fmt tr))
             ds)
      in
      let ldafp_err =
        Option.value ~default:Float.nan
          (Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:5
             ~train:(fun tr ->
               Option.map
                 (fun r -> r.Pipeline.classifier)
                 (Pipeline.train_ldafp ~config ~fmt tr))
             ds)
      in
      {
        wl;
        lda_err;
        ldafp_err;
        energy =
          Hw.Power_model.energy_per_classification ~word_length:wl ~n_features
          /. e_max;
      })
    wls

let print_table_ecg rows =
  Table.print
    ~title:
      "ECG beat classification (E9): 5-fold CV error and relative energy \
       per beat vs word length"
    ~columns:
      [
        Table.column "WL";
        Table.column "LDA err";
        Table.column "LDA-FP err";
        Table.column "E/beat";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.wl;
             Table.pct r.lda_err;
             Table.pct r.ldafp_err;
             Printf.sprintf "%.3f" r.energy;
           ])
         rows)
    ()

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

type ablation_row = {
  label : string;
  wl : int;
  err : float;
  cost : float;
  seconds : float;
}

let run_ablation_case ~label ~wl ~config ~policy train test =
  let fmt = policy wl in
  (* Wall seconds on the monotonic clock (was [Sys.time], i.e. CPU
     seconds — which counted every domain's work N times over on the
     parallel driver and undercounted time blocked in the kernel). *)
  let t0 = Obs.Clock.now () in
  match Pipeline.train_ldafp ~config ~fmt train with
  | None ->
      { label; wl; err = Float.nan; cost = Float.nan;
        seconds = Obs.Clock.now () -. t0 }
  | Some r ->
      {
        label;
        wl;
        err = Eval.error_fixed r.Pipeline.classifier test;
        cost = r.Pipeline.outcome.Lda_fp.cost;
        seconds = Obs.Clock.now () -. t0;
      }

let ablation_kf ?(quick = false) ?(seed = 42) () =
  let rng = Stats.Rng.create seed in
  let train =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_train_per_class quick)
      rng
  in
  let test =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_test_per_class quick)
      rng
  in
  let config = ldafp_config ~max_nodes:(synthetic_nodes quick) in
  List.concat_map
    (fun spec ->
      let policy = Fixedpoint.Format_policy.of_spec spec in
      let label = Fixedpoint.Format_policy.name spec in
      List.map
        (fun wl -> run_ablation_case ~label ~wl ~config ~policy train test)
        [ 6; 10; 14 ])
    [ `Fixed_k 1; `Fixed_k 2; `Fixed_k 3; `Balanced ]

let ablation_solver ?(quick = false) ?(seed = 42) () =
  let rng = Stats.Rng.create seed in
  let train =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_train_per_class quick)
      rng
  in
  let test =
    Datasets.Synthetic.generate
      ~n_per_class:(synthetic_test_per_class quick)
      rng
  in
  let base = ldafp_config ~max_nodes:(synthetic_nodes quick) in
  let policy = Fixedpoint.Format_policy.default in
  List.map
    (fun (label, config) ->
      run_ablation_case ~label ~wl:8 ~config ~policy train test)
    [
      ("full solver", base);
      ("no incumbent seeding (H1/H2)",
       { base with Lda_fp.seed_incumbent = false });
      ("no secant prune", { base with Lda_fp.secant_prune = false });
      ("no t-branching", { base with Lda_fp.t_branch_bias = 0.0 });
      ("no node polish", { base with Lda_fp.polish_nodes = false });
      ("upper bound via eta=inf t^2 SOCP (paper's)",
       { base with Lda_fp.upper_via_socp = true });
    ]

let print_ablation ~title rows =
  Table.print ~title
    ~columns:
      [
        Table.column ~align:Table.Left "variant";
        Table.column "WL";
        Table.column "test err";
        Table.column "cost";
        Table.column "seconds";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.label;
             string_of_int r.wl;
             Table.pct r.err;
             Table.g4 r.cost;
             Table.secs r.seconds;
           ])
         rows)
    ()
