type align = Left | Right
type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~columns ~rows =
  let ncols = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let widths =
    List.mapi
      (fun j col ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row j)))
          (String.length col.header) rows)
      columns
  in
  let buf = Buffer.create 1024 in
  let emit_row cells =
    List.iteri
      (fun j cell ->
        let col = List.nth columns j in
        let w = List.nth widths j in
        if j > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad col.align w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (List.map (fun c -> c.header) columns);
  let total =
    List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title ~columns ~rows () =
  (match title with
  | Some t ->
      print_newline ();
      print_endline t;
      print_endline (String.make (String.length t) '=')
  | None -> ());
  print_string (render ~columns ~rows)

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let secs x = Printf.sprintf "%.2f" x
let g4 x = Printf.sprintf "%.4g" x
