(** Reproduction harness: one entry per table/figure of the paper
    (experiment index E1–E5 in DESIGN.md).

    Every function returns structured rows carrying both the measured
    value and the paper's reported value, and has a matching printer that
    renders them side by side.  [quick] selects reduced-but-representative
    budgets (smaller test sets, tighter branch-and-bound node limits);
    the default is the full configuration used for EXPERIMENTS.md.
    Everything is deterministic given [seed]. *)

(** {1 E1 — Table 1: synthetic data} *)

type t1_row = {
  wl : int;
  lda_err : float;
  ldafp_err : float;
  runtime : float;  (** LDA-FP training seconds, as in the paper *)
  nodes : int;
  paper_lda : float;
  paper_ldafp : float;
  paper_runtime : float;
}

val table1 : ?quick:bool -> ?seed:int -> unit -> t1_row list
val print_table1 : t1_row list -> unit

(** {1 E2 — Figure 4: weight values vs word length (synthetic)} *)

type fig4_row = {
  wl : int;
  lda_w : Linalg.Vec.t;  (** L∞-normalised quantised LDA weights *)
  ldafp_w : Linalg.Vec.t;  (** L∞-normalised LDA-FP weights *)
}

val figure4 : ?quick:bool -> ?seed:int -> unit -> fig4_row list
val print_figure4 : fig4_row list -> unit

(** {1 E3 — Table 2: brain-computer interface (simulated ECoG)} *)

type t2_row = {
  wl : int;
  lda_err : float;
  ldafp_err : float;
  runtime : float;
  paper_lda : float;
  paper_ldafp : float;
  paper_runtime : float;
}

val table2 : ?quick:bool -> ?seed:int -> unit -> t2_row list
val print_table2 : t2_row list -> unit

(** {1 E4 — Figure 2: boundary robustness to weight perturbation} *)

type fig2_report = {
  wl : int;
  lda_nominal : float;
  lda_worst : float;  (** worst error over all ±1-ulp weight perturbations *)
  ldafp_nominal : float;
  ldafp_worst : float;
}

val figure2 : ?quick:bool -> ?seed:int -> unit -> fig2_report
(** A 2-D Gaussian task at a small word length: enumerates every ±1-ulp
    perturbation of both trained boundaries and reports nominal vs worst
    error — the quantitative version of the paper's Figure 2 sketch. *)

val print_figure2 : fig2_report -> unit

(** {1 E5 — the power claims (§1, §5.1, §5.2)} *)

type power_row = {
  wl : int;
  quadratic : float;  (** P ∝ WL², normalised to WL = 16 *)
  gate_based : float;  (** structural gate model, same normalisation *)
}

val power : ?n_features:int -> ?wls:int list -> unit -> power_row list
val print_power : power_row list -> unit
(** Also prints the paper's two headline ratios (16→~5 bits ≈ 9×,
    8→6 bits ≈ 1.8×) under both models. *)

(** {1 Baselines — conventional vs greedy sequential rounding vs LDA-FP} *)

type baseline_row = {
  wl : int;
  conventional : float;
  greedy : float;  (** {!Ldafp_core.Greedy_round}, NaN if infeasible *)
  logreg : float;
      (** scale-swept rounded logistic regression — a non-LDA float-train/
          round-later control *)
  ldafp : float;
  float_reference : float;  (** unquantised LDA on the same split *)
  p_value : float;
      (** exact McNemar p-value for LDA-FP vs conventional on the shared
          test trials ({!Stats.Mcnemar}) *)
}

val baselines : ?quick:bool -> ?seed:int -> unit -> baseline_row list
(** Synthetic-task test error of all three training methods per word
    length — positions the greedy heuristic between the two paper
    columns. *)

val print_baselines : baseline_row list -> unit

(** {1 E9 — second application: simulated ECG beat classification}

    The paper's introduction motivates wearable ECG monitors before
    settling on the BCI case study; this experiment shows the LDA-FP
    advantage transfers to that workload. *)

type ecg_row = {
  wl : int;
  lda_err : float;
  ldafp_err : float;
  energy : float;  (** per classified beat, relative to the largest WL *)
}

val table_ecg : ?quick:bool -> ?seed:int -> unit -> ecg_row list
(** 5-fold CV on the simulated ECG task. *)

val print_table_ecg : ecg_row list -> unit

(** {1 Ablations (DESIGN.md §5)} *)

type ablation_row = {
  label : string;
  wl : int;
  err : float;
  cost : float;
  seconds : float;
}

val ablation_kf : ?quick:bool -> ?seed:int -> unit -> ablation_row list
(** K/F split policy sweep on the synthetic task. *)

val ablation_solver : ?quick:bool -> ?seed:int -> unit -> ablation_row list
(** Solver-feature ablation: full vs no-seed vs no-secant-prune vs
    no-t-branching, on the synthetic task at a mid word length. *)

val print_ablation : title:string -> ablation_row list -> unit
