(** Plain-text table rendering for the experiment harness, in the style of
    the paper's Tables 1–2. *)

type align = Left | Right

type column = { header : string; align : align }

val column : ?align:align -> string -> column
(** Default alignment [Right] (numeric tables). *)

val render : columns:column list -> rows:string list list -> string
(** Pads cells, draws an ASCII header rule.
    @raise Invalid_argument when a row's width differs from the header. *)

val print : ?title:string -> columns:column list -> rows:string list list ->
  unit -> unit

val pct : float -> string
(** Format an error rate as a percentage with two decimals ("26.83%"). *)

val secs : float -> string
val g4 : float -> string
(** Four significant digits. *)
