let sqrt_pi = 1.7724538509055160273
let sqrt2 = 1.4142135623730950488

(* erf on |x| <= 2 by the all-positive-term series
   erf(x) = (2x/sqrt pi) e^{-x^2} sum_n (2x^2)^n / (1*3*...*(2n+1)),
   which avoids the cancellation of the alternating Taylor series. *)
let erf_series x =
  let x2 = x *. x in
  let term = ref 1.0 in
  let sum = ref 1.0 in
  let n = ref 1 in
  let continue = ref true in
  while !continue do
    term := !term *. 2.0 *. x2 /. float_of_int ((2 * !n) + 1);
    sum := !sum +. !term;
    incr n;
    if !term < 1e-18 *. !sum || !n > 200 then continue := false
  done;
  2.0 *. x *. exp (-.x2) *. !sum /. sqrt_pi

(* erfc on x >= 2 by the Laplace continued fraction, evaluated with the
   modified Lentz algorithm:
   erfc(x) = e^{-x^2}/sqrt(pi) * 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...)))) *)
let erfc_cf x =
  let tiny = 1e-300 in
  let f = ref x in
  if !f = 0.0 then f := tiny;
  (* Modified Lentz: C and f start at b0, D at 0. *)
  let c = ref !f in
  let d = ref 0.0 in
  let j = ref 1 in
  let converged = ref false in
  while not !converged && !j < 2000 do
    let a = float_of_int !j /. 2.0 in
    let b = x in
    d := b +. (a *. !d);
    if !d = 0.0 then d := tiny;
    c := b +. (a /. !c);
    if !c = 0.0 then c := tiny;
    d := 1.0 /. !d;
    let delta = !c *. !d in
    f := !f *. delta;
    if Float.abs (delta -. 1.0) < 1e-17 then converged := true;
    incr j
  done;
  exp (-.(x *. x)) /. (sqrt_pi *. !f)

let erf x =
  if Float.is_nan x then x
  else if x >= 0.0 then if x <= 3.0 then erf_series x else 1.0 -. erfc_cf x
  else if x >= -3.0 then erf_series x
  else erfc_cf (-.x) -. 1.0

let erfc x =
  (* Prefer the continued fraction as soon as it converges well (x > 2):
     1 − erf_series suffers cancellation once erf is close to 1. *)
  if Float.is_nan x then x
  else if x > 2.0 then erfc_cf x
  else if x >= -2.0 then 1.0 -. erf_series x
  else 2.0 -. erfc_cf (-.x)

let pdf x = exp (-0.5 *. x *. x) /. (sqrt2 *. sqrt_pi)
let cdf x = 0.5 *. erfc (-.x /. sqrt2)

(* Acklam's rational approximation to the probit function. *)
let inv_cdf_acklam p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
    *. q +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p <= 1.0 -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
    *. r +. a.(5)
    |> fun num ->
    num *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
        *. r +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)

let inv_cdf p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Gaussian.inv_cdf: p = %g outside (0, 1)" p);
  let x = inv_cdf_acklam p in
  (* One Halley refinement step against the accurate cdf. *)
  let e = cdf x -. p in
  let u = e /. pdf x in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let beta_of_confidence rho =
  if not (rho >= 0.0 && rho < 1.0) then
    invalid_arg
      (Printf.sprintf "Gaussian.beta_of_confidence: rho = %g outside [0, 1)"
         rho);
  if rho = 0.0 then 0.0 else inv_cdf (0.5 +. (0.5 *. rho))

let tail_probability ~mean ~sigma x =
  if sigma <= 0.0 then (if x >= mean then 0.0 else 1.0)
  else 1.0 -. cdf ((x -. mean) /. sigma)
