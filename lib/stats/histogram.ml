type t = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0 }

let n_bins t = Array.length t.counts

let bin_of t x =
  if Float.is_nan x then `Underflow
  else if x < t.lo then `Underflow
  else if x >= t.hi then `Overflow
  else
    let w = (t.hi -. t.lo) /. float_of_int (n_bins t) in
    let i = int_of_float ((x -. t.lo) /. w) in
    `Bin (min (n_bins t - 1) (max 0 i))

let add t x =
  match bin_of t x with
  | `Underflow -> { t with underflow = t.underflow + 1 }
  | `Overflow -> { t with overflow = t.overflow + 1 }
  | `Bin i ->
      let counts = Array.copy t.counts in
      counts.(i) <- counts.(i) + 1;
      { t with counts }

let add_all t xs = Array.fold_left add t xs
let of_values ~lo ~hi ~bins xs = add_all (create ~lo ~hi ~bins) xs

let of_counts ~lo ~hi ?(underflow = 0) ?(overflow = 0) counts =
  if not (lo < hi) then invalid_arg "Histogram.of_counts: lo must be < hi";
  if Array.length counts < 1 then
    invalid_arg "Histogram.of_counts: bins must be >= 1";
  if underflow < 0 || overflow < 0 || Array.exists (fun c -> c < 0) counts
  then invalid_arg "Histogram.of_counts: negative count";
  { lo; hi; counts = Array.copy counts; underflow; overflow }

let total t = Array.fold_left ( + ) (t.underflow + t.overflow) t.counts

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || n_bins a <> n_bins b then
    invalid_arg "Histogram.merge: incompatible bin layouts";
  {
    a with
    counts = Array.init (n_bins a) (fun i -> a.counts.(i) + b.counts.(i));
    underflow = a.underflow + b.underflow;
    overflow = a.overflow + b.overflow;
  }

(* Mass in the underflow (overflow) tail has no position, only a bound:
   quantiles landing there report [lo] ([hi]).  Inside a bin the mass is
   taken as uniform, so the estimate interpolates linearly. *)
let quantile t p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Histogram.quantile: p outside [0, 1]";
  let n = total t in
  if n = 0 then invalid_arg "Histogram.quantile: empty";
  let rank = p *. float_of_int n in
  if t.underflow > 0 && rank <= float_of_int t.underflow then t.lo
  else begin
    let w = (t.hi -. t.lo) /. float_of_int (n_bins t) in
    let cum = ref (float_of_int t.underflow) in
    let res = ref None in
    Array.iteri
      (fun i c ->
        if !res = None && c > 0 then begin
          let next = !cum +. float_of_int c in
          if rank <= next then begin
            let frac = (rank -. !cum) /. float_of_int c in
            res := Some (t.lo +. ((float_of_int i +. frac) *. w))
          end;
          cum := next
        end)
      t.counts;
    match !res with Some v -> v | None -> t.hi
  end

let bin_center t i =
  if i < 0 || i >= n_bins t then invalid_arg "Histogram.bin_center";
  let w = (t.hi -. t.lo) /. float_of_int (n_bins t) in
  t.lo +. ((float_of_int i +. 0.5) *. w)

let mode_bin t =
  if total t = 0 then invalid_arg "Histogram.mode_bin: empty";
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let mean_estimate t =
  let mass = Array.fold_left ( + ) 0 t.counts in
  if mass = 0 then invalid_arg "Histogram.mean_estimate: no in-range mass";
  let s = ref 0.0 in
  Array.iteri
    (fun i c -> s := !s +. (float_of_int c *. bin_center t i))
    t.counts;
  !s /. float_of_int mass

let render ?(width = 50) ?label t =
  let label =
    match label with Some f -> f | None -> fun x -> Printf.sprintf "%8.3f" x
  in
  let maxc = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 1024 in
  if t.underflow > 0 then
    Buffer.add_string buf (Printf.sprintf "   < lo : %d\n" t.underflow);
  Array.iteri
    (fun i c ->
      let bar = c * width / maxc in
      Buffer.add_string buf
        (Printf.sprintf "%s | %s %d\n" (label (bin_center t i))
           (String.make bar '#') c))
    t.counts;
  if t.overflow > 0 then
    Buffer.add_string buf (Printf.sprintf "   > hi : %d\n" t.overflow);
  Buffer.contents buf
