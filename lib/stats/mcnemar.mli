(** McNemar's test for paired classifier comparison.

    Tables 1–2 compare two classifiers on the {e same} trials, so the
    right significance question is not "are the two error rates
    different" but "among trials where the classifiers disagree, is one
    right more often" — McNemar's test on the discordant pairs.  The
    paper waves at this ("not strictly monotonic ... due to the
    randomness of our small data set"); this module quantifies it, which
    matters at the BCI scale of 140 trials.

    The statistic uses the exact binomial tail (both-sided): with [b]
    trials won by A only and [c] by B only, under the null each
    discordant trial is a fair coin, so
    [p = 2 · P(Bin(b+c, 1/2) <= min(b,c))], capped at 1. *)

type result = {
  a_only : int;  (** trials classifier A got right and B wrong *)
  b_only : int;
  both : int;
  neither : int;
  p_value : float;
  better : [ `A | `B | `Tie ];  (** direction of the observed advantage *)
}

val compare :
  truth:bool array ->
  a:bool array ->
  b:bool array ->
  result
(** [a]/[b] are the two classifiers' predictions.
    @raise Invalid_argument on length mismatch or empty input. *)

val significant : ?alpha:float -> result -> bool
(** [p_value < alpha] (default 0.05). *)
