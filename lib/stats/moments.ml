open Linalg

let check_nonempty name x =
  if Mat.rows x = 0 then invalid_arg (name ^ ": empty data matrix")

let mean x =
  check_nonempty "Moments.mean" x;
  let n = Mat.rows x and m = Mat.cols x in
  let mu = Vec.zeros m in
  Array.iter (fun row -> Array.iteri (fun j v -> mu.(j) <- mu.(j) +. v) row) x;
  Vec.scale (1.0 /. float_of_int n) mu

let centered x =
  let mu = mean x in
  Array.map (fun row -> Vec.sub row mu) x

let covariance_with_norm norm x =
  let c = centered x in
  let m = Mat.cols x in
  let cov = Mat.zeros m m in
  Array.iter
    (fun row ->
      for i = 0 to m - 1 do
        let ri = row.(i) in
        if ri <> 0.0 then
          for j = 0 to m - 1 do
            cov.(i).(j) <- cov.(i).(j) +. (ri *. row.(j))
          done
      done)
    c;
  Mat.scale (1.0 /. norm) cov

let covariance x =
  check_nonempty "Moments.covariance" x;
  covariance_with_norm (float_of_int (Mat.rows x)) x

let covariance_unbiased x =
  if Mat.rows x < 2 then invalid_arg "Moments.covariance_unbiased: N < 2";
  covariance_with_norm (float_of_int (Mat.rows x - 1)) x

let variances x = Mat.diagonal (covariance x)
let std_devs x = Vec.map sqrt (variances x)

let column_fold name f init x =
  check_nonempty name x;
  let m = Mat.cols x in
  let acc = Array.make m init in
  Array.iter
    (fun row -> Array.iteri (fun j v -> acc.(j) <- f acc.(j) v) row)
    x;
  acc

let column_min x = column_fold "Moments.column_min" Float.min Float.infinity x
let column_max x =
  column_fold "Moments.column_max" Float.max Float.neg_infinity x

let max_abs_value = Mat.max_abs
