(** Class statistics and LDA scatter matrices (paper eqs. 1–6).

    [of_data a b] condenses two training matrices (rows = trials) into the
    sufficient statistics every downstream component consumes: class means,
    biased covariances, the between-class scatter
    [S_B = (μ_A−μ_B)(μ_A−μ_B)ᵀ] and the within-class scatter
    [S_W = (Σ_A + Σ_B)/2]. *)

type t = {
  mu_a : Linalg.Vec.t;
  mu_b : Linalg.Vec.t;
  sigma_a : Linalg.Mat.t;
  sigma_b : Linalg.Mat.t;
  n_a : int;
  n_b : int;
}

val of_data : Linalg.Mat.t -> Linalg.Mat.t -> t
(** @raise Invalid_argument on empty classes or mismatched feature counts. *)

val dim : t -> int
val mean_difference : t -> Linalg.Vec.t
(** [μ_A − μ_B]. *)

val between_class : t -> Linalg.Mat.t
(** [S_B], eq. (1) — rank one. *)

val within_class : t -> Linalg.Mat.t
(** [S_W], eq. (2). *)

val pooled_mean : t -> Linalg.Vec.t
(** [(μ_A + μ_B)/2] — the decision threshold point of eq. (12). *)

val fisher_ratio : t -> Linalg.Vec.t -> float
(** [fisher_ratio s w] is the LDA-FP cost
    [wᵀ S_W w / ((μ_A−μ_B)ᵀ w)²] (eq. 10); [infinity] when the
    denominator vanishes. *)

val projected_stats : t -> Linalg.Vec.t -> (float * float) * (float * float)
(** [(mean_a, sigma_a), (mean_b, sigma_b)] of the projection [wᵀx] under
    the class Gaussians (eq. 19). *)

val theoretical_error : t -> Linalg.Vec.t -> float
(** Bayes error of thresholding the projection midway between the
    projected class means, under the Gaussian model with per-class
    variances (average of the two one-sided tail errors). *)
