(** Random sampling from Gaussian distributions.

    The dataset simulators model features as class-conditional multivariate
    Gaussians — exactly the statistical model (eq. 14) under which the
    LDA-FP overflow constraints are derived. *)

val std_normal : Rng.t -> float
(** One standard normal draw (Marsaglia polar method). *)

val normal : Rng.t -> mean:float -> sigma:float -> float

val std_normal_vec : Rng.t -> int -> Linalg.Vec.t

type mvn
(** A prepared multivariate normal sampler (mean + covariance factor). *)

val mvn : mean:Linalg.Vec.t -> cov:Linalg.Mat.t -> mvn
(** Prepare a sampler.  The covariance is symmetrised and factored with
    jitter if needed.
    @raise Invalid_argument on dimension mismatch. *)

val mvn_draw : mvn -> Rng.t -> Linalg.Vec.t
val mvn_draws : mvn -> Rng.t -> int -> Linalg.Mat.t
(** [n] draws as rows of an [n × m] matrix. *)

val mvn_mean : mvn -> Linalg.Vec.t
val mvn_dim : mvn -> int
