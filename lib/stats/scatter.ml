open Linalg

type t = {
  mu_a : Vec.t;
  mu_b : Vec.t;
  sigma_a : Mat.t;
  sigma_b : Mat.t;
  n_a : int;
  n_b : int;
}

let of_data a b =
  if Mat.rows a = 0 || Mat.rows b = 0 then
    invalid_arg "Scatter.of_data: empty class";
  if Mat.cols a <> Mat.cols b then
    invalid_arg "Scatter.of_data: feature count mismatch";
  {
    mu_a = Moments.mean a;
    mu_b = Moments.mean b;
    sigma_a = Moments.covariance a;
    sigma_b = Moments.covariance b;
    n_a = Mat.rows a;
    n_b = Mat.rows b;
  }

let dim s = Vec.dim s.mu_a
let mean_difference s = Vec.sub s.mu_a s.mu_b

let between_class s =
  let d = mean_difference s in
  Mat.outer d d

let within_class s = Mat.scale 0.5 (Mat.add s.sigma_a s.sigma_b)
let pooled_mean s = Vec.scale 0.5 (Vec.add s.mu_a s.mu_b)

let fisher_ratio s w =
  let num = Mat.quadratic_form (within_class s) w in
  let t = Vec.dot (mean_difference s) w in
  if t = 0.0 then Float.infinity else num /. (t *. t)

let projected_stats s w =
  let stats mu sigma =
    let m = Vec.dot w mu in
    let v = Mat.quadratic_form sigma w in
    (m, sqrt (Float.max v 0.0))
  in
  (stats s.mu_a s.sigma_a, stats s.mu_b s.sigma_b)

let theoretical_error s w =
  let (ma, sa), (mb, sb) = projected_stats s w in
  if ma = mb then 0.5
  else
    let thr = 0.5 *. (ma +. mb) in
    (* Class A is decided when the projection is on A's side of the
       threshold; errors are the tails crossing it. *)
    let err_a =
      if sa <= 0.0 then (if (ma >= thr) = (ma >= mb) then 0.0 else 1.0)
      else if ma >= mb then Gaussian.cdf ((thr -. ma) /. sa)
      else 1.0 -. Gaussian.cdf ((thr -. ma) /. sa)
    in
    let err_b =
      if sb <= 0.0 then (if (mb >= thr) = (mb >= ma) then 0.0 else 1.0)
      else if mb >= ma then Gaussian.cdf ((thr -. mb) /. sb)
      else 1.0 -. Gaussian.cdf ((thr -. mb) /. sb)
    in
    0.5 *. (err_a +. err_b)
