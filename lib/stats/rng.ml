type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand seeds into xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro must not start from the all-zero state. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (int64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* Top 53 bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n < 1 then invalid_arg "Rng.int: bound must be >= 1";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
  let limit = Int64.mul limit n64 in
  let rec go () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    if r >= limit && limit > 0L then go () else Int64.to_int (Int64.rem r n64)
  in
  go ()

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let p = Array.init n (fun i -> i) in
  shuffle_in_place t p;
  p
