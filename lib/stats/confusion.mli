(** Binary-classification outcome counting.

    Class [A] is "positive".  Error rate here is the plain misclassified
    fraction, matching the paper's Tables 1–2. *)

type t = { tp : int; fp : int; tn : int; fn : int }

val empty : t
val add : t -> truth:bool -> predicted:bool -> t
(** [truth]/[predicted] are [true] for class A. *)

val of_predictions : truth:bool array -> predicted:bool array -> t
(** @raise Invalid_argument on length mismatch. *)

val merge : t -> t -> t
val total : t -> int
val errors : t -> int
val error_rate : t -> float
(** @raise Invalid_argument on an empty confusion. *)

val accuracy : t -> float
val sensitivity : t -> float
(** True-positive rate; [nan] when there are no positives. *)

val specificity : t -> float
val balanced_error : t -> float
(** Mean of the two class-conditional error rates. *)

val pp : Format.formatter -> t -> unit
