type t = { tp : int; fp : int; tn : int; fn : int }

let empty = { tp = 0; fp = 0; tn = 0; fn = 0 }

let add t ~truth ~predicted =
  match (truth, predicted) with
  | true, true -> { t with tp = t.tp + 1 }
  | true, false -> { t with fn = t.fn + 1 }
  | false, true -> { t with fp = t.fp + 1 }
  | false, false -> { t with tn = t.tn + 1 }

let of_predictions ~truth ~predicted =
  if Array.length truth <> Array.length predicted then
    invalid_arg "Confusion.of_predictions: length mismatch";
  let acc = ref empty in
  Array.iteri
    (fun i t -> acc := add !acc ~truth:t ~predicted:predicted.(i))
    truth;
  !acc

let merge a b =
  { tp = a.tp + b.tp; fp = a.fp + b.fp; tn = a.tn + b.tn; fn = a.fn + b.fn }

let total t = t.tp + t.fp + t.tn + t.fn
let errors t = t.fp + t.fn

let error_rate t =
  let n = total t in
  if n = 0 then invalid_arg "Confusion.error_rate: empty confusion";
  float_of_int (errors t) /. float_of_int n

let accuracy t = 1.0 -. error_rate t

let sensitivity t =
  let p = t.tp + t.fn in
  if p = 0 then Float.nan else float_of_int t.tp /. float_of_int p

let specificity t =
  let n = t.tn + t.fp in
  if n = 0 then Float.nan else float_of_int t.tn /. float_of_int n

let balanced_error t =
  let miss = 1.0 -. sensitivity t in
  let fall = 1.0 -. specificity t in
  0.5 *. (miss +. fall)

let pp ppf t =
  Format.fprintf ppf "{tp=%d fp=%d tn=%d fn=%d err=%.2f%%}" t.tp t.fp t.tn t.fn
    (100.0 *. error_rate t)
