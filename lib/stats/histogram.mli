(** Fixed-bin histograms with a terminal renderer.

    Used by the examples to visualise the projected class distributions
    (the view of the paper's Figure 1) and by tests as a cheap
    distribution check. *)

type t = private {
  lo : float;  (** left edge of the first bin *)
  hi : float;  (** right edge of the last bin *)
  counts : int array;
  underflow : int;
  overflow : int;
}

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [lo >= hi] or [bins < 1]. *)

val add : t -> float -> t
val add_all : t -> float array -> t
val of_values : lo:float -> hi:float -> bins:int -> float array -> t

val of_counts :
  lo:float -> hi:float -> ?underflow:int -> ?overflow:int -> int array -> t
(** Wrap pre-accumulated bin counts (copied) — the bridge for mutable
    single-writer shards such as {!Obs.Metrics} per-domain latency
    buckets, which convert to [t] for {!merge}/{!quantile} aggregation.
    @raise Invalid_argument if [lo >= hi], [counts] is empty, or any
    count is negative. *)

val total : t -> int
(** Including under/overflow. *)

val merge : t -> t -> t
(** Bin-wise sum of two histograms over the {e same} layout (identical
    [lo], [hi] and bin count) — cross-domain aggregation of per-worker
    latency histograms.  @raise Invalid_argument on layout mismatch. *)

val quantile : t -> float -> float
(** [quantile t p] estimates the [p]-quantile ([0 <= p <= 1]) of the
    binned mass, interpolating linearly inside bins (uniform-in-bin
    assumption).  Mass in the underflow (overflow) tail has no position:
    quantiles landing there report [lo] ([hi]).
    @raise Invalid_argument if [p] is outside [0, 1] or [t] is empty. *)

val bin_of : t -> float -> [ `Bin of int | `Underflow | `Overflow ]
val bin_center : t -> int -> float
val mode_bin : t -> int
(** Index of the fullest bin (ties toward the left).
    @raise Invalid_argument on an empty histogram. *)

val mean_estimate : t -> float
(** Mean of the binned mass (bin centers weighted by counts; ignores
    under/overflow). @raise Invalid_argument when no in-range mass. *)

val render : ?width:int -> ?label:(float -> string) -> t -> string
(** ASCII bar chart, one line per bin. *)
