(** Fixed-bin histograms with a terminal renderer.

    Used by the examples to visualise the projected class distributions
    (the view of the paper's Figure 1) and by tests as a cheap
    distribution check. *)

type t = private {
  lo : float;  (** left edge of the first bin *)
  hi : float;  (** right edge of the last bin *)
  counts : int array;
  underflow : int;
  overflow : int;
}

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [lo >= hi] or [bins < 1]. *)

val add : t -> float -> t
val add_all : t -> float array -> t
val of_values : lo:float -> hi:float -> bins:int -> float array -> t

val total : t -> int
(** Including under/overflow. *)

val bin_of : t -> float -> [ `Bin of int | `Underflow | `Overflow ]
val bin_center : t -> int -> float
val mode_bin : t -> int
(** Index of the fullest bin (ties toward the left).
    @raise Invalid_argument on an empty histogram. *)

val mean_estimate : t -> float
(** Mean of the binned mass (bin centers weighted by counts; ignores
    under/overflow). @raise Invalid_argument when no in-range mass. *)

val render : ?width:int -> ?label:(float -> string) -> t -> string
(** ASCII bar chart, one line per bin. *)
