(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256** generator seeded through splitmix64, so
    every experiment in the repository is exactly reproducible from its
    stated seed, independent of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** Derive an independent generator (jump-free: reseeds through
    splitmix64 from the parent's next output). *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [[0, 1)] with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]]; [n >= 1]. *)

val bool : t -> bool

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates. *)

val permutation : t -> int -> int array
