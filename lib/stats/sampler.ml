open Linalg

let rec std_normal rng =
  (* Marsaglia polar method, discarding the second variate to keep the
     sampler stateless across calls. *)
  let u = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
  let v = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then std_normal rng
  else u *. sqrt (-2.0 *. log s /. s)

let normal rng ~mean ~sigma = mean +. (sigma *. std_normal rng)
let std_normal_vec rng n = Array.init n (fun _ -> std_normal rng)

type mvn = { mean : Vec.t; factor : Mat.t }

let mvn ~mean ~cov =
  let m = Vec.dim mean in
  if Mat.dims cov <> (m, m) then
    invalid_arg "Sampler.mvn: mean/covariance dimension mismatch";
  let factor, _jitter = Cholesky.factor_jittered (Mat.symmetrize cov) in
  { mean; factor }

let mvn_draw { mean; factor } rng =
  let z = std_normal_vec rng (Vec.dim mean) in
  Vec.add mean (Mat.mul_vec factor z)

let mvn_draws t rng n = Array.init n (fun _ -> mvn_draw t rng)
let mvn_mean t = Vec.copy t.mean
let mvn_dim t = Vec.dim t.mean
