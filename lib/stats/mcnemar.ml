type result = {
  a_only : int;
  b_only : int;
  both : int;
  neither : int;
  p_value : float;
  better : [ `A | `B | `Tie ];
}

(* log of the binomial coefficient, via lgamma-free accumulation (n is a
   trial count, so a simple product in log space is plenty). *)
let log_choose n k =
  let k = min k (n - k) in
  let acc = ref 0.0 in
  for i = 1 to k do
    acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
  done;
  !acc

(* P(Bin(n, 1/2) <= k), exact in log space. *)
let binom_cdf_half n k =
  if k < 0 then 0.0
  else if k >= n then 1.0
  else begin
    let log_half_n = -.float_of_int n *. log 2.0 in
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. exp (log_choose n i +. log_half_n)
    done;
    Float.min 1.0 !acc
  end

let compare ~truth ~a ~b =
  let n = Array.length truth in
  if n = 0 then invalid_arg "Mcnemar.compare: empty";
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Mcnemar.compare: length mismatch";
  let a_only = ref 0 and b_only = ref 0 and both = ref 0 and neither = ref 0 in
  for i = 0 to n - 1 do
    let ca = a.(i) = truth.(i) and cb = b.(i) = truth.(i) in
    match (ca, cb) with
    | true, true -> incr both
    | true, false -> incr a_only
    | false, true -> incr b_only
    | false, false -> incr neither
  done;
  let d = !a_only + !b_only in
  let p_value =
    if d = 0 then 1.0
    else Float.min 1.0 (2.0 *. binom_cdf_half d (min !a_only !b_only))
  in
  {
    a_only = !a_only;
    b_only = !b_only;
    both = !both;
    neither = !neither;
    p_value;
    better =
      (if !a_only > !b_only then `A
       else if !b_only > !a_only then `B
       else `Tie);
  }

let significant ?(alpha = 0.05) r = r.p_value < alpha
