(** The standard Gaussian distribution: density, CDF, quantile.

    The quantile function [inv_cdf] is the Φ⁻¹ of paper eq. (16): the
    overflow constraints use [β = Φ⁻¹(0.5 + 0.5ρ)] to convert a confidence
    level ρ into a number of standard deviations.  Implementation: Acklam's
    rational approximation refined by one Halley step on [cdf], giving
    ~1e-15 relative accuracy over (0, 1). *)

val pdf : float -> float
val cdf : float -> float
(** Φ, via [erfc]; absolute error below 1e-15. *)

val inv_cdf : float -> float
(** Φ⁻¹ on (0, 1). @raise Invalid_argument outside (0, 1). *)

val beta_of_confidence : float -> float
(** [beta_of_confidence rho] = Φ⁻¹(0.5 + 0.5ρ), eq. (16); ρ ∈ [0, 1). *)

val tail_probability : mean:float -> sigma:float -> float -> float
(** [tail_probability ~mean ~sigma x] = P(X > x) for X ~ N(mean, sigma²). *)

val erf : float -> float
val erfc : float -> float
(** Complementary error function, |error| < 1.2e-7 absolute from the
    rational Chebyshev fit, refined to ~1e-15 by a Newton step on small
    arguments; see implementation notes. *)
