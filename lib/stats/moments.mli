(** Sample moments of a data matrix (rows are observations).

    Means follow paper eqs. (3)–(4); covariances use the biased [1/N]
    normaliser of eqs. (5)–(6). *)

val mean : Linalg.Mat.t -> Linalg.Vec.t
(** Column-wise mean. @raise Invalid_argument on an empty matrix. *)

val covariance : Linalg.Mat.t -> Linalg.Mat.t
(** Biased sample covariance [1/N Σ (x−μ)(x−μ)ᵀ]. *)

val covariance_unbiased : Linalg.Mat.t -> Linalg.Mat.t
(** [1/(N−1)] normaliser. @raise Invalid_argument when [N < 2]. *)

val variances : Linalg.Mat.t -> Linalg.Vec.t
(** Diagonal of {!covariance}. *)

val std_devs : Linalg.Mat.t -> Linalg.Vec.t
val column_min : Linalg.Mat.t -> Linalg.Vec.t
val column_max : Linalg.Mat.t -> Linalg.Vec.t
val max_abs_value : Linalg.Mat.t -> float
