type report = {
  solution : Vec.t;
  residual_norm : float;
  used : [ `Cholesky | `Lu ];
}

let solve_report a b =
  let via_lu () =
    let x = Lu.solve a b in
    { solution = x; residual_norm = Vec.dist2 (Mat.mul_vec a x) b; used = `Lu }
  in
  if Mat.is_symmetric ~tol:1e-10 a then
    match Cholesky.solve a b with
    | x ->
        {
          solution = x;
          residual_norm = Vec.dist2 (Mat.mul_vec a x) b;
          used = `Cholesky;
        }
    | exception Cholesky.Not_positive_definite _ -> via_lu ()
  else via_lu ()

let solve a b = (solve_report a b).solution

let solve_spd_regularized ?ridge a b =
  if not (Mat.is_square a) then
    invalid_arg "Linsys.solve_spd_regularized: not square";
  let ridge =
    match ridge with
    | Some r -> r
    | None -> 1e-10 *. Float.max (Mat.max_abs a) 1e-300
  in
  let a' = Mat.add_scaled_identity ridge (Mat.symmetrize a) in
  let l, _jitter = Cholesky.factor_jittered a' in
  Cholesky.solve_factored l b
