type t = { lu : Mat.t; perm : int array; sign : int }

let factor a =
  if not (Mat.is_square a) then invalid_arg "Lu.factor: not square";
  let n = Mat.rows a in
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest |entry| of column k to row k. *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!p).(k) then p := i
    done;
    if !p <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!p);
      lu.(!p) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!p);
      perm.(!p) <- tp;
      sign := - !sign
    end;
    let pivot = lu.(k).(k) in
    if Float.abs pivot < 1e-300 then
      raise (Tri.Singular (Printf.sprintf "Lu.factor: pivot %d ~ 0" k));
    for i = k + 1 to n - 1 do
      let m = lu.(i).(k) /. pivot in
      lu.(i).(k) <- m;
      if m <> 0.0 then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (m *. lu.(k).(j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factored { lu; perm; _ } b =
  let n = Array.length perm in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: dim mismatch";
  let pb = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref pb.(i) in
    for j = 0 to i - 1 do
      s := !s -. (lu.(i).(j) *. y.(j))
    done;
    y.(i) <- !s
  done;
  Tri.solve_upper lu y

let solve a b = solve_factored (factor a) b

let inverse a =
  let f = factor a in
  let n = Mat.rows a in
  Mat.init n n (fun i j -> (solve_factored f (Vec.basis n j)).(i))

let det a =
  match factor a with
  | { lu; sign; _ } ->
      let n = Mat.rows a in
      let d = ref (float_of_int sign) in
      for i = 0 to n - 1 do
        d := !d *. lu.(i).(i)
      done;
      !d
  | exception Tri.Singular _ -> 0.0

let norm1 a =
  (* Maximum column sum of absolute values. *)
  let m = Mat.rows a and n = Mat.cols a in
  let best = ref 0.0 in
  for j = 0 to n - 1 do
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      s := !s +. Float.abs a.(i).(j)
    done;
    best := Float.max !best !s
  done;
  !best

let condition_estimate a =
  match inverse a with
  | inv -> norm1 a *. norm1 inv
  | exception Tri.Singular _ -> Float.infinity
