(** QR factorisation by Householder reflections, and least squares.

    Rounds out the dense substrate: used for orthogonality checks, for
    solving the over-determined calibration fits in the analysis tools,
    and as an alternative, more numerically robust route to LDA when the
    within-class scatter is ill-conditioned (solve the least-squares
    system instead of the normal equations). *)

type t = {
  q : Mat.t;  (** [m × n] with orthonormal columns (thin factor) *)
  r : Mat.t;  (** [n × n] upper triangular *)
}

val factor : Mat.t -> t
(** Thin QR of an [m × n] matrix with [m >= n].
    @raise Invalid_argument when [m < n];
    @raise Tri.Singular when a column becomes numerically dependent. *)

val solve_least_squares : Mat.t -> Vec.t -> Vec.t
(** [solve_least_squares a b] minimises [‖a x − b‖₂] for full-column-rank
    [a] ([m >= n]). *)

val solve_square : Mat.t -> Vec.t -> Vec.t
(** Exact solve of a square system via QR (an alternative to {!Lu}). *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [‖a x − b‖₂]. *)
