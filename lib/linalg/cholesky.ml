exception Not_positive_definite of int

let factor_into ?(jitter = 0.0) a ~dst =
  if not (Mat.is_square a) then invalid_arg "Cholesky.factor: not square";
  if Mat.dims a <> Mat.dims dst then
    invalid_arg "Cholesky.factor_into: dst dimension mismatch";
  let n = Mat.rows a in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (a.(i).(j) +. if i = j then jitter else 0.0) in
      for k = 0 to j - 1 do
        s := !s -. (dst.(i).(k) *. dst.(j).(k))
      done;
      if i = j then begin
        if !s <= 0.0 then raise (Not_positive_definite i);
        dst.(i).(i) <- sqrt !s
      end
      else dst.(i).(j) <- !s /. dst.(j).(j)
    done;
    for j = i + 1 to n - 1 do
      dst.(i).(j) <- 0.0
    done
  done

let factor a =
  let l = Mat.zeros (Mat.rows a) (Mat.cols a) in
  factor_into a ~dst:l;
  l

let factor_jittered_into ?(max_tries = 20) a ~dst =
  let scale = Float.max (Mat.max_abs a) 1e-300 in
  let rec go jitter tries =
    if tries > max_tries then raise (Not_positive_definite (-1))
    else
      match factor_into ~jitter a ~dst with
      | () -> jitter
      | exception Not_positive_definite _ ->
          let next = if jitter = 0.0 then 1e-12 *. scale else 10.0 *. jitter in
          go next (tries + 1)
  in
  go 0.0 0

let factor_jittered ?max_tries a =
  let l = Mat.zeros (Mat.rows a) (Mat.cols a) in
  let jitter = factor_jittered_into ?max_tries a ~dst:l in
  (l, jitter)

let solve_factored_into l b ~dst =
  Tri.solve_lower_into l b ~dst;
  Tri.solve_lower_transpose_into l dst ~dst

let solve_factored l b = Tri.solve_lower_transpose l (Tri.solve_lower l b)
let solve a b = solve_factored (factor a) b

let inverse a =
  let l = factor a in
  let n = Mat.rows a in
  Mat.init n n (fun i j -> (solve_factored l (Vec.basis n j)).(i))

let log_det a =
  let l = factor a in
  let s = ref 0.0 in
  for i = 0 to Mat.rows a - 1 do
    s := !s +. log l.(i).(i)
  done;
  2.0 *. !s

let is_positive_definite a =
  Mat.is_square a
  &&
  match factor a with
  | (_ : Mat.t) -> true
  | exception Not_positive_definite _ -> false
