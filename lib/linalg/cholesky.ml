exception Not_positive_definite of int

let factor a =
  if not (Mat.is_square a) then invalid_arg "Cholesky.factor: not square";
  let n = Mat.rows a in
  let l = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref a.(i).(j) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        if !s <= 0.0 then raise (Not_positive_definite i);
        l.(i).(i) <- sqrt !s
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let factor_jittered ?(max_tries = 20) a =
  let scale = Float.max (Mat.max_abs a) 1e-300 in
  let rec go jitter tries =
    if tries > max_tries then raise (Not_positive_definite (-1))
    else
      let a' = if jitter = 0.0 then a else Mat.add_scaled_identity jitter a in
      match factor a' with
      | l -> (l, jitter)
      | exception Not_positive_definite _ ->
          let next = if jitter = 0.0 then 1e-12 *. scale else 10.0 *. jitter in
          go next (tries + 1)
  in
  go 0.0 0

let solve_factored l b = Tri.solve_lower_transpose l (Tri.solve_lower l b)
let solve a b = solve_factored (factor a) b

let inverse a =
  let l = factor a in
  let n = Mat.rows a in
  Mat.init n n (fun i j -> (solve_factored l (Vec.basis n j)).(i))

let log_det a =
  let l = factor a in
  let s = ref 0.0 in
  for i = 0 to Mat.rows a - 1 do
    s := !s +. log l.(i).(i)
  done;
  2.0 *. !s

let is_positive_definite a =
  Mat.is_square a
  &&
  match factor a with
  | (_ : Mat.t) -> true
  | exception Not_positive_definite _ -> false
