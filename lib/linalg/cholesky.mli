(** Cholesky factorisation of symmetric positive-definite matrices.

    Central to two parts of the system: solving the LDA normal equations
    [S_W w = μ_A - μ_B] (paper eq. 11) and factoring class covariances
    [Σ = L Lᵀ] so the SOC overflow constraints (eq. 20) can be written as
    norms [‖β Lᵀ w‖₂]. *)

exception Not_positive_definite of int
(** Raised with the index of the failing pivot. *)

val factor : Mat.t -> Mat.t
(** [factor a] returns lower-triangular [l] with [l lᵀ = a].
    Only the lower triangle of [a] is read.
    @raise Not_positive_definite if a pivot is [<= 0]. *)

val factor_into : ?jitter:float -> Mat.t -> dst:Mat.t -> unit
(** In-place {!factor}: writes the factor of [a + jitter*I] (default
    [jitter = 0]) into [dst] without allocating, zeroing [dst]'s upper
    triangle.  [dst] may alias [a] (classical in-place Cholesky), but on
    failure [dst] is left partially overwritten — aliasing callers lose
    [a] when the factorisation raises.
    @raise Not_positive_definite if a pivot is [<= 0]. *)

val factor_jittered : ?max_tries:int -> Mat.t -> Mat.t * float
(** [factor_jittered a] factors [a + jitter*I], growing [jitter] from 0 by
    powers of ten starting at [1e-12 * max_abs a] until the factorisation
    succeeds; returns the factor and the jitter used.  This regularises the
    rank-deficient covariances that arise from small training sets.
    @raise Not_positive_definite after [max_tries] (default 20). *)

val factor_jittered_into : ?max_tries:int -> Mat.t -> dst:Mat.t -> float
(** In-place {!factor_jittered}: writes the factor into [dst] and returns
    the jitter used.  [dst] must {b not} alias [a] — failed attempts leave
    partial factors in [dst] and retry from the pristine [a].
    @raise Not_positive_definite after [max_tries] (default 20). *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b] for s.p.d. [a] via factorisation. *)

val solve_factored : Mat.t -> Vec.t -> Vec.t
(** [solve_factored l b] solves [(l lᵀ) x = b] given the factor. *)

val solve_factored_into : Mat.t -> Vec.t -> dst:Vec.t -> unit
(** In-place {!solve_factored}: writes the solution into [dst] without
    allocating.  [dst] may alias [b]. *)

val inverse : Mat.t -> Mat.t
(** Inverse of an s.p.d. matrix. *)

val log_det : Mat.t -> float
(** Log-determinant of an s.p.d. matrix via its factor. *)

val is_positive_definite : Mat.t -> bool
