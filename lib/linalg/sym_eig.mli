(** Eigendecomposition of symmetric matrices by the cyclic Jacobi method.

    Used to validate covariance conditioning, to build whitening transforms
    in the dataset simulators, and to cross-check the Cholesky-based LDA
    solution against the generalized-eigenvalue view of eq. (10). *)

type decomposition = {
  eigenvalues : Vec.t;  (** descending order *)
  eigenvectors : Mat.t;  (** column [j] pairs with [eigenvalues.(j)] *)
}

val decompose : ?tol:float -> ?max_sweeps:int -> Mat.t -> decomposition
(** @raise Invalid_argument if the matrix is not symmetric within [1e-8].
    [tol] (default [1e-12]) is the off-diagonal Frobenius threshold scaled
    by the matrix norm; [max_sweeps] defaults to 64. *)

val spectral_radius : Mat.t -> float
val min_eigenvalue : Mat.t -> float
val sqrt_psd : Mat.t -> Mat.t
(** Symmetric square root of a positive-semidefinite matrix (negative
    eigenvalues from roundoff are clamped to zero). *)
