type t = float array array

let make m n x =
  if m < 0 || n < 0 then invalid_arg "Mat.make: negative dimension";
  Array.init m (fun _ -> Array.make n x)

let zeros m n = make m n 0.0

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let init m n f = Array.init m (fun i -> Array.init n (fun j -> f i j))

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let rows a = Array.length a
let cols a = if Array.length a = 0 then 0 else Array.length a.(0)
let dims a = (rows a, cols a)

let diagonal a =
  let n = min (rows a) (cols a) in
  Array.init n (fun i -> a.(i).(i))

let copy a = Array.map Array.copy a
let get a i j = a.(i).(j)
let set a i j x = a.(i).(j) <- x
let row a i = Array.copy a.(i)
let col a j = Array.init (rows a) (fun i -> a.(i).(j))

let of_rows rs =
  if Array.length rs = 0 then [||]
  else begin
    let n = Array.length rs.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> n then invalid_arg "Mat.of_rows: ragged rows")
      rs;
    Array.map Array.copy rs
  end

let transpose a = init (cols a) (rows a) (fun i j -> a.(j).(i))

let check_same op a b =
  if dims a <> dims b then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" op (rows a)
         (cols a) (rows b) (cols b))

let add a b =
  check_same "add" a b;
  init (rows a) (cols a) (fun i j -> a.(i).(j) +. b.(i).(j))

let sub a b =
  check_same "sub" a b;
  init (rows a) (cols a) (fun i j -> a.(i).(j) -. b.(i).(j))

let scale c a = Array.map (Array.map (fun x -> c *. x)) a

let scale_into c a ~dst =
  check_same "scale_into" a dst;
  for i = 0 to rows a - 1 do
    let ai = a.(i) and di = dst.(i) in
    for j = 0 to cols a - 1 do
      di.(j) <- c *. ai.(j)
    done
  done

let mul a b =
  if cols a <> rows b then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch (%d vs %d)" (cols a)
         (rows b));
  let m = rows a and n = cols b and k = cols a in
  let c = zeros m n in
  for i = 0 to m - 1 do
    let ai = a.(i) and ci = c.(i) in
    for l = 0 to k - 1 do
      let ail = ai.(l) in
      if ail <> 0.0 then begin
        let bl = b.(l) in
        for j = 0 to n - 1 do
          ci.(j) <- ci.(j) +. (ail *. bl.(j))
        done
      end
    done
  done;
  c

let mul_vec a x =
  if cols a <> Array.length x then
    invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.map (fun r -> Vec.dot r x) a

let mul_vec_into a x ~dst =
  if cols a <> Array.length x then
    invalid_arg "Mat.mul_vec_into: dimension mismatch";
  if rows a <> Array.length dst then
    invalid_arg "Mat.mul_vec_into: dst dimension mismatch";
  for i = 0 to rows a - 1 do
    dst.(i) <- Vec.dot a.(i) x
  done

let tmul_vec_into a x ~dst =
  if rows a <> Array.length x then
    invalid_arg "Mat.tmul_vec_into: dimension mismatch";
  let n = cols a in
  if Array.length dst <> n then
    invalid_arg "Mat.tmul_vec_into: dst dimension mismatch";
  Array.fill dst 0 n 0.0;
  for i = 0 to rows a - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      let ai = a.(i) in
      for j = 0 to n - 1 do
        dst.(j) <- dst.(j) +. (xi *. ai.(j))
      done
  done

let tmul_vec a x =
  if rows a <> Array.length x then
    invalid_arg "Mat.tmul_vec: dimension mismatch";
  let y = Array.make (cols a) 0.0 in
  tmul_vec_into a x ~dst:y;
  y

let outer u v = init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let quadratic_form a x = Vec.dot x (mul_vec a x)

let add_scaled_identity c a =
  if rows a <> cols a then invalid_arg "Mat.add_scaled_identity: not square";
  init (rows a) (cols a) (fun i j -> if i = j then a.(i).(j) +. c else a.(i).(j))

let trace a =
  let n = min (rows a) (cols a) in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. a.(i).(i)
  done;
  !s

let frobenius_norm a =
  sqrt
    (Array.fold_left
       (fun s r -> s +. Array.fold_left (fun s x -> s +. (x *. x)) 0.0 r)
       0.0 a)

let is_square a = rows a = cols a

let is_symmetric ?(tol = 1e-9) a =
  is_square a
  &&
  let n = rows a in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (a.(i).(j) -. a.(j).(i)) > tol then ok := false
    done
  done;
  !ok

let symmetrize a =
  if not (is_square a) then invalid_arg "Mat.symmetrize: not square";
  init (rows a) (cols a) (fun i j -> 0.5 *. (a.(i).(j) +. a.(j).(i)))

let symmetrize_into a ~dst =
  if not (is_square a) then invalid_arg "Mat.symmetrize_into: not square";
  check_same "symmetrize_into" a dst;
  let n = rows a in
  for i = 0 to n - 1 do
    dst.(i).(i) <- a.(i).(i);
    for j = i + 1 to n - 1 do
      let m = 0.5 *. (a.(i).(j) +. a.(j).(i)) in
      dst.(i).(j) <- m;
      dst.(j).(i) <- m
    done
  done

let max_abs a =
  Array.fold_left
    (fun s r -> Array.fold_left (fun s x -> Float.max s (Float.abs x)) s r)
    0.0 a

let approx_equal ?(tol = 1e-9) a b =
  dims a = dims b
  && Array.for_all2 (fun ra rb -> Vec.approx_equal ~tol ra rb) a b

let pp ppf a =
  Format.fprintf ppf "[@[<v>%a@]]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Vec.pp)
    (Array.to_list a)
