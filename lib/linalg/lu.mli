(** LU factorisation with partial pivoting.

    Used for general (not necessarily s.p.d.) square systems, e.g. the KKT
    systems assembled by the interior-point solver's Newton steps.  The
    paper's §1 explicitly cites pivoted Gaussian elimination as the classic
    example of robustness to numerical error — the very analogy motivating
    LDA-FP — so the substrate implements it faithfully. *)

type t = {
  lu : Mat.t;  (** packed factors: strict lower = L (unit diag), upper = U *)
  perm : int array;  (** row permutation: row [i] of [PA] is row [perm.(i)] of [A] *)
  sign : int;  (** determinant sign of the permutation, [+1] or [-1] *)
}

val factor : Mat.t -> t
(** @raise Tri.Singular when the matrix is numerically singular. *)

val solve_factored : t -> Vec.t -> Vec.t
val solve : Mat.t -> Vec.t -> Vec.t
val inverse : Mat.t -> Mat.t
val det : Mat.t -> float
val condition_estimate : Mat.t -> float
(** Cheap 1-norm condition-number estimate [‖A‖₁ ‖A⁻¹‖₁] (computes the
    explicit inverse; fine for the small systems used here). *)
