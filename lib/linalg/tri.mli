(** Triangular linear solves (forward and backward substitution). *)

exception Singular of string
(** Raised when a (near-)zero pivot is met; carries a description. *)

val solve_lower : Mat.t -> Vec.t -> Vec.t
(** [solve_lower l b] solves [L y = b] for lower-triangular [L] (entries
    above the diagonal are ignored). @raise Singular on a zero diagonal. *)

val solve_lower_into : Mat.t -> Vec.t -> dst:Vec.t -> unit
(** In-place {!solve_lower}: writes the solution into [dst] without
    allocating.  [dst] may alias [b] (forward substitution reads [b.(i)]
    before writing [dst.(i)]). *)

val solve_upper : Mat.t -> Vec.t -> Vec.t
(** [solve_upper u b] solves [U x = b] for upper-triangular [U]. *)

val solve_lower_transpose : Mat.t -> Vec.t -> Vec.t
(** [solve_lower_transpose l b] solves [Lᵀ x = b] using only the lower
    triangle of [l]. *)

val solve_lower_transpose_into : Mat.t -> Vec.t -> dst:Vec.t -> unit
(** In-place {!solve_lower_transpose}: writes the solution into [dst]
    without allocating.  [dst] may alias [b]. *)
