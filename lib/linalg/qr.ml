type t = { q : Mat.t; r : Mat.t }

(* Householder QR on a working copy; accumulates the thin Q explicitly by
   applying the reflections to the identity. *)
let factor a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factor: need rows >= cols";
  if n = 0 then invalid_arg "Qr.factor: empty matrix";
  let r = Mat.copy a in
  (* q_full starts as I (m x m); we apply each reflection to it on the
     right as we go, keeping only the first n columns at the end. *)
  let q_full = Mat.identity m in
  let scale = Float.max (Mat.max_abs a) 1e-300 in
  for k = 0 to n - 1 do
    (* Householder vector for column k below the diagonal. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      norm := !norm +. (r.(i).(k) *. r.(i).(k))
    done;
    let norm = sqrt !norm in
    if norm < 1e-14 *. scale then
      raise (Tri.Singular (Printf.sprintf "Qr.factor: column %d dependent" k));
    let alpha = if r.(k).(k) >= 0.0 then -.norm else norm in
    let v = Array.make m 0.0 in
    v.(k) <- r.(k).(k) -. alpha;
    for i = k + 1 to m - 1 do
      v.(i) <- r.(i).(k)
    done;
    let vtv = ref 0.0 in
    for i = k to m - 1 do
      vtv := !vtv +. (v.(i) *. v.(i))
    done;
    if !vtv > 0.0 then begin
      let beta = 2.0 /. !vtv in
      (* Apply H = I - beta v vᵀ to R (columns k..n-1). *)
      for j = k to n - 1 do
        let s = ref 0.0 in
        for i = k to m - 1 do
          s := !s +. (v.(i) *. r.(i).(j))
        done;
        let s = beta *. !s in
        for i = k to m - 1 do
          r.(i).(j) <- r.(i).(j) -. (s *. v.(i))
        done
      done;
      (* Accumulate into Q: Q <- Q H (apply to columns of Q). *)
      for i = 0 to m - 1 do
        let s = ref 0.0 in
        for l = k to m - 1 do
          s := !s +. (q_full.(i).(l) *. v.(l))
        done;
        let s = beta *. !s in
        for l = k to m - 1 do
          q_full.(i).(l) <- q_full.(i).(l) -. (s *. v.(l))
        done
      done
    end
  done;
  let q = Mat.init m n (fun i j -> q_full.(i).(j)) in
  let r_thin = Mat.init n n (fun i j -> if j >= i then r.(i).(j) else 0.0) in
  { q; r = r_thin }

let solve_least_squares a b =
  if Mat.rows a <> Array.length b then
    invalid_arg "Qr.solve_least_squares: dimension mismatch";
  let { q; r } = factor a in
  Tri.solve_upper r (Mat.tmul_vec q b)

let solve_square a b =
  if not (Mat.is_square a) then invalid_arg "Qr.solve_square: not square";
  solve_least_squares a b

let residual_norm a x b = Vec.dist2 (Mat.mul_vec a x) b
