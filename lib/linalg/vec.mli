(** Dense real vectors backed by [float array].

    All binary operations require equal lengths and raise
    [Invalid_argument] otherwise.  Vectors are mutable arrays; functions
    documented as pure allocate fresh results. *)

type t = float array

val make : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of length [n]. *)

val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y] (pure). *)

val axpy_into : float -> t -> t -> dst:t -> unit
(** [axpy_into a x y ~dst] writes [a*x + y] into [dst] without
    allocating.  [dst] may alias [x] or [y] (each element is read before
    it is written).  The in-place counterpart of {!axpy} for hot loops
    (the barrier line search). *)

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val norm1 : t -> float
val norm_inf : t -> float
val dist2 : t -> t -> float
(** Euclidean distance. *)

val normalize : t -> t
(** Unit Euclidean norm. @raise Invalid_argument on the zero vector. *)

val normalize_inf : t -> t
(** Unit infinity norm. @raise Invalid_argument on the zero vector. *)

val hadamard : t -> t -> t
(** Element-wise product. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val sum : t -> float
val mean : t -> float
val amax_index : t -> int
(** Index of the element with largest absolute value. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance (default [1e-9]). *)

val concat : t -> t -> t
val slice : t -> pos:int -> len:int -> t
val pp : Format.formatter -> t -> unit
