exception Singular of string

let check_square_compatible name a b =
  if not (Mat.is_square a) then invalid_arg (name ^ ": matrix not square");
  if Mat.rows a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let solve_lower_into l b ~dst =
  check_square_compatible "Tri.solve_lower" l b;
  let n = Array.length b in
  if Array.length dst <> n then
    invalid_arg "Tri.solve_lower_into: dst dimension mismatch";
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (l.(i).(j) *. dst.(j))
    done;
    let d = l.(i).(i) in
    if d = 0.0 then raise (Singular "Tri.solve_lower: zero diagonal");
    dst.(i) <- !s /. d
  done

let solve_lower l b =
  let y = Array.make (Array.length b) 0.0 in
  solve_lower_into l b ~dst:y;
  y

let solve_upper u b =
  check_square_compatible "Tri.solve_upper" u b;
  let n = Array.length b in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (u.(i).(j) *. x.(j))
    done;
    let d = u.(i).(i) in
    if d = 0.0 then raise (Singular "Tri.solve_upper: zero diagonal");
    x.(i) <- !s /. d
  done;
  x

let solve_lower_transpose_into l b ~dst =
  check_square_compatible "Tri.solve_lower_transpose" l b;
  let n = Array.length b in
  if Array.length dst <> n then
    invalid_arg "Tri.solve_lower_transpose_into: dst dimension mismatch";
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (l.(j).(i) *. dst.(j))
    done;
    let d = l.(i).(i) in
    if d = 0.0 then raise (Singular "Tri.solve_lower_transpose: zero diagonal");
    dst.(i) <- !s /. d
  done

let solve_lower_transpose l b =
  let x = Array.make (Array.length b) 0.0 in
  solve_lower_transpose_into l b ~dst:x;
  x
