exception Singular of string

let check_square_compatible name a b =
  if not (Mat.is_square a) then invalid_arg (name ^ ": matrix not square");
  if Mat.rows a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let solve_lower l b =
  check_square_compatible "Tri.solve_lower" l b;
  let n = Array.length b in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (l.(i).(j) *. y.(j))
    done;
    let d = l.(i).(i) in
    if d = 0.0 then raise (Singular "Tri.solve_lower: zero diagonal");
    y.(i) <- !s /. d
  done;
  y

let solve_upper u b =
  check_square_compatible "Tri.solve_upper" u b;
  let n = Array.length b in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (u.(i).(j) *. x.(j))
    done;
    let d = u.(i).(i) in
    if d = 0.0 then raise (Singular "Tri.solve_upper: zero diagonal");
    x.(i) <- !s /. d
  done;
  x

let solve_lower_transpose l b =
  check_square_compatible "Tri.solve_lower_transpose" l b;
  let n = Array.length b in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (l.(j).(i) *. x.(j))
    done;
    let d = l.(i).(i) in
    if d = 0.0 then raise (Singular "Tri.solve_lower_transpose: zero diagonal");
    x.(i) <- !s /. d
  done;
  x
