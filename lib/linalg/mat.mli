(** Dense real matrices in row-major [float array array] layout.

    Row [i] of matrix [a] is [a.(i)]; all rows have equal length.  As with
    {!Vec}, dimension mismatches raise [Invalid_argument]. *)

type t = float array array

val make : int -> int -> float -> t
val zeros : int -> int -> t
val identity : int -> t
val init : int -> int -> (int -> int -> float) -> t
val diag : Vec.t -> t
val diagonal : t -> Vec.t
(** Main diagonal of a (not necessarily square) matrix. *)

val copy : t -> t
val rows : t -> int
val cols : t -> int
val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
(** A copy of row [i]. *)

val col : t -> int -> Vec.t
val of_rows : Vec.t array -> t
(** @raise Invalid_argument on ragged input. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val scale_into : float -> t -> dst:t -> unit
(** [scale_into c a ~dst] writes [c a] into [dst] without allocating.
    [dst] may alias [a]. *)

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [a x]. *)

val mul_vec_into : t -> Vec.t -> dst:Vec.t -> unit
(** [mul_vec_into a x ~dst] writes [a x] into [dst] without allocating.
    [dst] must not alias [x]. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x] is [aᵀ x]. *)

val tmul_vec_into : t -> Vec.t -> dst:Vec.t -> unit
(** [tmul_vec_into a x ~dst] writes [aᵀ x] into [dst] without
    allocating.  [dst] must not alias [x]. *)

val outer : Vec.t -> Vec.t -> t
(** [outer u v] is [u vᵀ]. *)

val quadratic_form : t -> Vec.t -> float
(** [quadratic_form a x] is [xᵀ a x]. *)

val add_scaled_identity : float -> t -> t
(** [add_scaled_identity c a] is [a + cI] (square matrices). *)

val trace : t -> float
val frobenius_norm : t -> float
val is_square : t -> bool
val is_symmetric : ?tol:float -> t -> bool
val symmetrize : t -> t
(** [(a + aᵀ)/2]. *)

val symmetrize_into : t -> dst:t -> unit
(** [symmetrize_into a ~dst] writes [(a + aᵀ)/2] into [dst] without
    allocating.  [dst] may alias [a] (each symmetric pair is read before
    either half is written). *)

val max_abs : t -> float
val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
