(** High-level linear-system interface used by the rest of the system.

    Chooses a factorisation (Cholesky when symmetric positive definite,
    pivoted LU otherwise) and reports solution quality. *)

type report = {
  solution : Vec.t;
  residual_norm : float;  (** [‖A x − b‖₂] *)
  used : [ `Cholesky | `Lu ];
}

val solve : Mat.t -> Vec.t -> Vec.t
(** Best-effort solve; equivalent to [(solve_report a b).solution]. *)

val solve_report : Mat.t -> Vec.t -> report

val solve_spd_regularized : ?ridge:float -> Mat.t -> Vec.t -> Vec.t
(** Solve a symmetric system after adding a relative ridge
    (default [1e-10 * max_abs a]) — the standard guard for the
    within-class scatter matrix of a small training set. *)
