type t = float array

let make n x =
  if n < 0 then invalid_arg "Vec.make: negative length";
  Array.make n x

let zeros n = make n 0.0
let ones n = make n 1.0
let init = Array.init

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = zeros n in
  v.(i) <- 1.0;
  v

let copy = Array.copy
let dim = Array.length

let check_dims op a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" op
         (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale c a = Array.map (fun x -> c *. x) a
let neg a = Array.map (fun x -> -.x) a

let axpy a x y =
  check_dims "axpy" x y;
  Array.mapi (fun i xi -> (a *. xi) +. y.(i)) x

let axpy_into a x y ~dst =
  check_dims "axpy_into" x y;
  check_dims "axpy_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)
let norm1 a = Array.fold_left (fun s x -> s +. Float.abs x) 0.0 a
let norm_inf a = Array.fold_left (fun s x -> Float.max s (Float.abs x)) 0.0 a
let dist2 a b = norm2 (sub a b)

let normalize a =
  let n = norm2 a in
  if n = 0.0 then invalid_arg "Vec.normalize: zero vector";
  scale (1.0 /. n) a

let normalize_inf a =
  let n = norm_inf a in
  if n = 0.0 then invalid_arg "Vec.normalize_inf: zero vector";
  scale (1.0 /. n) a

let hadamard a b =
  check_dims "hadamard" a b;
  Array.mapi (fun i x -> x *. b.(i)) a

let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let sum = Array.fold_left ( +. ) 0.0

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let amax_index a =
  if Array.length a = 0 then invalid_arg "Vec.amax_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if Float.abs a.(i) > Float.abs a.(!best) then best := i
  done;
  !best

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

let concat = Array.append

let slice a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Vec.slice: out of range";
  Array.sub a pos len

let pp ppf a =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    (Array.to_list a)
