type decomposition = { eigenvalues : Vec.t; eigenvectors : Mat.t }

let off_diag_norm a =
  let n = Mat.rows a in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then s := !s +. (a.(i).(j) *. a.(i).(j))
    done
  done;
  sqrt !s

let decompose ?(tol = 1e-12) ?(max_sweeps = 64) m =
  if not (Mat.is_symmetric ~tol:1e-8 m) then
    invalid_arg "Sym_eig.decompose: matrix not symmetric";
  let n = Mat.rows m in
  let a = Mat.symmetrize m in
  let v = Mat.identity n in
  let scale = Float.max (Mat.max_abs a) 1e-300 in
  let sweeps = ref 0 in
  while off_diag_norm a > tol *. scale *. float_of_int n && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = a.(p).(q) in
        if Float.abs apq > 1e-300 then begin
          let app = a.(p).(p) and aqq = a.(q).(q) in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Apply Givens rotation G(p,q,θ) on both sides of A and
             accumulate into V. *)
          for k = 0 to n - 1 do
            let akp = a.(k).(p) and akq = a.(k).(q) in
            a.(k).(p) <- (c *. akp) -. (s *. akq);
            a.(k).(q) <- (s *. akp) +. (c *. akq)
          done;
          for k = 0 to n - 1 do
            let apk = a.(p).(k) and aqk = a.(q).(k) in
            a.(p).(k) <- (c *. apk) -. (s *. aqk);
            a.(q).(k) <- (s *. apk) +. (c *. aqk)
          done;
          for k = 0 to n - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare a.(j).(j) a.(i).(i)) idx;
  {
    eigenvalues = Array.map (fun i -> a.(i).(i)) idx;
    eigenvectors = Mat.init n n (fun i j -> v.(i).(idx.(j)));
  }

let spectral_radius m =
  let { eigenvalues; _ } = decompose m in
  Array.fold_left (fun s x -> Float.max s (Float.abs x)) 0.0 eigenvalues

let min_eigenvalue m =
  let { eigenvalues; _ } = decompose m in
  Array.fold_left Float.min Float.infinity eigenvalues

let sqrt_psd m =
  let { eigenvalues; eigenvectors = v } = decompose m in
  let n = Mat.rows m in
  let sq = Array.map (fun l -> sqrt (Float.max l 0.0)) eigenvalues in
  (* V diag(sqrt λ) Vᵀ *)
  Mat.init n n (fun i j ->
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (v.(i).(k) *. sq.(k) *. v.(j).(k))
      done;
      !s)
