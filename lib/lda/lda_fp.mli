(** The LDA-FP trainer: branch-and-bound over the QK.F weight grid
    (paper Algorithm 1).

    The search region pairs a grid-aligned box for [w] with an interval
    for the auxiliary [t = (μ_A − μ_B)ᵀ w].  Per region:

    - {e lower bound}: solve the convex SOCP relaxation (eq. 25) with the
      denominator frozen at [η = sup t²] (eq. 26); prune when infeasible
      (phase-I certificate) or when the bound beats the incumbent;
    - {e upper bound}: round the relaxation optimum onto the grid, check
      (18)/(20) exactly, optionally re-solve with [η = inf t²] (eq. 27)
      and polish by ±1-ulp coordinate descent;
    - {e branch}: split the most-relative-width dimension (one of the
      [w_m], or [t]) at the relaxation optimum, grid-aligned for weights.

    The incumbent is seeded before the search by the H1/H2 heuristics
    (see {!Ldafp_heuristics}), so even a node budget of zero reproduces a
    usable classifier. *)

type checkpoint_spec = {
  path : string;  (** checkpoint file (written atomically, tmp + rename) *)
  every_nodes : int;
      (** snapshot cadence in explored nodes; [0] = only when stopping
          on a budget or interrupt *)
  resume : bool;
      (** load [path] (fingerprint-checked against the problem) and
          continue the search instead of starting from the root; a
          missing file degrades to a fresh run *)
}

val checkpoint_spec :
  ?every_nodes:int -> ?resume:bool -> string -> checkpoint_spec
(** [every_nodes] defaults to [0], [resume] to [false]. *)

type config = {
  seed_incumbent : bool;  (** run H1+H2 before the search (default true) *)
  sweep_steps : int;  (** H1 scaling count (default 200) *)
  polish_nodes : bool;  (** H2 polish on per-node candidates *)
  polish_rounds : int;
  upper_via_socp : bool;
      (** also solve the η = inf t² problem per node, as in the paper's
          upper-bound estimation (slower; default false because H1/H2
          rounding reaches the same incumbents in practice) *)
  t_min_width : float;
      (** stop branching on [t] below this fraction of its root width *)
  t_branch_bias : float;
      (** branching preference multiplier for the [t] dimension — the
          η = sup t² bound only tightens as the t-interval shrinks, so t
          should split earlier than the weights (default 3) *)
  secant_prune : bool;
      (** per-node incumbent-pruning certificate: over [t ∈ [l, u]],
          [t² <= (l+u)t − lu], so a positive minimum of
          [wᵀS_W w − θ((l+u)t − lu)] proves no point of the region beats
          the incumbent θ.  Unlike the η bound this couples numerator and
          denominator, and it is what lets the search close regions whose
          boxes still contain w = 0 (default true) *)
  warm_start : bool;
      (** start each child's relaxation from the parent's optimum,
          clipped strictly inside the child box — when the clipped point
          is strictly interior the phase-I feasibility solve is skipped
          entirely, and the lower-bound optimum in turn warm-starts the
          [η = inf t²] re-solve.  Bounds stay certified either way (the
          barrier solve runs to the same tolerances from any interior
          start); disable to reproduce cold-start behaviour exactly
          (default true) *)
  certify : bool;
      (** derive every pruning bound from an independently verified dual
          certificate ({!Optim.Socp.certify_lower_bound}) instead of the
          solver's primal objective: approximate dual multipliers are
          extracted from the terminal barrier iterate, repaired onto the
          dual-feasible set, and the dual objective is evaluated in
          outward-rounded interval arithmetic, so the bound is true
          {e whatever} the primal solve did — a stalled or corrupted
          solve can cost nodes, never the optimum.  Applies to the main
          relaxation bound {e and} the secant prune.  Certificate
          failures flow through the fault policy (retry with jitter,
          then degrade to the certified
          {!Ldafp_problem.interval_lower_bound}) and are counted in
          {!Optim.Bnb.stats}[.cert_fallbacks].  Disabling restores the
          trusting [objective − 2·gap_bound] formula and clears the
          {!Optim.Bnb.stats}[.certified_sound] flag (default true) *)
  socp_params : Optim.Socp.params;
  bnb_params : Optim.Bnb.params;
      (** includes [domains]: set it above 1 to explore the tree on
          several OCaml 5 domains — [bound_node]/[branch_node] are pure
          per node, so the oracle is safe to call concurrently *)
  fault_policy : Optim.Fault.policy;
      (** what to do when the relaxation solver fails on a region
          (default {!Optim.Fault.default_policy}: one retry, then
          degrade).  Retries re-solve with jittered barrier parameters
          (perturbed [tau0], tolerances loosened a decade per attempt);
          degradation falls back to
          {!Ldafp_problem.interval_lower_bound} *)
  checkpoint : checkpoint_spec option;  (** periodic snapshots + resume *)
  inject_faults : Optim.Fault_inject.config option;
      (** deterministic fault injection on the oracle — test/bench
          harness, [None] in production *)
  progress : Obs.Progress.t option;
      (** throttled live progress reporter (incumbent / bound / gap /
          node rate), forwarded to {!Optim.Bnb.minimize}; [None]
          (default) emits nothing *)
}

val default_config : config

val quick_config : config
(** A low-node-budget configuration for tests and examples. *)

type diagnostics = {
  nodes : int;
  bound : float;  (** certified global lower bound on the cost *)
  gap : float;
  stop_reason : Optim.Bnb.stop_reason;
  seed_cost : float option;  (** incumbent cost after H1/H2 only *)
  train_seconds : float;
      (** wall-clock on the monotonic {!Obs.Clock} (immune to NTP
          steps), consistent with [time_limit] *)
  search : Optim.Bnb.stats;  (** pruning/incumbent statistics *)
}

type outcome = {
  w : Linalg.Vec.t;  (** optimal grid weights (scaled-feature space) *)
  cost : float;  (** eq. (21) objective at [w] *)
  diagnostics : diagnostics;
}

val solve :
  ?config:config -> ?interrupt:(unit -> bool) -> Ldafp_problem.t ->
  outcome option
(** [None] when no feasible grid point was found (pathological formats);
    in particular [w = 0] is excluded because its cost is infinite.

    [?interrupt] is polled between nodes; returning [true] stops the
    search with {!Optim.Bnb.Interrupted} (and, with checkpointing
    enabled, snapshots the frontier first) — the hook for SIGINT
    handlers.  [train_seconds] counts this run only; across a
    checkpoint/resume chain the {e cumulative} wall clock governs
    [bnb_params.time_limit].
    @raise Optim.Checkpoint.Corrupt when [config.checkpoint] requests a
    resume and the file exists but fails validation (wrong problem,
    torn write, garbage). *)
