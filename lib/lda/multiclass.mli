(** Multi-class classification on top of binary LDA-FP.

    The paper treats binary classification only ("a case study of linear
    discriminant analysis for binary classification"); real BCI decoders
    routinely need more directions.  This module lifts any binary
    fixed-point trainer to [K] classes by one-vs-one voting: K(K−1)/2
    pairwise classifiers, each an independent fixed-point engine, with
    majority vote at inference (ties broken toward the smaller label,
    deterministically).  One-vs-one preserves the LDA-FP machinery
    unchanged — each pairwise problem is exactly the paper's problem —
    and keeps every on-chip engine small. *)

type dataset = private {
  name : string;
  features : Linalg.Mat.t;
  labels : int array;  (** in [0, n_classes) *)
  n_classes : int;
}

val create :
  name:string -> features:Linalg.Mat.t -> labels:int array -> dataset
(** [n_classes] is inferred as [max label + 1].
    @raise Invalid_argument on empty data, negative labels, or a class
    with no trials. *)

val n_trials : dataset -> int
val n_features : dataset -> int
val class_count : dataset -> int -> int
(** Trials carrying a given label. *)

val pairwise : dataset -> a:int -> b:int -> Datasets.Dataset.t
(** The binary restriction to two labels ([a] becomes class A). *)

type t = private {
  n_classes : int;
  machines : (int * int * Fixed_classifier.t) list;
      (** [(a, b, clf)] with [a < b]; [clf] predicting [true] means
          vote for [a] *)
}

val train :
  train:(Datasets.Dataset.t -> Fixed_classifier.t option) ->
  dataset ->
  t option
(** [None] if any pairwise training fails. *)

val predict : t -> Linalg.Vec.t -> int
val votes : t -> Linalg.Vec.t -> int array
(** Vote count per class (sums to K(K−1)/2). *)

val error : t -> dataset -> float
val confusion_matrix : t -> dataset -> int array array
(** [m.(truth).(predicted)] counts. *)
