(** Sequential greedy rounding — a stronger classical baseline between
    "round everything" (conventional LDA) and the full LDA-FP MIP.

    The standard trick from the word-length-optimisation literature
    (e.g. Constantinides et al.): fix one weight at a time to a
    neighbouring grid value and re-optimise the remaining {e continuous}
    weights before rounding the next one, so later weights compensate the
    rounding error committed by earlier ones.  Concretely, at step [m]:

    + solve the continuous LDA problem for the still-free weights with the
      already-fixed weights substituted into the objective;
    + pick the free weight with the largest magnitude (most information
      committed per step), try its floor and ceiling grid neighbours;
    + keep the choice whose re-optimised cost is smaller.

    This is a polynomial-time heuristic with no optimality guarantee —
    exactly the gap LDA-FP's branch-and-bound closes — and serves as an
    ablation point between the two paper columns.  The continuous
    re-optimisation solves the equality-constrained Fisher problem in
    closed form: with w_F fixed, minimising [wᵀS w / (dᵀw)²] over the free
    block reduces to a linear solve against the free-block Schur system.

    Overflow constraints: candidate roundings are clamped into the
    per-element boxes of (18); the final vector is checked exactly and
    [None] is returned when the projection constraints (20) cannot be met. *)

val train :
  Ldafp_problem.t -> (Linalg.Vec.t * float) option
(** Returns the rounded weight vector and its exact cost (eq. 21), or
    [None] when no feasible rounding was found. *)

val train_classifier :
  fmt:Fixedpoint.Qformat.t ->
  Datasets.Dataset.t ->
  Fixed_classifier.t option
(** Full pipeline: shared front end of {!Pipeline.prepare}, greedy
    rounding, classifier assembly. *)
