open Fixedpoint
open Linalg

type assignment = {
  formats : Qformat.t array;
  weights : Vec.t;
  cost : float;
  start_cost : float;
  bits_saved : int;
}

(* Best re-rounding of value [x] onto the coarser grid Q k.(f-1), staying
   inside the element interval and keeping the whole vector feasible.
   Returns the candidate value and resulting cost. *)
let coarsen_candidate pb w j fmt =
  let f = fmt.Qformat.f in
  if f <= 0 then None
  else begin
    let coarse = Qformat.make ~k:fmt.Qformat.k ~f:(f - 1) in
    let x = w.(j) in
    let below = Qformat.floor_to_grid coarse x in
    let above = Qformat.ceil_to_grid coarse x in
    let try_value v =
      if
        Qformat.in_range coarse v
        && Fx_interval.mem (Ldafp_problem.elem_interval pb j) v
      then begin
        let old = w.(j) in
        w.(j) <- v;
        let ok = Ldafp_problem.feasible pb w in
        let cost = if ok then Ldafp_problem.cost pb w else Float.infinity in
        w.(j) <- old;
        if ok && Float.is_finite cost then Some (v, cost) else None
      end
      else None
    in
    let candidates = List.filter_map try_value
        (if below = above then [ below ] else [ below; above ])
    in
    match candidates with
    | [] -> None
    | (v0, c0) :: rest ->
        let v, c =
          List.fold_left
            (fun (bv, bc) (v, c) -> if c < bc then (v, c) else (bv, bc))
            (v0, c0) rest
        in
        Some (coarse, v, c)
  end

let allocate ?(max_cost_increase = 0.05) ?(min_f = 0)
    (pb : Ldafp_problem.t) w0 =
  if not (Ldafp_problem.feasible pb w0) then None
  else begin
    let start_cost = Ldafp_problem.cost pb w0 in
    if not (Float.is_finite start_cost) then None
    else begin
      let m = Vec.dim w0 in
      let base = pb.Ldafp_problem.fmt in
      let budget = start_cost *. (1.0 +. max_cost_increase) in
      let formats = Array.make m base in
      let w = Vec.copy w0 in
      let improved = ref true in
      while !improved do
        improved := false;
        (* Best single-bit coarsening across all weights. *)
        let best = ref None in
        for j = 0 to m - 1 do
          if formats.(j).Qformat.f > min_f then
            match coarsen_candidate pb w j formats.(j) with
            | Some (fmt, v, cost) when cost <= budget -> (
                match !best with
                | Some (_, _, _, bc) when bc <= cost -> ()
                | _ -> best := Some (j, fmt, v, cost))
            | _ -> ()
        done;
        match !best with
        | Some (j, fmt, v, _) ->
            formats.(j) <- fmt;
            w.(j) <- v;
            improved := true
        | None -> ()
      done;
      let uniform_bits = m * Qformat.word_length base in
      let allocated_bits =
        Array.fold_left (fun acc f -> acc + Qformat.word_length f) 0 formats
      in
      Some
        {
          formats;
          weights = w;
          cost = Ldafp_problem.cost pb w;
          start_cost;
          bits_saved = uniform_bits - allocated_bits;
        }
    end
  end

let classifier ~prepared assignment =
  let scatter = prepared.Pipeline.scatter in
  let w = assignment.weights in
  let t = Vec.dot (Stats.Scatter.mean_difference scatter) w in
  let threshold = Vec.dot w (Stats.Scatter.pooled_mean scatter) in
  Hetero_classifier.create ~polarity:(t >= 0.0)
    ~acc_fmt:prepared.Pipeline.fmt ~formats:assignment.formats ~weights:w
    ~threshold ~scaling:prepared.Pipeline.scaling ()

let savings_summary pb assignment =
  let m = Array.length assignment.formats in
  let base = pb.Ldafp_problem.fmt in
  let uniform = m * Qformat.word_length base in
  let allocated = uniform - assignment.bits_saved in
  let wlx = float_of_int (Qformat.word_length base) in
  let mult_uniform = float_of_int m *. wlx *. wlx in
  let mult_alloc =
    Array.fold_left
      (fun acc f -> acc +. (float_of_int (Qformat.word_length f) *. wlx))
      0.0 assignment.formats
  in
  Printf.sprintf
    "weight storage %d -> %d bits (%.0f%%), multiplier cost x%.2f lower, \
     cost %.4g -> %.4g"
    uniform allocated
    (100.0 *. float_of_int allocated /. float_of_int uniform)
    (mult_uniform /. Float.max mult_alloc 1e-9)
    assignment.start_cost assignment.cost
