(** The LDA-FP mixed-integer program (paper eq. 21).

    Built from the class statistics of (scaled, quantised) training data
    and a target fixed-point format [QK.F]:

    {v minimize  wᵀ S_W w / ((μ_A − μ_B)ᵀ w)²
       s.t.      w_m μ_{·,m} ± β|w_m| σ_{·,m} within QK.F range   (18)
                 μ_·ᵀw ± β √(wᵀ Σ_· w)      within QK.F range   (20)
                 w_m on the QK.F grid                             (13) v}

    with [β = Φ⁻¹(0.5 + 0.5 ρ)].  The per-element constraints (18) are
    piecewise linear in [w_m] and reduce to one closed interval per element
    (computed here in closed form); the projection constraints (20) are the
    four second-order cones handed to the relaxation solver. *)

type t = private {
  fmt : Fixedpoint.Qformat.t;
  rho : float;  (** confidence level *)
  beta : float;  (** Φ⁻¹(0.5 + 0.5ρ), eq. 16 *)
  scatter : Stats.Scatter.t;
  sw : Linalg.Mat.t;  (** within-class scatter (symmetrised) *)
  d : Linalg.Vec.t;  (** μ_A − μ_B *)
  elem_box : Fixedpoint.Fx_interval.t array;
      (** per-element grid interval: (13) ∩ (18) ∩ (28) *)
  socs : Optim.Socp.soc array;
      (** the four cones of (20), with a slack compensating the Cholesky
          jitter so the relaxation never cuts off an exactly-feasible
          grid point *)
  t_root : Optim.Interval.t;  (** initial range of t = dᵀw, eq. 29 *)
  restrict_t_positive : bool;
      (** heuristic H3: exploit the w ↦ −w symmetry of the cost by
          searching only t >= 0 *)
  p_base : Linalg.Mat.t;
      (** [2 S_W] — the node-independent quadratic term every relaxation
          shares (the per-node [1/η] is an {!Optim.Socp} objective scale) *)
  q_zero : Linalg.Vec.t;  (** shared zero linear term *)
  box_pos : Linalg.Vec.t array;  (** shared [e_i] box directions *)
  box_neg : Linalg.Vec.t array;  (** shared [−e_i] box directions *)
  d_neg : Linalg.Vec.t;  (** shared [−d] t-range direction *)
}

exception No_feasible_box of string
(** Raised by {!build} when some element admits no grid point (can only
    happen with degenerate formats). *)

val build :
  ?rho:float ->
  ?restrict_t_positive:bool ->
  fmt:Fixedpoint.Qformat.t ->
  Stats.Scatter.t ->
  t
(** [rho] defaults to 0.99; [restrict_t_positive] to [true]. *)

val dim : t -> int

val elem_interval : t -> int -> Fixedpoint.Fx_interval.t

val cost : t -> Linalg.Vec.t -> float
(** Objective of eq. (21); [infinity] when [dᵀw = 0]. *)

val on_grid : t -> Linalg.Vec.t -> bool
(** Every component on the QK.F grid. *)

val constraint_violation : t -> Linalg.Vec.t -> float
(** Largest violation of (18) and (20), evaluated exactly (square roots of
    the true quadratic forms, no jitter). [<= 0] means feasible. *)

val feasible : ?tol:float -> t -> Linalg.Vec.t -> bool
(** Grid membership, element intervals, and [constraint_violation <= tol]
    (default [1e-9]). *)

val t_of : t -> Linalg.Vec.t -> float
(** [t = (μ_A − μ_B)ᵀ w], eq. (22). *)

val relaxation :
  t ->
  wbox:Fixedpoint.Fx_interval.t array ->
  trange:Optim.Interval.t ->
  eta:float ->
  Optim.Socp.problem
(** The convex relaxation (eq. 25) over a box: objective
    [wᵀ S_W w / eta], box + t-range half-spaces, the four cones.
    Allocation-lean: the quadratic term, cones and constraint directions
    are shared from the problem template ([eta] is an objective scale,
    not a rebuilt [P]); only the 2M+2 half-space offsets are fresh. *)

val trange_of_box : t -> Fixedpoint.Fx_interval.t array -> Optim.Interval.t
(** Interval-arithmetic range of [dᵀw] over a box (used to tighten and to
    prune node t-ranges). *)

val center_point :
  t ->
  wbox:Fixedpoint.Fx_interval.t array ->
  trange:Optim.Interval.t ->
  Linalg.Vec.t
(** A certifiably box-and-t-interior point of the region: a corner
    blend with [dᵀw] exactly at [mid trange] and every coordinate the
    same relative depth into its box interval.  The pull-in target for
    warm starts stranded on a child's branch cut
    ({!Optim.Socp.pull_to_interior}) — strictly interior to the box and
    t half-spaces whenever the region is non-degenerate and [trange]
    has been intersected with {!trange_of_box} (which [bound] does
    first).  Interiority w.r.t. the overflow cones is {e not}
    guaranteed; the pull-in verifies the target before trusting it. *)

val secant_relaxation :
  t ->
  wbox:Fixedpoint.Fx_interval.t array ->
  trange:Optim.Interval.t ->
  theta:float ->
  Optim.Socp.problem * float
(** Incumbent-pruning certificate: over [t ∈ [l, u]] the secant bound
    [t² <= (l+u)t − lu] holds, so any point of the region with cost
    [<= theta] satisfies [wᵀS_W w − θ(l+u)dᵀw + θlu <= 0].  Returns the
    convex program minimising the left side (the constant [θlu] is
    returned separately — add it to the solver's objective value); a
    certified positive minimum proves no point of the region beats
    [theta].  Requires [theta >= 0] and [l >= 0] (use on the positive-t
    side; mirror the region first otherwise). *)

val fingerprint : t -> string
(** Hex digest of the full problem data (format, confidence, scatter,
    derived boxes and cones).  Two runs over the same training data and
    configuration produce the same fingerprint; checkpoints record it so
    a resume against different data is rejected instead of silently
    producing garbage. *)

val interval_lower_bound :
  t ->
  wbox:Fixedpoint.Fx_interval.t array ->
  trange:Optim.Interval.t ->
  float
(** Cheap conservative lower bound on the cost over a box:
    term-wise interval minimum of [wᵀ S_W w] divided by [sup t²],
    clamped at 0 ([+∞] when the t-range is degenerate at 0).  Orders of
    magnitude weaker than the SOCP relaxation but never raises and
    costs O(M²) — the degraded fallback when the relaxation solver
    fails on a region. *)

val pp_summary : Format.formatter -> t -> unit
