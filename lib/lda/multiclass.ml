open Linalg

type dataset = {
  name : string;
  features : Mat.t;
  labels : int array;
  n_classes : int;
}

let create ~name ~features ~labels =
  if Mat.rows features = 0 then invalid_arg "Multiclass.create: no trials";
  if Mat.rows features <> Array.length labels then
    invalid_arg "Multiclass.create: row/label count mismatch";
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Multiclass.create: negative label")
    labels;
  let n_classes = 1 + Array.fold_left max 0 labels in
  let counts = Array.make n_classes 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) labels;
  Array.iteri
    (fun c n ->
      if n = 0 then
        invalid_arg (Printf.sprintf "Multiclass.create: class %d empty" c))
    counts;
  { name; features = Mat.copy features; labels = Array.copy labels; n_classes }

let n_trials ds = Mat.rows ds.features
let n_features ds = Mat.cols ds.features

let class_count ds c =
  if c < 0 || c >= ds.n_classes then
    invalid_arg "Multiclass.class_count: label out of range";
  Array.fold_left (fun acc l -> if l = c then acc + 1 else acc) 0 ds.labels

let pairwise ds ~a ~b =
  if a = b then invalid_arg "Multiclass.pairwise: identical labels";
  if a < 0 || b < 0 || a >= ds.n_classes || b >= ds.n_classes then
    invalid_arg "Multiclass.pairwise: label out of range";
  let rows = ref [] and labs = ref [] in
  Array.iteri
    (fun i l ->
      if l = a || l = b then begin
        rows := Array.copy ds.features.(i) :: !rows;
        labs := (l = a) :: !labs
      end)
    ds.labels;
  Datasets.Dataset.create
    ~name:(Printf.sprintf "%s[%d-vs-%d]" ds.name a b)
    ~features:(Array.of_list (List.rev !rows))
    ~labels:(Array.of_list (List.rev !labs))

type t = {
  n_classes : int;
  machines : (int * int * Fixed_classifier.t) list;
}

let train ~train:train_binary (ds : dataset) =
  let machines = ref [] in
  let ok = ref true in
  for a = 0 to ds.n_classes - 1 do
    for b = a + 1 to ds.n_classes - 1 do
      if !ok then
        match train_binary (pairwise ds ~a ~b) with
        | None -> ok := false
        | Some clf -> machines := (a, b, clf) :: !machines
    done
  done;
  if !ok then Some { n_classes = ds.n_classes; machines = List.rev !machines }
  else None

let votes t x =
  let counts = Array.make t.n_classes 0 in
  List.iter
    (fun (a, b, clf) ->
      let winner = if Fixed_classifier.predict clf x then a else b in
      counts.(winner) <- counts.(winner) + 1)
    t.machines;
  counts

let predict t x =
  let counts = votes t x in
  let best = ref 0 in
  Array.iteri (fun c n -> if n > counts.(!best) then best := c) counts;
  !best

let confusion_matrix t (ds : dataset) =
  if n_trials ds = 0 then invalid_arg "Multiclass.confusion_matrix: empty";
  let m = Array.init t.n_classes (fun _ -> Array.make t.n_classes 0) in
  Array.iteri
    (fun i truth ->
      if truth >= t.n_classes then
        invalid_arg "Multiclass.confusion_matrix: label out of range";
      let p = predict t ds.features.(i) in
      m.(truth).(p) <- m.(truth).(p) + 1)
    ds.labels;
  m

let error t (ds : dataset) =
  let m = confusion_matrix t ds in
  let total = ref 0 and correct = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j n ->
          total := !total + n;
          if i = j then correct := !correct + n)
        row)
    m;
  float_of_int (!total - !correct) /. float_of_int !total
