open Linalg

type model = { w : Vec.t; threshold : float }

let train_scatter ?ridge scatter =
  let sw = Stats.Scatter.within_class scatter in
  let d = Stats.Scatter.mean_difference scatter in
  let ridge =
    match ridge with
    | Some r -> r *. Float.max (Mat.max_abs sw) 1e-300
    | None -> 1e-10 *. Float.max (Mat.max_abs sw) 1e-300
  in
  let w = Linsys.solve_spd_regularized ~ridge sw d in
  let w = Vec.normalize w in
  let threshold = Vec.dot w (Stats.Scatter.pooled_mean scatter) in
  { w; threshold }

let train ?ridge a b = train_scatter ?ridge (Stats.Scatter.of_data a b)
let decision_value m x = Vec.dot m.w x -. m.threshold
let predict m x = decision_value m x >= 0.0
let fisher_cost scatter m = Stats.Scatter.fisher_ratio scatter m.w
let weights m = Vec.copy m.w

let pp ppf m =
  Format.fprintf ppf "lda{w=%a; thr=%g}" Vec.pp m.w m.threshold
