(** Analytic quantisation-noise accounting for a trained weight vector.

    Complements the empirical benches with the closed-form view of why
    rounding breaks classifiers: the projection computed by the datapath
    differs from the ideal [wᵀx] through two mechanisms, and both are
    linear in the grid step [q = 2⁻F]:

    - {e input quantisation}: each feature carries an error in
      [[−q/2, q/2]]; through the dot product it is amplified by at worst
      [‖w‖₁ · q/2] and in RMS (independent uniform errors) by
      [‖w‖₂ · q/√12];
    - {e product rounding}: each of the [M] multiply results is rounded
      once more, adding at worst [M·q/2] and in RMS [√M · q/√12].

    Dividing by the projected class-mean separation gives a
    signal-to-quantisation-noise ratio (SQNR); an SQNR of a few is the
    regime where fixed-point error visibly moves the error rate.  The
    paper's synthetic example is extreme on purpose: the cancelling
    weights make [‖w‖₂/|separation|] huge, so the SQNR collapses at short
    word lengths. *)

type report = {
  word_length : int;
  separation : float;  (** |projected mean difference|, signal scale *)
  input_noise_rms : float;
  input_noise_worst : float;
  product_noise_rms : float;
  product_noise_worst : float;
  sqnr : float;
      (** separation / (2 · total RMS noise) — per-class signal against
          the combined quantisation noise *)
  predicted_extra_error : float;
      (** Gaussian estimate of the error added by quantisation noise on
          top of the intrinsic class overlap *)
}

val analyze :
  scatter:Stats.Scatter.t ->
  fmt:Fixedpoint.Qformat.t ->
  Linalg.Vec.t ->
  report
(** [analyze ~scatter ~fmt w] for weights [w] in the (scaled, quantised)
    feature space described by [scatter]. *)

val pp : Format.formatter -> report -> unit
