(** L2-regularised logistic regression — a second classifier family for
    calibrating the LDA-FP results.

    The paper compares LDA-FP only against conventional LDA.  A natural
    question is whether the fixed-point fragility is specific to LDA or
    generic to linear classifiers trained in floating point; this module
    answers it by training logistic regression (Newton/IRLS on the convex
    log-loss, reusing {!Optim.Newton}) and deploying it through the same
    fixed-point pipeline, either by plain rounding or by the
    scale-swept rounding of {!to_fixed_swept} (the quantisation-aware-lite
    treatment).  The benches show the same cliff at short word lengths —
    the failure mode is the float-train/round-later flow, not LDA. *)

type model = private {
  w : Linalg.Vec.t;
  bias : float;
  lambda : float;  (** regularisation strength used in training *)
}

val train :
  ?lambda:float ->
  ?max_iter:int ->
  Linalg.Mat.t ->
  Linalg.Mat.t ->
  model
(** [train a b] on per-class feature matrices (class A positive);
    [lambda] defaults to [1e-3] (per-sample scale-free: multiplied by the
    trial count internally). *)

val decision_value : model -> Linalg.Vec.t -> float
(** [wᵀx + bias]. *)

val predict : model -> Linalg.Vec.t -> bool
val loss : model -> Linalg.Mat.t -> Linalg.Mat.t -> float
(** Mean regularised log-loss on a dataset (for tests/monitoring). *)

val loss_oracle :
  lambda:float -> Linalg.Mat.t -> bool array -> Optim.Newton.oracle
(** The training objective over [θ = (w, bias)] — exposed so tests can
    finite-difference it (see {!Optim.Gradcheck}). *)

val to_fixed :
  fmt:Fixedpoint.Qformat.t -> scaling:Scaling.t -> model -> Fixed_classifier.t
(** Conventional flow: unit-normalise [(w, bias)] by [‖w‖₂] and round. *)

val to_fixed_swept :
  fmt:Fixedpoint.Qformat.t ->
  scaling:Scaling.t ->
  validate:(Fixed_classifier.t -> float) ->
  model ->
  Fixed_classifier.t
(** Scale-swept rounding: try ~100 joint scalings of [(w, bias)], round
    each, keep the one with the lowest [validate] score (typically
    training error) — quantisation-aware deployment without retraining. *)

val train_pipeline :
  ?lambda:float ->
  fmt:Fixedpoint.Qformat.t ->
  swept:bool ->
  Datasets.Dataset.t ->
  Fixed_classifier.t
(** Shared front end (fit scaling, train on scaled floats), then
    {!to_fixed} or {!to_fixed_swept} (validated on training error). *)
