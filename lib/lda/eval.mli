(** Classifier evaluation: hold-out error and k-fold cross-validation.

    The paper reports plain misclassification rate; Table 2 uses 5-fold
    cross-validation on 70 trials per class. *)

val confusion_fixed :
  Fixed_classifier.t -> Datasets.Dataset.t -> Stats.Confusion.t
(** Run the fixed-point datapath over every trial. *)

val error_fixed : Fixed_classifier.t -> Datasets.Dataset.t -> float

val confusion_float :
  Lda.model -> scaling:Scaling.t -> Datasets.Dataset.t -> Stats.Confusion.t
(** Evaluate a float model trained on scaled features. *)

val error_float : Lda.model -> scaling:Scaling.t -> Datasets.Dataset.t -> float

val kfold :
  rng:Stats.Rng.t ->
  k:int ->
  train:(Datasets.Dataset.t -> 'model option) ->
  predict:('model -> Linalg.Vec.t -> bool) ->
  Datasets.Dataset.t ->
  Stats.Confusion.t option
(** Generic stratified k-fold CV.  Returns [None] if training failed on
    any fold (e.g. no feasible fixed-point solution). *)

val kfold_error_fixed :
  rng:Stats.Rng.t ->
  k:int ->
  train:(Datasets.Dataset.t -> Fixed_classifier.t option) ->
  Datasets.Dataset.t ->
  float option
(** Convenience wrapper around {!kfold} for fixed-point classifiers. *)

(** {1 ROC analysis}

    The fixed threshold of eq. (12) is one operating point; sweeping the
    threshold over the classifier's margin scores traces the full ROC —
    useful when a BCI application weighs misses and false alarms
    asymmetrically. *)

type roc = {
  points : (float * float) array;
      (** (false-positive rate, true-positive rate), monotone from (0,0)
          to (1,1) *)
  auc : float;  (** area under the curve, by trapezoid *)
}

val roc_of_scores : scores:float array -> labels:bool array -> roc
(** Higher score = more class-A.  @raise Invalid_argument on length
    mismatch, empty input, or a single-class label set. *)

val roc_fixed : Fixed_classifier.t -> Datasets.Dataset.t -> roc
(** Scores are the fixed-point decision margins
    ({!Fixed_classifier.margin}). *)
