(** Greedy per-weight bit allocation — word-length optimisation on top of
    a trained LDA-FP solution (the paper's stated future-work problem).

    Starting from a feasible uniform-format weight vector, repeatedly
    remove one fractional bit from the weight whose coarsening degrades
    the exact cost (eq. 21) least, re-rounding that weight to its best
    neighbouring value on the coarser grid, while the vector stays
    exactly feasible for (18)/(20).  Stop when either no single-bit
    coarsening keeps the cost within [max_cost_increase] of the starting
    cost, or every weight has reached [min_f] fractional bits.

    The greedy order is the classical sensitivity heuristic of the
    word-length-optimisation literature (Constantinides et al.): weights
    that merely mirror other weights (noise-cancelling pairs) tolerate
    few lost bits, while near-zero or saturated weights tolerate many.

    Coarser grids are subsets of the uniform grid (same K, fewer
    fractional bits), so the result remains a valid point of the original
    problem — the allocation only redistributes storage and multiplier
    width, never accuracy beyond the stated tolerance. *)

type assignment = {
  formats : Fixedpoint.Qformat.t array;
  weights : Linalg.Vec.t;  (** values on the per-element grids *)
  cost : float;  (** exact eq. 21 cost of [weights] *)
  start_cost : float;
  bits_saved : int;  (** uniform total minus allocated total *)
}

val allocate :
  ?max_cost_increase:float ->
  ?min_f:int ->
  Ldafp_problem.t ->
  Linalg.Vec.t ->
  assignment option
(** [allocate problem w] from a feasible grid point [w] of [problem]
    (typically {!Lda_fp.solve}'s outcome).  [max_cost_increase] is
    relative (default 0.05 = 5%); [min_f] defaults to 0.  [None] when
    [w] is not feasible. *)

val classifier :
  prepared:Pipeline.prepared -> assignment -> Hetero_classifier.t
(** Wrap an assignment into a runnable heterogeneous classifier (same
    threshold rule as {!Pipeline.classifier_of_weights}). *)

val savings_summary : Ldafp_problem.t -> assignment -> string
(** One-line human-readable summary: bits before/after, multiplier-cost
    ratio. *)
