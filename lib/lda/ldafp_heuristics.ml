open Linalg
open Fixedpoint

let round_into (pb : Ldafp_problem.t) ?wbox w =
  let wbox = match wbox with Some b -> b | None -> pb.Ldafp_problem.elem_box in
  Array.mapi (fun j x -> Fx_interval.clamp_value wbox.(j) x) w

let evaluate pb w =
  if Ldafp_problem.feasible pb w then
    let c = Ldafp_problem.cost pb w in
    if Float.is_finite c then Some (Vec.copy w, c) else None
  else None

let better a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (_, ca), Some (_, cb) -> if ca <= cb then a else b

let scaled_rounding_sweep ?(steps = 200) (pb : Ldafp_problem.t) direction =
  if steps < 1 then invalid_arg "scaled_rounding_sweep: steps < 1";
  let n = Vec.norm_inf direction in
  if n = 0.0 then None
  else begin
    let dir = Vec.scale (1.0 /. n) direction in
    let fmt = pb.Ldafp_problem.fmt in
    let lo = Qformat.ulp fmt in
    let hi = Qformat.max_value fmt in
    let ratio = (hi /. lo) ** (1.0 /. float_of_int (max 1 (steps - 1))) in
    let best = ref None in
    let lambda = ref lo in
    for _ = 1 to steps do
      let w = round_into pb (Vec.scale !lambda dir) in
      best := better !best (evaluate pb w);
      lambda := !lambda *. ratio
    done;
    !best
  end

let coordinate_polish ?(max_rounds = 6) (pb : Ldafp_problem.t) start =
  (match evaluate pb start with
  | None -> invalid_arg "coordinate_polish: start point infeasible"
  | Some _ -> ());
  let fmt = pb.Ldafp_problem.fmt in
  let ulp = Qformat.ulp fmt in
  let w = Vec.copy start in
  let cost = ref (Ldafp_problem.cost pb w) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    for j = 0 to Vec.dim w - 1 do
      let original = w.(j) in
      let try_move delta =
        let cand = original +. delta in
        if Fx_interval.mem (Ldafp_problem.elem_interval pb j) cand then begin
          w.(j) <- cand;
          match evaluate pb w with
          | Some (_, c) when c < !cost -. 1e-15 ->
              cost := c;
              improved := true
          | _ -> w.(j) <- original
        end
      in
      try_move ulp;
      if w.(j) = original then try_move (-.ulp)
    done
  done;
  (w, !cost)

let seed_incumbent ?steps ?max_rounds (pb : Ldafp_problem.t) =
  let model = Lda.train_scatter pb.Ldafp_problem.scatter in
  match scaled_rounding_sweep ?steps pb (Lda.weights model) with
  | None -> None
  | Some (w, _) -> Some (coordinate_polish ?max_rounds pb w)
