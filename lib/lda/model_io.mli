(** Plain-text persistence of trained fixed-point classifiers.

    The format is a line-oriented key/value file carrying exactly what the
    hardware holds — format, scaling exponents, raw weight codes, raw
    threshold, polarity — so a saved model round-trips bit-exactly:

    {v ldafp-model v1
       format Q2.4
       polarity 1
       exponents 3 3 2
       weights -7 12 3
       threshold 5 v} *)

exception Parse_error of string

val to_string : Fixed_classifier.t -> string
val of_string : string -> Fixed_classifier.t
(** @raise Parse_error on malformed input. *)

val save : string -> Fixed_classifier.t -> unit
val load : string -> Fixed_classifier.t
(** @raise Parse_error / [Sys_error]. *)

val c_header_of : ?guard:string -> Fixed_classifier.t -> string
(** A self-contained C header ([lda_model_fixed.h] style, alongside the
    Verilog backend) carrying the same baked tables the hardware holds:
    feature count, Q-format, polarity, raw threshold, per-feature scale
    exponents and raw weight codes, plus [static inline]
    [ldafp_project_raw] / [ldafp_predict_raw] functions that reproduce
    the wrapping MAC datapath bit-for-bit (round half to even on the
    fractional shift, two's-complement wrap into the word length on
    every accumulate).  The header compiles standalone with [cc -c].
    [guard] overrides the include guard (default
    [LDAFP_MODEL_FIXED_H]).
    @raise Invalid_argument when the word length exceeds 31 bits — the
    generated [int64_t] products would overflow where the OCaml
    datapath wraps modulo [2^63]. *)

val save_c_header : string -> Fixed_classifier.t -> unit
