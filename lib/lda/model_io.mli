(** Plain-text persistence of trained fixed-point classifiers.

    The format is a line-oriented key/value file carrying exactly what the
    hardware holds — format, scaling exponents, raw weight codes, raw
    threshold, polarity — so a saved model round-trips bit-exactly:

    {v ldafp-model v1
       format Q2.4
       polarity 1
       exponents 3 3 2
       weights -7 12 3
       threshold 5 v} *)

exception Parse_error of string

val to_string : Fixed_classifier.t -> string
val of_string : string -> Fixed_classifier.t
(** @raise Parse_error on malformed input. *)

val save : string -> Fixed_classifier.t -> unit
val load : string -> Fixed_classifier.t
(** @raise Parse_error / [Sys_error]. *)
