open Fixedpoint

type t = {
  w : Fx_vector.t;
  threshold : Fx.t;
  scaling : Scaling.t;
  polarity : bool;
}

let create ?(polarity = true) ~w ~threshold ~scaling () =
  if not (Qformat.equal (Fx_vector.format w) (Fx.format threshold)) then
    invalid_arg "Fixed_classifier.create: weight/threshold format mismatch";
  if Fx_vector.length w <> Scaling.dim scaling then
    invalid_arg "Fixed_classifier.create: weight/scaling dimension mismatch";
  { w; threshold; scaling; polarity }

let of_weights ?polarity ~fmt ~scaling ~weights ~threshold () =
  create ?polarity
    ~w:(Fx_vector.of_floats ~ov:Rounding.Wrap fmt weights)
    ~threshold:(Fx.of_float ~ov:Rounding.Saturate fmt threshold)
    ~scaling ()

let format t = Fx_vector.format t.w
let n_features t = Fx_vector.length t.w
let weights t = Fx_vector.to_floats t.w
let threshold_value t = Fx.to_float t.threshold

let quantize_input t x =
  let scaled = Scaling.apply_vec t.scaling x in
  Fx_vector.of_floats ~ov:Rounding.Saturate (format t) scaled

let predict_quantized t xq =
  let y = Fx_vector.dot t.w xq in
  if t.polarity then Fx.compare y t.threshold >= 0
  else Fx.compare y t.threshold < 0

let project t x = Fx_vector.dot t.w (quantize_input t x)
let predict t x = predict_quantized t (quantize_input t x)

let margin t x =
  let y = Fx.to_float (project t x) in
  let thr = Fx.to_float t.threshold in
  if t.polarity then y -. thr
  else thr -. y -. Qformat.ulp (format t)

let pp ppf t =
  Format.fprintf ppf "fixed-classifier{%a; w=%a; thr=%a}" Qformat.pp (format t)
    Fx_vector.pp t.w Fx.pp t.threshold
