open Linalg
open Fixedpoint
open Optim

type t = {
  fmt : Qformat.t;
  rho : float;
  beta : float;
  scatter : Stats.Scatter.t;
  sw : Mat.t;
  d : Vec.t;
  elem_box : Fx_interval.t array;
  socs : Socp.soc array;
  t_root : Interval.t;
  restrict_t_positive : bool;
  (* Relaxation template, shared by every branch-and-bound node: the
     quadratic term, the zero linear term and all constraint direction
     vectors are node-independent — only the half-space offsets (box and
     t-range) and the objective scale (1/eta) change per node. *)
  p_base : Mat.t;  (* 2 S_W *)
  q_zero : Vec.t;
  box_pos : Vec.t array;  (* e_i,  for w_i <= hi_i *)
  box_neg : Vec.t array;  (* -e_i, for -w_i <= -lo_i *)
  d_neg : Vec.t;  (* -d, for -dᵀw <= -t_lo *)
}

exception No_feasible_box of string

(* Feasible w-interval of the four element constraints (18) for one
   element, given mean/sigma pairs for both classes.  On each half-line
   the constraints are linear, so we intersect half-line by half-line and
   take the union (both halves contain w = 0). *)
let elem_range ~beta ~lo_bound ~hi_bound stats =
  (* stats : (mu, sigma) list; constraints for w >= 0 (sign = +1) are
       w (mu - beta sigma) >= lo_bound  and  w (mu + beta sigma) <= hi_bound
     and for w <= 0 (sign = -1), |w| = -w:
       w (mu + beta sigma) >= lo_bound  and  w (mu - beta sigma) <= hi_bound *)
  let pos_hi = ref Float.infinity in
  let neg_lo = ref Float.neg_infinity in
  List.iter
    (fun (mu, sigma) ->
      let c_minus = mu -. (beta *. sigma) in
      let c_plus = mu +. (beta *. sigma) in
      (* w >= 0: w * c_minus >= lo_bound restricts only when c_minus < 0. *)
      if c_minus < 0.0 then pos_hi := Float.min !pos_hi (lo_bound /. c_minus);
      (* w >= 0: w * c_plus <= hi_bound restricts only when c_plus > 0. *)
      if c_plus > 0.0 then pos_hi := Float.min !pos_hi (hi_bound /. c_plus);
      (* w <= 0: w * c_plus >= lo_bound restricts only when c_plus > 0. *)
      if c_plus > 0.0 then neg_lo := Float.max !neg_lo (lo_bound /. c_plus);
      (* w <= 0: w * c_minus <= hi_bound restricts only when c_minus < 0. *)
      if c_minus < 0.0 then neg_lo := Float.max !neg_lo (hi_bound /. c_minus))
    stats;
  (!neg_lo, !pos_hi)

let build ?(rho = 0.99) ?(restrict_t_positive = true) ~fmt scatter =
  let beta = Stats.Gaussian.beta_of_confidence rho in
  let m = Stats.Scatter.dim scatter in
  let sw = Mat.symmetrize (Stats.Scatter.within_class scatter) in
  let d = Stats.Scatter.mean_difference scatter in
  let lo_bound = Qformat.min_value fmt in
  let hi_bound = Qformat.max_value fmt in
  let mu_a = scatter.Stats.Scatter.mu_a and mu_b = scatter.Stats.Scatter.mu_b in
  let sig_a = scatter.Stats.Scatter.sigma_a
  and sig_b = scatter.Stats.Scatter.sigma_b in
  let elem_box =
    Array.init m (fun j ->
        let stats =
          [
            (mu_a.(j), sqrt (Float.max sig_a.(j).(j) 0.0));
            (mu_b.(j), sqrt (Float.max sig_b.(j).(j) 0.0));
          ]
        in
        let lo, hi = elem_range ~beta ~lo_bound ~hi_bound stats in
        match Fx_interval.of_values fmt ~lo ~hi with
        | iv -> iv
        | exception Invalid_argument msg ->
            raise (No_feasible_box (Printf.sprintf "element %d: %s" j msg)))
  in
  (* Cones of (20): beta ‖Lᵀw‖ <= ±μᵀw + bound.  Cholesky jitter makes the
     relaxed cone slightly tighter than the exact constraint, so add the
     worst-case compensation beta·sqrt(jitter)·max‖w‖ to the offsets. *)
  let max_norm_w =
    sqrt (float_of_int m)
    *. Float.max (Float.abs lo_bound) (Float.abs hi_bound)
  in
  let make_cones sigma mu =
    let l_chol, jitter = Cholesky.factor_jittered (Mat.symmetrize sigma) in
    let slack = beta *. sqrt jitter *. max_norm_w in
    let l = Mat.scale beta (Mat.transpose l_chol) in
    let zero_g = Vec.zeros m in
    [
      (* μᵀw − β√(wᵀΣw) >= lo_bound  ⇔  β‖Lᵀw‖ <= μᵀw − lo_bound *)
      { Socp.l; g = zero_g; c = Vec.copy mu; d = -.lo_bound +. slack };
      (* μᵀw + β√(wᵀΣw) <= hi_bound  ⇔  β‖Lᵀw‖ <= −μᵀw + hi_bound *)
      { Socp.l; g = zero_g; c = Vec.neg mu; d = hi_bound +. slack };
    ]
  in
  let socs =
    Array.of_list (make_cones sig_a mu_a @ make_cones sig_b mu_b)
  in
  (* Root t-interval: eq. (29) tightened by the element boxes. *)
  let t_lo = ref 0.0 and t_hi = ref 0.0 in
  Array.iteri
    (fun j iv ->
      let a = d.(j) *. Fx_interval.lo iv and b = d.(j) *. Fx_interval.hi iv in
      t_lo := !t_lo +. Float.min a b;
      t_hi := !t_hi +. Float.max a b)
    elem_box;
  let t_root =
    if restrict_t_positive then
      Interval.make ~lo:(Float.max 0.0 !t_lo) ~hi:(Float.max 0.0 !t_hi)
    else Interval.make ~lo:!t_lo ~hi:!t_hi
  in
  {
    fmt; rho; beta; scatter; sw; d; elem_box; socs; t_root;
    restrict_t_positive;
    p_base = Mat.scale 2.0 sw;
    q_zero = Vec.zeros m;
    box_pos = Array.init m (Vec.basis m);
    box_neg = Array.init m (fun i -> Vec.neg (Vec.basis m i));
    d_neg = Vec.neg d;
  }

let dim t = Vec.dim t.d
let elem_interval t j = t.elem_box.(j)

let cost t w =
  let tt = Vec.dot t.d w in
  if tt = 0.0 then Float.infinity
  else Mat.quadratic_form t.sw w /. (tt *. tt)

let on_grid t w =
  Array.for_all
    (fun x ->
      Qformat.in_range t.fmt x
      && Float.abs (x -. Qformat.nearest_on_grid t.fmt x) < 1e-12)
    w

let constraint_violation t w =
  let lo_bound = Qformat.min_value t.fmt in
  let hi_bound = Qformat.max_value t.fmt in
  let s = t.scatter in
  let worst = ref Float.neg_infinity in
  let push v = worst := Float.max !worst v in
  (* Element constraints (18), exact. *)
  Array.iteri
    (fun j wj ->
      let check mu sigma =
        let spread = t.beta *. Float.abs wj *. sigma in
        push (lo_bound -. ((wj *. mu) -. spread));
        push ((wj *. mu) +. spread -. hi_bound)
      in
      check s.Stats.Scatter.mu_a.(j)
        (sqrt (Float.max s.Stats.Scatter.sigma_a.(j).(j) 0.0));
      check s.Stats.Scatter.mu_b.(j)
        (sqrt (Float.max s.Stats.Scatter.sigma_b.(j).(j) 0.0)))
    w;
  (* Projection constraints (20), exact quadratic forms. *)
  let check_proj mu sigma =
    let m = Vec.dot mu w in
    let spread = t.beta *. sqrt (Float.max (Mat.quadratic_form sigma w) 0.0) in
    push (lo_bound -. (m -. spread));
    push (m +. spread -. hi_bound)
  in
  check_proj s.Stats.Scatter.mu_a s.Stats.Scatter.sigma_a;
  check_proj s.Stats.Scatter.mu_b s.Stats.Scatter.sigma_b;
  !worst

let feasible ?(tol = 1e-9) t w =
  on_grid t w
  && Array.for_all2 (fun iv x -> Fx_interval.mem iv x) t.elem_box w
  && constraint_violation t w <= tol

let t_of t w = Vec.dot t.d w

let trange_of_box t wbox =
  let lo = ref 0.0 and hi = ref 0.0 in
  Array.iteri
    (fun j iv ->
      let a = t.d.(j) *. Fx_interval.lo iv
      and b = t.d.(j) *. Fx_interval.hi iv in
      lo := !lo +. Float.min a b;
      hi := !hi +. Float.max a b)
    wbox;
  Interval.make ~lo:!lo ~hi:!hi

(* Only the offsets [b] are node-specific; every direction vector is
   shared from the template, so a node's half-spaces cost 2M+2 small
   records, not O(M²) fresh floats. *)
let box_and_t_lins t ~wbox ~trange =
  let m = dim t in
  Array.init
    ((2 * m) + 2)
    (fun k ->
      if k < m then { Socp.a = t.box_pos.(k); b = Fx_interval.hi wbox.(k) }
      else if k < 2 * m then
        let i = k - m in
        { Socp.a = t.box_neg.(i); b = -.Fx_interval.lo wbox.(i) }
      else if k = 2 * m then { Socp.a = t.d; b = Interval.hi trange }
      else { Socp.a = t.d_neg; b = -.Interval.lo trange })

let relaxation t ~wbox ~trange ~eta =
  if eta <= 0.0 then invalid_arg "Ldafp_problem.relaxation: eta must be > 0";
  (* wᵀ S_W w / eta = (1/eta) · (1/2) wᵀ (2 S_W) w: the eta-dependence
     lives entirely in the objective scale, so the shared [p_base] and
     cones serve every node (and eta_inf upper solves) unchanged. *)
  Socp.of_parts ~obj_scale:(1.0 /. eta) ~p:t.p_base ~q:t.q_zero
    ~lins:(box_and_t_lins t ~wbox ~trange)
    ~socs:t.socs (dim t)

let secant_relaxation t ~wbox ~trange ~theta =
  if theta < 0.0 then
    invalid_arg "Ldafp_problem.secant_relaxation: theta must be >= 0";
  let l = Interval.lo trange and u = Interval.hi trange in
  if l < 0.0 then
    invalid_arg "Ldafp_problem.secant_relaxation: t-range must be >= 0";
  let m = dim t in
  let q = Vec.scale (-.theta *. (l +. u)) t.d in
  let problem =
    Socp.of_parts ~p:t.p_base ~q
      ~lins:(box_and_t_lins t ~wbox ~trange)
      ~socs:t.socs m
  in
  (problem, theta *. l *. u)

(* A certifiably box-and-t-interior point of a node's region, used as
   the pull-in target for warm starts that landed on the child's branch
   cut (Socp.pull_to_interior).  Corner blend: each coordinate moves the
   fraction theta from the endpoint minimising d_j w_j to the one
   maximising it, so d·w = (1−theta)·min(d·w over box) + theta·max and
   choosing theta to hit mid(trange) puts d·w exactly at the t-slice
   centre.  Because bound_node intersects trange with trange_of_box
   first, theta lands in [0, 1]; strictly inside unless the region is
   degenerate (a singleton box dimension or a width-zero t-slice), in
   which case there is no strict interior for any point to find and the
   caller's interiority check fails as it must. *)
let center_point t ~wbox ~trange =
  let m = dim t in
  let t_mid = Interval.mid trange in
  let lo_t = ref 0.0 and hi_t = ref 0.0 in
  Array.iteri
    (fun j iv ->
      let a = t.d.(j) *. Fx_interval.lo iv
      and b = t.d.(j) *. Fx_interval.hi iv in
      lo_t := !lo_t +. Float.min a b;
      hi_t := !hi_t +. Float.max a b)
    wbox;
  let width = !hi_t -. !lo_t in
  let theta = if width <= 0.0 then 0.5 else (t_mid -. !lo_t) /. width in
  Vec.init m (fun j ->
      let iv = wbox.(j) in
      let lo = Fx_interval.lo iv and hi = Fx_interval.hi iv in
      if t.d.(j) >= 0.0 then lo +. (theta *. (hi -. lo))
      else hi -. (theta *. (hi -. lo)))

let fingerprint t = Digest.to_hex (Digest.string (Marshal.to_string t []))

let interval_lower_bound t ~wbox ~trange =
  let m = dim t in
  let lo = Array.map Fx_interval.lo wbox in
  let hi = Array.map Fx_interval.hi wbox in
  (* Term-wise interval arithmetic on wᵀ S_W w: each product
     s·wᵢ·wⱼ attains its extrema at box corners.  The sum of per-term
     minima under-estimates the true minimum, which is exactly what a
     fallback lower bound needs. *)
  let qf_min = ref 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let s = t.sw.(i).(j) in
      if s <> 0.0 then begin
        let p1 = lo.(i) *. lo.(j)
        and p2 = lo.(i) *. hi.(j)
        and p3 = hi.(i) *. lo.(j)
        and p4 = hi.(i) *. hi.(j) in
        let pmin = Float.min (Float.min p1 p2) (Float.min p3 p4) in
        let pmax = Float.max (Float.max p1 p2) (Float.max p3 p4) in
        qf_min := !qf_min +. (if s > 0.0 then s *. pmin else s *. pmax)
      end
    done
  done;
  let l = Interval.lo trange and u = Interval.hi trange in
  let t2_sup = Float.max (l *. l) (u *. u) in
  if t2_sup <= 0.0 then Float.infinity
  else Float.max 0.0 (!qf_min /. t2_sup)

let pp_summary ppf t =
  Format.fprintf ppf
    "LDA-FP problem: %a, M=%d, rho=%g (beta=%.3f), t in %a%s" Qformat.pp t.fmt
    (dim t) t.rho t.beta Interval.pp t.t_root
    (if t.restrict_t_positive then " [t>=0 heuristic]" else "")
