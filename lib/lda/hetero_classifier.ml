open Fixedpoint

type t = {
  w_raws : int array;
  w_fmts : Qformat.t array;
  acc_fmt : Qformat.t;
  threshold : Fx.t;
  scaling : Scaling.t;
  polarity : bool;
}

let create ?(polarity = true) ~acc_fmt ~formats ~weights ~threshold ~scaling
    () =
  let m = Array.length weights in
  if Array.length formats <> m then
    invalid_arg "Hetero_classifier.create: formats/weights length mismatch";
  if Scaling.dim scaling <> m then
    invalid_arg "Hetero_classifier.create: scaling dimension mismatch";
  let w_raws =
    Array.mapi
      (fun j x ->
        Fx.raw (Fx.of_float ~ov:Rounding.Saturate formats.(j) x))
      weights
  in
  {
    w_raws;
    w_fmts = Array.copy formats;
    acc_fmt;
    threshold = Fx.of_float ~ov:Rounding.Saturate acc_fmt threshold;
    scaling;
    polarity;
  }

let of_uniform (clf : Fixed_classifier.t) =
  let fmt = Fixed_classifier.format clf in
  let m = Fixed_classifier.n_features clf in
  {
    w_raws = Array.map Fx.raw (Fx_vector.to_fx clf.Fixed_classifier.w);
    w_fmts = Array.make m fmt;
    acc_fmt = fmt;
    threshold = clf.Fixed_classifier.threshold;
    scaling = clf.Fixed_classifier.scaling;
    polarity = clf.Fixed_classifier.polarity;
  }

let n_features t = Array.length t.w_raws

let weights t =
  Array.mapi (fun j r -> Qformat.value_of_raw t.w_fmts.(j) r) t.w_raws

let project t x =
  let scaled = Scaling.apply_vec t.scaling x in
  let acc = ref 0 in
  Array.iteri
    (fun j w_raw ->
      let xq = Fx.of_float ~ov:Rounding.Saturate t.acc_fmt scaled.(j) in
      (* Product raw is in units 2^-(f_m + f_acc); bring it back to the
         accumulator's 2^-f_acc by rounding away f_m bits. *)
      let full = w_raw * Fx.raw xq in
      let p =
        Rounding.shift_right_rounded Rounding.Nearest full
          t.w_fmts.(j).Qformat.f
      in
      let p = Qformat.wrap_raw t.acc_fmt p in
      acc := Qformat.wrap_raw t.acc_fmt (!acc + p))
    t.w_raws;
  Fx.create t.acc_fmt !acc

let predict t x =
  let y = project t x in
  if t.polarity then Fx.compare y t.threshold >= 0
  else Fx.compare y t.threshold < 0

let weight_bits t = Array.map Qformat.word_length t.w_fmts
let total_weight_bits t = Array.fold_left ( + ) 0 (weight_bits t)

let multiplier_cost t =
  let wlx = float_of_int (Qformat.word_length t.acc_fmt) in
  Array.fold_left
    (fun acc fmt -> acc +. (float_of_int (Qformat.word_length fmt) *. wlx))
    0.0 t.w_fmts

let pp ppf t =
  Format.fprintf ppf "hetero{acc=%a; w=[@[%a@]]}" Qformat.pp t.acc_fmt
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (r, fmt) ->
         Format.fprintf ppf "%g:%a" (Qformat.value_of_raw fmt r) Qformat.pp fmt))
    (Array.to_list (Array.map2 (fun r f -> (r, f)) t.w_raws t.w_fmts))
