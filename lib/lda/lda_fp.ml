open Linalg
open Fixedpoint
open Optim

type checkpoint_spec = {
  path : string;
  every_nodes : int;
  resume : bool;
}

let checkpoint_spec ?(every_nodes = 0) ?(resume = false) path =
  { path; every_nodes; resume }

type config = {
  seed_incumbent : bool;
  sweep_steps : int;
  polish_nodes : bool;
  polish_rounds : int;
  upper_via_socp : bool;
  t_min_width : float;
  t_branch_bias : float;
  secant_prune : bool;
  warm_start : bool;
  certify : bool;
  socp_params : Socp.params;
  bnb_params : Bnb.params;
  fault_policy : Fault.policy;
  checkpoint : checkpoint_spec option;
  inject_faults : Fault_inject.config option;
  progress : Obs.Progress.t option;
}

let default_config =
  {
    seed_incumbent = true;
    sweep_steps = 200;
    polish_nodes = true;
    polish_rounds = 2;
    upper_via_socp = false;
    t_min_width = 1e-4;
    t_branch_bias = 3.0;
    secant_prune = true;
    warm_start = true;
    certify = true;
    socp_params =
      { Socp.default_params with gap_tol = 1e-7;
        newton = { Newton.default_params with tol = 1e-9; max_iter = 60 } };
    bnb_params =
      { Bnb.default_params with max_nodes = 2000; rel_gap = 1e-3 };
    fault_policy = Fault.default_policy;
    checkpoint = None;
    inject_faults = None;
    progress = None;
  }

let quick_config =
  {
    default_config with
    sweep_steps = 80;
    bnb_params = { Bnb.default_params with max_nodes = 150; rel_gap = 1e-2 };
  }

type diagnostics = {
  nodes : int;
  bound : float;
  gap : float;
  stop_reason : Bnb.stop_reason;
  seed_cost : float option;
  train_seconds : float;
  search : Bnb.stats;
}

type outcome = { w : Vec.t; cost : float; diagnostics : diagnostics }

(* The warm state a node inherits from its parent: the relaxation
   optimum (primal side) together with the barrier weight the producing
   solve terminated at (the dual side — what {!Socp.restart_levels}
   turns into a ladder-rung skip).  Plain floats and arrays, so it
   marshals through {!Checkpoint} snapshots and migrates across
   {!Work_deque} steals without any special handling. *)
type warm_info = {
  point : Vec.t;
  tau_final : float;
      (* [Float.nan] when the point came from a phase-I [Unknown]
         (never centered on any ladder): restart_levels maps it to 0,
         a full ladder with only phase-I skipped *)
}

type node = {
  wbox : Fx_interval.t array;
  mutable trange : Interval.t;
      (* mutable: [bound] tightens it in place so [branch] sees the
         tightened interval *)
  root_t_width : float;
  mutable relax_w : warm_info option;
      (* relaxation optimum, cached by [bound] to guide [branch] *)
  mutable warm : warm_info option;
      (* the parent's relaxation optimum, inherited at branch time: the
         warm start for this node's bound solve.  Cleared by the fault
         retry hook so a retried node never reuses a point associated
         with a failed solve. *)
  mutable warm_tainted : bool;
      (* true iff [warm] was deliberately cleared by the fault retry
         hook — distinguishes "never had a parent point" from "had one
         and discarded it" in the warm-miss accounting *)
}

let src = Logs.Src.create "ldafp.solver" ~doc:"LDA-FP trainer"

module Log = (val Logs.src_log src : Logs.LOG)

let is_atomic node = Array.for_all Fx_interval.is_singleton node.wbox

(* Candidate generation: round a continuous point into the node box,
   evaluate exactly, optionally polish. *)
let candidate_of_point pb node point =
  let rounded = Ldafp_heuristics.round_into pb ~wbox:node.wbox point in
  match Ldafp_heuristics.evaluate pb rounded with
  | None ->
      (* The node-box rounding may violate (20); retry in the full
         element box, which can only move components toward zero. *)
      let loose = Ldafp_heuristics.round_into pb point in
      Ldafp_heuristics.evaluate pb loose
  | some -> some

let polish_candidate cfg pb = function
  | Some (w, _) when cfg.polish_nodes ->
      let w', c' =
        Ldafp_heuristics.coordinate_polish ~max_rounds:cfg.polish_rounds pb w
      in
      Some (w', c')
  | other -> other

let better a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (_, ca), Some (_, cb) -> if ca <= cb then a else b

(* Secant pruning test: can this region contain a point at least as good
   as the incumbent [theta]?  Certifies "no" when the minimum of
   wᵀS_W w − θ(l+u)t + θlu over the relaxed region is positive (valid
   because t² <= (l+u)t − lu on [l, u]).  A much sharper knife than the
   η = sup t² bound once an incumbent exists, since it couples numerator
   and denominator. *)
(* [theta] is read from the shared incumbent mirror (an Atomic when the
   search runs on several domains); the test itself is pure.

   A secant prune is a pruning decision like any other, so it obeys the
   same rule: with [cfg.certify] the "minimum > 0" claim must come from
   the verified dual certificate of the secant program, never from its
   primal objective.  A failed certificate declines the prune (sound —
   the main bound still runs) rather than failing the node. *)
let secant_prunes cfg pb ~counters ?warm ~fixed node theta =
  theta < Float.infinity
  && Interval.lo node.trange >= 0.0
  &&
  let problem, constant =
    Ldafp_problem.secant_relaxation pb ~wbox:node.wbox ~trange:node.trange
      ~theta
  in
  (* Pinned (singleton) box dimensions leave the secant program with an
     empty strict interior in the full space; substitute them out before
     solving, exactly as [bound_node] does for the main relaxation. *)
  let restricted =
    if Array.length fixed = 0 then Some (problem, Fun.id, 0.0)
    else
      match Socp.restrict problem ~fixed with
      | None -> None
      | Some r ->
          Some
            ( r.Socp.reduced,
              Socp.restriction_project r,
              Socp.restriction_objective_const r )
  in
  match restricted with
  | None -> false (* pinned values infeasible; let the main bound certify *)
  | Some (problem, project, oconst) -> (
      (* The secant program shares the relaxation's constraints, so a
         clipped warm start short-circuits its phase-I too. *)
      let start =
        project
          (match warm with
          | Some x -> x
          | None -> Array.map Fx_interval.mid node.wbox)
      in
      match Socp.solve_auto ~params:cfg.socp_params problem ~start with
      | None -> false (* feasibility unclear; let the main bound decide *)
      | Some sol ->
          if cfg.certify then
            match Socp.certify_lower_bound problem sol with
            | Ok cert ->
                if cert.Socp.repaired then Bnb.count_cert_repaired counters
                else Bnb.count_cert_verified counters;
                cert.Socp.dual_value +. oconst +. constant > 1e-12
            | Error _ -> false (* unverified: decline the prune *)
          else
            sol.Socp.objective +. oconst +. constant
            -. (2.0 *. sol.Socp.gap_bound)
            > 1e-12)

(* Clip an inherited relaxation optimum into this node's box, nudged a
   fraction of each width inside so clipped coordinates do not land
   exactly on the boundary (the barrier needs a strict interior; a
   singleton dimension yields a boundary point that the interiority test
   rejects, falling back to the cold path). *)
let clip_warm_into_box node x =
  let m = Array.length node.wbox in
  if Vec.dim x <> m then None
  else
    Some
      (Vec.init m (fun i ->
           let iv = node.wbox.(i) in
           let lo = Fx_interval.lo iv and hi = Fx_interval.hi iv in
           let margin = 1e-3 *. (hi -. lo) in
           Float.max (lo +. margin) (Float.min (hi -. margin) x.(i))))

(* Lower bound + candidate for one region (the paper's steps 3 and 5). *)
let bound_node cfg pb incumbent counters node =
  (* Tighten the t-interval with interval arithmetic over the box; an
     empty intersection means no grid point of this box pairs with this
     t-slice (the complementary slice lives in a sibling node). *)
  match
    Interval.intersect node.trange (Ldafp_problem.trange_of_box pb node.wbox)
  with
  | None -> None
  | Some trange -> (
      node.trange <- trange;
      if is_atomic node then begin
        let w = Array.map Fx_interval.mid node.wbox in
        match Ldafp_heuristics.evaluate pb w with
        | Some (w, c) when Interval.mem node.trange (Ldafp_problem.t_of pb w)
          ->
            Some { Bnb.lower = c; candidate = Some (w, c) }
        | _ -> None
      end
      else
        (* Dimensions the splitting has pinned to a single grid value.
           In the full space each pins a pair of opposing half-spaces to
           equality, so the strict interior is empty and the barrier
           cannot run at all — these coordinates must be eliminated by
           substitution, not handed to the solver. *)
        let fixed =
          let acc = ref [] in
          Array.iteri
            (fun j iv ->
              if Fx_interval.is_singleton iv then
                acc := (j, Fx_interval.lo iv) :: !acc)
            node.wbox;
          Array.of_list (List.rev !acc)
        in
        let warm =
          if cfg.warm_start then
            Option.bind node.warm (fun wi ->
                Option.map
                  (fun x -> (x, wi.tau_final))
                  (clip_warm_into_box node wi.point))
          else None
        in
        if
          cfg.secant_prune
          && secant_prunes cfg pb ~counters ?warm:(Option.map fst warm) ~fixed
               node (Atomic.get incumbent)
        then None
        else
          let eta = Interval.sup_sq node.trange in
          if eta <= 0.0 then None
          else
            let relaxation =
              Ldafp_problem.relaxation pb ~wbox:node.wbox ~trange:node.trange
                ~eta
            in
            (* Substitute the pinned coordinates out.  [socp] ranges over
               the free coordinates only; [project]/[embed] map between
               the reduced and full spaces, and [obj_const] carries the
               objective terms the substitution froze (already in the
               relaxation's objective scale). *)
            let restricted =
              if Array.length fixed = 0 then
                Some (relaxation, Fun.id, Fun.id, 0.0)
              else
                match Socp.restrict relaxation ~fixed with
                | None -> None
                | Some r ->
                    Some
                      ( r.Socp.reduced,
                        Socp.restriction_project r,
                        Socp.restriction_embed r,
                        Socp.restriction_objective_const r )
            in
            match restricted with
            | None ->
                (* The pinned values violate a constraint outright: no
                   point of this region is feasible. *)
                None
            | Some (socp, project, embed, obj_const) -> (
            (* Shared continuation for warm and cold solves.

               The node's lower bound — the value every pruning decision
               compares against the incumbent — is {e never} the primal
               objective.  Certified mode derives it from the verified
               dual certificate (sound whatever the solve did; typically
               also tighter, slack ≈ ν/τ instead of 2ν/τ); a failed
               certificate raises {!Fault.Certificate_error}, which the
               containment policy classifies, retries with jittered
               parameters (the retry hook clears the warm state, giving
               the re-solve a fresh certificate chance), and finally
               degrades to the certified interval fallback.  The
               trusting formula survives only behind [certify = false],
               which also clears {!Bnb.stats.certified_sound}. *)
            let solved sol =
              let x_full = embed sol.Socp.x in
              node.relax_w <-
                Some { point = x_full; tau_final = sol.Socp.tau_final };
              let lower =
                if cfg.certify then
                  match Socp.certify_lower_bound socp sol with
                  | Ok cert ->
                      if cert.Socp.repaired then
                        Bnb.count_cert_repaired counters
                      else Bnb.count_cert_verified counters;
                      (* cost >= 0 always (the objective is a scaled
                         PSD quadratic), so the clamp loses nothing and
                         stays certified. *)
                      Float.max 0.0 (obj_const +. cert.Socp.dual_value)
                  | Error f ->
                      raise
                        (Fault.Certificate_error (Socp.describe_cert_failure f))
                else
                  Float.max 0.0
                    (obj_const +. sol.Socp.objective
                    -. (2.0 *. sol.Socp.gap_bound))
              in
              let cand = candidate_of_point pb node x_full in
              let cand =
                if cfg.upper_via_socp then begin
                  (* The paper's upper-bound estimation: re-solve with the
                     denominator frozen at inf t² and round that optimum.
                     Same constraints, only the objective scale changes —
                     and the lower solve's optimum is a barrier iterate,
                     strictly interior, so the re-solve starts from it
                     with no phase-I. *)
                  let eta_inf = Interval.inf_sq node.trange in
                  if eta_inf > 0.0 then
                    let ub_problem =
                      Socp.with_objective_scale socp (1.0 /. eta_inf)
                    in
                    if Socp.is_strictly_interior ub_problem sol.Socp.x then begin
                      Bnb.count_phase1_skipped counters;
                      (* Same constraints, objective rescaled: the lower
                         optimum already minimises it, so skip as many
                         ladder rungs as its terminal tau certifies. *)
                      let levels =
                        Socp.restart_levels cfg.socp_params
                          ~tau_final:sol.Socp.tau_final
                      in
                      let ub_sol =
                        Socp.solve
                          ~params:(Socp.warm_start_params ~levels
                                     cfg.socp_params)
                          ub_problem ~start:sol.Socp.x
                      in
                      better cand
                        (candidate_of_point pb node (embed ub_sol.Socp.x))
                    end
                    else
                      let start =
                        project (Array.map Fx_interval.mid node.wbox)
                      in
                      match
                        Socp.solve_auto ~params:cfg.socp_params ub_problem
                          ~start
                      with
                      | Some ub_sol ->
                          better cand
                            (candidate_of_point pb node (embed ub_sol.Socp.x))
                      | None -> cand
                  else cand
                end
                else cand
              in
              let cand = polish_candidate cfg pb cand in
              Some { Bnb.lower; candidate = cand }
            in
            (* Warm preparation: accept the clipped parent optimum as-is
               when it is margin-interior, else pull it toward the
               child's analytic-center proxy (the branch rule splits at
               the parent optimum's projection, so clipped points land
               {e on} the branch-cut half-space — a pull along the
               segment toward the box/t center is almost always enough),
               else take one damped Newton correction.  Only a point
               that survives all three repairs goes cold. *)
            let prepared =
              match warm with
              | None -> None
              | Some (x0, tau_parent) -> (
                  let target =
                    project
                      (Ldafp_problem.center_point pb ~wbox:node.wbox
                         ~trange:node.trange)
                  in
                  match
                    Socp.prepare_warm_start ~params:cfg.socp_params ~target
                      socp (project x0)
                  with
                  | Some (x, prep) -> Some (x, prep, tau_parent)
                  | None -> None)
            in
            match prepared with
            | Some (x0, prep, tau_parent) ->
                (* Strictly interior (certifiably, after repair): skip
                   phase-I entirely and skip the ladder rungs the
                   parent's terminal barrier weight certifies (the start
                   is near the child optimum, so the early low-tau
                   centerings are redundant — the final tau and the
                   certified gap are unchanged). *)
                Bnb.count_warm_start_hit counters;
                Bnb.count_phase1_skipped counters;
                (match prep with
                | Socp.Warm_interior -> ()
                | Socp.Warm_pulled -> Bnb.count_warm_pull_in counters
                | Socp.Warm_corrected ->
                    Bnb.count_warm_newton_correction counters);
                let levels =
                  Socp.restart_levels cfg.socp_params ~tau_final:tau_parent
                in
                solved
                  (Socp.solve
                     ~params:(Socp.warm_start_params ~levels cfg.socp_params)
                     socp ~start:x0)
            | None -> (
                (* Cold solve.  Attribute the miss (only when warm starts
                   are enabled at all — with [warm_start = false] every
                   solve is cold by choice, not a miss): the hit and miss
                   counters together partition the relaxation solves that
                   actually ran, so warm_hit_rate = hits/(hits + misses)
                   diagnoses exactly the solves that paid for phase-I.
                   [warm_miss_not_interior] now means the parent point
                   defeated the pull-in {e and} the Newton correction. *)
                if cfg.warm_start then
                  (match node.warm with
                  | None ->
                      if node.warm_tainted then
                        Bnb.count_warm_miss_fault_cleared counters
                      else Bnb.count_warm_miss_no_parent counters
                  | Some _ -> Bnb.count_warm_miss_not_interior counters);
                let start = project (Array.map Fx_interval.mid node.wbox) in
                match
                  Socp.find_strictly_feasible ~params:cfg.socp_params socp
                    ~start
                with
                | Socp.Infeasible _ -> None
                | Socp.Unknown x ->
                    (* Cannot certify anything better than cost >= 0 here,
                       but the box may still contain the optimum: keep
                       exploring.  The point was never centered on any
                       ladder — NaN maps to restart_levels 0 in the
                       children. *)
                    let x_full = embed x in
                    node.relax_w <-
                      Some { point = x_full; tau_final = Float.nan };
                    let cand =
                      polish_candidate cfg pb
                        (candidate_of_point pb node x_full)
                    in
                    Some { Bnb.lower = 0.0; candidate = cand }
                | Socp.Strictly_feasible x0 ->
                    solved (Socp.solve ~params:cfg.socp_params socp ~start:x0)
                )))

(* Branching rule: most relative width among the splittable dimensions,
   cut at the cached relaxation optimum. *)
let branch_node cfg pb node =
  let m = Array.length node.wbox in
  let root = pb.Ldafp_problem.elem_box in
  let best_dim = ref (-1) in
  let best_score = ref 0.0 in
  for j = 0 to m - 1 do
    if not (Fx_interval.is_singleton node.wbox.(j)) then begin
      let rw = Float.max (Fx_interval.width root.(j)) 1e-300 in
      let score = Fx_interval.width node.wbox.(j) /. rw in
      if score > !best_score then begin
        best_score := score;
        best_dim := j
      end
    end
  done;
  let t_width = Interval.width node.trange in
  let t_score =
    if node.root_t_width <= 0.0 then 0.0
    else if t_width <= cfg.t_min_width *. node.root_t_width then 0.0
    else cfg.t_branch_bias *. t_width /. node.root_t_width
  in
  let copy_box () = Array.copy node.wbox in
  if t_score > !best_score then begin
    (* Split t at the relaxation optimum's projection, kept away from the
       endpoints so both children shrink meaningfully. *)
    let at =
      match node.relax_w with
      | Some wi -> Ldafp_problem.t_of pb wi.point
      | None -> Interval.mid node.trange
    in
    let lo = Interval.lo node.trange and hi = Interval.hi node.trange in
    let margin = 0.15 *. (hi -. lo) in
    let at = Float.max (lo +. margin) (Float.min (hi -. margin) at) in
    let left, right = Interval.split ~at node.trange in
    (* Children inherit the parent's relaxation optimum as their warm
       start (clipped into the child box at bound time). *)
    [
      { node with trange = left; wbox = copy_box (); relax_w = None;
        warm = node.relax_w; warm_tainted = false };
      { node with trange = right; wbox = copy_box (); relax_w = None;
        warm = node.relax_w; warm_tainted = false };
    ]
  end
  else if !best_dim >= 0 then begin
    let j = !best_dim in
    let at = Option.map (fun wi -> wi.point.(j)) node.relax_w in
    match Fx_interval.split ?at node.wbox.(j) with
    | None -> []
    | Some (lo, hi) ->
        let left = copy_box () and right = copy_box () in
        left.(j) <- lo;
        right.(j) <- hi;
        [
          { node with wbox = left; relax_w = None; warm = node.relax_w;
            warm_tainted = false };
          { node with wbox = right; relax_w = None; warm = node.relax_w;
            warm_tainted = false };
        ]
  end
  else []

(* Retry attempt [k >= 1] of a failed relaxation: perturb the barrier
   start weight and loosen the tolerances by a decade per attempt —
   enough to step around a conditioning cliff while keeping the bound
   certified (a looser gap only weakens the bound, never unsounds it). *)
let jittered_config cfg k =
  let s = float_of_int k in
  let decade = 10.0 ** s in
  let sp = cfg.socp_params in
  {
    cfg with
    socp_params =
      {
        sp with
        Socp.tau0 = sp.Socp.tau0 *. (1.0 +. (0.37 *. s));
        gap_tol = sp.Socp.gap_tol *. decade;
        newton =
          { sp.Socp.newton with
            Newton.tol = sp.Socp.newton.Newton.tol *. decade };
      };
  }

let solve ?(config = default_config) ?interrupt pb =
  (* Monotonic: [train_seconds] must be immune to NTP steps mid-run. *)
  let started = Obs.Clock.now () in
  (* The suffix versions the snapshot semantics: [+warm2] covers the
     marshalled node shape (nodes carry [warm_info], not a bare point);
     [+cert1] covers certified pruning — frontier keys written by a
     pre-certificate build were computed by the trusting formula, so
     such snapshots must be rejected at load (fingerprint mismatch)
     rather than silently resumed as if their bounds were verified.
     (Same-schema snapshots merely {e stripped} of the cert counters
     still load; {!Bnb} then raises the sticky [counters_reset] marker
     and clears [certified_sound].) *)
  let fingerprint = Ldafp_problem.fingerprint pb ^ "+warm2+cert1" in
  (* A requested resume with no file on disk degrades to a fresh run (the
     natural first iteration of a kill/resume loop); an existing file
     that fails validation raises [Checkpoint.Corrupt] — silently
     retraining over a mismatched checkpoint would hide data drift. *)
  let restored =
    match config.checkpoint with
    | Some spec when spec.resume && Sys.file_exists spec.path ->
        Log.info (fun m -> m "resuming from checkpoint %s" spec.path);
        Some (Checkpoint.load ~expect_fingerprint:fingerprint ~path:spec.path ())
    | _ -> None
  in
  let seed =
    if Option.is_some restored || not config.seed_incumbent then None
    else
      Ldafp_heuristics.seed_incumbent ~steps:config.sweep_steps
        ~max_rounds:(max 4 config.polish_rounds) pb
  in
  let seed_cost = Option.map snd seed in
  Log.debug (fun m ->
      m "%a; seed cost: %a" Ldafp_problem.pp_summary pb
        Fmt.(option ~none:(any "none") float)
        seed_cost);
  let root =
    {
      wbox = Array.copy pb.Ldafp_problem.elem_box;
      trange = pb.Ldafp_problem.t_root;
      root_t_width = Interval.width pb.Ldafp_problem.t_root;
      relax_w = None;
      warm = None;
      warm_tainted = false;
    }
  in
  (* Wrap the seed into the oracle: the root's bound info carries it as a
     candidate so the B&B driver starts with the incumbent installed.  The
     [incumbent] Atomic mirrors the driver's incumbent for the secant
     test; Atomics (exchange for the one-shot seed, CAS-min for the
     mirror) keep the oracle callable from several worker domains. *)
  let first = Atomic.make seed in
  let incumbent =
    Atomic.make
      (match restored with
      | Some state -> (
          match state.Checkpoint.incumbent with
          | Some (_, c) -> c
          | None -> Float.infinity)
      | None -> (
          match seed with Some (_, c) -> c | None -> Float.infinity))
  in
  let note_candidate = function
    | Some (_, c) ->
        let rec improve () =
          let current = Atomic.get incumbent in
          if c < current && not (Atomic.compare_and_set incumbent current c)
          then improve ()
        in
        improve ()
    | None -> ()
  in
  let with_seed = function
    | None -> (
        (* Even a pruned root must surface the seed incumbent. *)
        match Atomic.exchange first None with
        | Some _ as cand ->
            Some { Bnb.lower = Float.infinity; candidate = cand }
        | None -> None)
    | Some info ->
        let info =
          match Atomic.exchange first None with
          | Some _ as cand ->
              { info with Bnb.candidate = better cand info.Bnb.candidate }
          | None -> info
        in
        note_candidate info.Bnb.candidate;
        Some info
  in
  let counters = Bnb.oracle_counters () in
  (* Running trusting-mode is a conscious, recorded choice: the result's
     [certified_sound] flag (and every checkpoint in the chain) says so. *)
  if not config.certify then Bnb.mark_uncertified counters;
  let oracle =
    {
      Bnb.bound =
        (fun node -> with_seed (bound_node config pb incumbent counters node));
      branch = (fun node -> branch_node config pb node);
    }
  in
  let oracle =
    match config.inject_faults with
    | None -> oracle
    | Some inj -> fst (Fault_inject.wrap inj oracle)
  in
  let faults =
    {
      Bnb.policy = config.fault_policy;
      retry_bound =
        Some
          (fun ~attempt node ->
            (* The previous attempt failed mid-solve: any cached point on
               the node is tainted — never warm-start a retry from it. *)
            if node.warm <> None then node.warm_tainted <- true;
            node.warm <- None;
            node.relax_w <- None;
            with_seed
              (bound_node (jittered_config config attempt) pb incumbent
                 counters node));
      fallback_bound =
        Some
          (fun node ->
            Ldafp_problem.interval_lower_bound pb ~wbox:node.wbox
              ~trange:node.trange);
    }
  in
  let checkpointing =
    Option.map
      (fun spec ->
        Bnb.checkpointing ~every_nodes:spec.every_nodes ~fingerprint spec.path)
      config.checkpoint
  in
  (* Pure and O(1): counts stolen nodes that migrate with warm state. *)
  let carries_warm node = node.warm <> None in
  let result =
    match restored with
    | Some state ->
        Bnb.resume ~params:config.bnb_params ~faults ?checkpointing ?interrupt
          ~counters ?progress:config.progress ~carries_warm oracle state
    | None ->
        Bnb.minimize ~params:config.bnb_params ~faults ?checkpointing
          ?interrupt ~counters ?progress:config.progress ~carries_warm oracle
          root
  in
  let train_seconds = Obs.Clock.now () -. started in
  match result.Bnb.best with
  | None -> None
  | Some (w, cost) ->
      Some
        {
          w;
          cost;
          diagnostics =
            {
              nodes = result.Bnb.nodes_explored;
              bound = result.Bnb.bound;
              gap = result.Bnb.gap;
              stop_reason = result.Bnb.stop_reason;
              seed_cost;
              train_seconds;
              search = result.Bnb.stats;
            };
        }
