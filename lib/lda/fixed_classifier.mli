(** The on-chip fixed-point classifier (inference datapath).

    Holds everything the ASIC would hold: the quantised weight vector, the
    quantised threshold, and the per-feature shift exponents of the input
    scaler.  [predict] reproduces the hardware bit-for-bit: features are
    shifted and saturated into [QK.F] (the ADC/front-end), the projection
    is a wrapping multiply-accumulate in the same format, and the class is
    the sign of the comparison against the threshold (eq. 12). *)

type t = private {
  w : Fixedpoint.Fx_vector.t;
  threshold : Fixedpoint.Fx.t;
  scaling : Scaling.t;
  polarity : bool;
      (** [true]: class A when [y >= θ] (the usual case, projected μ_A
          above μ_B); [false]: comparator inverted.  One bit of hardware. *)
}

val create :
  ?polarity:bool ->
  w:Fixedpoint.Fx_vector.t ->
  threshold:Fixedpoint.Fx.t ->
  scaling:Scaling.t ->
  unit ->
  t
(** [polarity] defaults to [true].
    @raise Invalid_argument on format or dimension mismatch. *)

val of_weights :
  ?polarity:bool ->
  fmt:Fixedpoint.Qformat.t ->
  scaling:Scaling.t ->
  weights:Linalg.Vec.t ->
  threshold:float ->
  unit ->
  t
(** Quantise float weights (wrapping — callers are responsible for having
    kept them in range) and threshold (saturating). *)

val format : t -> Fixedpoint.Qformat.t
val n_features : t -> int
val weights : t -> Linalg.Vec.t
(** The quantised weights as reals (on the grid). *)

val threshold_value : t -> float

val quantize_input : t -> Linalg.Vec.t -> Fixedpoint.Fx_vector.t
(** Scale a raw feature vector and saturate it into the classifier format
    — the front-end conversion. *)

val project : t -> Linalg.Vec.t -> Fixedpoint.Fx.t
(** The wrapped MAC output [y = wᵀx] for a raw feature vector. *)

val predict : t -> Linalg.Vec.t -> bool
(** [project x >= threshold]. *)

val predict_quantized : t -> Fixedpoint.Fx_vector.t -> bool
(** Prediction from an already-quantised (scaled) input. *)

val margin : t -> Linalg.Vec.t -> float
(** Signed decision margin toward class A: [(y − θ)] under normal
    polarity, [(θ − y) − ulp] when inverted (so that [margin >= 0] iff
    {!predict} says class A, matching the [>=] vs [<] asymmetry of
    eq. 12).  Computed from the fixed-point datapath output — this is the
    score a threshold-sweeping ROC uses. *)

val pp : Format.formatter -> t -> unit
