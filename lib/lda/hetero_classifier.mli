(** Fixed-point classifier with per-weight word lengths.

    The paper (§3) fixes one format [QK.F] for every operation and notes:
    "In practice, it is possible to further optimize the word length for
    each individual operation. For instance, different elements w_m of
    the weight vector can be assigned with different word lengths.
    However ... the problem of word length optimization should be
    considered as a separate topic for our future research."

    This module implements that datapath: each weight w_m is stored in
    its own [QK_m.F_m]; features and the accumulator stay in one base
    format.  Each multiplier is then only [WL_m × WL_x] — on a serial
    datapath this shows up as narrower operand registers and a smaller
    ROM; on a parallel one as smaller multipliers.  Products are computed
    exactly in raw integer arithmetic and rounded once into the
    accumulator format, which wraps as usual.  See {!Bit_alloc} for the
    algorithm that chooses the per-weight formats. *)

type t = private {
  w_raws : int array;
  w_fmts : Fixedpoint.Qformat.t array;
  acc_fmt : Fixedpoint.Qformat.t;  (** feature + accumulator format *)
  threshold : Fixedpoint.Fx.t;  (** in [acc_fmt] *)
  scaling : Scaling.t;
  polarity : bool;
}

val create :
  ?polarity:bool ->
  acc_fmt:Fixedpoint.Qformat.t ->
  formats:Fixedpoint.Qformat.t array ->
  weights:Linalg.Vec.t ->
  threshold:float ->
  scaling:Scaling.t ->
  unit ->
  t
(** Weights are quantised (saturating) into their per-element formats.
    @raise Invalid_argument on length mismatches. *)

val of_uniform : Fixed_classifier.t -> t
(** Embed a uniform-format classifier (identical behaviour). *)

val n_features : t -> int
val weights : t -> Linalg.Vec.t
val predict : t -> Linalg.Vec.t -> bool
val project : t -> Linalg.Vec.t -> Fixedpoint.Fx.t
(** Wrapped MAC output in the accumulator format. *)

val weight_bits : t -> int array
(** Word length of each stored weight. *)

val total_weight_bits : t -> int
(** ROM size in bits — the paper's storage cost. *)

val multiplier_cost : t -> float
(** Σ_m WL_m × WL_x — array-multiplier partial-product count, the
    dominant datapath power term; compare against
    [M × WL_acc²] for the uniform design. *)

val pp : Format.formatter -> t -> unit
