open Fixedpoint

type report = {
  nominal : float;
  worst : float;
  mean : float;
  evaluated : int;
  exhaustive : bool;
}

let perturbed clf pattern =
  let fmt = Fixed_classifier.format clf in
  let ulp = Qformat.ulp fmt in
  let w = Fixed_classifier.weights clf in
  if Array.length pattern <> Array.length w then
    invalid_arg "Robustness.perturbed: pattern length mismatch";
  let w' =
    Array.mapi
      (fun j x ->
        let step = max (-1) (min 1 pattern.(j)) in
        Qformat.clamp fmt (x +. (float_of_int step *. ulp)))
      w
  in
  Fixed_classifier.of_weights ~polarity:clf.Fixed_classifier.polarity ~fmt
    ~scaling:clf.Fixed_classifier.scaling ~weights:w'
    ~threshold:(Fixed_classifier.threshold_value clf)
    ()

let sweep ?(exhaustive_limit = 8) ?(samples = 200) ?rng clf ds =
  let m = Fixed_classifier.n_features clf in
  let nominal = Eval.error_fixed clf ds in
  let worst = ref nominal and sum = ref 0.0 and count = ref 0 in
  let eval pattern =
    let e = Eval.error_fixed (perturbed clf pattern) ds in
    worst := Float.max !worst e;
    sum := !sum +. e;
    incr count
  in
  let exhaustive = m <= exhaustive_limit in
  if exhaustive then begin
    (* Enumerate all 3^m ternary patterns. *)
    let pattern = Array.make m (-1) in
    let rec go j =
      if j = m then eval pattern
      else
        for s = -1 to 1 do
          pattern.(j) <- s;
          go (j + 1)
        done
    in
    go 0
  end
  else begin
    let rng = match rng with Some r -> r | None -> Stats.Rng.create 0 in
    for _ = 1 to samples do
      eval (Array.init m (fun _ -> Stats.Rng.int rng 3 - 1))
    done
  end;
  {
    nominal;
    worst = !worst;
    mean = (if !count = 0 then nominal else !sum /. float_of_int !count);
    evaluated = !count;
    exhaustive;
  }
