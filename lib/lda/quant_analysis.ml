open Linalg
open Fixedpoint

type report = {
  word_length : int;
  separation : float;
  input_noise_rms : float;
  input_noise_worst : float;
  product_noise_rms : float;
  product_noise_worst : float;
  sqnr : float;
  predicted_extra_error : float;
}

let analyze ~scatter ~fmt w =
  let q = Qformat.ulp fmt in
  let m = float_of_int (Vec.dim w) in
  let d = Stats.Scatter.mean_difference scatter in
  let separation = Float.abs (Vec.dot d w) in
  let input_noise_rms = Vec.norm2 w *. q /. sqrt 12.0 in
  let input_noise_worst = Vec.norm1 w *. q /. 2.0 in
  let product_noise_rms = sqrt m *. q /. sqrt 12.0 in
  let product_noise_worst = m *. q /. 2.0 in
  let total_rms =
    sqrt ((input_noise_rms ** 2.0) +. (product_noise_rms ** 2.0))
  in
  let sqnr =
    if total_rms = 0.0 then Float.infinity
    else separation /. (2.0 *. total_rms)
  in
  (* Error added by quantisation: treat the projection as Gaussian with
     the class-conditional std augmented by the quantisation RMS and
     compare the two tail errors at the midpoint threshold. *)
  let (ma, sa), (mb, sb) = Stats.Scatter.projected_stats scatter w in
  let base =
    let thr = 0.5 *. (ma +. mb) in
    let tail mean sigma =
      if sigma <= 0.0 then 0.0
      else Stats.Gaussian.cdf (-.Float.abs (mean -. thr) /. sigma)
    in
    0.5 *. (tail ma sa +. tail mb sb)
  in
  let augmented =
    let thr = 0.5 *. (ma +. mb) in
    let tail mean sigma =
      let sigma = sqrt ((sigma *. sigma) +. (total_rms *. total_rms)) in
      if sigma <= 0.0 then 0.0
      else Stats.Gaussian.cdf (-.Float.abs (mean -. thr) /. sigma)
    in
    0.5 *. (tail ma sa +. tail mb sb)
  in
  {
    word_length = Qformat.word_length fmt;
    separation;
    input_noise_rms;
    input_noise_worst;
    product_noise_rms;
    product_noise_worst;
    sqnr;
    predicted_extra_error = Float.max 0.0 (augmented -. base);
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>quantisation analysis (WL=%d):@,\
    \  separation          %.5g@,\
    \  input noise  rms    %.5g (worst %.5g)@,\
    \  product noise rms   %.5g (worst %.5g)@,\
    \  SQNR                %.3g@,\
    \  predicted extra err %.3f%%@]"
    r.word_length r.separation r.input_noise_rms r.input_noise_worst
    r.product_noise_rms r.product_noise_worst r.sqnr
    (100.0 *. r.predicted_extra_error)
