type point = {
  wl : int;
  classifier : Fixed_classifier.t;
  error : float;
  power : float;
}

type frontier = point list

let sweep ~wls ~policy ~train ~validate ds =
  let wls = List.sort_uniq compare wls in
  List.filter_map
    (fun wl ->
      match policy wl with
      | exception Invalid_argument _ -> None
      | fmt -> (
          match train ~fmt ds with
          | None -> None
          | Some classifier ->
              Some
                {
                  wl;
                  classifier;
                  error = validate classifier;
                  power = Hw.Power_model.quadratic_relative ~word_length:wl;
                }))
    wls

let best_error frontier =
  List.fold_left (fun acc p -> Float.min acc p.error) Float.infinity frontier

let minimal_word_length ?(slack = 0.01) frontier =
  match frontier with
  | [] -> None
  | _ ->
      let target = best_error frontier +. slack in
      List.find_opt (fun p -> p.error <= target) frontier

let cheapest_within ~max_error frontier =
  List.fold_left
    (fun acc p ->
      if p.error > max_error then acc
      else
        match acc with
        | Some best when best.power <= p.power -> acc
        | _ -> Some p)
    None frontier

let word_length_reduction ~baseline ~improved ?slack () =
  match (minimal_word_length ?slack baseline, minimal_word_length ?slack improved)
  with
  | Some b, Some i ->
      Some
        ( b.wl,
          i.wl,
          Hw.Power_model.quadratic_ratio ~from_wl:b.wl ~to_wl:i.wl )
  | _ -> None
