open Linalg
open Fixedpoint

(* Re-optimise the free weights with the fixed block substituted.

   With F the fixed index set (values v) and Z the free set, the cost is
     N(z) / (d_Zᵀz + c)²,  N(z) = zᵀ A z + 2 bᵀ z + e
   where A = S[Z,Z], b = S[Z,F] v, e = vᵀ S[F,F] v, c = d_Fᵀ v.
   For a fixed denominator value s = d_Zᵀz the constrained minimiser of N
   is affine in s (Lagrange), so the cost is a ratio of a quadratic in s
   over (s + c)², whose stationary point has a closed form.  We evaluate
   the quadratic numerically at three points instead of expanding the
   algebra. *)

type reopt = { z : Vec.t; cost : float }

let reoptimize_free pb ~fixed =
  let sw = pb.Ldafp_problem.sw and d = pb.Ldafp_problem.d in
  let m = Vec.dim d in
  let free = ref [] in
  for j = m - 1 downto 0 do
    if fixed.(j) = None then free := j :: !free
  done;
  let free = Array.of_list !free in
  let nf = Array.length free in
  let v j = match fixed.(j) with Some x -> x | None -> 0.0 in
  let c =
    let s = ref 0.0 in
    for j = 0 to m - 1 do
      if fixed.(j) <> None then s := !s +. (d.(j) *. v j)
    done;
    !s
  in
  if nf = 0 then begin
    let w = Array.init m v in
    { z = [||]; cost = Ldafp_problem.cost pb w }
  end
  else begin
    let a = Mat.init nf nf (fun i j -> sw.(free.(i)).(free.(j))) in
    let a = Mat.add_scaled_identity (1e-10 *. Float.max (Mat.max_abs a) 1e-30) a in
    let b =
      Array.init nf (fun i ->
          let s = ref 0.0 in
          for j = 0 to m - 1 do
            if fixed.(j) <> None then s := !s +. (sw.(free.(i)).(j) *. v j)
          done;
          !s)
    in
    let e =
      let s = ref 0.0 in
      for i = 0 to m - 1 do
        if fixed.(i) <> None then
          for j = 0 to m - 1 do
            if fixed.(j) <> None then s := !s +. (v i *. sw.(i).(j) *. v j)
          done
      done;
      !s
    in
    let dz = Array.map (fun j -> d.(j)) free in
    let l, _ = Cholesky.factor_jittered a in
    let p = Cholesky.solve_factored l dz in
    let q = Cholesky.solve_factored l b in
    let dp = Vec.dot dz p and dq = Vec.dot dz q in
    (* dp = d_Zᵀ A⁻¹ d_Z > 0 because A is positive definite (ridged);
       guard against pathological underflow anyway. *)
    let dp = if Float.abs dp < 1e-300 then 1e-300 else dp in
    let z_of_s s =
      let alpha = (s +. dq) /. dp in
      Array.init nf (fun i -> (alpha *. p.(i)) -. q.(i))
    in
    let n_of_s s =
      let z = z_of_s s in
      Mat.quadratic_form a z +. (2.0 *. Vec.dot b z) +. e
    in
    (* Fit N(s) = As² + Bs + C from three evaluations. *)
    let n0 = n_of_s 0.0 and n1 = n_of_s 1.0 and n_1 = n_of_s (-1.0) in
    let qa = ((n1 +. n_1) /. 2.0) -. n0 in
    let qb = (n1 -. n_1) /. 2.0 in
    let qc = n0 in
    (* Stationary point of (As²+Bs+C)/(s+c)²: s* = (2C − Bc)/(2Ac − B). *)
    let denom = (2.0 *. qa *. c) -. qb in
    let candidates =
      if Float.abs denom > 1e-12 then
        [ ((2.0 *. qc) -. (qb *. c)) /. denom ]
      else []
    in
    (* Fallback probes in case the stationary point is degenerate or the
       denominator vanishes at it. *)
    let candidates = candidates @ [ 1.0; -1.0; 2.0 *. Float.abs c +. 1.0 ] in
    let best = ref None in
    List.iter
      (fun s ->
        let t = s +. c in
        if Float.abs t > 1e-12 then begin
          let cost = n_of_s s /. (t *. t) in
          if Float.is_finite cost && cost >= 0.0 then
            match !best with
            | Some (_, bc) when bc <= cost -> ()
            | _ -> Some (s, cost) |> fun r -> best := r
        end)
      candidates;
    match !best with
    | None -> { z = z_of_s 1.0; cost = Float.infinity }
    | Some (s, cost) -> { z = z_of_s s; cost }
  end

(* Scatter the free-block solution back into a full-length vector. *)
let assemble ~fixed z =
  let m = Array.length fixed in
  let zi = ref 0 in
  Array.init m (fun j ->
      match fixed.(j) with
      | Some v -> v
      | None ->
          let v = z.(!zi) in
          incr zi;
          v)

let train pb =
  let m = Ldafp_problem.dim pb in
  let fmt = pb.Ldafp_problem.fmt in
  let model = Lda.train_scatter pb.Ldafp_problem.scatter in
  let dir = Lda.weights model in
  let n = Vec.norm_inf dir in
  if n = 0.0 then None
  else begin
    (* Initial continuous point: decent grid utilisation with headroom. *)
    let scale = 0.75 *. Qformat.max_value fmt /. n in
    let current = ref (Vec.scale scale dir) in
    let fixed : float option array = Array.make m None in
    let grid_candidates j x =
      let iv = Ldafp_problem.elem_interval pb j in
      let lo = Fx_interval.clamp_value iv (Qformat.floor_to_grid fmt x) in
      let hi = Fx_interval.clamp_value iv (Qformat.ceil_to_grid fmt x) in
      if lo = hi then [ lo ] else [ lo; hi ]
    in
    (* Fix weights one at a time, largest magnitude first. *)
    for _ = 1 to m do
      (* choose the free index with largest |current| *)
      let pick = ref (-1) in
      Array.iteri
        (fun j v ->
          if fixed.(j) = None then
            if !pick < 0 || Float.abs v > Float.abs !current.(!pick) then
              pick := j)
        !current;
      let j = !pick in
      let best : (float * reopt) option ref = ref None in
      List.iter
        (fun g ->
          fixed.(j) <- Some g;
          let r = reoptimize_free pb ~fixed in
          (match !best with
          | Some (_, { cost; _ }) when cost <= r.cost -> ()
          | _ -> best := Some (g, r));
          fixed.(j) <- None)
        (grid_candidates j !current.(j));
      match !best with
      | None -> fixed.(j) <- Some 0.0
      | Some (g, r) ->
          fixed.(j) <- Some g;
          current := assemble ~fixed r.z
    done;
    let w = Array.map (function Some v -> v | None -> 0.0) fixed in
    if Ldafp_problem.feasible pb w then begin
      let cost = Ldafp_problem.cost pb w in
      if Float.is_finite cost then Some (w, cost) else None
    end
    else None
  end

let train_classifier ~fmt ds =
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  match train pb with
  | None -> None
  | Some (w, _) -> Some (Pipeline.classifier_of_weights prep w)
