open Linalg

type t = { exponents : int array }

let fit ?(margin_sigmas = 4.0) ?(target_bound = 1.0) features =
  if Mat.rows features = 0 then invalid_arg "Scaling.fit: empty features";
  if target_bound <= 0.0 then invalid_arg "Scaling.fit: target_bound <= 0";
  let _, target_e = Float.frexp target_bound in
  (* target_bound lies in [2^(target_e - 1), 2^target_e). *)
  let mu = Stats.Moments.mean features in
  let sd = Stats.Moments.std_devs features in
  let lo = Stats.Moments.column_min features in
  let hi = Stats.Moments.column_max features in
  let exponents =
    Array.init (Mat.cols features) (fun j ->
        let stat = Float.abs mu.(j) +. (margin_sigmas *. sd.(j)) in
        let obs = Float.max (Float.abs lo.(j)) (Float.abs hi.(j)) in
        let bound = Float.max stat obs in
        if bound <= 0.0 then 0
        else
          (* Smallest e with bound / 2^e < 2^(target_e - 1) <= target_bound,
             via frexp to dodge log rounding at exact powers. *)
          let _, e = Float.frexp bound in
          e - (target_e - 1))
  in
  { exponents }

let identity n = { exponents = Array.make n 0 }
let of_exponents exponents = { exponents = Array.copy exponents }
let dim t = Array.length t.exponents

let check_dim name t v =
  if Array.length v <> dim t then invalid_arg (name ^ ": dimension mismatch")

let apply_vec t x =
  check_dim "Scaling.apply_vec" t x;
  Array.mapi (fun j v -> ldexp v (-t.exponents.(j))) x

let apply_mat t m = Array.map (apply_vec t) m

let unapply_vec t x =
  check_dim "Scaling.unapply_vec" t x;
  Array.mapi (fun j v -> ldexp v t.exponents.(j)) x

let unscale_weights t w =
  check_dim "Scaling.unscale_weights" t w;
  Array.mapi (fun j v -> ldexp v (-t.exponents.(j))) w

let exponent t j = t.exponents.(j)
let equal a b = a.exponents = b.exponents

let pp ppf t =
  Format.fprintf ppf "scale[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       Format.pp_print_int)
    (Array.to_list t.exponents)
