(** Word-length selection — the design-space search the paper motivates
    (§5: "LDA-FP successfully reduces the required word length by up to
    3×") and defers ("the problem of word length optimization should be
    considered as a separate topic for our future research").

    Classification error is {e not} monotone in word length (the paper
    notes this under Table 2), so the search is an explicit sweep, not a
    bisection.  Each word length is trained with a caller-supplied trainer
    and scored with a caller-supplied validation function; the frontier
    then answers the two design questions:

    - {!minimal_word_length}: smallest word length whose validation error
      is within [slack] of the best achieved anywhere in the sweep;
    - {!cheapest_within}: the point minimising power subject to an
      absolute error budget. *)

type point = {
  wl : int;
  classifier : Fixed_classifier.t;
  error : float;  (** validation error from the caller's scorer *)
  power : float;  (** relative power, quadratic model *)
}

type frontier = point list
(** Ascending in word length; word lengths whose training failed (no
    feasible classifier) are absent. *)

val sweep :
  wls:int list ->
  policy:Fixedpoint.Format_policy.t ->
  train:(fmt:Fixedpoint.Qformat.t -> Datasets.Dataset.t -> Fixed_classifier.t option) ->
  validate:(Fixed_classifier.t -> float) ->
  Datasets.Dataset.t ->
  frontier

val minimal_word_length : ?slack:float -> frontier -> point option
(** Smallest word length with [error <= best_error + slack]
    (default slack 0.01). [None] on an empty frontier. *)

val cheapest_within : max_error:float -> frontier -> point option
(** Lowest-power point with [error <= max_error]. *)

val word_length_reduction :
  baseline:frontier -> improved:frontier -> ?slack:float -> unit ->
  (int * int * float) option
(** [(baseline_wl, improved_wl, power_ratio)] comparing the minimal word
    lengths of two frontiers at equal accuracy slack — the computation
    behind the paper's "3× word length = 9× power" headline. *)
