(** Conventional linear discriminant analysis (paper §2).

    Training solves the normal equations [S_W w = μ_A − μ_B] (eq. 11) with
    a small relative ridge for rank-deficient scatters, normalises [w] to
    unit Euclidean length, and places the threshold midway between the
    projected class means (eq. 12).  Class A is predicted when
    [wᵀx − θ >= 0]; the solved [w] always projects μ_A above μ_B because
    [ (μ_A−μ_B)ᵀ S_W⁻¹ (μ_A−μ_B) > 0 ]. *)

type model = private {
  w : Linalg.Vec.t;  (** unit-norm weight vector *)
  threshold : float;  (** θ = wᵀ(μ_A + μ_B)/2 *)
}

val train_scatter : ?ridge:float -> Stats.Scatter.t -> model
(** [ridge] is relative to [max_abs S_W] (default [1e-10]). *)

val train : ?ridge:float -> Linalg.Mat.t -> Linalg.Mat.t -> model
(** [train a b] from per-class feature matrices. *)

val decision_value : model -> Linalg.Vec.t -> float
(** [wᵀx − θ]. *)

val predict : model -> Linalg.Vec.t -> bool
val fisher_cost : Stats.Scatter.t -> model -> float
(** The LDA-FP objective (eq. 10) evaluated at the model's direction. *)

val weights : model -> Linalg.Vec.t
val pp : Format.formatter -> model -> unit
