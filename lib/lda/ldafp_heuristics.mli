(** Incumbent-finding heuristics for the LDA-FP branch-and-bound.

    The paper notes (§4) that its implementation "includes a number of
    additional heuristics to speed up the search process" without listing
    them.  Ours are documented here; all only produce {e feasible}
    candidates (checked exactly), so they tighten the upper bound and
    never compromise the B&B's correctness.

    - H1 {!scaled_rounding_sweep}: scan scalings λ of a continuous
      direction (normally the float-LDA solution), round [λ·dir] onto the
      grid, keep the best feasible point.  Quantisation is scale-sensitive
      even though the exact cost is not, so different λ reach genuinely
      different grid points.
    - H2 {!coordinate_polish}: first-improvement local search moving one
      element by ±1 ulp at a time.
    - {!round_into}: plain nearest-grid rounding clamped into a box, used
      on relaxation solutions. *)

val round_into :
  Ldafp_problem.t ->
  ?wbox:Fixedpoint.Fx_interval.t array ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** Nearest grid point componentwise, clamped into [wbox] (default: the
    problem's element boxes). The result is on-grid but not necessarily
    feasible for (20). *)

val evaluate : Ldafp_problem.t -> Linalg.Vec.t -> (Linalg.Vec.t * float) option
(** [Some (w, cost)] when [w] is exactly feasible with finite cost. *)

val scaled_rounding_sweep :
  ?steps:int ->
  Ldafp_problem.t ->
  Linalg.Vec.t ->
  (Linalg.Vec.t * float) option
(** H1 over the direction (L∞-normalised internally); [steps] scalings
    (default 200) spread geometrically from one ulp up to the format
    maximum. Returns the best feasible rounded point. *)

val coordinate_polish :
  ?max_rounds:int ->
  Ldafp_problem.t ->
  Linalg.Vec.t ->
  Linalg.Vec.t * float
(** H2 from a feasible start; returns a point at least as good.
    [max_rounds] (default 6) full passes over the coordinates.
    @raise Invalid_argument if the start is infeasible. *)

val seed_incumbent :
  ?steps:int ->
  ?max_rounds:int ->
  Ldafp_problem.t ->
  (Linalg.Vec.t * float) option
(** The full seeding pipeline: float LDA on the problem's scatter, H1
    sweep, then H2 polish. *)
