(** Perturbation analysis of fixed-point decision boundaries — the
    quantitative form of the paper's Figure 2.

    A classifier trained for [QK.F] lives on a grid; implementation
    non-idealities (late re-rounding, datapath truncation differences,
    or simply the next design iteration's rounding mode) perturb each
    weight by about one ulp.  A robust boundary keeps its error under
    every such perturbation; LDA-FP optimises for exactly this regime.

    [sweep] enumerates all [3^M] one-ulp perturbation patterns for small
    [M] and falls back to random sampling beyond [exhaustive_limit]. *)

type report = {
  nominal : float;  (** error of the unperturbed classifier *)
  worst : float;
  mean : float;  (** average over the evaluated perturbations *)
  evaluated : int;
  exhaustive : bool;  (** whether all 3^M patterns were enumerated *)
}

val sweep :
  ?exhaustive_limit:int ->
  ?samples:int ->
  ?rng:Stats.Rng.t ->
  Fixed_classifier.t ->
  Datasets.Dataset.t ->
  report
(** [exhaustive_limit] (default 8) is the largest [M] enumerated fully;
    above it [samples] (default 200) random ±1-ulp patterns are drawn
    using [rng] (default seed 0).  Perturbed weights are clamped to the
    representable range. *)

val perturbed : Fixed_classifier.t -> int array -> Fixed_classifier.t
(** Apply a pattern of per-weight ulp steps (each in {-1, 0, +1} —
    values outside are clamped); the threshold and polarity are kept. *)
