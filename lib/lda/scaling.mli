(** Per-feature power-of-two scaling into [[-1, 1)].

    Paper §3: "all features in x can be carefully scaled to avoid
    overflow ... before the training data is used to learn the
    classifier."  Powers of two are free in hardware (bit shifts), so each
    feature is divided by [2^e] with [e] chosen from training statistics:
    the smallest exponent such that [max(|observed|, |mean| + kσ)] fits
    below 1.  Exponents may be negative — a feature much smaller than 1 is
    scaled {e up} to use the word's resolution. *)

type t = private { exponents : int array }

val fit : ?margin_sigmas:float -> ?target_bound:float -> Linalg.Mat.t -> t
(** Fit on training features (rows = trials); [margin_sigmas] (default 4)
    is the statistical headroom [k] above.  [target_bound] (default 1) is
    the open upper bound the scaled magnitudes must stay below: pass the
    format's [2^(K-1)] so features use the full representable range rather
    than only [[-1, 1)] — with weights and features sharing one [QK.F]
    format, head-room left unused is resolution thrown away. *)

val identity : int -> t
(** No-op scaling for [n] features. *)

val of_exponents : int array -> t
(** Rebuild a scaling from stored exponents (model deserialisation). *)

val dim : t -> int
val apply_vec : t -> Linalg.Vec.t -> Linalg.Vec.t
val apply_mat : t -> Linalg.Mat.t -> Linalg.Mat.t
val unapply_vec : t -> Linalg.Vec.t -> Linalg.Vec.t

val unscale_weights : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Map a weight vector learned on scaled features back to one acting on
    raw features ([w_raw_m = w_scaled_m * 2^(-e_m)]) — scaling features
    down by [2^e] is equivalent to scaling the weight down, since only the
    product [w x] matters. *)

val exponent : t -> int -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
