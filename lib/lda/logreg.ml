open Linalg
open Fixedpoint

type model = { w : Vec.t; bias : float; lambda : float }

(* Numerically safe log(1 + exp t). *)
let log1p_exp t = if t > 35.0 then t else Float.log1p (exp t)
let sigmoid t = if t >= 0.0 then 1.0 /. (1.0 +. exp (-.t)) else
    let e = exp t in e /. (1.0 +. e)

let loss_oracle ~lambda features labels : Optim.Newton.oracle =
  let n = Mat.rows features in
  let m = Mat.cols features in
  fun theta ->
    if Vec.dim theta <> m + 1 then
      invalid_arg "Logreg.loss_oracle: theta dimension";
    let w = Array.sub theta 0 m and b = theta.(m) in
    let value = ref (0.5 *. lambda *. Vec.dot theta theta) in
    let grad = Vec.scale lambda theta in
    let hess = Mat.scale lambda (Mat.identity (m + 1)) in
    for i = 0 to n - 1 do
      let x = features.(i) in
      let y = if labels.(i) then 1.0 else -1.0 in
      let margin = y *. (Vec.dot w x +. b) in
      value := !value +. log1p_exp (-.margin);
      (* d/dθ: −y σ(−margin) x̃ ; x̃ = (x, 1) *)
      let s = sigmoid (-.margin) in
      let coeff = -.y *. s in
      for j = 0 to m - 1 do
        grad.(j) <- grad.(j) +. (coeff *. x.(j))
      done;
      grad.(m) <- grad.(m) +. coeff;
      (* Hessian: σ(1−σ) x̃ x̃ᵀ *)
      let hcoeff = s *. (1.0 -. s) in
      if hcoeff > 0.0 then begin
        for j = 0 to m - 1 do
          let hj = hcoeff *. x.(j) in
          if hj <> 0.0 then begin
            for k = 0 to m - 1 do
              hess.(j).(k) <- hess.(j).(k) +. (hj *. x.(k))
            done;
            hess.(j).(m) <- hess.(j).(m) +. hj
          end
        done;
        for k = 0 to m - 1 do
          hess.(m).(k) <- hess.(m).(k) +. (hcoeff *. x.(k))
        done;
        hess.(m).(m) <- hess.(m).(m) +. hcoeff
      end
    done;
    if Float.is_nan !value then None else Some (!value, grad, hess)

let train ?(lambda = 1e-3) ?(max_iter = 100) a b =
  if Mat.rows a = 0 || Mat.rows b = 0 then invalid_arg "Logreg.train: empty class";
  if Mat.cols a <> Mat.cols b then
    invalid_arg "Logreg.train: feature count mismatch";
  let features = Array.append a b in
  let labels =
    Array.init (Mat.rows features) (fun i -> i < Mat.rows a)
  in
  let lambda_total = lambda *. float_of_int (Mat.rows features) in
  let oracle = loss_oracle ~lambda:lambda_total features labels in
  let m = Mat.cols features in
  let result =
    Optim.Newton.minimize
      ~params:{ Optim.Newton.default_params with max_iter }
      oracle (Vec.zeros (m + 1))
  in
  let theta = result.Optim.Newton.x in
  { w = Array.sub theta 0 m; bias = theta.(m); lambda }

let decision_value model x = Vec.dot model.w x +. model.bias
let predict model x = decision_value model x >= 0.0

let loss model a b =
  let n = Mat.rows a + Mat.rows b in
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. log1p_exp (-.decision_value model x)) a;
  Array.iter (fun x -> acc := !acc +. log1p_exp (decision_value model x)) b;
  (!acc /. float_of_int n)
  +. (0.5 *. model.lambda *. Vec.dot model.w model.w)

let quantize_model ~fmt ~scaling ~scale model =
  (* decision w·x + b >= 0 is invariant under positive scaling; pick the
     scale, round weights (saturating) and threshold −b·scale. *)
  let w = Vec.scale scale model.w in
  let w =
    Array.map (fun x -> Fx.to_float (Fx.of_float ~ov:Rounding.Saturate fmt x)) w
  in
  Fixed_classifier.of_weights ~polarity:true ~fmt ~scaling ~weights:w
    ~threshold:(-.(scale *. model.bias))
    ()

let to_fixed ~fmt ~scaling model =
  let n = Vec.norm2 model.w in
  let scale = if n = 0.0 then 1.0 else 1.0 /. n in
  quantize_model ~fmt ~scaling ~scale model

let to_fixed_swept ~fmt ~scaling ~validate model =
  let n = Vec.norm_inf model.w in
  if n = 0.0 then to_fixed ~fmt ~scaling model
  else begin
    let lo = Qformat.ulp fmt /. n in
    let hi = Qformat.max_value fmt /. n in
    let steps = 100 in
    let ratio = (hi /. lo) ** (1.0 /. float_of_int (steps - 1)) in
    let best = ref None in
    let scale = ref lo in
    for _ = 1 to steps do
      let clf = quantize_model ~fmt ~scaling ~scale:!scale model in
      let score = validate clf in
      (match !best with
      | Some (_, s) when s <= score -> ()
      | _ -> best := Some (clf, score));
      scale := !scale *. ratio
    done;
    match !best with Some (clf, _) -> clf | None -> to_fixed ~fmt ~scaling model
  end

let train_pipeline ?lambda ~fmt ~swept ds =
  let scaling =
    Scaling.fit
      ~target_bound:(-.Qformat.min_value fmt)
      ds.Datasets.Dataset.features
  in
  let a, b = Datasets.Dataset.class_split ds in
  let model =
    train ?lambda (Scaling.apply_mat scaling a) (Scaling.apply_mat scaling b)
  in
  if swept then
    (* The classifier scales raw features itself, so validation runs on
       the raw dataset. *)
    to_fixed_swept ~fmt ~scaling
      ~validate:(fun clf -> Eval.error_fixed clf ds)
      model
  else to_fixed ~fmt ~scaling model
