open Datasets

let confusion_generic predict ds =
  let acc = ref Stats.Confusion.empty in
  Array.iteri
    (fun i row ->
      acc :=
        Stats.Confusion.add !acc ~truth:ds.Dataset.labels.(i)
          ~predicted:(predict row))
    ds.Dataset.features;
  !acc

let confusion_fixed clf ds = confusion_generic (Fixed_classifier.predict clf) ds
let error_fixed clf ds = Stats.Confusion.error_rate (confusion_fixed clf ds)

let confusion_float model ~scaling ds =
  confusion_generic (fun x -> Lda.predict model (Scaling.apply_vec scaling x)) ds

let error_float model ~scaling ds =
  Stats.Confusion.error_rate (confusion_float model ~scaling ds)

let kfold ~rng ~k ~train ~predict ds =
  let folds = Dataset.stratified_folds rng ~k ds in
  let acc = ref (Some Stats.Confusion.empty) in
  Array.iter
    (fun (train_set, test_set) ->
      match !acc with
      | None -> ()
      | Some confusion -> (
          match train train_set with
          | None -> acc := None
          | Some model ->
              let c = confusion_generic (predict model) test_set in
              acc := Some (Stats.Confusion.merge confusion c)))
    folds;
  !acc

let kfold_error_fixed ~rng ~k ~train ds =
  Option.map Stats.Confusion.error_rate
    (kfold ~rng ~k ~train ~predict:Fixed_classifier.predict ds)

type roc = { points : (float * float) array; auc : float }

let roc_of_scores ~scores ~labels =
  let n = Array.length scores in
  if n = 0 then invalid_arg "Eval.roc_of_scores: empty";
  if Array.length labels <> n then
    invalid_arg "Eval.roc_of_scores: length mismatch";
  let pos = Array.fold_left (fun a l -> if l then a + 1 else a) 0 labels in
  let neg = n - pos in
  if pos = 0 || neg = 0 then
    invalid_arg "Eval.roc_of_scores: needs both classes";
  (* Sort by descending score; sweep the threshold through the sorted
     list, grouping ties so tied scores move the point diagonally. *)
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare scores.(j) scores.(i)) idx;
  let points = ref [ (0.0, 0.0) ] in
  let tp = ref 0 and fp = ref 0 in
  let i = ref 0 in
  while !i < n do
    let s = scores.(idx.(!i)) in
    while !i < n && scores.(idx.(!i)) = s do
      if labels.(idx.(!i)) then incr tp else incr fp;
      incr i
    done;
    points :=
      (float_of_int !fp /. float_of_int neg, float_of_int !tp /. float_of_int pos)
      :: !points
  done;
  let points = Array.of_list (List.rev !points) in
  let auc = ref 0.0 in
  for j = 1 to Array.length points - 1 do
    let x0, y0 = points.(j - 1) and x1, y1 = points.(j) in
    auc := !auc +. ((x1 -. x0) *. (y0 +. y1) /. 2.0)
  done;
  { points; auc = !auc }

let roc_fixed clf ds =
  let scores =
    Array.map (fun row -> Fixed_classifier.margin clf row) ds.Dataset.features
  in
  roc_of_scores ~scores ~labels:ds.Dataset.labels
