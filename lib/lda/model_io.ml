open Fixedpoint

exception Parse_error of string

let to_string clf =
  let fmt = Fixed_classifier.format clf in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ldafp-model v1\n";
  Buffer.add_string buf (Printf.sprintf "format %s\n" (Qformat.to_string fmt));
  Buffer.add_string buf
    (Printf.sprintf "polarity %d\n"
       (if clf.Fixed_classifier.polarity then 1 else 0));
  let scaling = clf.Fixed_classifier.scaling in
  Buffer.add_string buf "exponents";
  for j = 0 to Scaling.dim scaling - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Scaling.exponent scaling j))
  done;
  Buffer.add_string buf "\nweights";
  let w = clf.Fixed_classifier.w in
  for i = 0 to Fx_vector.length w - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Fx.raw (Fx_vector.get w i)))
  done;
  Buffer.add_string buf
    (Printf.sprintf "\nthreshold %d\n"
       (Fx.raw clf.Fixed_classifier.threshold));
  Buffer.contents buf

let parse_format s =
  try Scanf.sscanf s "Q%d.%d" (fun k f -> Qformat.make ~k ~f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    raise (Parse_error (Printf.sprintf "bad format %S" s))

let ints_of_words words =
  List.map
    (fun w ->
      match int_of_string_opt w with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "bad integer %S" w)))
    words

let of_string text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let table = Hashtbl.create 8 in
  (match lines with
  | magic :: rest ->
      if String.trim magic <> "ldafp-model v1" then
        raise (Parse_error "missing magic header 'ldafp-model v1'");
      List.iter
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | key :: values -> Hashtbl.replace table key values
          | [] -> ())
        rest
  | [] -> raise (Parse_error "empty model file"));
  let get key =
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" key))
  in
  let fmt =
    match get "format" with
    | [ s ] -> parse_format s
    | _ -> raise (Parse_error "bad format line")
  in
  let polarity =
    match get "polarity" with
    | [ "1" ] -> true
    | [ "0" ] -> false
    | _ -> raise (Parse_error "bad polarity line")
  in
  let exponents = ints_of_words (get "exponents") in
  let weights = ints_of_words (get "weights") in
  if List.length exponents <> List.length weights then
    raise (Parse_error "exponents/weights length mismatch");
  let threshold =
    match ints_of_words (get "threshold") with
    | [ v ] -> v
    | _ -> raise (Parse_error "bad threshold line")
  in
  (* Rebuild the scaling through a synthetic fit: Scaling is private, so
     reconstruct by scaling unit features — instead we expose exponents
     via a dedicated constructor below. *)
  let scaling = Scaling.of_exponents (Array.of_list exponents) in
  let w =
    Fx_vector.of_fx
      (Array.of_list (List.map (fun r -> Fx.create fmt r) weights))
  in
  Fixed_classifier.create ~polarity ~w
    ~threshold:(Fx.create fmt threshold)
    ~scaling ()

let save path clf =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string clf))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
