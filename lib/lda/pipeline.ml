open Fixedpoint

type prepared = {
  fmt : Qformat.t;
  scaling : Scaling.t;
  scatter : Stats.Scatter.t;
}

let quantize_matrix ~fmt m =
  Array.map
    (Array.map (fun x ->
         Fx.to_float (Fx.of_float ~ov:Rounding.Saturate fmt x)))
    m

let quantize_dataset ~fmt scaling ds =
  Datasets.Dataset.map_features
    (fun row ->
      Array.map
        (fun x -> Fx.to_float (Fx.of_float ~ov:Rounding.Saturate fmt x))
        (Scaling.apply_vec scaling row))
    ds

let fit_scaling ~fmt ds =
  Scaling.fit
    ~target_bound:(-.Qformat.min_value fmt)
    ds.Datasets.Dataset.features

let prepare ~fmt ds =
  let scaling = fit_scaling ~fmt ds in
  let a, b = Datasets.Dataset.class_split ds in
  let qa = quantize_matrix ~fmt (Scaling.apply_mat scaling a) in
  let qb = quantize_matrix ~fmt (Scaling.apply_mat scaling b) in
  { fmt; scaling; scatter = Stats.Scatter.of_data qa qb }

let train_float ds =
  let scaling = Scaling.fit ds.Datasets.Dataset.features in
  let a, b = Datasets.Dataset.class_split ds in
  let model =
    Lda.train (Scaling.apply_mat scaling a) (Scaling.apply_mat scaling b)
  in
  (model, scaling)

let classifier_of_weights prep w =
  let scatter = prep.scatter in
  let t = Linalg.Vec.dot (Stats.Scatter.mean_difference scatter) w in
  let threshold = Linalg.Vec.dot w (Stats.Scatter.pooled_mean scatter) in
  Fixed_classifier.of_weights ~polarity:(t >= 0.0) ~fmt:prep.fmt
    ~scaling:prep.scaling ~weights:w ~threshold ()

let train_conventional ~fmt ds =
  (* The conventional flow of §5: solve eq. (11) on the scaled
     floating-point training data, normalise, then round both the unit
     weights and the threshold to the grid (saturating — no sane
     implementation would let the weights themselves wrap).  Training on
     unquantised features is what gives the baseline its Table-1
     signature: the delicate noise-cancelling weights are learned exactly
     and then destroyed by rounding. *)
  let scaling = fit_scaling ~fmt ds in
  let a, b = Datasets.Dataset.class_split ds in
  let scatter =
    Stats.Scatter.of_data (Scaling.apply_mat scaling a)
      (Scaling.apply_mat scaling b)
  in
  let model = Lda.train_scatter scatter in
  let w =
    Array.map
      (fun x -> Fx.to_float (Fx.of_float ~ov:Rounding.Saturate fmt x))
      (Lda.weights model)
  in
  let t = Linalg.Vec.dot (Stats.Scatter.mean_difference scatter) w in
  let threshold = Linalg.Vec.dot w (Stats.Scatter.pooled_mean scatter) in
  Fixed_classifier.of_weights ~polarity:(t >= 0.0) ~fmt ~scaling ~weights:w
    ~threshold ()

type ldafp_result = {
  classifier : Fixed_classifier.t;
  outcome : Lda_fp.outcome;
  problem : Ldafp_problem.t;
}

let train_ldafp ?config ?interrupt ?rho ~fmt ds =
  let prep = prepare ~fmt ds in
  let problem = Ldafp_problem.build ?rho ~fmt prep.scatter in
  match Lda_fp.solve ?config ?interrupt problem with
  | None -> None
  | Some outcome ->
      Some
        {
          classifier = classifier_of_weights prep outcome.Lda_fp.w;
          outcome;
          problem;
        }
