(** End-to-end training pipelines (float reference, conventional
    fixed-point baseline, LDA-FP).

    All fixed-point pipelines share the front end of paper §3: fit
    per-feature power-of-two {!Scaling} on the training set, quantise the
    scaled training features into [QK.F] (saturating), and compute the
    class statistics from the {e quantised} data — "the feature vector x
    should be rounded to its fixed-point representation before the
    training data is used to learn the classifier".

    They differ in how the weight vector is obtained:

    - {!train_conventional} — the paper's baseline: solve eq. (11) in
      floating point, normalise to unit length, round each weight to the
      grid (saturating, as any sane implementation would rather than let
      the *weights themselves* wrap);
    - {!train_ldafp} — solve the mixed-integer program (21) with the
      branch-and-bound trainer. *)

type prepared = {
  fmt : Fixedpoint.Qformat.t;
  scaling : Scaling.t;
  scatter : Stats.Scatter.t;  (** statistics of the quantised training data *)
}

val prepare : fmt:Fixedpoint.Qformat.t -> Datasets.Dataset.t -> prepared
(** The shared front end. *)

val quantize_dataset :
  fmt:Fixedpoint.Qformat.t -> Scaling.t -> Datasets.Dataset.t ->
  Datasets.Dataset.t
(** Scale and quantise every feature (saturating); returns a dataset whose
    features are on the grid (useful for inspection and tests). *)

val train_float : Datasets.Dataset.t -> Lda.model * Scaling.t
(** Floating-point reference on scaled (but unquantised) features. *)

val train_conventional :
  fmt:Fixedpoint.Qformat.t -> Datasets.Dataset.t -> Fixed_classifier.t

val classifier_of_weights :
  prepared -> Linalg.Vec.t -> Fixed_classifier.t
(** Wrap solved grid weights into a classifier: threshold at the projected
    pooled mean (eq. 12), comparator polarity from the sign of
    [(μ_A−μ_B)ᵀw]. *)

type ldafp_result = {
  classifier : Fixed_classifier.t;
  outcome : Lda_fp.outcome;
  problem : Ldafp_problem.t;
}

val train_ldafp :
  ?config:Lda_fp.config ->
  ?interrupt:(unit -> bool) ->
  ?rho:float ->
  fmt:Fixedpoint.Qformat.t ->
  Datasets.Dataset.t ->
  ldafp_result option
(** [None] when the trainer found no feasible grid point.  [?interrupt]
    and [config.checkpoint] are forwarded to {!Lda_fp.solve} — together
    they make long trainings killable and resumable. *)
