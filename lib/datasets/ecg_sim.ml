open Linalg

type params = {
  trials_per_class : int;
  rr_drift : float;
  gain_noise : float;
  idio_noise : float;
  effect_scale : float;
}

let default_params =
  {
    trials_per_class = 200;
    rr_drift = 0.8;
    gain_noise = 0.6;
    idio_noise = 0.35;
    effect_scale = 0.45;
  }

let n_features = 10

let feature_names =
  [|
    "rr_prev"; "rr_next"; "qrs_width"; "r_amp"; "t_amp"; "st_level";
    "p_amp"; "energy_low"; "energy_mid"; "energy_high";
  |]

(* Index groups for the shared-noise patterns. *)
let rr_features = [ 0; 1 ]
let amplitude_features = [ 3; 4; 5; 6; 7; 8; 9 ]

(* Class mean shift of an arrhythmic beat (units: normalised feature
   std): premature beat -> short preceding RR, compensatory pause after,
   wide QRS, tall R, inverted T, depressed ST, absent P, energy moved
   from mid to low band. *)
let arrhythmia_shift =
  [| -0.45; 0.30; 0.55; 0.25; -0.50; -0.20; -0.40; 0.30; -0.25; 0.10 |]

let validate p =
  if p.trials_per_class < 1 then
    invalid_arg "Ecg_sim: trials_per_class must be positive";
  if p.idio_noise <= 0.0 then
    invalid_arg "Ecg_sim: idio_noise must be positive"

let population_means p =
  validate p;
  let shift = Vec.scale (0.5 *. p.effect_scale) arrhythmia_shift in
  (Vec.neg shift, shift)

let population_covariance p =
  validate p;
  let cov = Mat.zeros n_features n_features in
  let add_pattern sigma idxs =
    List.iter
      (fun i ->
        List.iter
          (fun j -> cov.(i).(j) <- cov.(i).(j) +. (sigma *. sigma))
          idxs)
      idxs
  in
  add_pattern p.rr_drift rr_features;
  add_pattern p.gain_noise amplitude_features;
  Mat.add_scaled_identity (p.idio_noise *. p.idio_noise) cov

let generate ?(params = default_params) rng =
  validate params;
  let mu_a, mu_b = population_means params in
  let cov = population_covariance params in
  let sa = Stats.Sampler.mvn ~mean:mu_a ~cov in
  let sb = Stats.Sampler.mvn ~mean:mu_b ~cov in
  Dataset.of_class_matrices ~name:"ecg-sim"
    ~a:(Stats.Sampler.mvn_draws sa rng params.trials_per_class)
    ~b:(Stats.Sampler.mvn_draws sb rng params.trials_per_class)

let bayes_error p =
  validate p;
  let _, mu_b = population_means p in
  let d = Vec.scale 2.0 mu_b in
  let z = Linsys.solve_spd_regularized (population_covariance p) d in
  Stats.Gaussian.cdf (-.sqrt (Float.max (Vec.dot d z) 0.0))
