(** CSV import/export of datasets.

    Format: one trial per line, [label,x1,x2,...,xM] where label is [A]/[B]
    (or [1]/[0]).  An optional header line starting with ["label"] is
    skipped on load and written on save. *)

exception Parse_error of { line : int; message : string }

val load : string -> Dataset.t
(** @raise Parse_error on malformed input — including non-finite
    feature values ([nan], or magnitudes that overflow to infinity),
    reported with the 1-based line number of the offending input line;
    @raise Sys_error on I/O failure. *)

val save : string -> Dataset.t -> unit

val parse_row : int -> string -> (bool * float array) option
(** [parse_row lineno line] parses one CSV line carrying its 1-based
    line number in the original input; [None] for blank lines and the
    optional header.  Streaming consumers ([ldafp classify]) use this
    to keep the same error contract as {!load} without materialising
    the whole file.
    @raise Parse_error with [lineno] on a malformed row. *)

val of_lines : name:string -> string list -> Dataset.t
(** Parse from in-memory lines (used by tests). *)

val to_lines : Dataset.t -> string list
