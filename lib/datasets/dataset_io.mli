(** CSV import/export of datasets.

    Format: one trial per line, [label,x1,x2,...,xM] where label is [A]/[B]
    (or [1]/[0]).  An optional header line starting with ["label"] is
    skipped on load and written on save. *)

exception Parse_error of { line : int; message : string }

val load : string -> Dataset.t
(** @raise Parse_error on malformed input — including non-finite
    feature values ([nan], or magnitudes that overflow to infinity),
    reported with the 1-based line number of the offending input line;
    @raise Sys_error on I/O failure. *)

val save : string -> Dataset.t -> unit

val of_lines : name:string -> string list -> Dataset.t
(** Parse from in-memory lines (used by tests). *)

val to_lines : Dataset.t -> string list
