open Linalg

type t = { name : string; features : Mat.t; labels : bool array }

let create ~name ~features ~labels =
  if Mat.rows features = 0 then invalid_arg "Dataset.create: no trials";
  if Mat.rows features <> Array.length labels then
    invalid_arg "Dataset.create: row/label count mismatch";
  let width = Array.length features.(0) in
  Array.iteri
    (fun i row ->
      if Array.length row <> width then
        invalid_arg (Printf.sprintf "Dataset.create: ragged row %d" i);
      Array.iter
        (fun v ->
          if not (Float.is_finite v) then
            invalid_arg
              (Printf.sprintf "Dataset.create: non-finite feature in row %d" i))
        row)
    features;
  { name; features = Mat.copy features; labels = Array.copy labels }

let n_trials t = Mat.rows t.features
let n_features t = Mat.cols t.features

let class_counts t =
  Array.fold_left
    (fun (a, b) l -> if l then (a + 1, b) else (a, b + 1))
    (0, 0) t.labels

let indices_of t cls =
  let acc = ref [] in
  Array.iteri (fun i l -> if l = cls then acc := i :: !acc) t.labels;
  Array.of_list (List.rev !acc)

let class_split t =
  let ia = indices_of t true and ib = indices_of t false in
  if Array.length ia = 0 || Array.length ib = 0 then
    invalid_arg "Dataset.class_split: a class is empty";
  ( Mat.of_rows (Array.map (fun i -> t.features.(i)) ia),
    Mat.of_rows (Array.map (fun i -> t.features.(i)) ib) )

let of_class_matrices ~name ~a ~b =
  if Mat.cols a <> Mat.cols b then
    invalid_arg "Dataset.of_class_matrices: feature count mismatch";
  let na = Mat.rows a and nb = Mat.rows b in
  create ~name
    ~features:(Array.append (Mat.copy a) (Mat.copy b))
    ~labels:(Array.init (na + nb) (fun i -> i < na))

let subset t idx =
  create ~name:t.name
    ~features:(Array.map (fun i -> Array.copy t.features.(i)) idx)
    ~labels:(Array.map (fun i -> t.labels.(i)) idx)

let shuffle rng t =
  let perm = Stats.Rng.permutation rng (n_trials t) in
  subset t perm

let split t ~train_fraction rng =
  if not (train_fraction > 0.0 && train_fraction < 1.0) then
    invalid_arg "Dataset.split: train_fraction must be in (0, 1)";
  let ia = indices_of t true and ib = indices_of t false in
  Stats.Rng.shuffle_in_place rng ia;
  Stats.Rng.shuffle_in_place rng ib;
  let cut arr =
    let n = Array.length arr in
    let k = int_of_float (Float.round (train_fraction *. float_of_int n)) in
    let k = max 1 (min (n - 1) k) in
    (Array.sub arr 0 k, Array.sub arr k (n - k))
  in
  let ta, ea = cut ia and tb, eb = cut ib in
  (subset t (Array.append ta tb), subset t (Array.append ea eb))

let stratified_folds rng ~k t =
  if k < 2 then invalid_arg "Dataset.stratified_folds: k must be >= 2";
  let ia = indices_of t true and ib = indices_of t false in
  if Array.length ia < k || Array.length ib < k then
    invalid_arg "Dataset.stratified_folds: a class has fewer trials than k";
  Stats.Rng.shuffle_in_place rng ia;
  Stats.Rng.shuffle_in_place rng ib;
  let fold_of = Hashtbl.create (n_trials t) in
  Array.iteri (fun pos i -> Hashtbl.replace fold_of i (pos mod k)) ia;
  Array.iteri (fun pos i -> Hashtbl.replace fold_of i (pos mod k)) ib;
  Array.init k (fun f ->
      let train = ref [] and test = ref [] in
      for i = n_trials t - 1 downto 0 do
        if Hashtbl.find fold_of i = f then test := i :: !test
        else train := i :: !train
      done;
      (subset t (Array.of_list !train), subset t (Array.of_list !test)))

let map_features f t =
  { t with features = Array.map (fun row -> f (Array.copy row)) t.features }

let pp_summary ppf t =
  let na, nb = class_counts t in
  Format.fprintf ppf "%s: %d features, %d trials (A=%d, B=%d)" t.name
    (n_features t) (n_trials t) na nb
