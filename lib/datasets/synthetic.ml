type params = { offset : float; gain : float; leak : float }

let default_params = { offset = 0.5; gain = 0.58; leak = 0.001 }

let generate ?(params = default_params) ~n_per_class rng =
  if n_per_class < 1 then invalid_arg "Synthetic.generate: n_per_class < 1";
  let { offset; gain; leak } = params in
  let trial class_a =
    let e1 = Stats.Sampler.std_normal rng in
    let e2 = Stats.Sampler.std_normal rng in
    let e3 = Stats.Sampler.std_normal rng in
    let mean = if class_a then -.offset else offset in
    [| mean +. (gain *. (e1 +. e2 +. e3)); (leak *. e2) +. e3; e3 |]
  in
  let a = Array.init n_per_class (fun _ -> trial true) in
  let b = Array.init n_per_class (fun _ -> trial false) in
  Dataset.of_class_matrices ~name:"synthetic" ~a ~b

let ideal_weights ?(params = default_params) () =
  let { gain; leak; _ } = params in
  (* Cancel ε₂: w₂ = −gain/leak; cancel ε₃: w₃ = −w₂ − gain. *)
  let w2 = -.gain /. leak in
  [| 1.0; w2; -.w2 -. gain |]

let ideal_error ?(params = default_params) () =
  Stats.Gaussian.cdf (-.params.offset /. params.gain)

let no_cancellation_error ?(params = default_params) () =
  Stats.Gaussian.cdf (-.params.offset /. (params.gain *. sqrt 3.0))

let population_means ?(params = default_params) () =
  ([| -.params.offset; 0.0; 0.0 |], [| params.offset; 0.0; 0.0 |])

let population_covariance ?(params = default_params) () =
  let { gain; leak; _ } = params in
  let g2 = gain *. gain in
  (* x₁ = m + g(ε₁+ε₂+ε₃); x₂ = leak ε₂ + ε₃; x₃ = ε₃ *)
  [|
    [| 3.0 *. g2; gain *. (leak +. 1.0); gain |];
    [| gain *. (leak +. 1.0); (leak *. leak) +. 1.0; 1.0 |];
    [| gain; 1.0; 1.0 |];
  |]
