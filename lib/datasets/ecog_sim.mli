(** Simulated ECoG brain-computer-interface dataset (§5.2 substitution).

    The paper evaluates on a proprietary 42-feature ECoG movement-decoding
    set (Wang et al. 2013): 6 motor-cortex electrodes × 7 spectral bands of
    log band power, 70 trials per movement direction.  That data cannot be
    redistributed, so this module draws from a generative model with the
    same geometry and — critically — the same failure mechanism that LDA-FP
    exploits:

    - the movement direction shifts mean band power in a small set of
      electrode/band pairs (β desynchronisation, γ activation);
    - all features share strong common-mode noise — a per-band background
      component common to every electrode, and a per-electrode broadband
      gain component common to every band — so the optimal LDA direction
      spends most of its dynamic range on large cancelling weights while
      the informative weights stay small, and naive rounding at short word
      lengths zeroes exactly the informative part.

    Both classes share one covariance; features are class-conditionally
    Gaussian, matching the model (eq. 14) under which LDA-FP's overflow
    constraints are derived. *)

type params = {
  n_channels : int;  (** electrodes (paper geometry: 6) *)
  n_bands : int;  (** spectral bands (paper geometry: 7) *)
  trials_per_class : int;  (** paper: 70 *)
  effect : (int * int * float) list;
      (** informative (channel, band, mean-shift) triples; the shift is
          applied with opposite signs to the two classes *)
  band_noise : float array;
      (** σ of the common-mode background per band (length [n_bands]) *)
  channel_noise : float array;
      (** σ of the broadband gain component per channel *)
  idio_noise : float;  (** σ of per-feature idiosyncratic noise *)
}

val default_params : params
(** 6 × 7, 70 trials/class, β/γ effects on electrodes 1–3, tuned so the
    floating-point LDA cross-validation error lands near the paper's ≈20%
    floor. *)

val feature_index : params -> channel:int -> band:int -> int
val n_features : params -> int

val population_means : params -> Linalg.Vec.t * Linalg.Vec.t
val population_covariance : params -> Linalg.Mat.t

val generate : ?params:params -> Stats.Rng.t -> Dataset.t
(** Draw a full dataset ([2 * trials_per_class] trials). *)

val bayes_error : params -> float
(** Error of the infinite-precision Bayes rule
    Φ(−√(δᵀΣ⁻¹δ)) with δ half the mean difference — the floor any
    classifier on this distribution can approach. *)
