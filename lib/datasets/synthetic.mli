(** The paper's synthetic test case (§5.1, eqs. 30–32).

    Three features driven by independent standard Gaussians ε₁, ε₂, ε₃:

    {v x₁ = ∓0.5 + 0.58(ε₁ + ε₂ + ε₃)   (− for class A, + for class B)
      x₂ = 0.001 ε₂ + ε₃
      x₃ = ε₃ v}

    Only x₁ carries class information; x₂ and x₃ exist purely to cancel
    the noise terms ε₂, ε₃.  Perfect cancellation needs the huge weights
    w ∝ (1, −580, 579.42), which is exactly what breaks naive rounding:
    after normalisation, w₁ is tiny and quantises to zero.  The closed-form
    helpers below expose the ideal solution for tests and benches. *)

type params = {
  offset : float;  (** class-mean offset of x₁ (paper: 0.5) *)
  gain : float;  (** noise gain of x₁ (paper: 0.58) *)
  leak : float;  (** ε₂ leak into x₂ (paper: 0.001) *)
}

val default_params : params

val generate :
  ?params:params -> n_per_class:int -> Stats.Rng.t -> Dataset.t
(** Draw [n_per_class] trials of each class. *)

val ideal_weights : ?params:params -> unit -> Linalg.Vec.t
(** The noise-cancelling direction [(1, −g/leak, g/leak − g)] for gain [g]
    — the infinite-precision LDA optimum up to scale. *)

val ideal_error : ?params:params -> unit -> float
(** Bayes error of the ideal direction: Φ(−offset / gain) — the floor the
    float classifier approaches (≈ 19.4% with paper constants). *)

val no_cancellation_error : ?params:params -> unit -> float
(** Error of using x₁ alone, Φ(−offset / (gain·√3)) ≈ 30.9% with paper
    constants — the ceiling for any classifier that zeroes w₂, w₃. *)

val population_means : ?params:params -> unit -> Linalg.Vec.t * Linalg.Vec.t
(** True class means (μ_A, μ_B). *)

val population_covariance : ?params:params -> unit -> Linalg.Mat.t
(** True (class-independent) feature covariance. *)
