(** Labelled binary-classification datasets.

    Rows of [features] are trials; [labels.(i) = true] marks class A
    (the paper's convention: class A is decided by [wᵀx − θ >= 0]). *)

type t = private {
  name : string;
  features : Linalg.Mat.t;
  labels : bool array;
}

val create : name:string -> features:Linalg.Mat.t -> labels:bool array -> t
(** @raise Invalid_argument on row/label count mismatch, empty data,
    ragged rows, or non-finite (NaN/infinite) feature values — a
    malformed trial must fail loudly at ingestion, not as a silent
    mis-quantisation at inference. *)

val n_trials : t -> int
val n_features : t -> int
val class_counts : t -> int * int
(** [(n_a, n_b)]. *)

val class_split : t -> Linalg.Mat.t * Linalg.Mat.t
(** Feature matrices of class A and class B trials, in original order.
    @raise Invalid_argument if either class is empty. *)

val of_class_matrices : name:string -> a:Linalg.Mat.t -> b:Linalg.Mat.t -> t
(** Concatenate per-class matrices into a dataset (A first). *)

val subset : t -> int array -> t
(** Select trials by index. *)

val shuffle : Stats.Rng.t -> t -> t

val split : t -> train_fraction:float -> Stats.Rng.t -> t * t
(** Stratified random split: each class is divided in the given
    proportion.  @raise Invalid_argument unless [0 < train_fraction < 1]. *)

val stratified_folds : Stats.Rng.t -> k:int -> t -> (t * t) array
(** [k] cross-validation folds as [(train, test)] pairs; each class is
    permuted once and dealt round-robin so fold sizes differ by at most
    one per class (the paper's 5-fold protocol on 70 trials/class).
    @raise Invalid_argument if [k < 2] or either class has fewer than [k]
    trials. *)

val map_features : (Linalg.Vec.t -> Linalg.Vec.t) -> t -> t
val pp_summary : Format.formatter -> t -> unit
