(** Simulated ECG beat-classification dataset.

    The paper's introduction motivates on-chip classifiers with wearable
    ECG monitors ([3]-[4]) before settling on the BCI case study; this
    generator provides that second workload so the benches can show the
    LDA-FP advantage is not specific to ECoG statistics.

    Model: each trial is one heartbeat summarised by morphological and
    rhythm features — RR intervals (previous/next), QRS width, R and T
    amplitudes, ST level, plus band-energy terms.  Arrhythmic beats
    (class B, e.g. premature ventricular contractions) shorten the
    preceding RR interval, widen the QRS and flip/shrink the T wave.
    Shared noise: per-recording heart-rate drift couples the RR features,
    and an electrode-gain factor couples all amplitude features — the
    same few-informative-directions-plus-common-mode structure that makes
    naive rounding fail.

    Class-conditional Gaussians as in paper eq. (14); both classes share
    one covariance. *)

type params = {
  trials_per_class : int;
  rr_drift : float;  (** σ of the shared heart-rate drift component *)
  gain_noise : float;  (** σ of the shared electrode-gain component *)
  idio_noise : float;
  effect_scale : float;  (** multiplies all class mean shifts *)
}

val default_params : params
(** 200 trials/class, tuned so the float-LDA error sits in the
    low tens of percent — a realistic single-lead screening task. *)

val n_features : int
(** 10. *)

val feature_names : string array

val population_means : params -> Linalg.Vec.t * Linalg.Vec.t
(** (normal, arrhythmic) — class A is the normal beat. *)

val population_covariance : params -> Linalg.Mat.t
val generate : ?params:params -> Stats.Rng.t -> Dataset.t
val bayes_error : params -> float
