open Linalg

type params = {
  n_channels : int;
  n_bands : int;
  trials_per_class : int;
  effect : (int * int * float) list;
  band_noise : float array;
  channel_noise : float array;
  idio_noise : float;
}

let default_params =
  {
    n_channels = 6;
    n_bands = 7;
    trials_per_class = 70;
    (* β-band desynchronisation (negative shift) and γ activation
       (positive shift) on the three motor electrodes. *)
    effect =
      [
        (0, 3, -0.16); (0, 5, 0.22); (0, 6, 0.195);
        (1, 3, -0.13); (1, 5, 0.18); (1, 6, 0.145);
        (2, 4, -0.09); (2, 5, 0.12);
      ];
    band_noise = [| 1.1; 1.0; 0.95; 0.9; 0.85; 0.8; 0.75 |];
    channel_noise = [| 0.65; 0.6; 0.6; 0.55; 0.55; 0.5 |];
    idio_noise = 0.3;
  }

let validate p =
  if p.n_channels < 1 || p.n_bands < 1 then
    invalid_arg "Ecog_sim: channel/band counts must be positive";
  if Array.length p.band_noise <> p.n_bands then
    invalid_arg "Ecog_sim: band_noise length must equal n_bands";
  if Array.length p.channel_noise <> p.n_channels then
    invalid_arg "Ecog_sim: channel_noise length must equal n_channels";
  if p.trials_per_class < 1 then
    invalid_arg "Ecog_sim: trials_per_class must be positive";
  List.iter
    (fun (c, b, _) ->
      if c < 0 || c >= p.n_channels || b < 0 || b >= p.n_bands then
        invalid_arg "Ecog_sim: effect index out of range")
    p.effect

let feature_index p ~channel ~band =
  if channel < 0 || channel >= p.n_channels || band < 0 || band >= p.n_bands
  then invalid_arg "Ecog_sim.feature_index: out of range";
  (channel * p.n_bands) + band

let n_features p = p.n_channels * p.n_bands

let delta p =
  let d = Vec.zeros (n_features p) in
  List.iter
    (fun (c, b, shift) ->
      let i = feature_index p ~channel:c ~band:b in
      d.(i) <- d.(i) +. shift)
    p.effect;
  d

let population_means p =
  validate p;
  let d = delta p in
  (Vec.neg d, d)

let population_covariance p =
  validate p;
  let m = n_features p in
  let cov = Mat.zeros m m in
  (* Per-band background: rank-one pattern across channels. *)
  for b = 0 to p.n_bands - 1 do
    let sigma = p.band_noise.(b) in
    for c1 = 0 to p.n_channels - 1 do
      for c2 = 0 to p.n_channels - 1 do
        let i = feature_index p ~channel:c1 ~band:b in
        let j = feature_index p ~channel:c2 ~band:b in
        cov.(i).(j) <- cov.(i).(j) +. (sigma *. sigma)
      done
    done
  done;
  (* Per-channel broadband gain: rank-one pattern across bands. *)
  for c = 0 to p.n_channels - 1 do
    let sigma = p.channel_noise.(c) in
    for b1 = 0 to p.n_bands - 1 do
      for b2 = 0 to p.n_bands - 1 do
        let i = feature_index p ~channel:c ~band:b1 in
        let j = feature_index p ~channel:c ~band:b2 in
        cov.(i).(j) <- cov.(i).(j) +. (sigma *. sigma)
      done
    done
  done;
  (* Idiosyncratic noise. *)
  Mat.add_scaled_identity (p.idio_noise *. p.idio_noise) cov

let generate ?(params = default_params) rng =
  validate params;
  let mu_a, mu_b = population_means params in
  let cov = population_covariance params in
  let sampler_a = Stats.Sampler.mvn ~mean:mu_a ~cov in
  let sampler_b = Stats.Sampler.mvn ~mean:mu_b ~cov in
  let a = Stats.Sampler.mvn_draws sampler_a rng params.trials_per_class in
  let b = Stats.Sampler.mvn_draws sampler_b rng params.trials_per_class in
  Dataset.of_class_matrices ~name:"ecog-sim" ~a ~b

let bayes_error p =
  validate p;
  let d = delta p in
  let cov = population_covariance p in
  let z = Linsys.solve_spd_regularized cov d in
  let m2 = Vec.dot d z in
  Stats.Gaussian.cdf (-.sqrt (Float.max m2 0.0))
