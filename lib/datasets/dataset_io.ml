exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let parse_label lineno = function
  | "A" | "a" | "1" | "true" -> true
  | "B" | "b" | "0" | "false" -> false
  | other -> fail lineno (Printf.sprintf "unknown label %S" other)

let parse_line lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [] | [ "" ] -> None
  | label :: feats ->
      if String.lowercase_ascii label = "label" then None (* header *)
      else begin
        if feats = [] then fail lineno "no features";
        let values =
          List.map
            (fun s ->
              match float_of_string_opt (String.trim s) with
              | Some v when Float.is_finite v -> v
              | Some _ ->
                  (* [float_of_string] happily parses "nan" and overflows
                     "1e999" to infinity; either poisons every scatter
                     statistic downstream, so reject at the source with
                     the offending input line. *)
                  fail lineno (Printf.sprintf "non-finite feature %S" s)
              | None -> fail lineno (Printf.sprintf "bad number %S" s))
            feats
        in
        Some (parse_label lineno label, Array.of_list values)
      end

let parse_row = parse_line

let of_lines ~name lines =
  (* Each parsed row keeps its 1-based line number in the original input:
     headers and blank lines are skipped, so the index into the filtered
     row array is NOT the file line. *)
  let rows = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match parse_line (i + 1) line with
        | Some row -> rows := (i + 1, row) :: !rows
        | None -> ())
    lines;
  let rows = Array.of_list (List.rev !rows) in
  if Array.length rows = 0 then fail 0 "empty dataset";
  let m = Array.length (snd (snd rows.(0))) in
  Array.iter
    (fun (lineno, (_, feats)) ->
      if Array.length feats <> m then
        fail lineno
          (Printf.sprintf "expected %d features, found %d" m
             (Array.length feats)))
    rows;
  Dataset.create ~name
    ~features:(Array.map (fun (_, (_, feats)) -> feats) rows)
    ~labels:(Array.map (fun (_, (label, _)) -> label) rows)

let to_lines ds =
  let m = Dataset.n_features ds in
  let header =
    "label," ^ String.concat "," (List.init m (fun j -> Printf.sprintf "x%d" (j + 1)))
  in
  let lines =
    Array.to_list
      (Array.mapi
         (fun i row ->
           (if ds.Dataset.labels.(i) then "A," else "B,")
           ^ String.concat ","
               (List.map
                  (fun v -> Printf.sprintf "%.17g" v)
                  (Array.to_list row)))
         ds.Dataset.features)
  in
  header :: lines

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines ~name:(Filename.basename path) (List.rev !lines))

let save path ds =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines ds))
