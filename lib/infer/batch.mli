(** A format-tagged batch of quantised feature vectors.

    Storage is a Bigarray of untagged native ints, laid out
    feature-major — dims [(features, capacity)] in C layout — so the C
    MAC kernels stream each feature row contiguously across the batch.
    Column [c] holds the [c]-th input vector's raw codes; every code
    lies in the raw range of the batch's {!Fixedpoint.Qformat.t} (the
    writers wrap or saturate on the way in, like {!Fixedpoint.Fx}).

    A batch is a reusable buffer: [capacity] columns are allocated once,
    [length] says how many are live.  Refilling a warm batch allocates
    nothing. *)

type ba1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type ba2 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array2.t

type t

val create : fmt:Fixedpoint.Qformat.t -> features:int -> capacity:int -> t
(** Zero-filled, [length = 0].
    @raise Invalid_argument if [features < 1] or [capacity < 1]. *)

val format : t -> Fixedpoint.Qformat.t
val n_features : t -> int
val capacity : t -> int

val length : t -> int
val set_length : t -> int -> unit
(** @raise Invalid_argument unless [0 <= n <= capacity]. *)

val data : t -> ba2
(** The raw storage (kernels and tests). *)

val set_raw : t -> feature:int -> col:int -> int -> unit
(** Store a raw code, wrapped into the batch format
    ({!Fixedpoint.Fx.create} semantics). *)

val get_raw : t -> feature:int -> col:int -> int

val load_floats : t -> col:int -> float array -> unit
(** Quantise one real-valued vector into column [col]: round to nearest
    (ties to even) and {e saturate} into the batch format — the same
    front-end conversion as
    [Fx_vector.of_floats ~ov:Saturate].  Does not touch [length].
    @raise Invalid_argument on dimension mismatch. *)
