open Fixedpoint

type ba1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type ba2 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array2.t

type t = {
  fmt : Qformat.t;
  data : ba2; (* (features, capacity), raw codes in [fmt] range *)
  mutable len : int;
}

let create ~fmt ~features ~capacity =
  if features < 1 then invalid_arg "Batch.create: features must be >= 1";
  if capacity < 1 then invalid_arg "Batch.create: capacity must be >= 1";
  let data = Bigarray.Array2.create Bigarray.int Bigarray.c_layout features capacity in
  Bigarray.Array2.fill data 0;
  { fmt; data; len = 0 }

let format t = t.fmt
let n_features t = Bigarray.Array2.dim1 t.data
let capacity t = Bigarray.Array2.dim2 t.data
let length t = t.len

let set_length t n =
  if n < 0 || n > capacity t then invalid_arg "Batch.set_length: out of range";
  t.len <- n

let data t = t.data
let set_raw t ~feature ~col raw = t.data.{feature, col} <- Qformat.wrap_raw t.fmt raw
let get_raw t ~feature ~col = t.data.{feature, col}

let load_floats t ~col x =
  let m = n_features t in
  if Array.length x <> m then
    invalid_arg "Batch.load_floats: dimension mismatch";
  for j = 0 to m - 1 do
    t.data.{j, col} <-
      Fx.raw (Fx.of_float ~ov:Rounding.Saturate t.fmt (Array.unsafe_get x j))
  done
