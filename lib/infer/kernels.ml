(* Raw bindings to the C MAC/stage kernels in infer_stubs.c.  All are
   [@@noalloc]: no allocation, no exceptions, no callbacks.  Shape and
   length validation is the caller's job (Engine / Pipeline). *)

type ba1 = Batch.ba1
type ba2 = Batch.ba2

external mac_uniform : ba1 -> ba2 -> ba1 -> int -> int -> int -> unit
  = "ldafp_infer_mac_uniform_bytes" "ldafp_infer_mac_uniform"
[@@noalloc]
(* mac_uniform w x out len f bits *)

external mac_hetero : ba1 -> ba1 -> ba2 -> ba1 -> int -> int -> unit
  = "ldafp_infer_mac_hetero_bytes" "ldafp_infer_mac_hetero"
[@@noalloc]
(* mac_hetero w shifts x out len bits *)

external affine : ba1 -> ba1 -> ba2 -> ba2 -> int -> int -> int -> unit
  = "ldafp_infer_affine_bytes" "ldafp_infer_affine"
[@@noalloc]
(* affine mean inv x out len shift bits *)

external matmul : ba2 -> ba2 -> ba2 -> int -> int -> int -> unit
  = "ldafp_infer_matmul_bytes" "ldafp_infer_matmul"
[@@noalloc]
(* matmul mat x out len shift bits *)
