(** Batched, allocation-free inference over trained classifiers.

    An engine bakes a {!Ldafp_core.Fixed_classifier} or
    {!Ldafp_core.Hetero_classifier} into Bigarray tables (weight codes,
    per-feature product shifts, threshold code, scaling exponents) plus
    one scratch projection row, and serves predictions over {!Batch}es
    through the C MAC kernels.  The batched path is bit-for-bit
    identical to the scalar [predict]: same front-end quantisation, same
    wrapping multiply-accumulate, same threshold comparison.

    The steady state allocates nothing: {!project_into} and
    {!predict_into} on a warm batch perform zero minor-heap allocations
    (unit-tested), so a long-lived server loop never pressures the GC.

    Observability (both zero-cost when {!Obs.Metrics.enabled} is off):
    - [ldafp_infer_predictions_total] — predictions served;
    - [ldafp_infer_batch_seconds] — wall time of one batched call;
    - an [infer.batch] trace span per call when tracing is on. *)

type model =
  | Uniform of Ldafp_core.Fixed_classifier.t
  | Hetero of Ldafp_core.Hetero_classifier.t

type t

val create : ?capacity:int -> model -> t
(** Bake the model's tables.  [capacity] (default [1024]) bounds the
    batch size served per call.
    @raise Invalid_argument if [capacity < 1]. *)

val of_fixed : ?capacity:int -> Ldafp_core.Fixed_classifier.t -> t
val of_hetero : ?capacity:int -> Ldafp_core.Hetero_classifier.t -> t

val n_features : t -> int
val capacity : t -> int

val format : t -> Fixedpoint.Qformat.t
(** Accumulator / feature format (the uniform format, or the hetero
    model's [acc_fmt]). *)

val polarity : t -> bool
val threshold_raw : t -> int

val make_batch : t -> Batch.t
(** A fresh batch in the engine's input format and capacity. *)

val load : t -> Batch.t -> col:int -> float array -> unit
(** Front-end conversion of one raw (unscaled) feature vector: apply
    the model's power-of-two scaling, round to nearest (ties to even),
    saturate into the engine format — exactly
    [Fixed_classifier.quantize_input].  Does not touch the batch
    length.  Loading allocates (it is the cold edge of the datapath);
    the predict path does not. *)

val load_rows : t -> Batch.t -> ?start:int -> ?n:int -> float array array -> int
(** Load rows [start .. start+n-1] (clamped to what fits the batch
    capacity and the array), set the batch length, return the count
    loaded. *)

val project_into : t -> Batch.t -> unit
(** Run the MAC kernel over the live columns; results are readable via
    {!projection_raw}.  Allocation-free.
    @raise Invalid_argument on format or shape mismatch. *)

val projection_raw : t -> int -> int
(** Raw accumulator output of column [i] from the last
    {!project_into}. *)

val margin : t -> int -> float
(** Signed decision margin of column [i] from the last {!project_into},
    matching [Fixed_classifier.margin]. *)

val predict_into : t -> Batch.t -> Bytes.t -> unit
(** Project and threshold the live columns, writing ['\001'] (class A)
    or ['\000'] into [out.[0 .. length-1]].  Allocation-free on the
    steady state.
    @raise Invalid_argument if [out] is shorter than the batch
    length. *)
