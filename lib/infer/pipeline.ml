open Fixedpoint
module Fixed_classifier = Ldafp_core.Fixed_classifier
module Hetero_classifier = Ldafp_core.Hetero_classifier

type stage =
  | Standardize of {
      in_fmt : Qformat.t;
      out_fmt : Qformat.t;
      shift : int; (* f_in + f_scale - f_out *)
      mean : Batch.ba1; (* raws in in_fmt *)
      inv : Batch.ba1; (* raws in scale_fmt *)
      features : int;
    }
  | Project of {
      in_fmt : Qformat.t;
      out_fmt : Qformat.t;
      shift : int; (* f_in + f_mat - f_out *)
      mat : Batch.ba2; (* (out_features, in_features) raws in mat_fmt *)
      in_features : int;
      out_features : int;
    }

let stage_shift ~what ~in_fmt ~tbl_fmt ~out_fmt =
  let s = in_fmt.Qformat.f + tbl_fmt.Qformat.f - out_fmt.Qformat.f in
  if s < 0 then
    invalid_arg
      (Printf.sprintf
         "Pipeline.%s: negative product shift (f_in %d + f_table %d < f_out \
          %d)"
         what in_fmt.Qformat.f tbl_fmt.Qformat.f out_fmt.Qformat.f);
  s

let quantize_table fmt xs =
  let n = Array.length xs in
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill b 0;
  Array.iteri
    (fun i x -> b.{i} <- Fx.raw (Fx.of_float ~ov:Rounding.Saturate fmt x))
    xs;
  b

let standardize ~in_fmt ~scale_fmt ~out_fmt ~means ~inv_stds =
  let m = Array.length means in
  if m < 1 then invalid_arg "Pipeline.standardize: no features";
  if Array.length inv_stds <> m then
    invalid_arg "Pipeline.standardize: means/inv_stds length mismatch";
  Standardize
    {
      in_fmt;
      out_fmt;
      shift = stage_shift ~what:"standardize" ~in_fmt ~tbl_fmt:scale_fmt ~out_fmt;
      mean = quantize_table in_fmt means;
      inv = quantize_table scale_fmt inv_stds;
      features = m;
    }

let project ~in_fmt ~mat_fmt ~out_fmt ~matrix =
  let out_features = Array.length matrix in
  if out_features < 1 then invalid_arg "Pipeline.project: empty matrix";
  let in_features = Array.length matrix.(0) in
  if in_features < 1 then invalid_arg "Pipeline.project: empty matrix rows";
  Array.iter
    (fun row ->
      if Array.length row <> in_features then
        invalid_arg "Pipeline.project: ragged matrix")
    matrix;
  let mat =
    Bigarray.Array2.create Bigarray.int Bigarray.c_layout out_features
      in_features
  in
  for o = 0 to out_features - 1 do
    for j = 0 to in_features - 1 do
      mat.{o, j} <-
        Fx.raw (Fx.of_float ~ov:Rounding.Saturate mat_fmt matrix.(o).(j))
    done
  done;
  Project
    {
      in_fmt;
      out_fmt;
      shift = stage_shift ~what:"project" ~in_fmt ~tbl_fmt:mat_fmt ~out_fmt;
      mat;
      in_features;
      out_features;
    }

let stage_in_fmt = function
  | Standardize s -> s.in_fmt
  | Project p -> p.in_fmt

let stage_out_fmt = function
  | Standardize s -> s.out_fmt
  | Project p -> p.out_fmt

let stage_in_features = function
  | Standardize s -> s.features
  | Project p -> p.in_features

let stage_out_features = function
  | Standardize s -> s.features
  | Project p -> p.out_features

type t = {
  stages : stage array;
  bufs : Batch.t array; (* output batch of each stage *)
  engine : Engine.t;
  model : Engine.model; (* kept for the scalar reference *)
  in_fmt : Qformat.t;
  in_features : int;
}

let create ?(capacity = 1024) ~stages model =
  let stages = Array.of_list stages in
  let engine = Engine.create ~capacity model in
  let n = Array.length stages in
  for i = 0 to n - 2 do
    if stage_out_features stages.(i) <> stage_in_features stages.(i + 1) then
      invalid_arg
        (Printf.sprintf "Pipeline.create: stage %d emits %d features, stage \
                         %d expects %d"
           i
           (stage_out_features stages.(i))
           (i + 1)
           (stage_in_features stages.(i + 1)));
    if not (Qformat.equal (stage_out_fmt stages.(i)) (stage_in_fmt stages.(i + 1)))
    then
      invalid_arg
        (Printf.sprintf "Pipeline.create: stage %d/%d format mismatch" i (i + 1))
  done;
  (if n > 0 then begin
     let last = stages.(n - 1) in
     if stage_out_features last <> Engine.n_features engine then
       invalid_arg "Pipeline.create: last stage/classifier feature mismatch";
     if not (Qformat.equal (stage_out_fmt last) (Engine.format engine)) then
       invalid_arg "Pipeline.create: last stage/classifier format mismatch"
   end);
  let bufs =
    Array.map
      (fun s ->
        Batch.create ~fmt:(stage_out_fmt s) ~features:(stage_out_features s)
          ~capacity)
      stages
  in
  let in_fmt =
    if n > 0 then stage_in_fmt stages.(0) else Engine.format engine
  in
  let in_features =
    if n > 0 then stage_in_features stages.(0)
    else Engine.n_features engine
  in
  { stages; bufs; engine; model; in_fmt; in_features }

let input_format t = t.in_fmt
let n_raw_features t = t.in_features
let capacity t = Engine.capacity t.engine
let engine t = t.engine

let make_batch t =
  Batch.create ~fmt:t.in_fmt ~features:t.in_features ~capacity:(capacity t)

let apply_stage stage input output =
  let n = Batch.length input in
  Batch.set_length output n;
  match stage with
  | Standardize s ->
      Kernels.affine s.mean s.inv (Batch.data input) (Batch.data output) n
        s.shift
        (Qformat.word_length s.out_fmt)
  | Project p ->
      Kernels.matmul p.mat (Batch.data input) (Batch.data output) n p.shift
        (Qformat.word_length p.out_fmt)

let run t input out =
  if not (Qformat.equal (Batch.format input) t.in_fmt) then
    invalid_arg "Pipeline.run: input format mismatch";
  if Batch.n_features input <> t.in_features then
    invalid_arg "Pipeline.run: input feature mismatch";
  if Batch.length input > capacity t then
    invalid_arg "Pipeline.run: batch longer than pipeline capacity";
  let n = Array.length t.stages in
  for i = 0 to n - 1 do
    let src = if i = 0 then input else t.bufs.(i - 1) in
    apply_stage t.stages.(i) src t.bufs.(i)
  done;
  let last = if n = 0 then input else t.bufs.(n - 1) in
  Engine.predict_into t.engine last out

(* Scalar lockstep reference: identical arithmetic in plain OCaml ints.
   OCaml native-int [*] is exactly the kernels' mul-wrap-2^63, and
   Rounding.shift_right_rounded Nearest is their shr_round_even. *)

let reference_stage stage x =
  match stage with
  | Standardize s ->
      Array.init s.features (fun j ->
          let d = x.(j) - s.mean.{j} in
          let p = d * s.inv.{j} in
          let p = Rounding.shift_right_rounded Rounding.Nearest p s.shift in
          Qformat.saturate_raw s.out_fmt p)
  | Project p ->
      Array.init p.out_features (fun o ->
          let acc = ref 0 in
          for j = 0 to p.in_features - 1 do
            let q = p.mat.{o, j} * x.(j) in
            let q = Rounding.shift_right_rounded Rounding.Nearest q p.shift in
            let q = Qformat.wrap_raw p.out_fmt q in
            acc := Qformat.wrap_raw p.out_fmt (!acc + q)
          done;
          !acc)

let reference_classify model (x : int array) =
  match model with
  | Engine.Uniform clf ->
      let fmt = Fixed_classifier.format clf in
      let xq = Fx_vector.of_fx (Array.map (Fx.create fmt) x) in
      Fixed_classifier.predict_quantized clf xq
  | Engine.Hetero h ->
      let acc_fmt = h.Hetero_classifier.acc_fmt in
      let acc = ref 0 in
      Array.iteri
        (fun j w_raw ->
          let full = w_raw * x.(j) in
          let p =
            Rounding.shift_right_rounded Rounding.Nearest full
              h.Hetero_classifier.w_fmts.(j).Qformat.f
          in
          let p = Qformat.wrap_raw acc_fmt p in
          acc := Qformat.wrap_raw acc_fmt (!acc + p))
        h.Hetero_classifier.w_raws;
      let thr = Fx.raw h.Hetero_classifier.threshold in
      if h.Hetero_classifier.polarity then !acc >= thr else !acc < thr

let reference_predict t x =
  if Array.length x <> t.in_features then
    invalid_arg "Pipeline.reference_predict: dimension mismatch";
  let raws =
    Array.map
      (fun v -> Fx.raw (Fx.of_float ~ov:Rounding.Saturate t.in_fmt v))
      x
  in
  let raws = Array.fold_left (fun r s -> reference_stage s r) raws t.stages in
  reference_classify t.model raws
