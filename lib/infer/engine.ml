open Fixedpoint
module Fixed_classifier = Ldafp_core.Fixed_classifier
module Hetero_classifier = Ldafp_core.Hetero_classifier
module Scaling = Ldafp_core.Scaling

type model =
  | Uniform of Fixed_classifier.t
  | Hetero of Hetero_classifier.t

type t = {
  fmt : Qformat.t; (* accumulator / feature format *)
  bits : int; (* word_length fmt *)
  w : Batch.ba1; (* weight raw codes *)
  shifts : Batch.ba1; (* per-feature product shift (hetero kernel) *)
  uniform : bool;
  thr_raw : int;
  polarity : bool;
  exponents : int array; (* front-end scaling, x_j / 2^e_j *)
  proj : Batch.ba1; (* scratch projections, one per batch column *)
  capacity : int;
  features : int;
}

(* Registered eagerly at module init (before any domain is spawned);
   every recording site is guarded by [Obs.Metrics.enabled] so the
   disabled path is one atomic load and allocates nothing. *)
let m_predictions_total =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Predictions served by the batched inference engine"
    "ldafp_infer_predictions_total"

let m_batch_seconds =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Wall time of one batched predict_into call" ~lo:1e-8 ~hi:1.0
    "ldafp_infer_batch_seconds"

let ba1_of_array arr =
  let n = Array.length arr in
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill b 0;
  Array.iteri (fun i v -> b.{i} <- v) arr;
  b

let make ~fmt ~w_raws ~shifts ~uniform ~thr_raw ~polarity ~scaling ~capacity =
  if capacity < 1 then invalid_arg "Engine.create: capacity must be >= 1";
  let features = Array.length w_raws in
  if features < 1 then invalid_arg "Engine.create: model has no features";
  let proj = Bigarray.Array1.create Bigarray.int Bigarray.c_layout capacity in
  Bigarray.Array1.fill proj 0;
  {
    fmt;
    bits = Qformat.word_length fmt;
    w = ba1_of_array w_raws;
    shifts = ba1_of_array shifts;
    uniform;
    thr_raw;
    polarity;
    exponents = Array.init features (Scaling.exponent scaling);
    proj;
    capacity;
    features;
  }

let of_fixed ?(capacity = 1024) (clf : Fixed_classifier.t) =
  let fmt = Fixed_classifier.format clf in
  let w = clf.Fixed_classifier.w in
  let w_raws =
    Array.init (Fx_vector.length w) (fun i -> Fx.raw (Fx_vector.get w i))
  in
  make ~fmt ~w_raws
    ~shifts:(Array.make (Array.length w_raws) fmt.Qformat.f)
    ~uniform:true
    ~thr_raw:(Fx.raw clf.Fixed_classifier.threshold)
    ~polarity:clf.Fixed_classifier.polarity
    ~scaling:clf.Fixed_classifier.scaling ~capacity

let of_hetero ?(capacity = 1024) (h : Hetero_classifier.t) =
  make ~fmt:h.Hetero_classifier.acc_fmt
    ~w_raws:(Array.copy h.Hetero_classifier.w_raws)
    ~shifts:(Array.map (fun f -> f.Qformat.f) h.Hetero_classifier.w_fmts)
    ~uniform:false
    ~thr_raw:(Fx.raw h.Hetero_classifier.threshold)
    ~polarity:h.Hetero_classifier.polarity
    ~scaling:h.Hetero_classifier.scaling ~capacity

let create ?capacity = function
  | Uniform clf -> of_fixed ?capacity clf
  | Hetero h -> of_hetero ?capacity h

let n_features t = t.features
let capacity t = t.capacity
let format t = t.fmt
let polarity t = t.polarity
let threshold_raw t = t.thr_raw
let make_batch t = Batch.create ~fmt:t.fmt ~features:t.features ~capacity:t.capacity

let load t batch ~col x =
  if Array.length x <> t.features then
    invalid_arg "Engine.load: dimension mismatch";
  for j = 0 to t.features - 1 do
    let v = ldexp (Array.unsafe_get x j) (-t.exponents.(j)) in
    Batch.set_raw batch ~feature:j ~col
      (Fx.raw (Fx.of_float ~ov:Rounding.Saturate t.fmt v))
  done

let load_rows t batch ?(start = 0) ?n rows =
  let avail = max 0 (Array.length rows - start) in
  let fit = min avail (Batch.capacity batch) in
  let n = match n with Some n -> min (max n 0) fit | None -> fit in
  for c = 0 to n - 1 do
    load t batch ~col:c rows.(start + c)
  done;
  Batch.set_length batch n;
  n

let project_into t batch =
  if not (Qformat.equal (Batch.format batch) t.fmt) then
    invalid_arg "Engine.project_into: batch format mismatch";
  if Batch.n_features batch <> t.features then
    invalid_arg "Engine.project_into: feature count mismatch";
  let n = Batch.length batch in
  if n > t.capacity then
    invalid_arg "Engine.project_into: batch longer than engine capacity";
  if t.uniform then
    Kernels.mac_uniform t.w (Batch.data batch) t.proj n t.fmt.Qformat.f t.bits
  else Kernels.mac_hetero t.w t.shifts (Batch.data batch) t.proj n t.bits

let projection_raw t i = Bigarray.Array1.get t.proj i

let margin t i =
  let y = Qformat.value_of_raw t.fmt (projection_raw t i) in
  let thr = Qformat.value_of_raw t.fmt t.thr_raw in
  if t.polarity then y -. thr else thr -. y -. Qformat.ulp t.fmt

let predict_into t batch out =
  let n = Batch.length batch in
  if Bytes.length out < n then
    invalid_arg "Engine.predict_into: output buffer too short";
  let metrics_on = Obs.Metrics.enabled () in
  let trace_on = Obs.Trace.enabled () in
  let t0 = if metrics_on || trace_on then Obs.Clock.now_ns () else 0 in
  project_into t batch;
  let thr = t.thr_raw in
  if t.polarity then
    for i = 0 to n - 1 do
      Bytes.unsafe_set out i
        (if Bigarray.Array1.unsafe_get t.proj i >= thr then '\001' else '\000')
    done
  else
    for i = 0 to n - 1 do
      Bytes.unsafe_set out i
        (if Bigarray.Array1.unsafe_get t.proj i < thr then '\001' else '\000')
    done;
  if metrics_on then begin
    Obs.Metrics.add m_predictions_total n;
    Obs.Metrics.observe m_batch_seconds
      (float_of_int (Obs.Clock.now_ns () - t0) *. 1e-9)
  end;
  if trace_on then
    Obs.Trace.complete ~cat:"infer" "infer.batch" ~t0_ns:t0
      ~dur_ns:(Obs.Clock.now_ns () - t0)
      ~args:[ ("batch", Obs.Trace.Int n) ]
