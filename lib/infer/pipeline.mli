(** The full on-chip datapath: Raw → Standardize → PCA → LDA, batched.

    Mirrors the RISC-V LDA exemplar's model header: every stage is a set
    of baked fixed-point tables in an explicit Q-format, and the stage
    arithmetic is the same wrapping MAC / rounding-shift datapath as the
    classifier itself, so the software twin stays bit-exact with the
    hardware spec.

    - {!standardize}: per-feature [(x - mean) * inv_std], the product
      rounded (half to even) back to the output format and {e
      saturated} — the front-end conditioning stage.
    - {!project}: a rectangular matrix MAC (PCA / learned transform),
      wrapping like the classifier accumulator.
    - The final stage is an {!Engine} (uniform or heterogeneous LDA).

    A pipeline owns one scratch batch per stage, allocated once at
    {!create}; {!run} on warm batches allocates nothing.

    Formats are explicit everywhere: a stage taking inputs in
    [Q(k_i).(f_i)] with tables in [Q(k_t).(f_t)] and producing
    [Q(k_o).(f_o)] shifts each product right by [f_i + f_t - f_o]
    (which must be [>= 0]). *)

type stage

val standardize :
  in_fmt:Fixedpoint.Qformat.t ->
  scale_fmt:Fixedpoint.Qformat.t ->
  out_fmt:Fixedpoint.Qformat.t ->
  means:float array ->
  inv_stds:float array ->
  stage
(** Tables are quantised saturating: [means] into [in_fmt] (so the
    subtraction is exact), [inv_stds] into [scale_fmt].
    @raise Invalid_argument on length mismatch or a negative product
    shift. *)

val project :
  in_fmt:Fixedpoint.Qformat.t ->
  mat_fmt:Fixedpoint.Qformat.t ->
  out_fmt:Fixedpoint.Qformat.t ->
  matrix:float array array ->
  stage
(** [matrix] rows are output components ([out_features × in_features]),
    quantised saturating into [mat_fmt]. *)

type t

val create : ?capacity:int -> stages:stage list -> Engine.model -> t
(** Chain the stages in front of the model.  Feature counts and formats
    must chain: each stage's input matches the previous stage's output,
    and the last output matches the model's feature format.  The final
    classifier consumes the staged batch directly (its input is already
    in the accumulator format — the model's own front-end scaling is
    {e not} applied inside the pipeline).
    @raise Invalid_argument on any mismatch. *)

val input_format : t -> Fixedpoint.Qformat.t
val n_raw_features : t -> int
val capacity : t -> int
val engine : t -> Engine.t

val make_batch : t -> Batch.t
(** A fresh input batch ([input_format] × [n_raw_features]). *)

val run : t -> Batch.t -> Bytes.t -> unit
(** Stream the live columns of the input batch through every stage and
    the classifier, writing ['\001']/['\000'] per column.
    Allocation-free on warm batches.
    @raise Invalid_argument on shape/format mismatch or a short output
    buffer. *)

val reference_predict : t -> float array -> bool
(** Scalar lockstep reference: quantise one real vector into the input
    format (saturating) and walk the identical datapath in plain OCaml
    ints — the QCheck oracle for the batched kernels. *)
