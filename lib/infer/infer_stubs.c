/* Batched fixed-point inference kernels for Infer.Engine / Infer.Pipeline.
 *
 * Every kernel reproduces the scalar OCaml datapath bit-for-bit:
 *
 *   - products wrap modulo 2^63 (OCaml native-int multiplication), so a
 *     product is computed in uint64 (wraps mod 2^64) and then folded
 *     into the sign-extended 63-bit range;
 *   - the fractional-bit shift is Rounding.shift_right_rounded Nearest
 *     (round half to even), expressed with the same q/rem/half
 *     decomposition as the OCaml code;
 *   - accumulators wrap into the target word length after every add
 *     (Qformat.wrap_raw: mask to wl bits, then sign-extend).
 *
 * All kernels are [@@noalloc]: they never allocate, raise, or call back
 * into the runtime, and operate on untagged Bigarray int data
 * (Caml_ba_data_val) plus immediate int arguments (Long_val).  Batches
 * are laid out feature-major — Array2 of dims (features, capacity) in C
 * layout — so the per-feature inner loop over batch columns is
 * contiguous, stride-1, and vectorizable.  Shapes and batch lengths are
 * validated on the OCaml side before the call. */

#include <stdint.h>

#include <caml/bigarray.h>
#include <caml/mlvalues.h>

/* Fold a 64-bit value into OCaml's 63-bit native-int range (wrap modulo
 * 2^63, sign-extend).  Shifting into the sign bit is done unsigned to
 * avoid undefined behaviour; the final >> is arithmetic on a negative
 * int64, which gcc/clang define as sign-extending. */
static inline int64_t wrap63(int64_t p)
{
  return (int64_t)((uint64_t)p << 1) >> 1;
}

/* a * b with OCaml native-int semantics: true product modulo 2^63. */
static inline int64_t mul_wrap63(int64_t a, int64_t b)
{
  return wrap63((int64_t)((uint64_t)a * (uint64_t)b));
}

/* Rounding.shift_right_rounded Nearest: round half to even. */
static inline int64_t shr_round_even(int64_t r, intnat n)
{
  int64_t q, rem, half;
  if (n == 0) return r;
  q = r >> n;
  rem = r - (int64_t)((uint64_t)q << n);
  half = (int64_t)1 << (n - 1);
  if (rem > half) return q + 1;
  if (rem < half) return q;
  return (q & 1) ? q + 1 : q;
}

/* Qformat.wrap_raw: reduce modulo 2^bits, sign-extend. */
static inline int64_t wrap_bits(int64_t r, intnat bits)
{
  uint64_t m = (uint64_t)1 << bits;
  int64_t w = (int64_t)((uint64_t)r & (m - 1));
  if (w >= (int64_t)(m >> 1)) w -= (int64_t)m;
  return w;
}

/* Qformat.saturate_raw. */
static inline int64_t sat_bits(int64_t r, intnat bits)
{
  int64_t hi = ((int64_t)1 << (bits - 1)) - 1;
  int64_t lo = -((int64_t)1 << (bits - 1));
  return r < lo ? lo : (r > hi ? hi : r);
}

/* Uniform MAC (Fx_vector.dot): out[c] = sum_j w[j] * x[j][c], with a
 * constant fractional shift f and wrap into bits after every step.
 *   w   : Array1 (features)            raw weight codes
 *   x   : Array2 (features, capacity)  raw input codes
 *   out : Array1 (capacity)            raw projections
 */
CAMLprim value ldafp_infer_mac_uniform(value vw, value vx, value vout,
                                       value vlen, value vf, value vbits)
{
  const intnat *w = (const intnat *)Caml_ba_data_val(vw);
  const intnat *x = (const intnat *)Caml_ba_data_val(vx);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat features = Caml_ba_array_val(vx)->dim[0];
  intnat cap = Caml_ba_array_val(vx)->dim[1];
  intnat len = Long_val(vlen);
  intnat f = Long_val(vf);
  intnat bits = Long_val(vbits);
  intnat j, c;

  for (c = 0; c < len; c++) out[c] = 0;
  for (j = 0; j < features; j++) {
    int64_t wj = (int64_t)w[j];
    const intnat *row = x + j * cap;
    for (c = 0; c < len; c++) {
      int64_t p = mul_wrap63(wj, (int64_t)row[c]);
      p = shr_round_even(p, f);
      p = wrap_bits(p, bits);
      out[c] = (intnat)wrap_bits((int64_t)out[c] + p, bits);
    }
  }
  return Val_unit;
}

CAMLprim value ldafp_infer_mac_uniform_bytes(value *argv, int argn)
{
  (void)argn;
  return ldafp_infer_mac_uniform(argv[0], argv[1], argv[2], argv[3], argv[4],
                                 argv[5]);
}

/* Heterogeneous MAC (Hetero_classifier.project): per-feature weight
 * formats, so the product shift is shifts[j] (= f of weight j's format)
 * and the product is wrapped into the accumulator format before the
 * accumulate.  Inputs are already quantised into the accumulator
 * format. */
CAMLprim value ldafp_infer_mac_hetero(value vw, value vshifts, value vx,
                                      value vout, value vlen, value vbits)
{
  const intnat *w = (const intnat *)Caml_ba_data_val(vw);
  const intnat *shifts = (const intnat *)Caml_ba_data_val(vshifts);
  const intnat *x = (const intnat *)Caml_ba_data_val(vx);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat features = Caml_ba_array_val(vx)->dim[0];
  intnat cap = Caml_ba_array_val(vx)->dim[1];
  intnat len = Long_val(vlen);
  intnat bits = Long_val(vbits);
  intnat j, c;

  for (c = 0; c < len; c++) out[c] = 0;
  for (j = 0; j < features; j++) {
    int64_t wj = (int64_t)w[j];
    intnat fj = shifts[j];
    const intnat *row = x + j * cap;
    for (c = 0; c < len; c++) {
      int64_t p = mul_wrap63(wj, (int64_t)row[c]);
      p = shr_round_even(p, fj);
      p = wrap_bits(p, bits);
      out[c] = (intnat)wrap_bits((int64_t)out[c] + p, bits);
    }
  }
  return Val_unit;
}

CAMLprim value ldafp_infer_mac_hetero_bytes(value *argv, int argn)
{
  (void)argn;
  return ldafp_infer_mac_hetero(argv[0], argv[1], argv[2], argv[3], argv[4],
                                argv[5]);
}

/* Standardize stage: out[j][c] = sat((x[j][c] - mean[j]) * inv[j] >>r
 * shift).  The subtraction is exact (both operands share the input
 * format, so the difference fits 63 bits); the product is in units
 * 2^-(f_in + f_scale) and is shifted back to the output format with
 * round-half-even, then SATURATED (front-end semantics, like the
 * quantising ADC) into the output word length. */
CAMLprim value ldafp_infer_affine(value vmean, value vinv, value vx,
                                  value vout, value vlen, value vshift,
                                  value vbits)
{
  const intnat *mean = (const intnat *)Caml_ba_data_val(vmean);
  const intnat *inv = (const intnat *)Caml_ba_data_val(vinv);
  const intnat *x = (const intnat *)Caml_ba_data_val(vx);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat features = Caml_ba_array_val(vx)->dim[0];
  intnat cap_in = Caml_ba_array_val(vx)->dim[1];
  intnat cap_out = Caml_ba_array_val(vout)->dim[1];
  intnat len = Long_val(vlen);
  intnat shift = Long_val(vshift);
  intnat bits = Long_val(vbits);
  intnat j, c;

  for (j = 0; j < features; j++) {
    int64_t mj = (int64_t)mean[j];
    int64_t ij = (int64_t)inv[j];
    const intnat *row = x + j * cap_in;
    intnat *orow = out + j * cap_out;
    for (c = 0; c < len; c++) {
      int64_t d = (int64_t)row[c] - mj;
      int64_t p = mul_wrap63(d, ij);
      p = shr_round_even(p, shift);
      orow[c] = (intnat)sat_bits(p, bits);
    }
  }
  return Val_unit;
}

CAMLprim value ldafp_infer_affine_bytes(value *argv, int argn)
{
  (void)argn;
  return ldafp_infer_affine(argv[0], argv[1], argv[2], argv[3], argv[4],
                            argv[5], argv[6]);
}

/* Projection stage (PCA): out[o][c] = MAC_j mat[o][j] * x[j][c], the
 * same wrapping MAC as the classifier but with a rectangular matrix
 * (out_features, in_features) and an explicit shift back to the output
 * format. */
CAMLprim value ldafp_infer_matmul(value vmat, value vx, value vout, value vlen,
                                  value vshift, value vbits)
{
  const intnat *mat = (const intnat *)Caml_ba_data_val(vmat);
  const intnat *x = (const intnat *)Caml_ba_data_val(vx);
  intnat *out = (intnat *)Caml_ba_data_val(vout);
  intnat out_features = Caml_ba_array_val(vmat)->dim[0];
  intnat in_features = Caml_ba_array_val(vmat)->dim[1];
  intnat cap_in = Caml_ba_array_val(vx)->dim[1];
  intnat cap_out = Caml_ba_array_val(vout)->dim[1];
  intnat len = Long_val(vlen);
  intnat shift = Long_val(vshift);
  intnat bits = Long_val(vbits);
  intnat o, j, c;

  for (o = 0; o < out_features; o++) {
    const intnat *mrow = mat + o * in_features;
    intnat *orow = out + o * cap_out;
    for (c = 0; c < len; c++) orow[c] = 0;
    for (j = 0; j < in_features; j++) {
      int64_t mj = (int64_t)mrow[j];
      const intnat *row = x + j * cap_in;
      for (c = 0; c < len; c++) {
        int64_t p = mul_wrap63(mj, (int64_t)row[c]);
        p = shr_round_even(p, shift);
        p = wrap_bits(p, bits);
        orow[c] = (intnat)wrap_bits((int64_t)orow[c] + p, bits);
      }
    }
  }
  return Val_unit;
}

CAMLprim value ldafp_infer_matmul_bytes(value *argv, int argn)
{
  (void)argn;
  return ldafp_infer_matmul(argv[0], argv[1], argv[2], argv[3], argv[4],
                            argv[5]);
}
