(* Quickstart: train an LDA-FP classifier on the paper's synthetic task
   and compare it against conventional LDA at a 6-bit word length.

   Run with:  dune exec examples/quickstart.exe *)

open Ldafp_core

let () =
  (* 1. Data: the paper's three-feature synthetic task (eqs. 30-32).
     Only x1 separates the classes; x2 and x3 exist to cancel noise. *)
  let rng = Stats.Rng.create 2014 in
  let train = Datasets.Synthetic.generate ~n_per_class:1000 rng in
  let test = Datasets.Synthetic.generate ~n_per_class:10_000 rng in
  Fmt.pr "training data: %a@." Datasets.Dataset.pp_summary train;

  (* 2. Pick the on-chip number format: Q2.4 — six bits total. *)
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:4 in
  Fmt.pr "fixed-point format: %a (range [%g, %g], step %g)@."
    Fixedpoint.Qformat.pp fmt
    (Fixedpoint.Qformat.min_value fmt)
    (Fixedpoint.Qformat.max_value fmt)
    (Fixedpoint.Qformat.ulp fmt);

  (* 3. Baseline: conventional LDA, solved in floating point and rounded. *)
  let conventional = Pipeline.train_conventional ~fmt train in
  Fmt.pr "conventional LDA test error:  %.2f%%@."
    (100.0 *. Eval.error_fixed conventional test);

  (* 4. LDA-FP: train directly in the quantised weight space. *)
  (match Pipeline.train_ldafp ~fmt train with
  | None -> Fmt.pr "LDA-FP found no feasible classifier@."
  | Some { classifier; outcome; _ } ->
      Fmt.pr "LDA-FP test error:            %.2f%%@."
        (100.0 *. Eval.error_fixed classifier test);
      Fmt.pr "  cost %.4g, %d B&B nodes, trained in %.2fs@."
        outcome.Lda_fp.cost outcome.Lda_fp.diagnostics.Lda_fp.nodes
        outcome.Lda_fp.diagnostics.Lda_fp.train_seconds;
      Fmt.pr "  quantised weights: %a@." Fixedpoint.Fx_vector.pp
        classifier.Fixed_classifier.w;

      (* 5. Classify a single new trial through the hardware datapath. *)
      let trial = test.Datasets.Dataset.features.(0) in
      let label = test.Datasets.Dataset.labels.(0) in
      Fmt.pr "first test trial: predicted %s, truth %s@."
        (if Fixed_classifier.predict classifier trial then "A" else "B")
        (if label then "A" else "B"));

  (* 6. The power argument: at equal accuracy a shorter word is cheaper. *)
  Fmt.pr "power ratio 16b -> 6b (quadratic model): %.1fx@."
    (Hw.Power_model.quadratic_ratio ~from_wl:16 ~to_wl:6)
