(* Multi-class movement decoding: four movement directions decoded by a
   bank of pairwise fixed-point LDA-FP engines with one-vs-one voting —
   the natural extension of the paper's binary BCI case study.

   Run with:  dune exec examples/multiclass_decoding.exe *)

open Ldafp_core

(* Four direction classes in a 6-feature space: each direction activates
   a different pair of "electrodes" on top of shared background noise. *)
let four_direction_dataset ~trials rng =
  let directions =
    [|
      [| 0.8; 0.4; 0.0; 0.0; 0.0; 0.0 |];
      [| 0.0; 0.0; 0.8; 0.4; 0.0; 0.0 |];
      [| 0.0; 0.0; 0.0; 0.0; 0.8; 0.4 |];
      [| -0.5; 0.0; -0.5; 0.0; -0.5; 0.0 |];
    |]
  in
  let features = ref [] and labels = ref [] in
  Array.iteri
    (fun c center ->
      for _ = 1 to trials do
        let shared = Stats.Sampler.std_normal rng in
        features :=
          Array.map
            (fun m ->
              m +. (0.45 *. Stats.Sampler.std_normal rng) +. (0.35 *. shared))
            center
          :: !features;
        labels := c :: !labels
      done)
    directions;
  Multiclass.create ~name:"four-directions"
    ~features:(Array.of_list (List.rev !features))
    ~labels:(Array.of_list (List.rev !labels))

let () =
  let rng = Stats.Rng.create 77 in
  let train = four_direction_dataset ~trials:120 rng in
  let test = four_direction_dataset ~trials:400 rng in
  Fmt.pr "training: %d classes, %d trials, %d features@."
    train.Multiclass.n_classes
    (Multiclass.n_trials train)
    (Multiclass.n_features train);

  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:4 in
  let config =
    {
      Lda_fp.quick_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 40; rel_gap = 1e-2 };
    }
  in
  let train_one method_name trainer =
    match Multiclass.train ~train:trainer train with
    | None -> Fmt.pr "%s: training failed@." method_name
    | Some mc ->
        Fmt.pr "%s: %d pairwise %a engines, test error %.2f%%@." method_name
          (List.length mc.Multiclass.machines)
          Fixedpoint.Qformat.pp fmt
          (100.0 *. Multiclass.error mc test);
        if method_name = "LDA-FP" then begin
          Fmt.pr "confusion (rows = truth):@.";
          Array.iter
            (fun row ->
              Fmt.pr "  %a@."
                Fmt.(list ~sep:(any " ") (fmt "%4d"))
                (Array.to_list row))
            (Multiclass.confusion_matrix mc test)
        end
  in
  train_one "conventional LDA" (fun d ->
      Some (Pipeline.train_conventional ~fmt d));
  train_one "LDA-FP" (fun d ->
      Option.map
        (fun r -> r.Pipeline.classifier)
        (Pipeline.train_ldafp ~config ~fmt d))
