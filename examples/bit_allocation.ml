(* Per-weight word-length optimisation — the paper's stated future-work
   problem, solved greedily on top of a trained LDA-FP solution.

   Trains a uniform classifier, then strips fractional bits weight by
   weight (cheapest-first) while the training cost stays within 5% of the
   optimum, and compares storage, multiplier cost and test error of the
   uniform vs heterogeneous designs.

   Run with:  dune exec examples/bit_allocation.exe *)

open Ldafp_core

let () =
  let rng = Stats.Rng.create 42 in
  let train = Datasets.Ecog_sim.generate rng in
  let test = Datasets.Ecog_sim.generate rng in
  let wl = 8 in
  let fmt = Fixedpoint.Format_policy.default wl in
  let config =
    {
      Lda_fp.quick_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 20; rel_gap = 1e-2 };
    }
  in
  match Pipeline.train_ldafp ~config ~fmt train with
  | None -> Fmt.epr "no feasible classifier@."
  | Some r -> (
      let prep = Pipeline.prepare ~fmt train in
      let uniform_err = Eval.error_fixed r.Pipeline.classifier test in
      Fmt.pr "uniform %a design: test error %.2f%%, weight ROM %d bits@."
        Fixedpoint.Qformat.pp fmt (100.0 *. uniform_err)
        (wl * Datasets.Dataset.n_features train);
      match
        Bit_alloc.allocate ~max_cost_increase:0.05 r.Pipeline.problem
          r.Pipeline.outcome.Lda_fp.w
      with
      | None -> Fmt.epr "allocation failed@."
      | Some a ->
          Fmt.pr "allocation: %s@."
            (Bit_alloc.savings_summary r.Pipeline.problem a);
          let h = Bit_alloc.classifier ~prepared:prep a in
          let errors = ref 0 in
          Array.iteri
            (fun i row ->
              if
                Hetero_classifier.predict h row
                <> test.Datasets.Dataset.labels.(i)
              then incr errors)
            test.Datasets.Dataset.features;
          let hetero_err =
            float_of_int !errors
            /. float_of_int (Datasets.Dataset.n_trials test)
          in
          Fmt.pr "heterogeneous design: test error %.2f%%@."
            (100.0 *. hetero_err);
          let bits = Hetero_classifier.weight_bits h in
          let hist = Array.make (wl + 1) 0 in
          Array.iter (fun b -> hist.(b) <- hist.(b) + 1) bits;
          Fmt.pr "word-length distribution over the 42 weights:@.";
          Array.iteri
            (fun b n -> if n > 0 then Fmt.pr "  %2d bits: %d weights@." b n)
            hist)
