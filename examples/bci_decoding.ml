(* Brain-computer-interface movement decoding (paper §5.2).

   Trains fixed-point classifiers on the simulated ECoG dataset — 42
   band-power features from 6 electrodes, 70 trials per movement
   direction — and reports 5-fold cross-validation error, the protocol of
   the paper's Table 2.

   Run with:  dune exec examples/bci_decoding.exe *)

open Ldafp_core

let () =
  let params = Datasets.Ecog_sim.default_params in
  let rng = Stats.Rng.create 7 in
  let ds = Datasets.Ecog_sim.generate ~params rng in
  Fmt.pr "%a@." Datasets.Dataset.pp_summary ds;
  Fmt.pr "Bayes error of the generative model: %.2f%%@."
    (100.0 *. Datasets.Ecog_sim.bayes_error params);

  (* Floating-point reference. *)
  let cv_rng () = Stats.Rng.create 99 in
  (match
     Eval.kfold ~rng:(cv_rng ()) ~k:5
       ~train:(fun tr -> Some (Pipeline.train_float tr))
       ~predict:(fun (m, s) x -> Lda.predict m (Scaling.apply_vec s x))
       ds
   with
  | Some c ->
      Fmt.pr "floating-point LDA, 5-fold CV error: %.2f%%@."
        (100.0 *. Stats.Confusion.error_rate c)
  | None -> ());

  (* Fixed-point comparison at an implantable-grade word length. *)
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 12; rel_gap = 1e-2 };
    }
  in
  List.iter
    (fun wl ->
      let fmt = Fixedpoint.Format_policy.default wl in
      let lda =
        Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:5
          ~train:(fun tr -> Some (Pipeline.train_conventional ~fmt tr))
          ds
      in
      let ldafp =
        Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:5
          ~train:(fun tr ->
            Option.map
              (fun r -> r.Pipeline.classifier)
              (Pipeline.train_ldafp ~config ~fmt tr))
          ds
      in
      let show = function
        | Some e -> Printf.sprintf "%.2f%%" (100.0 *. e)
        | None -> "n/a"
      in
      Fmt.pr "WL=%d bits: LDA %s   LDA-FP %s@." wl (show lda) (show ldafp))
    [ 5; 6; 7 ];
  Fmt.pr
    "@.A 6-bit LDA-FP engine matches the 8-bit conventional engine; the \
     quadratic power model puts that at %.1fx lower power.@."
    (Hw.Power_model.quadratic_ratio ~from_wl:8 ~to_wl:6)
