(* Projection histograms: the view of the paper's Figure 1 — how well the
   two classes separate along the trained direction wᵀx — rendered for
   the fixed-point datapath output at a short and a long word length.

   Run with:  dune exec examples/projection_hist.exe *)

open Ldafp_core

let histogram_of clf ds cls =
  let projections =
    Array.of_list
      (List.filteri
         (fun i _ -> ds.Datasets.Dataset.labels.(i) = cls)
         (Array.to_list
            (Array.map
               (fun row ->
                 Fixedpoint.Fx.to_float (Fixed_classifier.project clf row))
               ds.Datasets.Dataset.features)))
  in
  let fmt = Fixed_classifier.format clf in
  Stats.Histogram.of_values
    ~lo:(Fixedpoint.Qformat.min_value fmt)
    ~hi:(Fixedpoint.Qformat.max_value fmt)
    ~bins:16 projections

let show_word_length train test wl =
  let fmt = Fixedpoint.Format_policy.default wl in
  match Pipeline.train_ldafp ~config:Lda_fp.quick_config ~fmt train with
  | None -> Fmt.pr "WL=%d: no feasible classifier@." wl
  | Some { classifier = clf; _ } ->
      Fmt.pr "@.=== %a (word length %d), test error %.2f%%, threshold %g ===@."
        Fixedpoint.Qformat.pp fmt wl
        (100.0 *. Eval.error_fixed clf test)
        (Fixed_classifier.threshold_value clf);
      Fmt.pr "class A projections:@.%s"
        (Stats.Histogram.render ~width:40 (histogram_of clf test true));
      Fmt.pr "class B projections:@.%s"
        (Stats.Histogram.render ~width:40 (histogram_of clf test false));
      let roc = Eval.roc_fixed clf test in
      Fmt.pr "AUC of the fixed-point margin: %.4f@." roc.Eval.auc

let () =
  let rng = Stats.Rng.create 2014 in
  let train = Datasets.Synthetic.generate ~n_per_class:1000 rng in
  let test = Datasets.Synthetic.generate ~n_per_class:3000 rng in
  List.iter (fun wl -> show_word_length train test wl) [ 4; 12 ]
