(* Full file-based workflow: export a dataset to CSV, reload it, train,
   persist the model, reload the model, and verify bit-exact behaviour —
   everything a deployment pipeline does around the trainer.

   Run with:  dune exec examples/csv_workflow.exe *)

open Ldafp_core

let with_temp suffix f =
  let path = Filename.temp_file "ldafp_example" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let () =
  let rng = Stats.Rng.create 123 in
  let ds = Datasets.Synthetic.generate ~n_per_class:400 rng in
  with_temp ".csv" @@ fun csv_path ->
  (* 1. Export and re-import: CSV roundtrips exactly (17 digits). *)
  Datasets.Dataset_io.save csv_path ds;
  let reloaded = Datasets.Dataset_io.load csv_path in
  Fmt.pr "exported and reloaded %a@." Datasets.Dataset.pp_summary reloaded;

  (* 2. Train on the reloaded data. *)
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:4 in
  match Pipeline.train_ldafp ~config:Lda_fp.quick_config ~fmt reloaded with
  | None -> Fmt.epr "training failed@."
  | Some { classifier; _ } ->
      with_temp ".model" @@ fun model_path ->
      (* 3. Persist and reload the model. *)
      Model_io.save model_path classifier;
      let restored = Model_io.load model_path in
      Fmt.pr "model saved to and restored from disk (%d bytes)@."
        (let ic = open_in model_path in
         let n = in_channel_length ic in
         close_in ic;
         n);

      (* 4. Verify the restored model is bit-exact on every trial. *)
      let mismatches = ref 0 in
      Array.iter
        (fun row ->
          if
            Fixed_classifier.predict classifier row
            <> Fixed_classifier.predict restored row
          then incr mismatches)
        reloaded.Datasets.Dataset.features;
      Fmt.pr "bit-exactness check: %d mismatches on %d trials@." !mismatches
        (Datasets.Dataset.n_trials reloaded);
      Fmt.pr "training-set error of the restored model: %.2f%%@."
        (100.0 *. Eval.error_fixed restored reloaded)
