(* Word-length sweep on the synthetic task: accuracy of conventional LDA
   vs LDA-FP at every word length, plus the relative power of each
   operating point — a compact version of the paper's Table 1 analysis.

   Run with:  dune exec examples/wordlength_sweep.exe *)

open Ldafp_core

let () =
  let rng = Stats.Rng.create 42 in
  let train = Datasets.Synthetic.generate ~n_per_class:1000 rng in
  let test = Datasets.Synthetic.generate ~n_per_class:10_000 rng in
  let model, scaling = Pipeline.train_float train in
  Fmt.pr "floating-point LDA reference error: %.2f%%@."
    (100.0 *. Eval.error_float model ~scaling test);
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 200; rel_gap = 1e-3 };
    }
  in
  let rows =
    List.map
      (fun wl ->
        let fmt = Fixedpoint.Format_policy.default wl in
        let conv = Pipeline.train_conventional ~fmt train in
        let e_lda = Eval.error_fixed conv test in
        let e_fp =
          match Pipeline.train_ldafp ~config ~fmt train with
          | Some r -> Eval.error_fixed r.Pipeline.classifier test
          | None -> Float.nan
        in
        let power =
          Hw.Power_model.quadratic_relative ~word_length:wl
          /. Hw.Power_model.quadratic_relative ~word_length:16
        in
        [
          string_of_int wl;
          Report.Table.pct e_lda;
          Report.Table.pct e_fp;
          Printf.sprintf "%.3f" power;
        ])
      [ 4; 5; 6; 8; 10; 12; 14; 16 ]
  in
  Report.Table.print ~title:"Synthetic task: error and relative power"
    ~columns:
      [
        Report.Table.column "WL";
        Report.Table.column "LDA err";
        Report.Table.column "LDA-FP err";
        Report.Table.column "P/P(16b)";
      ]
    ~rows ()
