(* Datapath trace: the paper's §3 wrap-around property, demonstrated on
   the cycle-accurate register-transfer simulation.

   "Calculating 3 + 3 - 4 in Q3.0: the intermediate sum 011 + 011 = 110
   overflows, but after adding 100 the final result 010 = 2 is correct."

   Run with:  dune exec examples/datapath_trace.exe *)

open Fixedpoint

let () =
  (* The paper's worked example: y = 3 + 3 - 4 in Q3.0 (weights all 1). *)
  let fmt = Qformat.make ~k:3 ~f:0 in
  let w = Fx_vector.of_floats fmt [| 1.0; 1.0; 1.0 |] in
  let x = Fx_vector.of_floats fmt [| 3.0; 3.0; -4.0 |] in
  let trace = Hw.Datapath.run ~w ~x ~threshold:(Fx.zero fmt) () in
  Fmt.pr "%a@." Hw.Datapath.pp trace;
  Fmt.pr
    "final y = %a (correct: 3 + 3 - 4 = 2), with %d intermediate \
     wrap-around(s) — harmless, exactly as §3 argues.@.@."
    Fx.pp (Hw.Datapath.y trace)
    (Hw.Datapath.wrap_events trace);

  (* The flip side: when the FINAL sum leaves the representable range,
     wrapping corrupts the output — this is precisely the failure mode the
     LDA-FP projection constraints (eq. 20) are there to prevent. *)
  let fmt = Qformat.make ~k:2 ~f:5 in
  let rng = Stats.Rng.create 17 in
  let n = 12 in
  let wv =
    Fx_vector.of_floats fmt
      (Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
  in
  let xv =
    Fx_vector.of_floats fmt
      (Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let trace = Hw.Datapath.run ~w:wv ~x:xv ~threshold:(Fx.zero fmt) () in
  let exact = Fx_vector.dot_reference wv xv in
  Fmt.pr
    "unconstrained 12-term MAC in %a: wrapped y = %a but the exact dot \
     product is %.4f — outside the %a range, so the register wrapped and \
     the sign flipped. LDA-FP's constraints (20) exclude such weight \
     vectors during training.@."
    Qformat.pp fmt Fx.pp (Hw.Datapath.y trace) exact Qformat.pp fmt
