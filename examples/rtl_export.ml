(* RTL export: train an LDA-FP classifier and emit the synthesizable
   Verilog module plus a self-checking testbench whose expected outputs
   come from the bit-exact OCaml datapath simulation.

   Run with:  dune exec examples/rtl_export.exe
   Outputs:   _build/ldafp_classifier.v, _build/ldafp_classifier_tb.v
              (written to the current directory) *)

open Ldafp_core

let write path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text);
  Fmt.pr "wrote %s (%d bytes)@." path (String.length text)

let () =
  let rng = Stats.Rng.create 31 in
  let train = Datasets.Synthetic.generate ~n_per_class:1000 rng in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:4 in
  match Pipeline.train_ldafp ~fmt train with
  | None -> Fmt.epr "no feasible classifier@."
  | Some { classifier = clf; _ } ->
      let spec =
        {
          Hw.Verilog_gen.module_name = "ldafp_classifier";
          fmt;
          weights = clf.Fixed_classifier.w;
          threshold = clf.Fixed_classifier.threshold;
          polarity = clf.Fixed_classifier.polarity;
        }
      in
      Fmt.pr "weight ROM:@.";
      List.iter
        (fun (i, bits) -> Fmt.pr "  w[%d] = %s@." i bits)
        (Hw.Verilog_gen.rom_contents spec);
      let gates =
        Hw.Gate_model.classifier
          ~width:(Fixedpoint.Qformat.word_length fmt)
          ~n_features:(Fixed_classifier.n_features clf)
      in
      Fmt.pr "estimated datapath complexity: %a@." Hw.Gate_model.pp gates;
      write "ldafp_classifier.v" (Hw.Verilog_gen.module_source spec);
      (* Testbench stimulus: the first 12 training trials, with expected
         outputs from the cycle-accurate OCaml datapath. *)
      let vectors =
        List.init 12 (fun i ->
            let x = train.Datasets.Dataset.features.(i) in
            let xq = Fixed_classifier.quantize_input clf x in
            let trace =
              Hw.Datapath.run ~polarity:clf.Fixed_classifier.polarity
                ~w:clf.Fixed_classifier.w ~x:xq
                ~threshold:clf.Fixed_classifier.threshold ()
            in
            { Hw.Verilog_gen.inputs = xq; expected = trace.Hw.Datapath.decision })
      in
      write "ldafp_classifier_tb.v"
        (Hw.Verilog_gen.testbench_source spec vectors)
