(* Wearable ECG monitor sizing — the paper's opening motivation ("a
   configurable and low-power mixed signal SoC for portable ECG
   monitoring") worked end to end on the simulated ECG beat classifier:

   1. train LDA vs LDA-FP across word lengths on the arrhythmia task;
   2. convert each operating point into energy per classified heartbeat
      (gate-level switched-capacitance proxy);
   3. report the battery-life multiplier of the shortest acceptable word.

   Run with:  dune exec examples/ecg_monitor.exe *)

open Ldafp_core

let () =
  let rng = Stats.Rng.create 99 in
  let params =
    { Datasets.Ecg_sim.default_params with
      Datasets.Ecg_sim.trials_per_class = 300 }
  in
  let train = Datasets.Ecg_sim.generate ~params rng in
  let test = Datasets.Ecg_sim.generate ~params rng in
  Fmt.pr "%a (Bayes error %.2f%%)@." Datasets.Dataset.pp_summary train
    (100.0 *. Datasets.Ecg_sim.bayes_error params);
  let n_features = Datasets.Dataset.n_features train in
  let config =
    {
      Lda_fp.quick_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 60; rel_gap = 1e-2 };
    }
  in
  let rows =
    List.filter_map
      (fun wl ->
        let fmt = Fixedpoint.Format_policy.default wl in
        let e_lda =
          Eval.error_fixed (Pipeline.train_conventional ~fmt train) test
        in
        match Pipeline.train_ldafp ~config ~fmt train with
        | None -> None
        | Some r ->
            let e_fp = Eval.error_fixed r.Pipeline.classifier test in
            let energy =
              Hw.Power_model.energy_per_classification ~word_length:wl
                ~n_features
            in
            Some (wl, e_lda, e_fp, energy))
      [ 3; 4; 5; 6; 8; 10; 12 ]
  in
  let _, _, _, e12 = List.nth rows (List.length rows - 1) in
  Report.Table.print ~title:"ECG beat classification vs word length"
    ~columns:
      [
        Report.Table.column "WL";
        Report.Table.column "LDA err";
        Report.Table.column "LDA-FP err";
        Report.Table.column "E/beat (rel)";
        Report.Table.column "battery x";
      ]
    ~rows:
      (List.map
         (fun (wl, e_lda, e_fp, energy) ->
           [
             string_of_int wl;
             Report.Table.pct e_lda;
             Report.Table.pct e_fp;
             Printf.sprintf "%.3f" (energy /. e12);
             Printf.sprintf "%.1f" (e12 /. energy);
           ])
         rows)
    ();
  (* Pick the shortest word within 2 points of the best LDA-FP error and
     explain the quantisation budget at that point. *)
  let best =
    List.fold_left (fun acc (_, _, e, _) -> Float.min acc e) 1.0 rows
  in
  (match List.find_opt (fun (_, _, e, _) -> e <= best +. 0.02) rows with
  | Some (wl, _, e, energy) ->
      Fmt.pr
        "@.chosen design: %d bits (%.2f%% error) - a beat classified every \
         second for a day costs %.1fx less energy than the 12-bit design@."
        wl (100.0 *. e) (e12 /. energy)
  | None -> ());
  (* Quantisation-noise view of the chosen point. *)
  let fmt = Fixedpoint.Format_policy.default 5 in
  match Pipeline.train_ldafp ~config ~fmt train with
  | Some r ->
      let prep = Pipeline.prepare ~fmt train in
      Fmt.pr "@.%a@."
        Quant_analysis.pp
        (Quant_analysis.analyze ~scatter:prep.Pipeline.scatter ~fmt
           r.Pipeline.outcome.Lda_fp.w)
  | None -> ()
