(* Accuracy/power trade-off frontier: for every word length, the error of
   the best trainable classifier and the relative power of its datapath —
   the design-space view behind the paper's "up to 9x power reduction"
   claim.

   Run with:  dune exec examples/power_tradeoff.exe *)

open Ldafp_core

let () =
  let rng = Stats.Rng.create 42 in
  let train = Datasets.Synthetic.generate ~n_per_class:1000 rng in
  let test = Datasets.Synthetic.generate ~n_per_class:10_000 rng in
  let n_features = Datasets.Dataset.n_features train in
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 200; rel_gap = 1e-3 };
    }
  in
  let points =
    List.filter_map
      (fun wl ->
        let fmt = Fixedpoint.Format_policy.default wl in
        match Pipeline.train_ldafp ~config ~fmt train with
        | None -> None
        | Some r ->
            let err = Eval.error_fixed r.Pipeline.classifier test in
            let p_quad = Hw.Power_model.quadratic_relative ~word_length:wl in
            let e_gate =
              Hw.Power_model.energy_per_classification ~word_length:wl
                ~n_features
            in
            Some (wl, err, p_quad, e_gate))
      [ 4; 5; 6; 7; 8; 10; 12; 14; 16 ]
  in
  let _, _, pq16, eg16 =
    List.find (fun (wl, _, _, _) -> wl = 16) points
  in
  Report.Table.print
    ~title:"LDA-FP accuracy vs power (relative to the 16-bit design)"
    ~columns:
      [
        Report.Table.column "WL";
        Report.Table.column "test err";
        Report.Table.column "P (WL^2)";
        Report.Table.column "E/classify (gates)";
      ]
    ~rows:
      (List.map
         (fun (wl, err, pq, eg) ->
           [
             string_of_int wl;
             Report.Table.pct err;
             Printf.sprintf "%.3f" (pq /. pq16);
             Printf.sprintf "%.3f" (eg /. eg16);
           ])
         points)
    ();
  (* Pick the cheapest operating point within 1% absolute of the best. *)
  let best_err =
    List.fold_left (fun acc (_, e, _, _) -> Float.min acc e) 1.0 points
  in
  let wl_star, err_star, pq_star, _ =
    List.find (fun (_, e, _, _) -> e <= best_err +. 0.01) points
  in
  Fmt.pr
    "@.cheapest design within 1%% of the best error: %d bits (%.2f%% \
     error), %.1fx less power than 16 bits@."
    wl_star (100.0 *. err_star) (pq16 /. pq_star)
