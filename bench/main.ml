(* Benchmark and reproduction harness.

   Default run regenerates every table and figure of the paper (DESIGN.md
   experiments E1-E5) in quick mode and runs the Bechamel solver-kernel
   micro-benchmarks.  Flags select individual experiments; [--full] uses
   the paper-scale budgets recorded in EXPERIMENTS.md. *)

open Report

let usage =
  "usage: main.exe [--table1] [--table2] [--figure2] [--figure4] [--power]\n\
  \                [--baselines] [--ecg] [--ablations] [--micro] [--parallel]\n\
  \                [--scaling] [--deep] [--quick-deep] [--faults] [--infer]\n\
  \                [--quick|--full] [--seed N]\n\
  \                [--trace FILE] [--metrics FILE]\n\
  \                [--telemetry-addr HOST:PORT] [--ledger FILE]\n\
   With no experiment flag, everything runs.\n\
   --deep runs the deep scaling benchmark: an exact run-to-completion\n\
   search of >= 10^5 nodes at 1/2/4 domains (--quick-deep sizes it for\n\
   CI, >= 10^4 nodes) reporting efficiency and seed-phase duration.\n\
   --infer benchmarks the batched fixed-point inference engine\n\
   (lib/infer): scalar vs batched vs multi-domain sharded preds/sec\n\
   plus a >= 10^5-input batched-vs-scalar bit-exactness sweep.\n\
   --trace records a Chrome trace-event timeline of the solver runs\n\
   (load in Perfetto); --metrics exports solver counters/histograms\n\
   (JSON when FILE ends in .json, Prometheus text otherwise).\n\
   --telemetry-addr serves GET /metrics, /metrics.json and /healthz\n\
   over HTTP while the bench runs (port 0 = ephemeral, printed at\n\
   startup); --ledger appends one ldafp-run/1 record with the full\n\
   BENCH_solver.json tree to the JSONL run ledger (see `ldafp runs`)."

type options = {
  mutable table1 : bool;
  mutable table2 : bool;
  mutable figure2 : bool;
  mutable figure4 : bool;
  mutable power : bool;
  mutable baselines : bool;
  mutable ecg : bool;
  mutable ablations : bool;
  mutable micro : bool;
  mutable parallel : bool;
  mutable scaling : bool;
  mutable deep : bool;
  mutable quick_deep : bool;
  mutable faults : bool;
  mutable infer : bool;
  mutable quick : bool;
  mutable seed : int option;
  mutable trace : string option;
  mutable metrics : string option;
  mutable telemetry_addr : string option;
  mutable ledger : string option;
}

let parse_args () =
  let o =
    {
      table1 = false; table2 = false; figure2 = false; figure4 = false;
      power = false; baselines = false; ecg = false; ablations = false;
      micro = false; parallel = false; scaling = false; deep = false;
      quick_deep = false; faults = false; infer = false;
      quick = true; seed = None; trace = None; metrics = None;
      telemetry_addr = None; ledger = None;
    }
  in
  let any = ref false in
  let args = Array.to_list Sys.argv in
  let rec go = function
    | [] -> ()
    | "--table1" :: rest -> any := true; o.table1 <- true; go rest
    | "--table2" :: rest -> any := true; o.table2 <- true; go rest
    | "--figure2" :: rest -> any := true; o.figure2 <- true; go rest
    | "--figure4" :: rest -> any := true; o.figure4 <- true; go rest
    | "--power" :: rest -> any := true; o.power <- true; go rest
    | "--baselines" :: rest -> any := true; o.baselines <- true; go rest
    | "--ecg" :: rest -> any := true; o.ecg <- true; go rest
    | "--ablations" :: rest -> any := true; o.ablations <- true; go rest
    | "--micro" :: rest -> any := true; o.micro <- true; go rest
    | "--parallel" :: rest -> any := true; o.parallel <- true; go rest
    | "--scaling" :: rest -> any := true; o.scaling <- true; go rest
    | "--deep" :: rest -> any := true; o.deep <- true; go rest
    | "--quick-deep" :: rest ->
        any := true;
        o.deep <- true;
        o.quick_deep <- true;
        go rest
    | "--faults" :: rest -> any := true; o.faults <- true; go rest
    | "--infer" :: rest -> any := true; o.infer <- true; go rest
    | "--quick" :: rest -> o.quick <- true; go rest
    | "--full" :: rest -> o.quick <- false; go rest
    | "--seed" :: n :: rest -> o.seed <- Some (int_of_string n); go rest
    | "--trace" :: path :: rest -> o.trace <- Some path; go rest
    | "--metrics" :: path :: rest -> o.metrics <- Some path; go rest
    | "--telemetry-addr" :: addr :: rest ->
        o.telemetry_addr <- Some addr;
        go rest
    | "--ledger" :: path :: rest -> o.ledger <- Some path; go rest
    | "--help" :: _ | "-h" :: _ -> print_endline usage; exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n%s\n" arg usage;
        exit 2
  in
  go (List.tl args);
  if not !any then begin
    o.table1 <- true;
    o.table2 <- true;
    o.figure2 <- true;
    o.figure4 <- true;
    o.power <- true;
    o.baselines <- true;
    o.ecg <- true;
    o.micro <- true;
    o.parallel <- true;
    o.scaling <- true;
    o.infer <- true
  end;
  o

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_solver.json)                        *)
(* ------------------------------------------------------------------ *)

(* The bench used to carry its own minimal JSON emitter; [Obs.Json] has
   the same constructors and [save] signature, plus a parser the
   observability tests use, so the local copy is gone. *)
module Json = Obs.Json

(* Total branch-and-bound nodes explored by the solves below, counted
   explicitly per solve (the BENCH_solver.json tree also contains
   [warm_nodes]/[cold_nodes] duplicates of the same runs, so a recursive
   sum over the JSON would double-count).  CI gates
   [metrics.ldafp_bnb_node_seconds.count == obs.nodes_total]: every
   explored node records exactly one node-seconds observation, so the
   two totals must agree whenever metrics were enabled for the whole
   run. *)
let obs_nodes = ref 0

let count_nodes outcome =
  match outcome with
  | Some o ->
      obs_nodes :=
        !obs_nodes + o.Ldafp_core.Lda_fp.diagnostics.Ldafp_core.Lda_fp.nodes
  | None -> ()

(* Every experiment record carries the environment needed to interpret
   its numbers later: the detected core count (the ROADMAP single-core
   caveat, machine-checkable at last) and a wall/CPU-clock sanity
   triple — cpu_wall_ratio ~ 1 on one busy core, ~ d when d domains
   genuinely ran in parallel, >> 1 when the container time-sliced.
   Keys an experiment already reports (e.g. the scaling runs' own
   [cores_detected]) are left untouched. *)
let with_env f =
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let j = f () in
  let wall = Unix.gettimeofday () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  match j with
  | Json.Obj kvs ->
      let extra =
        [
          ("cores_detected", Json.Int (Domain.recommended_domain_count ()));
          ("wall_seconds_total", Json.Float wall);
          ("cpu_seconds_total", Json.Float cpu);
          ( "cpu_wall_ratio",
            Json.Float (if wall > 0.0 then cpu /. wall else Float.nan) );
        ]
      in
      Json.Obj
        (kvs @ List.filter (fun (k, _) -> not (List.mem_assoc k kvs)) extra)
  | other -> other

let median xs =
  let a = Array.copy xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Float.nan
  else if n mod 2 = 1 then a.(n / 2)
  else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

(* Nearest-rank percentile (p in [0, 100]) — coarse but monotone, which
   is all the slack-distribution report needs. *)
let percentile p xs =
  let a = Array.copy xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Float.nan
  else
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) i))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the solver kernels (E6)                *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Stats.Rng.create 123 in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:6 in
  let m = 42 in
  let wq =
    Fixedpoint.Fx_vector.of_floats fmt
      (Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
  in
  let xq =
    Fixedpoint.Fx_vector.of_floats fmt
      (Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
  in
  let spd =
    let a =
      Linalg.Mat.init m m (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
    in
    Linalg.Mat.add_scaled_identity (float_of_int m)
      (Linalg.Mat.mul a (Linalg.Mat.transpose a))
  in
  let b = Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let ecog = Datasets.Ecog_sim.generate (Stats.Rng.create 5) in
  let prep = Ldafp_core.Pipeline.prepare ~fmt ecog in
  let problem = Ldafp_core.Ldafp_problem.build ~fmt prep.scatter in
  let relax =
    Ldafp_core.Ldafp_problem.relaxation problem
      ~wbox:problem.Ldafp_core.Ldafp_problem.elem_box
      ~trange:problem.Ldafp_core.Ldafp_problem.t_root
      ~eta:
        (Optim.Interval.sup_sq problem.Ldafp_core.Ldafp_problem.t_root)
  in
  let start =
    Array.map
      (fun iv -> Fixedpoint.Fx_interval.mid iv)
      problem.Ldafp_core.Ldafp_problem.elem_box
  in
  let synth = Datasets.Synthetic.generate ~n_per_class:500 (Stats.Rng.create 3) in
  let synth_a, synth_b = Datasets.Dataset.class_split synth in
  [
    Test.make ~name:"fx_dot_mac_42 (wrapped MAC, Q2.6)"
      (Staged.stage (fun () -> Fixedpoint.Fx_vector.dot wq xq));
    Test.make ~name:"cholesky_42x42"
      (Staged.stage (fun () -> Linalg.Cholesky.factor spd));
    Test.make ~name:"cholesky_solve_42"
      (Staged.stage (fun () -> Linalg.Cholesky.solve spd b));
    Test.make ~name:"gaussian_inv_cdf"
      (Staged.stage (fun () -> Stats.Gaussian.inv_cdf 0.995));
    Test.make ~name:"lda_train_synthetic"
      (Staged.stage (fun () -> Ldafp_core.Lda.train synth_a synth_b));
    Test.make ~name:"socp_root_relaxation_bci_42"
      (Staged.stage (fun () ->
           Optim.Socp.solve_auto relax ~start:(Array.copy start)));
  ]

let run_micro () =
  let open Bechamel in
  print_newline ();
  print_endline "Micro-benchmarks (E6): solver kernels";
  print_endline "=====================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let tests = micro_tests () in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) ->
              Printf.printf "  %-40s %12.1f ns/run\n%!" name t;
              estimates := (name, t) :: !estimates
          | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) tests);
  List.rev !estimates

(* ------------------------------------------------------------------ *)
(* Per-node bound kernel: cold vs warm start (E9)                      *)
(* ------------------------------------------------------------------ *)

(* Reproduces exactly what the branch-and-bound bound oracle does per
   node on the Table-1 synthetic problem: build the child relaxation
   from the shared template, establish strict feasibility, run the
   barrier.  Cold pays a phase-I solve from the box midpoint.  Warm
   replays the search's hot case {e adversarially}: the branching rule
   splits t at the parent optimum's projection, so the inherited point
   lands exactly on the child's branch-cut boundary and must be
   repaired (pulled to the analytic-center proxy, or Newton-corrected)
   before the barrier can run — [Socp.prepare_warm_start], the same
   code path the solver uses.  When the repair fails there is no warm
   timing to report: [warm_median_ms] is null and [warm_hits] is 0,
   never a cold-fallback median dressed up as a warm one.
   Correctness gate: cold and warm must agree on the objective to
   within the sum of their certified gap bounds. *)
let run_bound_kernel ~quick ?seed () =
  let open Ldafp_core in
  let seed = Option.value seed ~default:42 in
  print_newline ();
  print_endline "Per-node bound kernel: cold vs warm start (E9)";
  print_endline "==============================================";
  let rng = Stats.Rng.create seed in
  let ds =
    Datasets.Synthetic.generate ~n_per_class:(if quick then 300 else 1000) rng
  in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:6 in
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  let wbox = pb.Ldafp_problem.elem_box in
  let relax trange =
    Ldafp_problem.relaxation pb ~wbox ~trange
      ~eta:(Optim.Interval.sup_sq trange)
  in
  let mid_start () = Array.map Fixedpoint.Fx_interval.mid wbox in
  let root_trange = pb.Ldafp_problem.t_root in
  let root =
    match Optim.Socp.solve_auto (relax root_trange) ~start:(mid_start ()) with
    | Some s -> s
    | None -> failwith "bound-kernel bench: root relaxation infeasible"
  in
  (* One adversarial branch step on t: split exactly where the
     branching rule does — at the root optimum's projection — so the
     inherited point sits on the child's branch-cut half-space with
     zero slack.  The naive is-it-interior test always fails here;
     warm starting must go through the repair pipeline. *)
  let t_opt = Ldafp_problem.t_of pb root.Optim.Socp.x in
  let child_trange, _ = Optim.Interval.split ~at:t_opt root_trange in
  let child = relax child_trange in
  let params = Optim.Socp.default_params in
  let target =
    Ldafp_problem.center_point pb ~wbox ~trange:child_trange
  in
  let prepare () =
    Optim.Socp.prepare_warm_start ~params ~target child root.Optim.Socp.x
  in
  let prep_kind =
    match prepare () with
    | Some (_, Optim.Socp.Warm_interior) -> "interior"
    | Some (_, Optim.Socp.Warm_pulled) -> "pulled_to_interior"
    | Some (_, Optim.Socp.Warm_corrected) -> "newton_corrected"
    | None -> "miss"
  in
  let cold () =
    match Optim.Socp.solve_auto ~params child ~start:(mid_start ()) with
    | Some s -> s
    | None -> failwith "bound-kernel bench: child relaxation infeasible"
  in
  (* The repair runs inside the timed region: its cost is part of the
     per-node warm path the search pays. *)
  let warm () =
    match prepare () with
    | Some (x0, _) ->
        Some
          (Optim.Socp.solve
             ~params:(Optim.Socp.warm_start_params params)
             child ~start:x0)
    | None -> None
  in
  let reps = if quick then 21 else 51 in
  let time_ms f =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        1e3 *. (Unix.gettimeofday () -. t0))
  in
  let cold_sol = cold () in
  let cold_ms = median (time_ms cold) in
  (* Certificate overhead: the independent dual verification every
     pruning bound now pays, as a fraction of the bound solve itself.
     Timed on the same child relaxation/solution pair as the cold
     kernel so the ratio compares like with like. *)
  let cert_ms =
    median
      (time_ms (fun () ->
           match Optim.Socp.certify_lower_bound child cold_sol with
           | Ok _ -> ()
           | Error f ->
               failwith
                 ("bound-kernel bench: certificate failed: "
                 ^ Optim.Socp.describe_cert_failure f)))
  in
  let cert_overhead = cert_ms /. Float.max cold_ms 1e-12 in
  (* Primal-vs-dual slack distribution over a chain of genuinely
     distinct relaxations (split on t at each level's optimum), not the
     same node certified [reps] times. *)
  let cert_slacks =
    let rec walk trange acc k =
      if k = 0 then acc
      else
        let p = relax trange in
        match Optim.Socp.solve_auto ~params p ~start:(mid_start ()) with
        | None -> acc
        | Some s -> (
            match Optim.Socp.certify_lower_bound p s with
            | Error _ -> acc
            | Ok c ->
                let t_opt = Ldafp_problem.t_of pb s.Optim.Socp.x in
                let sub, _ = Optim.Interval.split ~at:t_opt trange in
                walk sub (c.Optim.Socp.slack :: acc) (k - 1))
    in
    Array.of_list (walk root_trange [] (if quick then 6 else 10))
  in
  Printf.printf "  synthetic %s problem, %d reps, warm preparation: %s\n"
    (Fixedpoint.Qformat.to_string fmt)
    reps prep_kind;
  Printf.printf "  cold  (phase-I + barrier):        median %8.3f ms\n" cold_ms;
  Printf.printf
    "  cert  (dual verification):        median %8.3f ms  (%.1f%% of the \
     cold bound)\n"
    cert_ms (100.0 *. cert_overhead);
  Printf.printf
    "  cert slack over %d node(s): p50 %.3g  p90 %.3g  max %.3g\n%!"
    (Array.length cert_slacks)
    (percentile 50.0 cert_slacks)
    (percentile 90.0 cert_slacks)
    (percentile 100.0 cert_slacks);
  let common =
    [
      ("problem", Json.Str (Fixedpoint.Qformat.to_string fmt));
      ("reps", Json.Int reps);
      ("warm_prep", Json.Str prep_kind);
      ("cold_median_ms", Json.Float cold_ms);
      ("cold_objective", Json.Float cold_sol.Optim.Socp.objective);
      ("cert_median_ms", Json.Float cert_ms);
      ("cert_overhead_ratio", Json.Float cert_overhead);
      ("cert_slack_nodes", Json.Int (Array.length cert_slacks));
      ("cert_slack_p50", Json.Float (percentile 50.0 cert_slacks));
      ("cert_slack_p90", Json.Float (percentile 90.0 cert_slacks));
      ("cert_slack_max", Json.Float (percentile 100.0 cert_slacks));
    ]
  in
  match warm () with
  | None ->
      (* No warm hit: publish the absence honestly.  A cold-fallback
         median here would report "warm" timings that never exercised
         the warm path — exactly the artifact that hid the interiority
         regression. *)
      Printf.printf
        "  warm  irreparable (0/%d hits): no warm timing to report\n%!" reps;
      Json.Obj
        (common
        @ [
            ("warm_hits", Json.Int 0);
            ("warm_median_ms", Json.Null);
            ("speedup", Json.Null);
            ("objective_agreement", Json.Bool true);
          ])
  | Some warm_sol ->
      let warm_ms =
        median
          (time_ms (fun () ->
               match warm () with
               | Some _ -> ()
               | None -> failwith "bound-kernel bench: warm repair regressed"))
      in
      let speedup = cold_ms /. Float.max warm_ms 1e-12 in
      let delta =
        Float.abs
          (cold_sol.Optim.Socp.objective -. warm_sol.Optim.Socp.objective)
      in
      let tol =
        cold_sol.Optim.Socp.gap_bound +. warm_sol.Optim.Socp.gap_bound
        +. (1e-9 *. (1.0 +. Float.abs cold_sol.Optim.Socp.objective))
      in
      let agree = delta <= tol in
      Printf.printf
        "  warm  (repair + barrier):         median %8.3f ms  (%d/%d hits)\n"
        warm_ms reps reps;
      Printf.printf
        "  speedup %.2fx   objective agreement %b (|delta| %.3g <= %.3g)\n%!"
        speedup agree delta tol;
      Json.Obj
        (common
        @ [
            ("warm_hits", Json.Int reps);
            ("warm_median_ms", Json.Float warm_ms);
            ("speedup", Json.Float speedup);
            ("warm_objective", Json.Float warm_sol.Optim.Socp.objective);
            ("objective_delta", Json.Float delta);
            ("objective_tolerance", Json.Float tol);
            ("objective_agreement", Json.Bool agree);
          ])

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel branch-and-bound (E7)                        *)
(* ------------------------------------------------------------------ *)

let run_parallel_bnb ~quick ?seed () =
  let open Ldafp_core in
  let seed = Option.value seed ~default:42 in
  print_newline ();
  print_endline "Branch-and-bound: sequential vs parallel (E7)";
  print_endline "=============================================";
  let rng = Stats.Rng.create seed in
  let ds =
    Datasets.Synthetic.generate ~n_per_class:(if quick then 300 else 1000) rng
  in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:(if quick then 4 else 6) in
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  let max_nodes = if quick then 150 else 2000 in
  let solve ?(warm_start = true) ?(certify = true) domains =
    let config =
      {
        Lda_fp.default_config with
        bnb_params =
          { Optim.Bnb.default_params with max_nodes; rel_gap = 1e-6; domains };
        warm_start;
        certify;
      }
    in
    let t0 = Unix.gettimeofday () in
    let outcome = Lda_fp.solve ~config pb in
    count_nodes outcome;
    (outcome, Unix.gettimeofday () -. t0)
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "synthetic %s problem, %d-node budget, %d core(s) detected\n"
    (Fixedpoint.Qformat.to_string fmt)
    max_nodes cores;
  let seq, seq_t = solve 1 in
  let report label (outcome, t) =
    match outcome with
    | None -> Printf.printf "  %-12s no feasible solution\n%!" label
    | Some o ->
        let d = o.Lda_fp.diagnostics in
        let s = d.Lda_fp.search in
        let seq_cost =
          match seq with Some s -> s.Lda_fp.cost | None -> Float.nan
        in
        Printf.printf
          "  %-12s cost %.6g  nodes %5d  idle %4d  warm %4d  %6.2fs  \
           speedup %.2fx  (cost ratio vs seq %.6f)\n\
           %!"
          label o.Lda_fp.cost d.Lda_fp.nodes s.Optim.Bnb.idle_wakeups
          s.Optim.Bnb.warm_start_hits t
          (seq_t /. Float.max t 1e-9)
          (o.Lda_fp.cost /. seq_cost)
  in
  (* [vs_seq] says whether the warm sequential run is a meaningful
     scaling baseline for this record.  The cold d=1 ablation exists to
     gate warm/cold agreement, not scaling: normalizing its time
     against the {e warm} run produced a bogus "efficiency" (warm_t /
     cold_t), so that record reports null instead. *)
  let record ?(vs_seq = true) label domains (outcome, t) =
    match outcome with
    | None ->
        Json.Obj
          [
            ("label", Json.Str label);
            ("domains", Json.Int domains);
            ("feasible", Json.Bool false);
            ("seconds", Json.Float t);
          ]
    | Some o ->
        let d = o.Lda_fp.diagnostics in
        let s = d.Lda_fp.search in
        let per_domain = s.Optim.Bnb.domain_oracle_seconds in
        (* Per-domain oracle utilization: each entry is that worker's
           oracle time over the run's wall-clock, so every entry is in
           [0, 1] regardless of domain count — unlike the old summed
           oracle_seconds, which reported 0.27s "inside" a 0.09s run. *)
        let utilization =
          Array.map (fun os -> os /. Float.max t 1e-9) per_domain
        in
        let misses =
          s.Optim.Bnb.warm_miss_no_parent + s.Optim.Bnb.warm_miss_not_interior
          + s.Optim.Bnb.warm_miss_fault_cleared
        in
        Json.Obj
          [
            ("label", Json.Str label);
            ("domains", Json.Int domains);
            ("feasible", Json.Bool true);
            ("seconds", Json.Float t);
            (* T1 / (d * Td): 1.0 = perfect linear scaling. *)
            ( "scaling_efficiency",
              if vs_seq then
                Json.Float
                  (seq_t /. (float_of_int domains *. Float.max t 1e-9))
              else Json.Null );
            ("cost", Json.Float o.Lda_fp.cost);
            ("nodes", Json.Int d.Lda_fp.nodes);
            ("warm_start_hits", Json.Int s.Optim.Bnb.warm_start_hits);
            ("phase1_skipped", Json.Int s.Optim.Bnb.phase1_skipped);
            ( "warm_hit_rate",
              Json.Float
                (float_of_int s.Optim.Bnb.warm_start_hits
                /. float_of_int (max 1 (s.Optim.Bnb.warm_start_hits + misses)))
            );
            ("warm_miss_no_parent", Json.Int s.Optim.Bnb.warm_miss_no_parent);
            ( "warm_miss_not_interior",
              Json.Int s.Optim.Bnb.warm_miss_not_interior );
            ( "warm_miss_fault_cleared",
              Json.Int s.Optim.Bnb.warm_miss_fault_cleared );
            ("warm_pull_ins", Json.Int s.Optim.Bnb.warm_pull_ins);
            ( "warm_newton_corrections",
              Json.Int s.Optim.Bnb.warm_newton_corrections );
            ("stolen_warm", Json.Int s.Optim.Bnb.stolen_warm);
            ( "oracle_seconds_per_domain",
              Json.List
                (Array.to_list (Array.map (fun x -> Json.Float x) per_domain))
            );
            ( "oracle_utilization",
              Json.List
                (Array.to_list (Array.map (fun x -> Json.Float x) utilization))
            );
            ("steals", Json.Int s.Optim.Bnb.steals);
            ("stolen_nodes", Json.Int s.Optim.Bnb.stolen_nodes);
            ("idle_wakeups", Json.Int s.Optim.Bnb.idle_wakeups);
            ("seed_nodes", Json.Int s.Optim.Bnb.seed_nodes);
            ("seed_seconds", Json.Float s.Optim.Bnb.seed_seconds);
            ("targeted_wakeups", Json.Int s.Optim.Bnb.targeted_wakeups);
            ("steals_best_victim", Json.Int s.Optim.Bnb.steals_best_victim);
            ( "first_node_seconds",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun x -> Json.Float x)
                      s.Optim.Bnb.domain_first_node_seconds)) );
            ("cert_verified", Json.Int s.Optim.Bnb.cert_verified);
            ("cert_repaired", Json.Int s.Optim.Bnb.cert_repaired);
            ("cert_fallbacks", Json.Int s.Optim.Bnb.cert_fallbacks);
            ("certified_sound", Json.Bool s.Optim.Bnb.certified_sound);
          ]
  in
  report "domains=1" (seq, seq_t);
  (* Cold ablation at domains=1 — the warm/cold agreement gate CI checks. *)
  let cold, cold_t = solve ~warm_start:false 1 in
  report "cold d=1" (cold, cold_t);
  let records = ref [ record ~vs_seq:false "cold d=1" 1 (cold, cold_t);
                      record "domains=1" 1 (seq, seq_t) ] in
  List.iter
    (fun domains ->
      if domains > 1 then begin
        let label = Printf.sprintf "domains=%d" domains in
        let r = solve domains in
        report label r;
        records := record label domains r :: !records
      end)
    [ 2; 4 ];
  let cost_of = function
    | Some o, _ -> o.Ldafp_core.Lda_fp.cost
    | None, _ -> Float.nan
  in
  let nodes_of = function
    | Some o, _ -> o.Ldafp_core.Lda_fp.diagnostics.Ldafp_core.Lda_fp.nodes
    | None, _ -> -1
  in
  let gap_of = function
    | Some o, _ -> o.Ldafp_core.Lda_fp.diagnostics.Ldafp_core.Lda_fp.gap
    | None, _ -> Float.nan
  in
  let same_incumbent = cost_of (seq, seq_t) = cost_of (cold, cold_t) in
  let same_nodes = nodes_of (seq, seq_t) = nodes_of (cold, cold_t) in
  (* Bitwise equality, deliberately: a repaired warm start changes only
     where the barrier {e starts}, never the ladder it climbs or the
     terminal tau, so the certified gap the search reports must be the
     very same float.  Any divergence means warm starting changed the
     mathematics, not just the wall-clock. *)
  let same_gap = gap_of (seq, seq_t) = gap_of (cold, cold_t) in
  Printf.printf
    "  warm vs cold (domains=1): same incumbent %b, same certified gap %b, \
     same node count %b\n\
     %!"
    same_incumbent same_gap same_nodes;
  (* Certified vs trusting ablation (domains=1): pruning on the verified
     dual certificate must land on the same incumbent as pruning on the
     raw primal objective when the solver is healthy.  Only the
     incumbent is gated — the certified bound is looser than the primal
     one by construction (the dual slack), so gaps and node counts are
     recorded as information, not equality. *)
  let trusting, trusting_t = solve ~certify:false 1 in
  let cert_same_incumbent = cost_of (seq, seq_t) = cost_of (trusting, trusting_t) in
  let stats_of = function
    | Some o, _ ->
        Some o.Ldafp_core.Lda_fp.diagnostics.Ldafp_core.Lda_fp.search
    | None, _ -> None
  in
  let seq_stats = stats_of (seq, seq_t) in
  let certified_sound =
    match seq_stats with Some s -> s.Optim.Bnb.certified_sound | None -> false
  in
  let cert_int f = match seq_stats with Some s -> f s | None -> -1 in
  Printf.printf
    "  certified vs trusting (domains=1): same incumbent %b, certified \
     sound %b, %d verified / %d repaired / %d fallback(s)\n\
     %!"
    cert_same_incumbent certified_sound
    (cert_int (fun s -> s.Optim.Bnb.cert_verified))
    (cert_int (fun s -> s.Optim.Bnb.cert_repaired))
    (cert_int (fun s -> s.Optim.Bnb.cert_fallbacks));
  Json.Obj
    [
      ("experiments", Json.List (List.rev !records));
      ( "warm_vs_cold",
        Json.Obj
          [
            ("same_incumbent", Json.Bool same_incumbent);
            ("same_certified_gap", Json.Bool same_gap);
            (* Node counts are informational: they have matched on every
               run so far, but the contract the search promises is
               incumbent + certified-gap equality. *)
            ("same_nodes", Json.Bool same_nodes);
            ("warm_cost", Json.Float (cost_of (seq, seq_t)));
            ("cold_cost", Json.Float (cost_of (cold, cold_t)));
            ("warm_gap", Json.Float (gap_of (seq, seq_t)));
            ("cold_gap", Json.Float (gap_of (cold, cold_t)));
            ("warm_nodes", Json.Int (nodes_of (seq, seq_t)));
            ("cold_nodes", Json.Int (nodes_of (cold, cold_t)));
          ] );
      ( "certified_vs_trusting",
        Json.Obj
          [
            ("same_incumbent", Json.Bool cert_same_incumbent);
            ("certified_sound", Json.Bool certified_sound);
            ("cert_verified", Json.Int (cert_int (fun s -> s.Optim.Bnb.cert_verified)));
            ("cert_repaired", Json.Int (cert_int (fun s -> s.Optim.Bnb.cert_repaired)));
            ("cert_fallbacks", Json.Int (cert_int (fun s -> s.Optim.Bnb.cert_fallbacks)));
            ("certified_cost", Json.Float (cost_of (seq, seq_t)));
            ("trusting_cost", Json.Float (cost_of (trusting, trusting_t)));
            ("certified_gap", Json.Float (gap_of (seq, seq_t)));
            ("trusting_gap", Json.Float (gap_of (trusting, trusting_t)));
            ("certified_nodes", Json.Int (nodes_of (seq, seq_t)));
            ("trusting_nodes", Json.Int (nodes_of (trusting, trusting_t)));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Work-stealing scaling on a >= 10^3-node search (E10)                *)
(* ------------------------------------------------------------------ *)

(* The E7 comparison runs a 150-node budgeted search — far too small to
   amortize domain spawns, so its timings are startup noise.  This one
   is an exact search (rel_gap = 1e-9, the same tolerance the
   brute-force closure tests use; abs_gap = 0; node budget only as a
   runaway stop) on a problem sized to take >= 10^3 nodes to close
   (Q2.3: ~8.6k nodes).  Run-to-completion is also what makes the
   cross-domain correctness gate sharp: every domain count must prove
   the same optimum, bit for bit, no matter how nodes were stolen.  CI
   gates on that agreement and on the certified gap — never on the
   timings, which depend on the runner's core count (reported here as
   context: on a single hardware core, multi-domain runs can only be
   slower — time-slicing plus cross-domain GC barriers — and the
   efficiency field records exactly that instead of pretending
   otherwise). *)
let stop_name = Optim.Bnb.stop_reason_name

let run_scaling_bnb ~quick ?seed () =
  let open Ldafp_core in
  let seed = Option.value seed ~default:42 in
  print_newline ();
  print_endline "Work-stealing scaling: exact search, >= 10^3 nodes (E10)";
  print_endline "========================================================";
  let rng = Stats.Rng.create seed in
  let ds =
    Datasets.Synthetic.generate ~n_per_class:(if quick then 200 else 600) rng
  in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  let solve domains =
    let config =
      {
        Lda_fp.default_config with
        bnb_params =
          {
            Optim.Bnb.default_params with
            max_nodes = 200_000;
            rel_gap = 1e-9;
            abs_gap = 0.0;
            domains;
          };
      }
    in
    let t0 = Unix.gettimeofday () in
    let outcome = Lda_fp.solve ~config pb in
    count_nodes outcome;
    (outcome, Unix.gettimeofday () -. t0)
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "synthetic %s problem, exact search, %d core(s) detected\n%!"
    (Fixedpoint.Qformat.to_string fmt)
    cores;
  let seq, seq_t = solve 1 in
  let seq_cost = match seq with Some o -> o.Lda_fp.cost | None -> Float.nan in
  let seq_nodes =
    match seq with
    | Some o -> o.Lda_fp.diagnostics.Lda_fp.nodes
    | None -> -1
  in
  let one domains (outcome, t) =
    match outcome with
    | None ->
        Printf.printf "  domains=%d  no feasible solution (%.2fs)\n%!" domains
          t;
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("feasible", Json.Bool false);
            ("cost_agrees", Json.Bool false);
            ("seconds", Json.Float t);
          ]
    | Some o ->
        let d = o.Lda_fp.diagnostics in
        let s = d.Lda_fp.search in
        let efficiency = seq_t /. (float_of_int domains *. Float.max t 1e-9) in
        (* Exact searches must land on the same optimum regardless of
           how nodes migrated; the incumbent is a grid point evaluated
           by the same float expression everywhere, so exact equality
           is the right test. *)
        let cost_agrees = o.Lda_fp.cost = seq_cost in
        Printf.printf
          "  domains=%d  cost %.6g  nodes %6d  steals %4d (%5d nodes)  \
           %6.2fs  speedup %.2fx  efficiency %.2f  %s\n\
           %!"
          domains o.Lda_fp.cost d.Lda_fp.nodes s.Optim.Bnb.steals
          s.Optim.Bnb.stolen_nodes t
          (seq_t /. Float.max t 1e-9)
          efficiency
          (stop_name d.Lda_fp.stop_reason);
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("feasible", Json.Bool true);
            ("cost", Json.Float o.Lda_fp.cost);
            ("cost_agrees", Json.Bool cost_agrees);
            ("certified_gap", Json.Float d.Lda_fp.gap);
            ("nodes", Json.Int d.Lda_fp.nodes);
            ("stop_reason", Json.Str (stop_name d.Lda_fp.stop_reason));
            ("seconds", Json.Float t);
            ("scaling_efficiency", Json.Float efficiency);
            ("steals", Json.Int s.Optim.Bnb.steals);
            ("stolen_nodes", Json.Int s.Optim.Bnb.stolen_nodes);
            ("idle_wakeups", Json.Int s.Optim.Bnb.idle_wakeups);
            ("seed_nodes", Json.Int s.Optim.Bnb.seed_nodes);
            ("seed_seconds", Json.Float s.Optim.Bnb.seed_seconds);
            ("targeted_wakeups", Json.Int s.Optim.Bnb.targeted_wakeups);
            ("steals_best_victim", Json.Int s.Optim.Bnb.steals_best_victim);
            ( "first_node_seconds",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun x -> Json.Float x)
                      s.Optim.Bnb.domain_first_node_seconds)) );
            ( "oracle_utilization",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun os -> Json.Float (os /. Float.max t 1e-9))
                      s.Optim.Bnb.domain_oracle_seconds)) );
          ]
  in
  let runs =
    List.map
      (fun domains ->
        if domains = 1 then one 1 (seq, seq_t) else one domains (solve domains))
      [ 1; 2; 4 ]
  in
  if seq_nodes >= 0 && seq_nodes < 1000 then
    Printf.printf
      "  note: sequential search closed in %d nodes (< 1000) — problem \
       smaller than intended for scaling\n\
       %!"
      seq_nodes;
  Json.Obj
    [
      ("problem", Json.Str (Fixedpoint.Qformat.to_string fmt));
      ("cores_detected", Json.Int cores);
      ("sequential_nodes", Json.Int seq_nodes);
      ("runs", Json.List runs);
    ]

(* ------------------------------------------------------------------ *)
(* Deep scaling: exact run-to-completion search, >= 10^5 nodes (E11)   *)
(* ------------------------------------------------------------------ *)

(* The E10 search closes in ~10^4 nodes — deep enough to amortize domain
   spawns but still dominated by the single-frontier warm-up before the
   first steals.  This experiment is the scaling benchmark proper: an
   exact run-to-drain search (rel_gap = abs_gap = 0: the frontier is
   explored until it is empty, so the certified gap is exactly 0.0 and
   the incumbent/gap comparison across domain counts is bitwise) sized
   to >= 10^5 nodes (--quick-deep: >= 10^4, the CI size).  Alongside the
   efficiency it reports what the seeding phase did (nodes, seconds) and
   the hot-path scheduler counters (targeted wakeups, best-victim
   steals, per-domain time to first expansion) so a scaling regression
   can be attributed.  CI gates only correctness and seed-field
   consistency — the timings depend on the runner's core count, which
   is recorded as context in [cores_detected]. *)
let run_scaling_deep ~quick_deep ?seed () =
  let open Ldafp_core in
  let seed = Option.value seed ~default:42 in
  let target_nodes = if quick_deep then 10_000 else 100_000 in
  print_newline ();
  Printf.printf
    "Deep scaling: exact run-to-drain search, >= 10^%d nodes (E11)\n"
    (if quick_deep then 4 else 5);
  print_endline "=============================================================";
  let rng = Stats.Rng.create seed in
  let ds =
    Datasets.Synthetic.generate ~n_per_class:(if quick_deep then 200 else 300)
      rng
  in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:(if quick_deep then 5 else 7) in
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  let solve domains =
    let config =
      {
        Lda_fp.default_config with
        bnb_params =
          {
            Optim.Bnb.default_params with
            max_nodes = 5_000_000 (* runaway stop only *);
            rel_gap = 0.0;
            abs_gap = 0.0;
            domains;
          };
      }
    in
    let t0 = Unix.gettimeofday () in
    let outcome = Lda_fp.solve ~config pb in
    count_nodes outcome;
    (outcome, Unix.gettimeofday () -. t0)
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "synthetic %s problem, exact run-to-drain, %d core(s) detected\n%!"
    (Fixedpoint.Qformat.to_string fmt)
    cores;
  let seq, seq_t = solve 1 in
  let seq_cost = match seq with Some o -> o.Lda_fp.cost | None -> Float.nan in
  let seq_gap =
    match seq with
    | Some o -> o.Lda_fp.diagnostics.Lda_fp.gap
    | None -> Float.nan
  in
  let seq_nodes =
    match seq with
    | Some o -> o.Lda_fp.diagnostics.Lda_fp.nodes
    | None -> -1
  in
  let one domains (outcome, t) =
    match outcome with
    | None ->
        Printf.printf "  domains=%d  no feasible solution (%.2fs)\n%!" domains
          t;
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("feasible", Json.Bool false);
            ("cost_agrees", Json.Bool false);
            ("gap_agrees", Json.Bool false);
            ("seconds", Json.Float t);
          ]
    | Some o ->
        let d = o.Lda_fp.diagnostics in
        let s = d.Lda_fp.search in
        let efficiency = seq_t /. (float_of_int domains *. Float.max t 1e-9) in
        (* Run-to-drain: every domain count proves the same optimum with
           the same (zero) certified gap, so exact float equality is the
           right comparison on both. *)
        let cost_agrees = o.Lda_fp.cost = seq_cost in
        let gap_agrees = d.Lda_fp.gap = seq_gap in
        Printf.printf
          "  domains=%d  cost %.6g  nodes %6d  seed %5d/%.3fs  steals %4d  \
           %7.2fs  efficiency %.2f  %s\n\
           %!"
          domains o.Lda_fp.cost d.Lda_fp.nodes s.Optim.Bnb.seed_nodes
          s.Optim.Bnb.seed_seconds s.Optim.Bnb.steals t efficiency
          (stop_name d.Lda_fp.stop_reason);
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("feasible", Json.Bool true);
            ("cost", Json.Float o.Lda_fp.cost);
            ("cost_agrees", Json.Bool cost_agrees);
            ("certified_gap", Json.Float d.Lda_fp.gap);
            ("gap_agrees", Json.Bool gap_agrees);
            ("certified_sound", Json.Bool s.Optim.Bnb.certified_sound);
            ("cert_fallbacks", Json.Int s.Optim.Bnb.cert_fallbacks);
            ("nodes", Json.Int d.Lda_fp.nodes);
            ("stop_reason", Json.Str (stop_name d.Lda_fp.stop_reason));
            ("seconds", Json.Float t);
            ("scaling_efficiency", Json.Float efficiency);
            ("seed_nodes", Json.Int s.Optim.Bnb.seed_nodes);
            ("seed_seconds", Json.Float s.Optim.Bnb.seed_seconds);
            ("steals", Json.Int s.Optim.Bnb.steals);
            ("stolen_nodes", Json.Int s.Optim.Bnb.stolen_nodes);
            ("idle_wakeups", Json.Int s.Optim.Bnb.idle_wakeups);
            ("targeted_wakeups", Json.Int s.Optim.Bnb.targeted_wakeups);
            ("steals_best_victim", Json.Int s.Optim.Bnb.steals_best_victim);
            ( "first_node_seconds",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun x -> Json.Float x)
                      s.Optim.Bnb.domain_first_node_seconds)) );
          ]
  in
  let runs =
    List.map
      (fun domains ->
        if domains = 1 then one 1 (seq, seq_t) else one domains (solve domains))
      [ 1; 2; 4 ]
  in
  if seq_nodes >= 0 && seq_nodes < target_nodes then
    Printf.printf
      "  note: sequential search closed in %d nodes (< %d) — problem \
       smaller than intended for deep scaling\n\
       %!"
      seq_nodes target_nodes;
  Json.Obj
    [
      ("problem", Json.Str (Fixedpoint.Qformat.to_string fmt));
      ("mode", Json.Str (if quick_deep then "quick-deep" else "deep"));
      ("cores_detected", Json.Int cores);
      ("target_nodes", Json.Int target_nodes);
      ("sequential_nodes", Json.Int seq_nodes);
      ("runs", Json.List runs);
    ]

(* ------------------------------------------------------------------ *)
(* Fault tolerance: solve quality and overhead under injected faults   *)
(* ------------------------------------------------------------------ *)

let run_fault_tolerance ~quick ?seed () =
  let open Ldafp_core in
  let seed = Option.value seed ~default:42 in
  print_newline ();
  print_endline "Branch-and-bound under injected oracle faults (E8)";
  print_endline "==================================================";
  let rng = Stats.Rng.create seed in
  let ds =
    Datasets.Synthetic.generate ~n_per_class:(if quick then 300 else 1000) rng
  in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:4 in
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  let max_nodes = if quick then 120 else 1000 in
  let solve ~rate ~domains =
    let inject =
      if rate = 0.0 then None
      else
        Some
          (Optim.Fault_inject.config ~seed ~bound_exn_prob:(rate /. 2.0)
             ~bound_nan_prob:(rate /. 2.0) ())
    in
    let config =
      {
        Lda_fp.default_config with
        bnb_params =
          { Optim.Bnb.default_params with max_nodes; rel_gap = 1e-6; domains };
        inject_faults = inject;
      }
    in
    let t0 = Unix.gettimeofday () in
    let outcome = Lda_fp.solve ~config pb in
    (outcome, Unix.gettimeofday () -. t0)
  in
  Printf.printf "synthetic %s problem, %d-node budget\n"
    (Fixedpoint.Qformat.to_string fmt)
    max_nodes;
  Printf.printf "  %-22s %-10s %-6s %s\n" "" "cost" "time"
    "failures/retries/degraded/dropped";
  List.iter
    (fun (rate, domains) ->
      let label = Printf.sprintf "faults=%2.0f%% domains=%d" (100.0 *. rate) domains in
      match solve ~rate ~domains with
      | None, t -> Printf.printf "  %-22s no feasible solution (%.2fs)\n%!" label t
      | Some o, t ->
          let s = o.Lda_fp.diagnostics.Lda_fp.search in
          Printf.printf "  %-22s %-10.6g %5.2fs %d/%d/%d/%d\n%!" label
            o.Lda_fp.cost t s.Optim.Bnb.oracle_failures s.Optim.Bnb.retries
            s.Optim.Bnb.degraded_bounds s.Optim.Bnb.dropped_regions)
    [ (0.0, 1); (0.05, 1); (0.20, 1); (0.0, 4); (0.05, 4); (0.20, 4) ]

(* ------------------------------------------------------------------ *)
(* Batched fixed-point inference engine (lib/infer)                    *)
(* ------------------------------------------------------------------ *)

(* Throughput of the batched C-kernel datapath vs the scalar
   [Fixed_classifier] reference, plus a >= 10^5-input bit-exactness
   sweep (the CI gate checks [batch_vs_scalar_agreement] and
   [agreement_inputs], never the timings).  Both timed paths run on
   pre-quantised inputs: the comparison is steady-state MAC + threshold
   throughput, not the (allocating) front-end conversion. *)
let run_infer ~quick ?seed () =
  let seed = Option.value seed ~default:42 in
  print_newline ();
  print_endline "Batched fixed-point inference (E10)";
  print_endline "===================================";
  let rng = Stats.Rng.create seed in
  let ds =
    Datasets.Synthetic.generate ~n_per_class:(if quick then 300 else 1000) rng
  in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:6 in
  let clf = Ldafp_core.Pipeline.train_conventional ~fmt ds in
  let m = Ldafp_core.Fixed_classifier.n_features clf in
  let batch_cap = 256 in
  let engine = Infer.Engine.of_fixed ~capacity:batch_cap clf in
  let batch = Infer.Engine.make_batch engine in
  let out = Bytes.create batch_cap in
  let cols = Array.init batch_cap (fun _ -> Array.make m 0.0) in
  let fresh_cols () =
    Array.iter
      (fun col ->
        Array.iteri
          (fun j _ ->
            col.(j) <-
              (* Mostly in-range magnitudes, with a heavy tail that
                 saturates the front end — the regime where batched and
                 scalar rounding could plausibly diverge. *)
              (match Stats.Rng.int rng 10 with
              | 0 -> Stats.Rng.uniform rng ~lo:(-64.0) ~hi:64.0
              | 1 -> Stats.Rng.uniform rng ~lo:(-8.0) ~hi:8.0
              | _ -> Stats.Rng.uniform rng ~lo:(-2.5) ~hi:2.5))
          col)
      cols
  in
  (* Bit-exactness sweep: >= 100_000 randomised raw inputs, batched
     verdict vs scalar [predict] on the identical floats. *)
  let rounds = (100_000 + batch_cap - 1) / batch_cap in
  let agreement_inputs = rounds * batch_cap in
  let mismatches = ref 0 in
  for _ = 1 to rounds do
    fresh_cols ();
    ignore (Infer.Engine.load_rows engine batch cols : int);
    Infer.Engine.predict_into engine batch out;
    Array.iteri
      (fun c col ->
        let scalar = Ldafp_core.Fixed_classifier.predict clf col in
        let batched = Bytes.get out c = '\001' in
        if scalar <> batched then incr mismatches)
      cols
  done;
  Printf.printf
    "bit-exactness: %d randomised inputs, %d mismatch(es) (%s %s model, %d \
     features)\n%!"
    agreement_inputs !mismatches
    (Fixedpoint.Qformat.to_string fmt)
    "conventional" m;
  (* Throughput.  Each timed closure serves [batch_cap] predictions per
     call so the clock reads amortise identically across paths. *)
  let min_s = if quick then 0.2 else 1.0 in
  let throughput f =
    f ();
    let t0 = Unix.gettimeofday () in
    let stop = t0 +. min_s in
    let iters = ref 0 in
    while Unix.gettimeofday () < stop do
      f ();
      incr iters
    done;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (!iters * batch_cap) /. dt
  in
  let quantized =
    Array.map (fun col -> Ldafp_core.Fixed_classifier.quantize_input clf col) cols
  in
  let sink = ref 0 in
  let scalar_pps =
    throughput (fun () ->
        Array.iter
          (fun qx ->
            if Ldafp_core.Fixed_classifier.predict_quantized clf qx then
              incr sink)
          quantized)
  in
  let batched_pps =
    throughput (fun () -> Infer.Engine.predict_into engine batch out)
  in
  (* Sharded: independent engines chewing the same batch shape on 2 and
     4 domains — aggregate preds/sec over the joint wall time. *)
  let shard domains =
    let t0 = Unix.gettimeofday () in
    let workers =
      List.init domains (fun _ ->
          Domain.spawn (fun () ->
              let e = Infer.Engine.of_fixed ~capacity:batch_cap clf in
              let b = Infer.Engine.make_batch e in
              let o = Bytes.create batch_cap in
              ignore (Infer.Engine.load_rows e b cols : int);
              Infer.Engine.predict_into e b o;
              let stop = Unix.gettimeofday () +. min_s in
              let iters = ref 0 in
              while Unix.gettimeofday () < stop do
                Infer.Engine.predict_into e b o;
                incr iters
              done;
              !iters * batch_cap))
    in
    let total = List.fold_left (fun acc w -> acc + Domain.join w) 0 workers in
    float_of_int total /. (Unix.gettimeofday () -. t0)
  in
  let sharded = List.map (fun d -> (d, shard d)) [ 2; 4 ] in
  (* Staged datapath: standardise + square projection in front of the
     classifier, all stages in the engine's own format. *)
  let means = Array.make m 0.0 in
  Array.iter (fun col -> Array.iteri (fun j v -> means.(j) <- means.(j) +. v) col) cols;
  Array.iteri (fun j s -> means.(j) <- s /. float_of_int batch_cap) means;
  let identity =
    Array.init m (fun i -> Array.init m (fun j -> if i = j then 1.0 else 0.0))
  in
  let pipeline =
    Infer.Pipeline.create ~capacity:batch_cap
      ~stages:
        [
          Infer.Pipeline.standardize ~in_fmt:fmt ~scale_fmt:fmt ~out_fmt:fmt
            ~means ~inv_stds:(Array.make m 1.0);
          Infer.Pipeline.project ~in_fmt:fmt ~mat_fmt:fmt ~out_fmt:fmt
            ~matrix:identity;
        ]
      (Infer.Engine.Uniform clf)
  in
  let pbatch = Infer.Pipeline.make_batch pipeline in
  Array.iteri (fun c col -> Infer.Batch.load_floats pbatch ~col:c col) cols;
  Infer.Batch.set_length pbatch batch_cap;
  let pipeline_pps =
    throughput (fun () -> Infer.Pipeline.run pipeline pbatch out)
  in
  Printf.printf "  %-28s %12.3g preds/sec\n" "scalar (predict_quantized)"
    scalar_pps;
  Printf.printf "  %-28s %12.3g preds/sec  (%.2fx scalar)\n" "batched (C MAC)"
    batched_pps (batched_pps /. scalar_pps);
  List.iter
    (fun (d, pps) ->
      Printf.printf "  %-28s %12.3g preds/sec\n"
        (Printf.sprintf "sharded x%d domains" d)
        pps)
    sharded;
  Printf.printf "  %-28s %12.3g preds/sec\n%!" "3-stage pipeline" pipeline_pps;
  Json.Obj
    [
      ("problem", Json.Str "synthetic");
      ("format", Json.Str (Fixedpoint.Qformat.to_string fmt));
      ("features", Json.Int m);
      ("batch", Json.Int batch_cap);
      ("agreement_inputs", Json.Int agreement_inputs);
      ("mismatches", Json.Int !mismatches);
      ("batch_vs_scalar_agreement", Json.Bool (!mismatches = 0));
      ("scalar_preds_per_sec", Json.Float scalar_pps);
      ("batched_preds_per_sec", Json.Float batched_pps);
      ("speedup", Json.Float (batched_pps /. scalar_pps));
      ( "sharded",
        Json.List
          (List.map
             (fun (d, pps) ->
               Json.Obj
                 [ ("domains", Json.Int d); ("preds_per_sec", Json.Float pps) ])
             sharded) );
      ("pipeline_preds_per_sec", Json.Float pipeline_pps);
    ]

let () =
  let o = parse_args () in
  let seed = o.seed in
  let quick = o.quick in
  Printf.printf "LDA-FP reproduction harness (%s mode)\n"
    (if quick then "quick" else "full");
  let collector =
    Option.map
      (fun _ ->
        let c = Obs.Trace.create () in
        Obs.Trace.install c;
        c)
      o.trace
  in
  if o.metrics <> None then Obs.Metrics.set_enabled true;
  let telemetry =
    Option.bind o.telemetry_addr (fun addr ->
        match Obs.Telemetry.start ~addr () with
        | Ok srv ->
            Obs.Metrics.set_enabled true;
            Printf.printf
              "telemetry: serving /metrics, /metrics.json and /healthz on \
               %s\n\
               %!"
              (Obs.Telemetry.addr srv);
            Some srv
        | Error msg ->
            Printf.eprintf "warning: %s — continuing without telemetry\n%!"
              msg;
            None)
  in
  if o.table1 then begin
    let t0 = Sys.time () in
    let rows = Experiments.table1 ~quick ?seed () in
    Experiments.print_table1 rows;
    Printf.printf "[table1 total %.1fs]\n%!" (Sys.time () -. t0)
  end;
  if o.figure4 then begin
    let rows = Experiments.figure4 ~quick ?seed () in
    Experiments.print_figure4 rows
  end;
  if o.table2 then begin
    let t0 = Sys.time () in
    let rows = Experiments.table2 ~quick ?seed () in
    Experiments.print_table2 rows;
    Printf.printf "[table2 total %.1fs]\n%!" (Sys.time () -. t0)
  end;
  if o.figure2 then Experiments.print_figure2 (Experiments.figure2 ~quick ?seed ());
  if o.power then Experiments.print_power (Experiments.power ());
  if o.baselines then
    Experiments.print_baselines (Experiments.baselines ~quick ?seed ());
  if o.ecg then
    Experiments.print_table_ecg (Experiments.table_ecg ~quick ?seed ());
  if o.ablations then begin
    Experiments.print_ablation ~title:"Ablation: K/F split policy (synthetic)"
      (Experiments.ablation_kf ~quick ?seed ());
    Experiments.print_ablation ~title:"Ablation: solver features (synthetic, WL=8)"
      (Experiments.ablation_solver ~quick ?seed ())
  end;
  let micro_json = ref Json.Null in
  let kernel_json = ref Json.Null in
  let parallel_json = ref Json.Null in
  let scaling_json = ref Json.Null in
  let scaling_deep_json = ref Json.Null in
  let infer_json = ref Json.Null in
  if o.micro then begin
    micro_json :=
      with_env (fun () ->
          let estimates = run_micro () in
          Json.Obj
            [
              ( "estimates",
                Json.List
                  (List.map
                     (fun (name, ns) ->
                       Json.Obj
                         [
                           ("name", Json.Str name);
                           ("ns_per_run", Json.Float ns);
                         ])
                     estimates) );
            ]);
    kernel_json := with_env (fun () -> run_bound_kernel ~quick ?seed ())
  end;
  if o.parallel then
    parallel_json := with_env (fun () -> run_parallel_bnb ~quick ?seed ());
  if o.scaling then
    scaling_json := with_env (fun () -> run_scaling_bnb ~quick ?seed ());
  if o.deep then
    scaling_deep_json :=
      with_env (fun () -> run_scaling_deep ~quick_deep:o.quick_deep ?seed ());
  if o.faults then run_fault_tolerance ~quick ?seed ();
  if o.infer then infer_json := with_env (fun () -> run_infer ~quick ?seed ());
  (* The scrape endpoint outlives the experiments only until here: stop
     (and join) it before the exports so they read quiescent state. *)
  Option.iter Obs.Telemetry.stop telemetry;
  (* Observability export comes first: all solver domains are joined by
     now, so ring/shard state is quiescent and safe to read. *)
  (match (o.trace, collector) with
  | Some path, Some c ->
      Obs.Trace.uninstall ();
      Obs.Trace.save c path;
      Printf.printf "\nwrote %s (%d events, %d dropped)\n%!" path
        (List.length (Obs.Trace.events c))
        (Obs.Trace.dropped c)
  | _ -> ());
  (match o.metrics with
  | Some path ->
      Obs.Metrics.set_enabled false;
      if Filename.check_suffix path ".json" then
        Obs.Metrics.save_json Obs.Metrics.default path
      else Obs.Metrics.save_prometheus Obs.Metrics.default path;
      Printf.printf "wrote %s\n%!" path
  | None -> ());
  let bench_json =
    Json.Obj
      [
        ("schema", Json.Str "ldafp-bench-solver/1");
        ("mode", Json.Str (if quick then "quick" else "full"));
        ("seed", Json.Int (Option.value seed ~default:42));
        ("micro", !micro_json);
        ("bound_kernel", !kernel_json);
        ("parallel", !parallel_json);
        ("scaling", !scaling_json);
        ("scaling_deep", !scaling_deep_json);
        ("infer", !infer_json);
        (* Explicit per-solve node total — the denominator of the CI
           metrics gate (see obs_nodes above). *)
        ("obs", Json.Obj [ ("nodes_total", Json.Int !obs_nodes) ]);
      ]
  in
  if o.micro || o.parallel || o.scaling || o.deep || o.infer then begin
    let path = "BENCH_solver.json" in
    Json.save path bench_json;
    Printf.printf "\nwrote %s\n%!" path
  end;
  match o.ledger with
  | None -> ()
  | Some path -> (
      match
        Obs.Run_ledger.append ~path
          (Obs.Run_ledger.record ~kind:"bench" [ ("bench", bench_json) ])
      with
      | Ok () -> Printf.printf "appended bench record to %s\n%!" path
      | Error msg -> Printf.eprintf "warning: %s\n%!" msg)
