(* ldafp — command-line interface to the LDA-FP training system.

   Subcommands: generate, train, eval, sweep, rtl, info. *)

open Cmdliner
open Ldafp_core

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "seed" ] ~docv:"N" ~doc:"Random seed (all runs deterministic).")

let wl_arg =
  Arg.(
    value
    & opt int 6
    & info [ "wl"; "word-length" ] ~docv:"BITS"
        ~doc:"Total fixed-point word length $(docv) = K + F.")

let k_arg =
  Arg.(
    value
    & opt int 2
    & info [ "k" ] ~docv:"BITS"
        ~doc:"Integer bits (including sign) of the QK.F format.")

let fmt_of ~wl ~k = Fixedpoint.Format_policy.fixed_k ~k wl

let nodes_arg =
  Arg.(
    value
    & opt int 500
    & info [ "nodes" ] ~docv:"N"
        ~doc:"Branch-and-bound node budget for LDA-FP training.")

let rho_arg =
  Arg.(
    value
    & opt float 0.99
    & info [ "rho" ] ~docv:"RHO"
        ~doc:"Confidence level of the overflow constraints (eq. 16).")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the branch-and-bound search (OCaml 5 \
           multicore); 1 = sequential.")

let no_warm_start_arg =
  Arg.(
    value
    & flag
    & info [ "no-warm-start" ]
        ~doc:
          "Disable warm-starting the per-node relaxation solves from the \
           parent's optimum (cold phase-I on every node; slower, same \
           certified bounds).")

let no_certify_arg =
  Arg.(
    value
    & flag
    & info [ "no-certify" ]
        ~doc:
          "Trust the primal solver: prune on objective − 2·gap_bound \
           instead of the independently verified dual certificate.  \
           Bounds are then only as good as the barrier solve that \
           produced them — a stalled or corrupted solve can silently \
           prune the optimum.  Escape hatch for benchmarking the \
           certificate overhead; never use it for results you keep.")

let telemetry_addr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-addr" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve live telemetry over HTTP while the command runs: \
           $(b,GET /metrics) (Prometheus text exposition), \
           $(b,/metrics.json) and $(b,/healthz) (search phase, nodes, \
           incumbent, certified gap).  $(docv) may be $(b,:PORT) for \
           all interfaces; port 0 binds an ephemeral port (printed at \
           startup).")

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Append one $(b,ldafp-run/1) JSON record (config, \
           environment, search statistics, metrics snapshot) to the \
           JSONL run ledger at $(docv) — atomically, so a crash never \
           corrupts prior records.  Inspect with $(b,ldafp runs).")

(* Start the telemetry endpoint, or explain why not and carry on: a bad
   --telemetry-addr must not kill a training run before it starts. *)
let start_telemetry addr =
  Option.bind addr (fun addr ->
      match Obs.Telemetry.start ~addr () with
      | Ok srv ->
          Obs.Metrics.set_enabled true;
          Fmt.pr "telemetry: serving /metrics, /metrics.json and /healthz \
                  on %s@."
            (Obs.Telemetry.addr srv);
          Some srv
      | Error msg ->
          Fmt.epr "warning: %s — continuing without telemetry@." msg;
          None)

let append_ledger ~kind ~path sections =
  match Obs.Run_ledger.append ~path (Obs.Run_ledger.record ~kind sections) with
  | Ok () -> Fmt.pr "appended %s record to %s@." kind path
  | Error msg -> Fmt.epr "warning: %s@." msg

let config_of_nodes ?(domains = 1) ?(warm_start = true) ?(certify = true)
    ?checkpoint ?progress nodes =
  {
    Lda_fp.default_config with
    bnb_params =
      { Optim.Bnb.default_params with max_nodes = nodes; rel_gap = 1e-3;
        domains };
    warm_start;
    certify;
    checkpoint;
    progress;
  }

(* SIGINT/SIGTERM flip an atomic flag the search polls between nodes, so
   a Ctrl-C snapshots the frontier (when checkpointing) and returns the
   incumbent instead of killing the process mid-node.  A second signal
   falls through to the default behaviour via [exit]. *)
let interrupt_on_signals () =
  let flag = Atomic.make false in
  let handle signal =
    Sys.set_signal signal
      (Sys.Signal_handle
         (fun _ ->
           if Atomic.get flag then exit 130 else Atomic.set flag true))
  in
  (try handle Sys.sigint with Invalid_argument _ | Sys_error _ -> ());
  (try handle Sys.sigterm with Invalid_argument _ | Sys_error _ -> ());
  fun () -> Atomic.get flag

(* ---------------- generate ---------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      value
      & opt (enum [ ("synthetic", `Synthetic); ("ecog", `Ecog) ]) `Synthetic
      & info [ "dataset" ] ~docv:"NAME"
          ~doc:"Which generator: $(b,synthetic) (paper 5.1) or $(b,ecog) \
                (paper 5.2 substitution).")
  in
  let n =
    Arg.(
      value
      & opt int 1000
      & info [ "trials"; "n" ] ~docv:"N"
          ~doc:"Trials per class (synthetic only).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let run verbose seed dataset n out =
    setup_logs verbose;
    let rng = Stats.Rng.create seed in
    let ds =
      match dataset with
      | `Synthetic -> Datasets.Synthetic.generate ~n_per_class:n rng
      | `Ecog -> Datasets.Ecog_sim.generate rng
    in
    Datasets.Dataset_io.save out ds;
    Fmt.pr "wrote %a to %s@." Datasets.Dataset.pp_summary ds out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a dataset CSV.")
    Term.(const run $ verbose_arg $ seed_arg $ dataset $ n $ out)

(* ---------------- train ---------------- *)

let data_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "data" ] ~docv:"CSV" ~doc:"Training dataset (CSV).")

let train_cmd =
  let method_ =
    Arg.(
      value
      & opt (enum [ ("ldafp", `Ldafp); ("lda", `Lda) ]) `Ldafp
      & info [ "method" ] ~docv:"M"
          ~doc:"$(b,ldafp) (branch-and-bound, eq. 21) or $(b,lda) \
                (conventional: solve eq. 11 and round).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output model path.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Snapshot the branch-and-bound frontier to $(docv) \
             (atomically) so an interrupted training can be resumed with \
             $(b,--resume).")
  in
  let checkpoint_every_arg =
    Arg.(
      value
      & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Also snapshot every $(docv) explored nodes (0 = only when \
             stopping on a budget or interrupt).")
  in
  let resume_arg =
    Arg.(
      value
      & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the $(b,--checkpoint) file instead of \
             starting from scratch (no-op when the file does not exist \
             yet).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a Chrome trace-event timeline of the search \
             (branch-and-bound nodes, relaxation solves, steals, \
             checkpoints) and write it to $(docv) — load it in \
             $(b,https://ui.perfetto.dev) or $(b,chrome://tracing).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export solver metrics (counters and latency histograms) to \
             $(docv) after training: JSON when the name ends in \
             $(b,.json), Prometheus text exposition otherwise.")
  in
  let progress_arg =
    Arg.(
      value
      & flag
      & info [ "progress" ]
          ~doc:
            "Print a throttled (at most one line per second) progress \
             line to stderr: incumbent, certified bound, gap, node \
             rate, steals and oracle utilisation.")
  in
  let run verbose data wl k method_ nodes domains no_warm_start no_certify rho
      checkpoint checkpoint_every resume trace metrics progress telemetry_addr
      ledger out =
    setup_logs verbose;
    if no_certify then
      Fmt.epr
        "WARNING: --no-certify prunes on the solver's primal objective \
         without independent verification — a bad solve can prune the \
         optimum.  Results are NOT certified.@.";
    let ds = Datasets.Dataset_io.load data in
    let fmt = fmt_of ~wl ~k in
    if resume && checkpoint = None then begin
      Fmt.epr "--resume requires --checkpoint@.";
      exit 2
    end;
    let checkpoint =
      Option.map
        (fun path ->
          Lda_fp.checkpoint_spec ~every_nodes:checkpoint_every ~resume path)
        checkpoint
    in
    let collector =
      Option.map
        (fun _ ->
          let c = Obs.Trace.create () in
          Obs.Trace.install c;
          c)
        trace
    in
    if metrics <> None then Obs.Metrics.set_enabled true;
    let telemetry = start_telemetry telemetry_addr in
    let progress = if progress then Some (Obs.Progress.create ()) else None in
    (* Export sinks once the search is done (worker domains joined, so
       reading ring/shard state without synchronisation is sound). *)
    let export_observability () =
      (match (trace, collector) with
      | Some path, Some c ->
          Obs.Trace.uninstall ();
          Obs.Trace.save c path;
          Fmt.pr "wrote trace to %s (%d events, %d dropped)@." path
            (List.length (Obs.Trace.events c))
            (Obs.Trace.dropped c)
      | _ -> ());
      match metrics with
      | Some path ->
          Obs.Metrics.set_enabled false;
          if Filename.check_suffix path ".json" then
            Obs.Metrics.save_json Obs.Metrics.default path
          else Obs.Metrics.save_prometheus Obs.Metrics.default path;
          Fmt.pr "wrote metrics to %s@." path
      | None -> ()
    in
    (* Captured for the run-ledger record, which is written after the
       final prints (and after the telemetry server is stopped). *)
    let ledger_search = ref None in
    let clf =
      match method_ with
      | `Lda -> Some (Pipeline.train_conventional ~fmt ds)
      | `Ldafp ->
          let interrupt = interrupt_on_signals () in
          let train () =
            Pipeline.train_ldafp
              ~config:
                (config_of_nodes ~domains ~warm_start:(not no_warm_start)
                   ~certify:(not no_certify) ?checkpoint ?progress nodes)
              ~interrupt ~rho ~fmt ds
          in
          let outcome =
            try train ()
            with Optim.Checkpoint.Corrupt msg ->
              Fmt.epr "cannot resume: %s@." msg;
              exit 2
          in
          Option.map
            (fun r ->
              let d = r.Pipeline.outcome.Lda_fp.diagnostics in
              ledger_search := Some (r.Pipeline.outcome.Lda_fp.cost, d);
              Fmt.pr
                "LDA-FP: cost %.6g, %d nodes, gap %.3g, %.2fs on %d \
                 domain(s) (%s)@."
                r.Pipeline.outcome.Lda_fp.cost d.Lda_fp.nodes d.Lda_fp.gap
                d.Lda_fp.train_seconds
                d.Lda_fp.search.Optim.Bnb.domains_used
                (match d.Lda_fp.stop_reason with
                | Optim.Bnb.Proved_optimal -> "proved optimal"
                | Optim.Bnb.Gap_reached -> "gap tolerance"
                | Optim.Bnb.Node_budget -> "node budget"
                | Optim.Bnb.Time_budget -> "time budget"
                | Optim.Bnb.Interrupted -> "interrupted");
              let s = d.Lda_fp.search in
              let misses =
                s.Optim.Bnb.warm_miss_no_parent
                + s.Optim.Bnb.warm_miss_not_interior
                + s.Optim.Bnb.warm_miss_fault_cleared
              in
              if s.Optim.Bnb.warm_start_hits > 0 || misses > 0 then begin
                Fmt.pr
                  "warm starts: %d hit(s) (%d pulled to interior, %d \
                   Newton-corrected), %d phase-I solve(s) skipped, %.2fs \
                   in the bound oracle@."
                  s.Optim.Bnb.warm_start_hits s.Optim.Bnb.warm_pull_ins
                  s.Optim.Bnb.warm_newton_corrections
                  s.Optim.Bnb.phase1_skipped s.Optim.Bnb.oracle_seconds;
                Fmt.pr
                  "warm misses: %d (no parent point %d, irreparably not \
                   interior %d, cleared after fault %d)@."
                  misses s.Optim.Bnb.warm_miss_no_parent
                  s.Optim.Bnb.warm_miss_not_interior
                  s.Optim.Bnb.warm_miss_fault_cleared
              end;
              if s.Optim.Bnb.counters_reset then
                Fmt.pr
                  "warning: resumed through a checkpoint written before \
                   the warm counters existed — warm counts and \
                   warm_hit_rate cover only part of this search@.";
              if s.Optim.Bnb.domains_used > 1 then begin
                Fmt.pr
                  "scheduler: seeded %d node(s) in %.3fs, then %d steal(s) \
                   moved %d node(s) (%d carrying warm state), %d idle \
                   wakeup(s)@."
                  s.Optim.Bnb.seed_nodes s.Optim.Bnb.seed_seconds
                  s.Optim.Bnb.steals s.Optim.Bnb.stolen_nodes
                  s.Optim.Bnb.stolen_warm s.Optim.Bnb.idle_wakeups;
                let join sep fmt_one a =
                  String.concat sep
                    (Array.to_list (Array.map fmt_one a))
                in
                Fmt.pr
                  "scheduler: targeted wakeups per shard [%s], steals that \
                   took the best-bound victim per thief [%s]@."
                  (join "; " string_of_int s.Optim.Bnb.domain_targeted_wakeups)
                  (join "; " string_of_int
                     s.Optim.Bnb.domain_steals_best_victim)
              end;
              if s.Optim.Bnb.oracle_failures > 0 then
                Fmt.pr
                  "oracle faults: %d failure(s), %d retried, %d degraded \
                   to interval bound, %d dropped@."
                  s.Optim.Bnb.oracle_failures s.Optim.Bnb.retries
                  s.Optim.Bnb.degraded_bounds s.Optim.Bnb.dropped_regions;
              if
                s.Optim.Bnb.retry_budget_exhausted > 0
                || s.Optim.Bnb.retry_backoff_seconds > 0.0
              then
                Fmt.pr
                  "fault retries: %.3fs in backoff, %d node(s) hit the \
                   per-node retry budget@."
                  s.Optim.Bnb.retry_backoff_seconds
                  s.Optim.Bnb.retry_budget_exhausted;
              if s.Optim.Bnb.frontier_shed > 0 then
                Fmt.pr
                  "frontier: shed %d node(s) to stay within the memory \
                   cap (their best bound is folded into the reported \
                   gap)@."
                  s.Optim.Bnb.frontier_shed;
              if
                s.Optim.Bnb.cert_verified > 0
                || s.Optim.Bnb.cert_repaired > 0
                || s.Optim.Bnb.cert_fallbacks > 0
              then
                Fmt.pr
                  "certificates: %d verified (%d needed dual repair), %d \
                   fallback(s) to the interval bound@."
                  s.Optim.Bnb.cert_verified s.Optim.Bnb.cert_repaired
                  s.Optim.Bnb.cert_fallbacks;
              if not s.Optim.Bnb.certified_sound then
                Fmt.pr
                  "warning: at least one pruning decision trusted an \
                   unverified primal objective (--no-certify, or a resume \
                   through a pre-certificate checkpoint) — the reported \
                   bound and gap are NOT independently certified@.";
              r.Pipeline.classifier)
            outcome
    in
    export_observability ();
    Option.iter Obs.Telemetry.stop telemetry;
    match clf with
    | None ->
        Fmt.epr "no feasible fixed-point classifier found@.";
        exit 1
    | Some clf ->
        Model_io.save out clf;
        let train_error = Eval.error_fixed clf ds in
        Fmt.pr "trained %a classifier on %a; training error %.2f%%; saved \
                to %s@."
          Fixedpoint.Qformat.pp
          (Fixed_classifier.format clf)
          Datasets.Dataset.pp_summary ds
          (100.0 *. train_error)
          out;
        Option.iter
          (fun path ->
            let open Obs.Json in
            let config =
              Obj
                [
                  ("data", Str data);
                  ("out", Str out);
                  ("wl", Int wl);
                  ("k", Int k);
                  ( "method",
                    Str (match method_ with `Ldafp -> "ldafp" | `Lda -> "lda")
                  );
                  ("nodes", Int nodes);
                  ("domains", Int domains);
                  ("warm_start", Bool (not no_warm_start));
                  ("certify", Bool (not no_certify));
                  ("rho", Float rho);
                ]
            in
            let search =
              match !ledger_search with
              | None -> []
              | Some (cost, d) ->
                  let s = d.Lda_fp.search in
                  let hits = s.Optim.Bnb.warm_start_hits in
                  let misses =
                    s.Optim.Bnb.warm_miss_no_parent
                    + s.Optim.Bnb.warm_miss_not_interior
                    + s.Optim.Bnb.warm_miss_fault_cleared
                  in
                  let result =
                    [
                      ("cost", Float cost);
                      ("nodes", Int d.Lda_fp.nodes);
                      ("gap", Float d.Lda_fp.gap);
                      ("train_seconds", Float d.Lda_fp.train_seconds);
                      ( "stop_reason",
                        Str (Optim.Bnb.stop_reason_name d.Lda_fp.stop_reason)
                      );
                      ("training_error", Float train_error);
                    ]
                    @
                    if hits + misses > 0 then
                      [
                        ( "warm_hit_rate",
                          Float
                            (float_of_int hits
                            /. float_of_int (hits + misses)) );
                      ]
                    else []
                  in
                  [
                    ("result", Obj result);
                    ("stats", Optim.Bnb.stats_to_json s);
                  ]
            in
            append_ledger ~kind:"train" ~path
              ([ ("config", config) ] @ search
              @ [ ("metrics", Obs.Metrics.to_json Obs.Metrics.default) ]))
          ledger
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a fixed-point classifier.")
    Term.(
      const run $ verbose_arg $ data_arg $ wl_arg $ k_arg $ method_
      $ nodes_arg $ domains_arg $ no_warm_start_arg $ no_certify_arg
      $ rho_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
      $ trace_arg $ metrics_arg $ progress_arg $ telemetry_addr_arg
      $ ledger_arg $ out)

(* ---------------- eval ---------------- *)

let model_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "model" ] ~docv:"FILE" ~doc:"Trained model file.")

let eval_cmd =
  let run verbose model data =
    setup_logs verbose;
    let clf = Model_io.load model in
    let ds = Datasets.Dataset_io.load data in
    let confusion = Eval.confusion_fixed clf ds in
    Fmt.pr "%a on %a@.error rate: %.2f%%  (sensitivity %.2f%%, specificity \
            %.2f%%)@."
      Fixedpoint.Qformat.pp
      (Fixed_classifier.format clf)
      Datasets.Dataset.pp_summary ds
      (100.0 *. Stats.Confusion.error_rate confusion)
      (100.0 *. Stats.Confusion.sensitivity confusion)
      (100.0 *. Stats.Confusion.specificity confusion)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a model on a dataset.")
    Term.(const run $ verbose_arg $ model_arg $ data_arg)

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let wls =
    Arg.(
      value
      & opt (list int) [ 3; 4; 5; 6; 7; 8 ]
      & info [ "wls" ] ~docv:"LIST" ~doc:"Word lengths to sweep.")
  in
  let folds =
    Arg.(
      value
      & opt int 5
      & info [ "folds" ] ~docv:"K" ~doc:"Cross-validation folds.")
  in
  let run verbose seed data k wls nodes domains folds =
    setup_logs verbose;
    let ds = Datasets.Dataset_io.load data in
    let config = config_of_nodes ~domains nodes in
    let rows =
      List.map
        (fun wl ->
          let fmt = fmt_of ~wl ~k in
          let cv_rng () = Stats.Rng.create (seed + 1) in
          let lda =
            Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:folds
              ~train:(fun tr -> Some (Pipeline.train_conventional ~fmt tr))
              ds
          in
          let ldafp =
            Eval.kfold_error_fixed ~rng:(cv_rng ()) ~k:folds
              ~train:(fun tr ->
                Option.map
                  (fun r -> r.Pipeline.classifier)
                  (Pipeline.train_ldafp ~config ~fmt tr))
              ds
          in
          let cell = function
            | Some e -> Report.Table.pct e
            | None -> "n/a"
          in
          [ string_of_int wl; cell lda; cell ldafp ])
        wls
    in
    Report.Table.print
      ~title:(Printf.sprintf "%d-fold CV error vs word length (K=%d)" folds k)
      ~columns:
        [
          Report.Table.column "WL";
          Report.Table.column "LDA";
          Report.Table.column "LDA-FP";
        ]
      ~rows ()
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Word-length sweep with cross-validation.")
    Term.(
      const run $ verbose_arg $ seed_arg $ data_arg $ k_arg $ wls $ nodes_arg
      $ domains_arg $ folds)

(* ---------------- rtl ---------------- *)

let rtl_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output Verilog path.")
  in
  let testbench =
    Arg.(
      value
      & opt (some string) None
      & info [ "testbench" ] ~docv:"FILE"
          ~doc:"Also emit a self-checking testbench built from --data.")
  in
  let data_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"CSV" ~doc:"Vectors for the testbench.")
  in
  let c_header =
    Arg.(
      value
      & opt (some string) None
      & info [ "c-header" ] ~docv:"FILE"
          ~doc:
            "Also emit a self-contained C model header \
             ($(b,lda_model_fixed.h) style): the same baked tables as the \
             Verilog plus $(b,static inline) predict functions \
             reproducing the datapath bit-for-bit.")
  in
  let run verbose model out testbench data c_header =
    setup_logs verbose;
    let clf = Model_io.load model in
    Option.iter
      (fun path ->
        Model_io.save_c_header path clf;
        Fmt.pr "wrote %s@." path)
      c_header;
    let spec =
      {
        Hw.Verilog_gen.module_name = "ldafp_classifier";
        fmt = Fixed_classifier.format clf;
        weights = clf.Fixed_classifier.w;
        threshold = clf.Fixed_classifier.threshold;
        polarity = clf.Fixed_classifier.polarity;
      }
    in
    let write path text =
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)
    in
    write out (Hw.Verilog_gen.module_source spec);
    Fmt.pr "wrote %s@." out;
    match (testbench, data) with
    | Some tb_path, Some data_path ->
        let ds = Datasets.Dataset_io.load data_path in
        let vectors =
          List.init
            (min 16 (Datasets.Dataset.n_trials ds))
            (fun i ->
              let x = ds.Datasets.Dataset.features.(i) in
              {
                Hw.Verilog_gen.inputs = Fixed_classifier.quantize_input clf x;
                expected = Fixed_classifier.predict clf x;
              })
        in
        write tb_path (Hw.Verilog_gen.testbench_source spec vectors);
        Fmt.pr "wrote %s (%d vectors)@." tb_path (List.length vectors)
    | Some _, None ->
        Fmt.epr "--testbench requires --data for stimulus vectors@.";
        exit 1
    | None, _ -> ()
  in
  Cmd.v
    (Cmd.info "rtl" ~doc:"Emit synthesizable Verilog for a trained model.")
    Term.(
      const run $ verbose_arg $ model_arg $ out $ testbench $ data_opt
      $ c_header)

(* ---------------- classify ---------------- *)

let classify_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write one prediction per input row ($(b,A)/$(b,B), input \
             order) to $(docv).")
  in
  let batch =
    Arg.(
      value
      & opt int 1024
      & info [ "batch" ] ~docv:"N"
          ~doc:"Rows streamed through the engine per batched MAC call.")
  in
  let run verbose model data batch ledger out =
    setup_logs verbose;
    if batch < 1 then begin
      Fmt.epr "--batch must be >= 1@.";
      exit 2
    end;
    let clf = Model_io.load model in
    let engine = Infer.Engine.of_fixed ~capacity:batch clf in
    let m = Fixed_classifier.n_features clf in
    let b = Infer.Engine.make_batch engine in
    let preds = Bytes.create batch in
    let truths = Array.make batch false in
    let confusion = ref Stats.Confusion.empty in
    let pending = ref 0 in
    let ic = open_in data in
    let oc = Option.map open_out out in
    let flush () =
      let n = !pending in
      if n > 0 then begin
        Infer.Batch.set_length b n;
        Infer.Engine.predict_into engine b preds;
        for i = 0 to n - 1 do
          let p = Bytes.get preds i = '\001' in
          confusion := Stats.Confusion.add !confusion ~truth:truths.(i)
              ~predicted:p;
          Option.iter
            (fun oc -> output_string oc (if p then "A\n" else "B\n"))
            oc
        done;
        pending := 0
      end
    in
    let classify () =
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match Datasets.Dataset_io.parse_row !lineno line with
           | None -> ()
           | Some (label, feats) ->
               if Array.length feats <> m then
                 raise
                   (Datasets.Dataset_io.Parse_error
                      {
                        line = !lineno;
                        message =
                          Printf.sprintf
                            "expected %d features (model %s), found %d" m
                            model (Array.length feats);
                      });
               Infer.Engine.load engine b ~col:!pending feats;
               truths.(!pending) <- label;
               incr pending;
               if !pending = batch then flush ()
         done
       with End_of_file -> ());
      flush ()
    in
    let finish () =
      close_in_noerr ic;
      Option.iter close_out_noerr oc
    in
    (match classify () with
    | () -> finish ()
    | exception Datasets.Dataset_io.Parse_error { line; message } ->
        finish ();
        Fmt.epr "%s:%d: %s@." data line message;
        exit 1);
    let c = !confusion in
    if Stats.Confusion.total c = 0 then begin
      Fmt.epr "%s: no data rows@." data;
      exit 1
    end;
    Fmt.pr "classified %d row(s) with the %a model: %d predicted A, %d \
            predicted B@."
      (Stats.Confusion.total c) Fixedpoint.Qformat.pp
      (Fixed_classifier.format clf)
      (c.Stats.Confusion.tp + c.Stats.Confusion.fp)
      (c.Stats.Confusion.tn + c.Stats.Confusion.fn);
    Fmt.pr
      "against the labels: error rate %.2f%% (sensitivity %.2f%%, \
       specificity %.2f%%)@."
      (100.0 *. Stats.Confusion.error_rate c)
      (100.0 *. Stats.Confusion.sensitivity c)
      (100.0 *. Stats.Confusion.specificity c);
    Option.iter
      (fun path ->
        let open Obs.Json in
        append_ledger ~kind:"classify" ~path
          [
            ( "config",
              Obj
                [
                  ("model", Str model);
                  ("data", Str data);
                  ("batch", Int batch);
                ] );
            ( "result",
              Obj
                [
                  ("rows", Int (Stats.Confusion.total c));
                  ("error_rate", Float (Stats.Confusion.error_rate c));
                  ("sensitivity", Float (Stats.Confusion.sensitivity c));
                  ("specificity", Float (Stats.Confusion.specificity c));
                ] );
          ])
      ledger
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Stream a CSV through a trained model at full batch speed and \
          report predictions plus a confusion summary.")
    Term.(
      const run $ verbose_arg $ model_arg $ data_arg $ batch $ ledger_arg
      $ out)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run verbose model data =
    setup_logs verbose;
    let clf = Model_io.load model in
    let ds = Datasets.Dataset_io.load data in
    let fmt = Fixed_classifier.format clf in
    (* Quantisation-noise accounting against the dataset's statistics in
       the classifier's own scaled space. *)
    let prep_scatter =
      let a, b = Datasets.Dataset.class_split ds in
      let scale rows =
        Array.map
          (fun row ->
            Array.map
              (fun x ->
                Fixedpoint.Fx.to_float
                  (Fixedpoint.Fx.of_float ~ov:Fixedpoint.Rounding.Saturate fmt
                     x))
              (Scaling.apply_vec clf.Fixed_classifier.scaling row))
          rows
      in
      Stats.Scatter.of_data (scale a) (scale b)
    in
    Fmt.pr "%a@."
      Quant_analysis.pp
      (Quant_analysis.analyze ~scatter:prep_scatter ~fmt
         (Fixed_classifier.weights clf));
    let rob = Robustness.sweep clf ds in
    Fmt.pr
      "robustness (+/-1 ulp on every weight, %s %d patterns): nominal \
       %.2f%%, mean %.2f%%, worst %.2f%%@."
      (if rob.Robustness.exhaustive then "exhaustive" else "sampled")
      rob.Robustness.evaluated
      (100.0 *. rob.Robustness.nominal)
      (100.0 *. rob.Robustness.mean)
      (100.0 *. rob.Robustness.worst);
    let roc = Eval.roc_fixed clf ds in
    Fmt.pr "ROC AUC of the fixed-point margin: %.4f@." roc.Eval.auc
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Quantisation-noise, robustness and ROC analysis of a trained \
          model on a dataset.")
    Term.(const run $ verbose_arg $ model_arg $ data_arg)

(* ---------------- info ---------------- *)

let info_cmd =
  let run verbose data =
    setup_logs verbose;
    let ds = Datasets.Dataset_io.load data in
    Fmt.pr "%a@." Datasets.Dataset.pp_summary ds;
    let a, b = Datasets.Dataset.class_split ds in
    let scatter = Stats.Scatter.of_data a b in
    let model = Lda.train_scatter scatter in
    Fmt.pr "float LDA training error: %.2f%%@."
      (100.0
      *. Stats.Confusion.error_rate
           (Eval.confusion_float model
              ~scaling:(Scaling.identity (Datasets.Dataset.n_features ds))
              ds));
    Fmt.pr "fisher cost of the float direction: %.6g@."
      (Lda.fisher_cost scatter model)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Summarise a dataset.")
    Term.(const run $ verbose_arg $ data_arg)

(* ---------------- runs ---------------- *)

let ledger_file_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "ledger" ] ~docv:"FILE" ~doc:"Run-ledger JSONL file.")

(* Exit 2 on unreadable ledgers (usage/IO), so CI can tell "regression"
   (1) from "the artifact is missing" (2). *)
let load_ledger path =
  match Obs.Run_ledger.load ~path with
  | Error msg ->
      Fmt.epr "%s@." msg;
      exit 2
  | Ok (records, malformed) ->
      if malformed > 0 then
        Fmt.epr "warning: %s: skipped %d malformed line(s)@." path malformed;
      records

let nth_record records i =
  let n = List.length records in
  if i < 1 || i > n then begin
    Fmt.epr "record %d out of range (ledger holds %d record(s))@." i n;
    exit 2
  end;
  List.nth records (i - 1)

let record_field key record =
  match Obs.Json.member key record with
  | Some (Obs.Json.Str s) -> s
  | Some j -> Obs.Json.to_string j
  | None -> "?"

let runs_list_cmd =
  let json =
    Arg.(
      value
      & flag
      & info [ "json" ] ~doc:"Print the records as a JSON array.")
  in
  let run verbose ledger json =
    setup_logs verbose;
    let records = load_ledger ledger in
    if json then print_endline (Obs.Json.to_string (Obs.Json.List records))
    else
      List.iteri
        (fun i r ->
          let cores =
            match Obs.Json.member "environment" r with
            | Some env -> record_field "cores_detected" env
            | None -> "?"
          in
          Fmt.pr "#%-3d %s  %-8s cores=%s@." (i + 1)
            (record_field "timestamp_utc" r)
            (record_field "kind" r) cores)
        records
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the records of a run ledger.")
    Term.(const run $ verbose_arg $ ledger_file_arg $ json)

let runs_show_cmd =
  let index =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ] ~docv:"N"
          ~doc:"1-based record to show (default: the last).")
  in
  let run verbose ledger index =
    setup_logs verbose;
    let records = load_ledger ledger in
    if records = [] then begin
      Fmt.epr "%s: empty ledger@." ledger;
      exit 2
    end;
    let i = Option.value index ~default:(List.length records) in
    print_endline (Obs.Json.to_string (nth_record records i))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print one ledger record as JSON.")
    Term.(const run $ verbose_arg $ ledger_file_arg $ index)

let runs_diff_cmd =
  let baseline =
    Arg.(
      value
      & opt (some int) None
      & info [ "baseline" ] ~docv:"N"
          ~doc:"1-based baseline record (default: second to last).")
  in
  let candidate =
    Arg.(
      value
      & opt (some int) None
      & info [ "candidate" ] ~docv:"N"
          ~doc:"1-based candidate record (default: the last).")
  in
  let rel_tol =
    Arg.(
      value
      & opt float 0.25
      & info [ "rel-tol" ] ~docv:"FRAC"
          ~doc:
            "Noise band for the advisory timing comparisons \
             (preds/sec, ns_per_run).  Timing findings never affect \
             the exit code unless $(b,--fail-on-timing).")
  in
  let warm_drop =
    Arg.(
      value
      & opt float 0.1
      & info [ "warm-drop" ] ~docv:"FRAC"
          ~doc:
            "Absolute warm_hit_rate drop flagged as a correctness \
             regression.")
  in
  let fail_on_timing =
    Arg.(
      value
      & flag
      & info [ "fail-on-timing" ]
          ~doc:
            "Also exit non-zero on timing findings (local tuning only \
             — CI gates correctness, never timing).")
  in
  let run verbose ledger baseline candidate rel_tol warm_drop fail_on_timing =
    setup_logs verbose;
    let records = load_ledger ledger in
    let n = List.length records in
    if n < 2 && (baseline = None || candidate = None) then begin
      Fmt.epr
        "%s: need at least two records to diff (ledger holds %d)@." ledger n;
      exit 2
    end;
    let bi = Option.value baseline ~default:(n - 1) in
    let ci = Option.value candidate ~default:n in
    let b = nth_record records bi and c = nth_record records ci in
    let findings =
      Obs.Run_ledger.diff ~rel_tol ~warm_drop ~baseline:b ~candidate:c ()
    in
    (* Machine-readable JSON on stdout (what CI parses); the human
       summary goes to stderr. *)
    print_endline
      (Obs.Json.to_string (Obs.Run_ledger.findings_json findings));
    List.iter
      (fun f ->
        Fmt.epr "%s: %s: %s@."
          (Obs.Run_ledger.severity_name f.Obs.Run_ledger.severity)
          f.Obs.Run_ledger.path f.Obs.Run_ledger.message)
      findings;
    let correctness =
      List.exists
        (fun f -> f.Obs.Run_ledger.severity = Obs.Run_ledger.Correctness)
        findings
    in
    if correctness then begin
      Fmt.epr "regression: certified invariants changed (#%d vs #%d)@." bi ci;
      exit 1
    end;
    if fail_on_timing && findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two ledger records and flag regressions: certified \
          invariants (certified_sound, cert_fallbacks, warm_hit_rate) \
          exit non-zero; throughput deltas beyond the noise band are \
          advisory.")
    Term.(
      const run $ verbose_arg $ ledger_file_arg $ baseline $ candidate
      $ rel_tol $ warm_drop $ fail_on_timing)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:
         "Inspect and regression-diff the durable run ledger written by \
          $(b,--ledger).")
    [ runs_list_cmd; runs_show_cmd; runs_diff_cmd ]

let () =
  let doc = "LDA-FP: train fixed-point classifiers for on-chip low power" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ldafp" ~version:"1.0.0" ~doc)
          [
            generate_cmd; train_cmd; eval_cmd; classify_cmd; sweep_cmd;
            rtl_cmd; analyze_cmd; info_cmd; runs_cmd;
          ]))
