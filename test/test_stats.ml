(* Tests for the statistics substrate. *)

open Stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  checkb "different streams" true (!same < 5)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 8 in
  let n = 20_000 in
  let s = ref 0.0 in
  for _ = 1 to n do
    s := !s +. Rng.uniform rng ~lo:2.0 ~hi:4.0
  done;
  checkf 0.05 "mean about 3" 3.0 (!s /. float_of_int n)

let test_rng_int_bounds () =
  let rng = Rng.create 9 in
  let seen = Array.make 7 0 in
  for _ = 1 to 7000 do
    let v = Rng.int rng 7 in
    checkb "in range" true (v >= 0 && v < 7);
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i c -> checkb (Printf.sprintf "bucket %d populated" i) true (c > 700))
    seen

let test_rng_permutation () =
  let rng = Rng.create 10 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 100 (fun i -> i))
    sorted

let test_rng_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 parent = Rng.int64 child then incr same
  done;
  checkb "split streams differ" true (!same < 5)

(* ------------------------------------------------------------------ *)
(* Gaussian                                                            *)
(* ------------------------------------------------------------------ *)

let test_gaussian_cdf_known_values () =
  checkf 1e-12 "cdf(0)" 0.5 (Gaussian.cdf 0.0);
  checkf 1e-9 "cdf(1.96)" 0.9750021048517795 (Gaussian.cdf 1.96);
  checkf 1e-9 "cdf(-1.96)" 0.024997895148220428 (Gaussian.cdf (-1.96));
  checkf 1e-10 "cdf(1)" 0.8413447460685429 (Gaussian.cdf 1.0);
  checkf 1e-12 "cdf symmetric" 1.0 (Gaussian.cdf 0.7 +. Gaussian.cdf (-0.7))

let test_gaussian_pdf () =
  checkf 1e-12 "pdf(0)" 0.3989422804014327 (Gaussian.pdf 0.0);
  checkf 1e-12 "pdf symmetric" (Gaussian.pdf 1.3) (Gaussian.pdf (-1.3))

let test_gaussian_inv_cdf_known () =
  checkf 1e-10 "probit(0.5)" 0.0 (Gaussian.inv_cdf 0.5);
  checkf 1e-8 "probit(0.975)" 1.959963984540054 (Gaussian.inv_cdf 0.975);
  checkf 1e-8 "probit(0.995)" 2.5758293035489004 (Gaussian.inv_cdf 0.995);
  checkf 1e-7 "probit(1e-6)" (-4.753424308822899) (Gaussian.inv_cdf 1e-6)

let test_gaussian_inv_cdf_domain () =
  checkb "0 rejected" true
    (match Gaussian.inv_cdf 0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "1 rejected" true
    (match Gaussian.inv_cdf 1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_beta_of_confidence () =
  (* eq. 16: beta = probit(0.5 + rho/2). rho = 0.99 -> 2.576. *)
  checkf 1e-6 "rho 0.99" 2.5758293035489004 (Gaussian.beta_of_confidence 0.99);
  checkf 1e-6 "rho 0.95" 1.959963984540054 (Gaussian.beta_of_confidence 0.95);
  checkf 1e-12 "rho 0" 0.0 (Gaussian.beta_of_confidence 0.0)

let test_erf_known () =
  checkf 1e-12 "erf(0)" 0.0 (Gaussian.erf 0.0);
  checkf 1e-10 "erf(1)" 0.8427007929497149 (Gaussian.erf 1.0);
  checkf 1e-10 "erf(2)" 0.9953222650189527 (Gaussian.erf 2.0);
  checkf 1e-12 "erf odd" (-.Gaussian.erf 0.8) (Gaussian.erf (-0.8));
  checkf 1e-10 "erfc(3)" 2.2090496998585441e-05 (Gaussian.erfc 3.0)

let test_tail_probability () =
  checkf 1e-10 "one sigma tail" (1.0 -. Gaussian.cdf 1.0)
    (Gaussian.tail_probability ~mean:5.0 ~sigma:2.0 7.0);
  checkf 1e-12 "degenerate above" 0.0
    (Gaussian.tail_probability ~mean:1.0 ~sigma:0.0 2.0);
  checkf 1e-12 "degenerate below" 1.0
    (Gaussian.tail_probability ~mean:1.0 ~sigma:0.0 0.0)

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_std_normal_moments () =
  let rng = Rng.create 20 in
  let n = 50_000 in
  let s = ref 0.0 and s2 = ref 0.0 in
  for _ = 1 to n do
    let x = Sampler.std_normal rng in
    s := !s +. x;
    s2 := !s2 +. (x *. x)
  done;
  let mean = !s /. float_of_int n in
  let var = (!s2 /. float_of_int n) -. (mean *. mean) in
  checkf 0.02 "mean 0" 0.0 mean;
  checkf 0.05 "var 1" 1.0 var

let test_mvn_moments () =
  let mean = [| 1.0; -2.0 |] in
  let cov = [| [| 2.0; 0.8 |]; [| 0.8; 1.0 |] |] in
  let sampler = Sampler.mvn ~mean ~cov in
  let rng = Rng.create 21 in
  let draws = Sampler.mvn_draws sampler rng 40_000 in
  let mu = Moments.mean draws in
  let c = Moments.covariance draws in
  checkf 0.05 "mean 0" 1.0 mu.(0);
  checkf 0.05 "mean 1" (-2.0) mu.(1);
  checkf 0.08 "cov 00" 2.0 c.(0).(0);
  checkf 0.06 "cov 01" 0.8 c.(0).(1);
  checkf 0.05 "cov 11" 1.0 c.(1).(1)

let test_mvn_dim_mismatch () =
  checkb "rejects mismatch" true
    (match Sampler.mvn ~mean:[| 0.0 |] ~cov:(Linalg.Mat.identity 2) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Moments                                                             *)
(* ------------------------------------------------------------------ *)

let test_moments_exact () =
  let x = [| [| 1.0; 2.0 |]; [| 3.0; 6.0 |] |] in
  Alcotest.(check (array (float 1e-12)))
    "mean" [| 2.0; 4.0 |] (Moments.mean x);
  let c = Moments.covariance x in
  (* centered rows (±1, ±2): cov = [[1,2],[2,4]] with 1/N *)
  checkf 1e-12 "c00" 1.0 c.(0).(0);
  checkf 1e-12 "c01" 2.0 c.(0).(1);
  checkf 1e-12 "c11" 4.0 c.(1).(1);
  let cu = Moments.covariance_unbiased x in
  checkf 1e-12 "unbiased doubles" 2.0 cu.(0).(0);
  Alcotest.(check (array (float 1e-12)))
    "variances" [| 1.0; 4.0 |] (Moments.variances x);
  Alcotest.(check (array (float 1e-12)))
    "column min" [| 1.0; 2.0 |] (Moments.column_min x);
  Alcotest.(check (array (float 1e-12)))
    "column max" [| 3.0; 6.0 |] (Moments.column_max x)

let test_moments_empty () =
  checkb "empty rejected" true
    (match Moments.mean [||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "unbiased needs 2" true
    (match Moments.covariance_unbiased [| [| 1.0 |] |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Scatter                                                             *)
(* ------------------------------------------------------------------ *)

let two_class_data () =
  let a = [| [| 1.0; 0.0 |]; [| 2.0; 1.0 |]; [| 3.0; -1.0 |] |] in
  let b = [| [| -1.0; 0.5 |]; [| -2.0; -0.5 |] |] in
  Scatter.of_data a b

let test_scatter_means () =
  let s = two_class_data () in
  Alcotest.(check (array (float 1e-12)))
    "mu_a" [| 2.0; 0.0 |] s.Scatter.mu_a;
  Alcotest.(check (array (float 1e-12)))
    "mu_b" [| -1.5; 0.0 |] s.Scatter.mu_b;
  Alcotest.(check (array (float 1e-12)))
    "mean difference" [| 3.5; 0.0 |]
    (Scatter.mean_difference s);
  Alcotest.(check (array (float 1e-12)))
    "pooled mean" [| 0.25; 0.0 |] (Scatter.pooled_mean s)

let test_scatter_between_class_rank_one () =
  let s = two_class_data () in
  let sb = Scatter.between_class s in
  (* S_B = d dᵀ: rank one, d = (3.5, 0) *)
  checkf 1e-12 "sb00" 12.25 sb.(0).(0);
  checkf 1e-12 "sb01" 0.0 sb.(0).(1);
  checkf 1e-12 "sb11" 0.0 sb.(1).(1)

let test_scatter_within_class_psd () =
  let s = two_class_data () in
  let sw = Scatter.within_class s in
  checkb "symmetric" true (Linalg.Mat.is_symmetric sw);
  checkb "psd" true (Linalg.Sym_eig.min_eigenvalue sw >= -1e-12)

let test_fisher_ratio () =
  let s = two_class_data () in
  (* along e2 the mean difference is 0 -> infinite ratio *)
  checkb "degenerate direction infinite" true
    (Scatter.fisher_ratio s [| 0.0; 1.0 |] = Float.infinity);
  let r = Scatter.fisher_ratio s [| 1.0; 0.0 |] in
  (* S_W along e1: (2/3 + 1/4)/2 = 11/24; t = 3.5 -> r = (11/24)/12.25 *)
  checkf 1e-12 "analytic ratio" (11.0 /. 24.0 /. 12.25) r;
  (* scale invariance *)
  checkf 1e-12 "scale invariant" r (Scatter.fisher_ratio s [| 2.0; 0.0 |])

let test_projected_stats_and_error () =
  let s = two_class_data () in
  let (ma, _), (mb, _) = Scatter.projected_stats s [| 1.0; 0.0 |] in
  checkf 1e-12 "proj mean a" 2.0 ma;
  checkf 1e-12 "proj mean b" (-1.5) mb;
  let e = Scatter.theoretical_error s [| 1.0; 0.0 |] in
  checkb "error in (0, 0.5)" true (e > 0.0 && e < 0.5);
  checkf 1e-12 "equal means give 0.5" 0.5
    (Scatter.theoretical_error s [| 0.0; 1.0 |])

(* ------------------------------------------------------------------ *)
(* Confusion                                                           *)
(* ------------------------------------------------------------------ *)

let test_confusion_counting () =
  let truth = [| true; true; false; false; true |] in
  let predicted = [| true; false; false; true; true |] in
  let c = Confusion.of_predictions ~truth ~predicted in
  checki "tp" 2 c.Confusion.tp;
  checki "fn" 1 c.Confusion.fn;
  checki "fp" 1 c.Confusion.fp;
  checki "tn" 1 c.Confusion.tn;
  checkf 1e-12 "error rate" 0.4 (Confusion.error_rate c);
  checkf 1e-12 "accuracy" 0.6 (Confusion.accuracy c);
  checkf 1e-12 "sensitivity" (2.0 /. 3.0) (Confusion.sensitivity c);
  checkf 1e-12 "specificity" 0.5 (Confusion.specificity c)

let test_confusion_merge () =
  let a = Confusion.add Confusion.empty ~truth:true ~predicted:true in
  let b = Confusion.add Confusion.empty ~truth:false ~predicted:true in
  let m = Confusion.merge a b in
  checki "total" 2 (Confusion.total m);
  checki "errors" 1 (Confusion.errors m)

let test_confusion_empty_error () =
  checkb "empty error rate raises" true
    (match Confusion.error_rate Confusion.empty with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_binning () =
  let h =
    Histogram.of_values ~lo:0.0 ~hi:1.0 ~bins:4 [| 0.1; 0.3; 0.3; 0.9; 1.5; -0.2 |]
  in
  checki "total includes out of range" 6 (Histogram.total h);
  checki "underflow" 1 h.Histogram.underflow;
  checki "overflow" 1 h.Histogram.overflow;
  checki "bin 1 holds the pair" 2 h.Histogram.counts.(1);
  checki "mode" 1 (Histogram.mode_bin h);
  checkf 1e-12 "bin center" 0.375 (Histogram.bin_center h 1);
  checkb "upper edge overflows" true (Histogram.bin_of h 1.0 = `Overflow)

let test_histogram_mean_estimate () =
  let h = Histogram.of_values ~lo:0.0 ~hi:10.0 ~bins:10 [| 2.5; 2.5; 7.5 |] in
  (* bin centers 2.5 and 7.5: mean = (2.5+2.5+7.5)/3 *)
  checkf 1e-12 "mean" (12.5 /. 3.0) (Histogram.mean_estimate h)

let test_histogram_render () =
  let h = Histogram.of_values ~lo:0.0 ~hi:1.0 ~bins:2 [| 0.25; 0.25; 0.75 |] in
  let s = Histogram.render ~width:10 h in
  checkb "renders bars" true (String.length s > 0);
  checkb "contains counts" true
    (String.split_on_char '\n' s
    |> List.exists (fun line -> String.length line > 0))

let test_histogram_validation () =
  checkb "lo >= hi" true
    (match Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "zero bins" true
    (match Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_of_counts () =
  let h = Histogram.of_counts ~lo:0.0 ~hi:4.0 ~underflow:2 [| 1; 0; 3; 0 |] in
  checki "total" 6 (Histogram.total h);
  checki "underflow kept" 2 h.Histogram.underflow;
  checki "bin 2" 3 h.Histogram.counts.(2);
  (* The counts array is copied, not aliased. *)
  let src = [| 5 |] in
  let h2 = Histogram.of_counts ~lo:0.0 ~hi:1.0 src in
  src.(0) <- 0;
  checki "copied counts" 5 h2.Histogram.counts.(0);
  checkb "negative count rejected" true
    (match Histogram.of_counts ~lo:0.0 ~hi:1.0 [| -1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "empty counts rejected" true
    (match Histogram.of_counts ~lo:0.0 ~hi:1.0 [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_merge () =
  let a = Histogram.of_values ~lo:0.0 ~hi:1.0 ~bins:4 [| 0.1; 0.6; 1.5 |] in
  let b = Histogram.of_values ~lo:0.0 ~hi:1.0 ~bins:4 [| 0.1; -0.5 |] in
  let m = Histogram.merge a b in
  checki "merged total" 5 (Histogram.total m);
  checki "merged bin 0" 2 m.Histogram.counts.(0);
  checki "merged underflow" 1 m.Histogram.underflow;
  checki "merged overflow" 1 m.Histogram.overflow;
  let c = Histogram.of_values ~lo:0.0 ~hi:2.0 ~bins:4 [| 0.1 |] in
  checkb "layout mismatch rejected" true
    (match Histogram.merge a c with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_quantile () =
  (* 100 values uniform over bin edges: quantiles interpolate linearly,
     so p maps back to (roughly) lo + p * (hi - lo). *)
  let values = Array.init 100 (fun i -> float_of_int i /. 100.0) in
  let h = Histogram.of_values ~lo:0.0 ~hi:1.0 ~bins:10 values in
  checkf 0.05 "p50 near midpoint" 0.5 (Histogram.quantile h 0.5);
  checkf 0.05 "p90" 0.9 (Histogram.quantile h 0.9);
  checkf 1e-12 "p0 is lo" 0.0 (Histogram.quantile h 0.0);
  checkf 1e-12 "p1 is hi" 1.0 (Histogram.quantile h 1.0);
  (* Tails have no position: quantiles landing there clamp to the
     edges. *)
  let tails =
    Histogram.of_counts ~lo:1.0 ~hi:2.0 ~underflow:10 ~overflow:10 [| 0; 0 |]
  in
  checkf 1e-12 "underflow tail reports lo" 1.0 (Histogram.quantile tails 0.2);
  checkf 1e-12 "overflow tail reports hi" 2.0 (Histogram.quantile tails 0.9);
  checkb "empty rejected" true
    (match Histogram.quantile (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2) 0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "p out of range rejected" true
    (match Histogram.quantile h 1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* McNemar                                                             *)
(* ------------------------------------------------------------------ *)

let test_mcnemar_counts () =
  let truth = [| true; true; false; false; true |] in
  let a = [| true; true; false; true; false |] in
  let b = [| true; false; true; true; false |] in
  let r = Mcnemar.compare ~truth ~a ~b in
  checki "both right" 1 r.Mcnemar.both;
  checki "a only" 2 r.Mcnemar.a_only;
  checki "b only" 0 r.Mcnemar.b_only;
  checki "neither" 2 r.Mcnemar.neither;
  checkb "direction" true (r.Mcnemar.better = `A)

let test_mcnemar_identical_classifiers () =
  let truth = [| true; false; true |] in
  let a = [| true; false; false |] in
  let r = Mcnemar.compare ~truth ~a ~b:a in
  checkf 1e-12 "no discordant pairs -> p = 1" 1.0 r.Mcnemar.p_value;
  checkb "tie" true (r.Mcnemar.better = `Tie)

let test_mcnemar_exact_small_case () =
  (* 5 discordant pairs all won by A: p = 2 * P(Bin(5, 1/2) <= 0)
     = 2/32 = 0.0625. *)
  let truth = Array.make 5 true in
  let a = Array.make 5 true in
  let b = Array.make 5 false in
  let r = Mcnemar.compare ~truth ~a ~b in
  checkf 1e-12 "exact binomial" 0.0625 r.Mcnemar.p_value;
  checkb "not significant at 5 pairs" true (not (Mcnemar.significant r));
  (* 8 pairs all won by A: p = 2/256 < 0.05 *)
  let truth = Array.make 8 true in
  let r =
    Mcnemar.compare ~truth ~a:(Array.make 8 true) ~b:(Array.make 8 false)
  in
  checkf 1e-12 "8 wins" (2.0 /. 256.0) r.Mcnemar.p_value;
  checkb "significant" true (Mcnemar.significant r)

let test_mcnemar_null_calibration () =
  (* Under the null (both classifiers fair coins), the p-value should not
     be small too often: check the 5% rejection rate loosely. *)
  let rng = Rng.create 60 in
  let rejections = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let n = 60 in
    let truth = Array.init n (fun _ -> Rng.bool rng) in
    let a = Array.init n (fun _ -> Rng.bool rng) in
    let b = Array.init n (fun _ -> Rng.bool rng) in
    if Mcnemar.significant (Mcnemar.compare ~truth ~a ~b) then
      incr rejections
  done;
  let rate = float_of_int !rejections /. float_of_int trials in
  checkb (Printf.sprintf "null rejection rate %.3f near alpha" rate) true
    (rate < 0.09)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf monotone" ~count:300
    QCheck.(pair (float_range (-6.0) 6.0) (float_range (-6.0) 6.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Gaussian.cdf lo <= Gaussian.cdf hi +. 1e-15)

let prop_inv_cdf_roundtrip =
  QCheck.Test.make ~name:"cdf (inv_cdf p) = p" ~count:300
    QCheck.(float_range 1e-8 (1.0 -. 1e-8))
    (fun p ->
      let x = Gaussian.inv_cdf p in
      Float.abs (Gaussian.cdf x -. p) < 1e-9)

let prop_erf_erfc_complementary =
  QCheck.Test.make ~name:"erf + erfc = 1" ~count:300
    QCheck.(float_range (-6.0) 6.0)
    (fun x -> Float.abs (Gaussian.erf x +. Gaussian.erfc x -. 1.0) < 1e-12)

let prop_covariance_psd =
  QCheck.Test.make ~name:"sample covariance is PSD" ~count:100
    QCheck.(pair (int_range 2 20) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let x =
        Array.init n (fun _ ->
            Array.init 4 (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0))
      in
      Linalg.Sym_eig.min_eigenvalue (Moments.covariance x) >= -1e-9)

let prop_fisher_scale_invariant =
  QCheck.Test.make ~name:"fisher ratio scale invariant" ~count:200
    QCheck.(pair (float_range 0.1 10.0) (int_range 0 1_000_000))
    (fun (lambda, seed) ->
      let rng = Rng.create seed in
      let gen () =
        Array.init 8 (fun _ ->
            Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0))
      in
      let s = Scatter.of_data (gen ()) (gen ()) in
      let w = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let r1 = Scatter.fisher_ratio s w in
      let r2 = Scatter.fisher_ratio s (Linalg.Vec.scale lambda w) in
      QCheck.assume (Float.is_finite r1 && r1 > 1e-12);
      Float.abs (r1 -. r2) /. r1 < 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cdf_monotone;
      prop_inv_cdf_roundtrip;
      prop_erf_erfc_complementary;
      prop_covariance_psd;
      prop_fisher_scale_invariant;
    ]

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "cdf known values" `Quick
            test_gaussian_cdf_known_values;
          Alcotest.test_case "pdf" `Quick test_gaussian_pdf;
          Alcotest.test_case "inv_cdf known" `Quick test_gaussian_inv_cdf_known;
          Alcotest.test_case "inv_cdf domain" `Quick
            test_gaussian_inv_cdf_domain;
          Alcotest.test_case "beta of confidence (eq 16)" `Quick
            test_beta_of_confidence;
          Alcotest.test_case "erf known" `Quick test_erf_known;
          Alcotest.test_case "tail probability" `Quick test_tail_probability;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "std normal moments" `Slow
            test_std_normal_moments;
          Alcotest.test_case "mvn moments" `Slow test_mvn_moments;
          Alcotest.test_case "mvn dim mismatch" `Quick test_mvn_dim_mismatch;
        ] );
      ( "moments",
        [
          Alcotest.test_case "exact" `Quick test_moments_exact;
          Alcotest.test_case "empty" `Quick test_moments_empty;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "means" `Quick test_scatter_means;
          Alcotest.test_case "between-class rank one" `Quick
            test_scatter_between_class_rank_one;
          Alcotest.test_case "within-class psd" `Quick
            test_scatter_within_class_psd;
          Alcotest.test_case "fisher ratio" `Quick test_fisher_ratio;
          Alcotest.test_case "projected stats" `Quick
            test_projected_stats_and_error;
        ] );
      ( "confusion",
        [
          Alcotest.test_case "counting" `Quick test_confusion_counting;
          Alcotest.test_case "merge" `Quick test_confusion_merge;
          Alcotest.test_case "empty" `Quick test_confusion_empty_error;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "mean estimate" `Quick
            test_histogram_mean_estimate;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          Alcotest.test_case "of_counts" `Quick test_histogram_of_counts;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
        ] );
      ( "mcnemar",
        [
          Alcotest.test_case "counts" `Quick test_mcnemar_counts;
          Alcotest.test_case "identical classifiers" `Quick
            test_mcnemar_identical_classifiers;
          Alcotest.test_case "exact small case" `Quick
            test_mcnemar_exact_small_case;
          Alcotest.test_case "null calibration" `Slow
            test_mcnemar_null_calibration;
        ] );
      ("properties", qcheck_tests);
    ]
