(* Tests for the reporting library: table rendering and the experiment
   harness (fast pieces; the full table reproductions run in bench). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out =
    Report.Table.render
      ~columns:
        [ Report.Table.column ~align:Report.Table.Left "name";
          Report.Table.column "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  checki "four lines" 4 (List.length lines);
  (* header, rule, two rows; all rows equal width *)
  (match lines with
  | header :: rule :: rows ->
      checki "rule width matches header" (String.length header)
        (String.length rule);
      List.iter
        (fun r -> checki "row width" (String.length header) (String.length r))
        rows;
      checkb "left aligned" true (String.length header > 0 && header.[0] = 'n')
  | _ -> Alcotest.fail "unexpected shape");
  checkb "right-aligned number" true
    (let last = List.nth lines 3 in
     String.length last >= 2 && last.[String.length last - 1] = '2')

let test_table_rejects_ragged () =
  checkb "ragged row" true
    (match
       Report.Table.render
         ~columns:[ Report.Table.column "a"; Report.Table.column "b" ]
         ~rows:[ [ "only one" ] ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_formatters () =
  Alcotest.(check string) "pct" "26.83%" (Report.Table.pct 0.2683);
  Alcotest.(check string) "pct zero" "0.00%" (Report.Table.pct 0.0);
  Alcotest.(check string) "secs" "1.23" (Report.Table.secs 1.2345);
  Alcotest.(check string) "g4" "0.1235" (Report.Table.g4 0.123456)

(* ------------------------------------------------------------------ *)
(* Experiments: fast pieces                                            *)
(* ------------------------------------------------------------------ *)

let test_power_rows () =
  let rows = Report.Experiments.power ~n_features:42 ~wls:[ 4; 8; 16 ] () in
  checki "row count" 3 (List.length rows);
  let r16 = List.nth rows 2 in
  checkf 1e-12 "normalised at 16" 1.0 r16.Report.Experiments.quadratic;
  checkf 1e-12 "gate normalised at 16" 1.0 r16.Report.Experiments.gate_based;
  let r4 = List.hd rows in
  checkf 1e-12 "quadratic 4 vs 16" (1.0 /. 16.0) r4.Report.Experiments.quadratic;
  checkb "gate model monotone" true
    (r4.Report.Experiments.gate_based < r16.Report.Experiments.gate_based)

let test_figure2_quick () =
  (* The robustness experiment must show LDA's worst perturbed error
     exceeding LDA-FP's. *)
  let r = Report.Experiments.figure2 ~quick:true () in
  checkb "nominal errors sane" true
    (r.Report.Experiments.lda_nominal >= 0.0
    && r.Report.Experiments.lda_nominal <= 1.0
    && r.Report.Experiments.ldafp_nominal >= 0.0);
  checkb "worst >= nominal (lda)" true
    (r.Report.Experiments.lda_worst >= r.Report.Experiments.lda_nominal -. 1e-12);
  checkb "worst >= nominal (ldafp)" true
    (r.Report.Experiments.ldafp_worst
    >= r.Report.Experiments.ldafp_nominal -. 1e-12);
  checkb "ldafp more robust" true
    (r.Report.Experiments.ldafp_worst <= r.Report.Experiments.lda_worst +. 0.02)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_rejects_ragged;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "power rows" `Quick test_power_rows;
          Alcotest.test_case "figure2 quick" `Slow test_figure2_quick;
        ] );
    ]
