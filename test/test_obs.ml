(* Observability layer: monotonic clock (real and mocked), per-domain
   trace rings (wraparound, concurrent emission, Chrome trace-event
   round-trip), metric export (Prometheus escaping, cumulative le
   buckets), the zero-allocation disabled path, progress throttling,
   and an end-to-end solve that must leave events from every
   instrumented layer in the trace. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  checkb "now_ns non-decreasing" true (b >= a);
  checkb "now_ns is positive" true (a > 0);
  let s0 = Obs.Clock.now () in
  let s1 = Obs.Clock.now () in
  checkb "now non-decreasing" true (s1 >= s0)

let test_clock_mock () =
  Fun.protect
    ~finally:(fun () -> Obs.Clock.use_monotonic ())
    (fun () ->
      let t = ref 1_000 in
      Obs.Clock.set_source (fun () -> !t);
      checki "mock ns" 1_000 (Obs.Clock.now_ns ());
      t := 2_500_000_000;
      checki "mock advances" 2_500_000_000 (Obs.Clock.now_ns ());
      checkf 1e-9 "now scales to seconds" 2.5 (Obs.Clock.now ()));
  (* Restored source reads the real clock again. *)
  checkb "restored" true (Obs.Clock.now_ns () <> 2_500_000_000)

(* ------------------------------------------------------------------ *)
(* Trace rings                                                         *)
(* ------------------------------------------------------------------ *)

let with_collector ?capacity f =
  let c = Obs.Trace.create ?capacity () in
  Obs.Trace.install c;
  Fun.protect ~finally:(fun () -> Obs.Trace.uninstall ()) (fun () -> f c)

let test_ring_wraparound () =
  with_collector ~capacity:4 (fun c ->
      for i = 0 to 9 do
        Obs.Trace.instant ~cat:"test" (Printf.sprintf "e%d" i)
      done;
      let evs = Obs.Trace.events c in
      checki "ring keeps capacity events" 4 (List.length evs);
      checki "drop count" 6 (Obs.Trace.dropped c);
      (* The survivors are the newest four, oldest first. *)
      Alcotest.(check (list string))
        "oldest overwritten first"
        [ "e6"; "e7"; "e8"; "e9" ]
        (List.map (fun e -> e.Obs.Trace.name) evs))

let member_exn key j =
  match Obs.Json.member key j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing JSON key %S" key)

let test_concurrent_emission_round_trip () =
  let per_domain = 100 in
  with_collector (fun c ->
      let worker () =
        for i = 0 to per_domain - 1 do
          let t0 = Obs.Clock.now_ns () in
          Obs.Trace.complete ~cat:"test" "span" ~t0_ns:t0
            ~dur_ns:(i mod 7)
            ~args:[ ("i", Obs.Trace.Int i) ]
        done
      in
      let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
      Array.iter Domain.join domains;
      (* Round-trip through the writer and the parser: what we exported
         is what a Chrome-trace consumer will read back. *)
      let parsed =
        match Obs.Json.parse (Obs.Json.to_string (Obs.Trace.to_json c)) with
        | Ok j -> j
        | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
      in
      let events =
        match member_exn "traceEvents" parsed with
        | Obs.Json.List evs -> evs
        | _ -> Alcotest.fail "traceEvents is not a list"
      in
      checki "all events exported" (4 * per_domain) (List.length events);
      let tids = Hashtbl.create 8 in
      let last_ts = ref neg_infinity in
      List.iter
        (fun ev ->
          (match member_exn "ph" ev with
          | Obs.Json.Str "X" -> ()
          | _ -> Alcotest.fail "expected complete (ph = X) events");
          (match member_exn "pid" ev with
          | Obs.Json.Int 1 -> ()
          | _ -> Alcotest.fail "pid must be 1");
          checkb "has a duration" true (Obs.Json.member "dur" ev <> None);
          (match member_exn "tid" ev with
          | Obs.Json.Int tid -> Hashtbl.replace tids tid ()
          | _ -> Alcotest.fail "tid must be an int");
          (* %.17g prints integral microsecond stamps without a decimal
             point, so they parse back as Int — both are valid JSON
             numbers. *)
          match member_exn "ts" ev with
          | Obs.Json.Float ts ->
              checkb "timestamps sorted" true (ts >= !last_ts);
              last_ts := ts
          | Obs.Json.Int ts ->
              let ts = float_of_int ts in
              checkb "timestamps sorted" true (ts >= !last_ts);
              last_ts := ts
          | _ -> Alcotest.fail "ts must be a number")
        events;
      checki "one lane per emitting domain" 4 (Hashtbl.length tids);
      checki "nothing dropped" 0 (Obs.Trace.dropped c))

(* ------------------------------------------------------------------ *)
(* Disabled path                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_path_no_alloc () =
  Obs.Trace.uninstall ();
  Obs.Metrics.set_enabled false;
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg ~lo:1e-6 ~hi:1.0 "test_disabled_seconds" in
  let cnt = Obs.Metrics.counter reg "test_disabled_total" in
  (* The production guard pattern: one enabled check, arguments built
     only behind it.  1000 iterations must stay within noise of zero
     minor-heap words (a handful for the Gc.minor_words probes
     themselves). *)
  let before = Gc.minor_words () in
  for i = 0 to 999 do
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"test" "never"
        ~args:[ ("i", Obs.Trace.Int i) ];
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr cnt;
      Obs.Metrics.observe h (float_of_int i *. 1e-6)
    end
  done;
  let delta = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "disabled path allocates nothing (%.0f words)" delta)
    true (delta < 256.0);
  checki "counter untouched" 0 (Obs.Metrics.counter_value cnt);
  checki "histogram untouched" 0 (Obs.Metrics.histogram_count h)

(* ------------------------------------------------------------------ *)
(* Metrics export                                                      *)
(* ------------------------------------------------------------------ *)

let with_metrics f =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) f

let test_prometheus_escaping_and_buckets () =
  let reg = Obs.Metrics.create () in
  let c =
    Obs.Metrics.counter reg ~help:"line one\nline two"
      ~labels:[ ("path", "a\\b\"c\nd") ]
      "test_requests_total"
  in
  let h =
    Obs.Metrics.histogram reg ~lo:1e-3 ~hi:10.0 ~bins:8
      "test_latency_seconds"
  in
  with_metrics (fun () ->
      Obs.Metrics.incr c;
      List.iter (Obs.Metrics.observe h)
        [ 1e-4 (* underflow *); 0.01; 0.1; 1.0; 100.0 (* overflow *) ]);
  checki "count includes tails" 5 (Obs.Metrics.histogram_count h);
  (match Obs.Metrics.histogram_quantile h 0.5 with
  | Some q -> checkb "p50 within recorded range" true (q >= 1e-3 && q <= 10.0)
  | None -> Alcotest.fail "quantile on non-empty histogram");
  let text = Obs.Metrics.to_prometheus reg in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  (* Backslash, quote and newline in a label value must be escaped per
     the text exposition format. *)
  checkb "label value escaped" true
    (contains "path=\"a\\\\b\\\"c\\nd\"");
  checkb "help newline escaped" true (contains "# HELP test_requests_total line one\\nline two");
  checkb "counter typed" true (contains "# TYPE test_requests_total counter");
  checkb "histogram typed" true (contains "# TYPE test_latency_seconds histogram");
  (* Bucket series: cumulative, ending in +Inf == _count. *)
  let bucket_counts =
    let prefix = "test_latency_seconds_bucket{" in
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if
             String.length line >= String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
           then
             match String.rindex_opt line ' ' with
             | Some i ->
                 int_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1))
             | None -> None
           else None)
  in
  checki "8 finite buckets plus +Inf" 9 (List.length bucket_counts);
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  checkb "buckets cumulative" true (non_decreasing bucket_counts);
  checkb "+Inf bucket equals count" true
    (match List.rev bucket_counts with
    | last :: _ -> last = 5
    | [] -> false);
  checkb "first bucket holds the underflow" true
    (match bucket_counts with n :: _ -> n >= 1 | [] -> false);
  checkb "+Inf series present" true (contains "le=\"+Inf\"} 5");
  checkb "_count series" true (contains "test_latency_seconds_count 5")

let test_metrics_json_schema () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg ~lo:1e-3 ~hi:10.0 ~bins:4 "test_h" in
  let g = Obs.Metrics.gauge reg "test_g" in
  with_metrics (fun () ->
      Obs.Metrics.set g 0.5;
      List.iter (Obs.Metrics.observe h) [ 0.01; 0.1; 1.0 ]);
  let parsed =
    match Obs.Json.parse (Obs.Json.to_string (Obs.Metrics.to_json reg)) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)
  in
  (match member_exn "schema" parsed with
  | Obs.Json.Str "ldafp-metrics/1" -> ()
  | _ -> Alcotest.fail "schema tag");
  let metrics = member_exn "metrics" parsed in
  let hj = member_exn "test_h" metrics in
  (match member_exn "count" hj with
  | Obs.Json.Int 3 -> ()
  | _ -> Alcotest.fail "histogram count in JSON");
  (match member_exn "buckets" hj with
  | Obs.Json.List buckets ->
      checki "bucket entries" 4 (List.length buckets);
      List.iter
        (fun b ->
          checkb "bucket has le" true (Obs.Json.member "le" b <> None);
          checkb "bucket has count" true (Obs.Json.member "count" b <> None))
        buckets
  | _ -> Alcotest.fail "buckets list");
  match member_exn "value" (member_exn "test_g" metrics) with
  | Obs.Json.Float v -> checkf 1e-12 "gauge value" 0.5 v
  | _ -> Alcotest.fail "gauge value"

(* ------------------------------------------------------------------ *)
(* Progress throttling                                                 *)
(* ------------------------------------------------------------------ *)

let test_progress_throttle () =
  Fun.protect
    ~finally:(fun () -> Obs.Clock.use_monotonic ())
    (fun () ->
      let t = ref 10_000_000_000 in
      Obs.Clock.set_source (fun () -> !t);
      (* interval below the floor is clamped to 1 s. *)
      let p = Obs.Progress.create ~interval:0.01 () in
      checkb "first poll fires" true (Obs.Progress.due p);
      checkb "second poll throttled" false (Obs.Progress.due p);
      t := !t + 500_000_000;
      checkb "0.5s later still throttled" false (Obs.Progress.due p);
      t := !t + 600_000_000;
      checkb "1.1s later fires" true (Obs.Progress.due p);
      checkb "and only once" false (Obs.Progress.due p))

(* ------------------------------------------------------------------ *)
(* End to end: every instrumented layer shows up in one trace          *)
(* ------------------------------------------------------------------ *)

let small_scatter () =
  let a =
    [| [| 0.5; 0.1 |]; [| 0.7; -0.1 |]; [| 0.6; 0.2 |]; [| 0.4; -0.2 |] |]
  in
  let b =
    [| [| -0.5; 0.15 |]; [| -0.7; -0.15 |]; [| -0.6; 0.1 |]; [| -0.4; -0.1 |] |]
  in
  Stats.Scatter.of_data a b

let test_solve_traces_all_layers () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let path = Filename.temp_file "ldafp-test-obs" ".bnb" in
  Fun.protect
    ~finally:(fun () -> (try Sys.remove path with Sys_error _ -> ()))
    (fun () ->
      let config =
        {
          Lda_fp.quick_config with
          bnb_params =
            {
              Optim.Bnb.default_params with
              max_nodes = 4000;
              rel_gap = 0.0;
              abs_gap = 0.0;
              domains = 2;
            };
          checkpoint = Some (Lda_fp.checkpoint_spec ~every_nodes:5 path);
        }
      in
      with_collector (fun c ->
          (match Lda_fp.solve ~config pb with
          | Some _ -> ()
          | None -> Alcotest.fail "solve found no solution");
          let cats = Hashtbl.create 8 in
          List.iter
            (fun e -> Hashtbl.replace cats e.Obs.Trace.cat ())
            (Obs.Trace.events c);
          List.iter
            (fun cat ->
              checkb (Printf.sprintf "trace has %s events" cat) true
                (Hashtbl.mem cats cat))
            [ "bnb"; "socp"; "sched"; "ckpt" ]))

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "mock source" `Quick test_clock_mock;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "concurrent emission round-trip" `Quick
            test_concurrent_emission_round_trip;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_path_no_alloc;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "prometheus escaping and buckets" `Quick
            test_prometheus_escaping_and_buckets;
          Alcotest.test_case "json schema" `Quick test_metrics_json_schema;
        ] );
      ( "progress",
        [ Alcotest.test_case "throttle" `Quick test_progress_throttle ] );
      ( "end-to-end",
        [
          Alcotest.test_case "solve traces all layers" `Quick
            test_solve_traces_all_layers;
        ] );
    ]
