(* Batched inference engine: bit-exactness of the C MAC kernels against
   the scalar datapath (QCheck, including saturation-boundary and
   63-bit product-wraparound inputs, and per-feature hetero formats),
   the zero-allocation steady state, the staged pipeline against its
   scalar lockstep reference, the C model-header golden file and table
   round-trip, and the infer metrics. *)

open Ldafp_core
open Fixedpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let clf_of_raws ?(polarity = true) fmt ~w_raws ~thr_raw ~exponents =
  Fixed_classifier.create ~polarity
    ~w:(Fx_vector.of_fx (Array.map (Fx.create fmt) w_raws))
    ~threshold:(Fx.create fmt thr_raw)
    ~scaling:(Scaling.of_exponents exponents)
    ()

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

(* Raw codes biased toward the format's corners — the saturation
   boundary and the codes whose products wrap. *)
let raw_gen fmt =
  QCheck.Gen.(
    frequency
      [
        (3, int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt));
        (1, oneofl [ Qformat.min_raw fmt; Qformat.max_raw fmt; 0; -1; 1 ]);
      ])

(* Inputs biased toward saturation (far outside any format range) and
   format-boundary magnitudes. *)
let input_gen fmt =
  QCheck.Gen.(
    frequency
      [
        (4, float_range (-4.0) 4.0);
        (1, float_range (-1e7) 1e7);
        ( 1,
          oneofl
            [
              Qformat.min_value fmt;
              Qformat.max_value fmt;
              -.Qformat.min_value fmt;
              2.0 *. Qformat.max_value fmt;
            ] );
      ])

let fmt_gen =
  QCheck.Gen.(
    let* k = int_range 1 4 in
    let* f = int_range 0 8 in
    return (Qformat.make ~k ~f))

(* A uniform classifier plus a batch of raw input rows. *)
let arb_uniform_case ~rows =
  QCheck.make
    ~print:(fun (clf, _) ->
      Format.asprintf "%a" Fixed_classifier.pp clf)
    QCheck.Gen.(
      let* fmt = fmt_gen in
      let* m = int_range 1 8 in
      let* w_raws = array_size (return m) (raw_gen fmt) in
      let* thr_raw = raw_gen fmt in
      let* exponents = array_size (return m) (int_range (-3) 3) in
      let* polarity = bool in
      let* xs = list_size (return rows) (array_size (return m) (input_gen fmt)) in
      return
        (clf_of_raws ~polarity fmt ~w_raws ~thr_raw ~exponents, Array.of_list xs))

(* 400 cases x 256 rows = 102_400 randomized predictions. *)
let prop_uniform_bit_exact =
  QCheck.Test.make ~name:"batched kernel == scalar predict/margin (uniform)"
    ~count:400 (arb_uniform_case ~rows:256)
    (fun (clf, xs) ->
      let engine = Infer.Engine.of_fixed ~capacity:(Array.length xs) clf in
      let batch = Infer.Engine.make_batch engine in
      let n = Infer.Engine.load_rows engine batch xs in
      let preds = Bytes.create n in
      Infer.Engine.predict_into engine batch preds;
      Array.for_all
        (fun i ->
          let x = xs.(i) in
          Bytes.get preds i = '\001' = Fixed_classifier.predict clf x
          && Infer.Engine.margin engine i = Fixed_classifier.margin clf x)
        (Array.init n Fun.id))

let arb_hetero_case ~rows =
  QCheck.make
    QCheck.Gen.(
      let* acc_fmt = fmt_gen in
      let* m = int_range 1 6 in
      let* w_fmts = array_size (return m) fmt_gen in
      let* weights =
        array_size (return m) (float_range (-3.0) 3.0)
      in
      let* threshold = float_range (-1.5) 1.5 in
      let* exponents = array_size (return m) (int_range (-3) 3) in
      let* polarity = bool in
      let* xs =
        list_size (return rows) (array_size (return m) (input_gen acc_fmt))
      in
      let h =
        Hetero_classifier.create ~polarity ~acc_fmt ~formats:w_fmts ~weights
          ~threshold
          ~scaling:(Scaling.of_exponents exponents)
          ()
      in
      return (h, Array.of_list xs))

let prop_hetero_bit_exact =
  QCheck.Test.make
    ~name:"batched kernel == scalar predict (hetero per-feature formats)"
    ~count:200 (arb_hetero_case ~rows:128)
    (fun (h, xs) ->
      let engine = Infer.Engine.of_hetero ~capacity:(Array.length xs) h in
      let batch = Infer.Engine.make_batch engine in
      let n = Infer.Engine.load_rows engine batch xs in
      let preds = Bytes.create n in
      Infer.Engine.predict_into engine batch preds;
      Array.for_all
        (fun i -> Bytes.get preds i = '\001' = Hetero_classifier.predict h xs.(i))
        (Array.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Directed adversarial cases                                          *)
(* ------------------------------------------------------------------ *)

(* Q16.16: min_raw * min_raw = 2^62, one past the largest 63-bit OCaml
   int — the product wraps modulo 2^63 in the scalar datapath and the
   kernel must wrap identically. *)
let test_product_wraparound () =
  let fmt = Qformat.make ~k:16 ~f:16 in
  let w_raws = [| Qformat.min_raw fmt; Qformat.max_raw fmt |] in
  let clf =
    clf_of_raws fmt ~w_raws ~thr_raw:0 ~exponents:[| 0; 0 |]
  in
  let inputs =
    [|
      [| Qformat.min_value fmt; Qformat.min_value fmt |];
      [| Qformat.min_value fmt; Qformat.max_value fmt |];
      [| Qformat.max_value fmt; Qformat.min_value fmt |];
      [| -1e12; 1e12 |] (* saturates both features *);
    |]
  in
  let engine = Infer.Engine.of_fixed ~capacity:4 clf in
  let batch = Infer.Engine.make_batch engine in
  let n = Infer.Engine.load_rows engine batch inputs in
  let preds = Bytes.create n in
  Infer.Engine.predict_into engine batch preds;
  Array.iteri
    (fun i x ->
      checkb
        (Printf.sprintf "wraparound row %d" i)
        (Fixed_classifier.predict clf x)
        (Bytes.get preds i = '\001');
      checkb
        (Printf.sprintf "wraparound projection %d" i)
        true
        (Qformat.value_of_raw fmt (Infer.Engine.projection_raw engine i)
        = Fx.to_float (Fixed_classifier.project clf x)))
    inputs

let test_saturation_boundary () =
  (* Inputs exactly on and just past the representable boundary, with
     scaling exponents shifting them across it. *)
  let fmt = Qformat.make ~k:2 ~f:6 in
  let clf =
    clf_of_raws fmt
      ~w_raws:[| Qformat.max_raw fmt; Qformat.min_raw fmt; 17 |]
      ~thr_raw:(-3) ~exponents:[| 1; 0; -2 |]
  in
  let b = Qformat.max_value fmt in
  let u = Qformat.ulp fmt in
  let inputs =
    Array.concat
      (List.map
         (fun v -> [| [| v; v; v |]; [| -.v; v; -.v |]; [| v; -.v; 0.0 |] |])
         [ b; b +. u; b +. (u /. 2.0); 2.0 *. b; -2.0 *. b; 1e300 ])
  in
  let engine = Infer.Engine.of_fixed ~capacity:(Array.length inputs) clf in
  let batch = Infer.Engine.make_batch engine in
  let n = Infer.Engine.load_rows engine batch inputs in
  let preds = Bytes.create n in
  Infer.Engine.predict_into engine batch preds;
  Array.iteri
    (fun i x ->
      checkb
        (Printf.sprintf "saturation row %d" i)
        (Fixed_classifier.predict clf x)
        (Bytes.get preds i = '\001'))
    inputs

(* ------------------------------------------------------------------ *)
(* Zero-allocation steady state                                        *)
(* ------------------------------------------------------------------ *)

let test_steady_state_no_alloc () =
  Obs.Metrics.set_enabled false;
  let fmt = Qformat.make ~k:2 ~f:6 in
  let clf =
    clf_of_raws fmt ~w_raws:[| 31; -17; 5; 12 |] ~thr_raw:7
      ~exponents:[| 0; 1; 0; -1 |]
  in
  let engine = Infer.Engine.of_fixed ~capacity:256 clf in
  let batch = Infer.Engine.make_batch engine in
  let rng = Stats.Rng.create 7 in
  let rows =
    Array.init 256 (fun _ ->
        Array.init 4 (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0))
  in
  let n = Infer.Engine.load_rows engine batch rows in
  checki "batch full" 256 n;
  let preds = Bytes.create 256 in
  (* Warm up (first call may fault pages / build closures). *)
  for _ = 1 to 3 do
    Infer.Engine.predict_into engine batch preds
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Infer.Engine.predict_into engine batch preds
  done;
  let delta = Gc.minor_words () -. before in
  (* 1000 calls x 256 predictions: anything beyond the Gc.minor_words
     probe noise means a per-call allocation crept in. *)
  checkb
    (Printf.sprintf "steady-state batched predict allocates nothing (%.0f \
                     words)"
       delta)
    true (delta < 256.0)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let prometheus_counter_value name text =
  let v = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             v :=
               int_of_float
                 (float_of_string
                    (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> ());
  !v

let test_metrics_count_predictions () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  let clf = clf_of_raws fmt ~w_raws:[| 3; -5 |] ~thr_raw:1 ~exponents:[| 0; 0 |] in
  let engine = Infer.Engine.of_fixed ~capacity:64 clf in
  let batch = Infer.Engine.make_batch engine in
  let rows = Array.make 37 [| 0.25; -0.5 |] in
  let n = Infer.Engine.load_rows engine batch rows in
  let preds = Bytes.create n in
  let name = "ldafp_infer_predictions_total" in
  let read () =
    prometheus_counter_value name
      (Obs.Metrics.to_prometheus Obs.Metrics.default)
  in
  let before = read () in
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () -> Infer.Engine.predict_into engine batch preds);
  checki "one count per prediction" (before + 37) (read ())

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_identity_stages () =
  (* mean 0, inv_std 1, identity projection: the staged pipeline must
     equal the bare classifier (identity scaling, so the classifier's
     front end matches the pipeline's plain input quantisation). *)
  let fmt = Qformat.make ~k:2 ~f:6 in
  let m = 3 in
  let clf =
    clf_of_raws fmt ~w_raws:[| -31; 12; 7 |] ~thr_raw:(-5)
      ~exponents:(Array.make m 0)
  in
  let eye = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1.0 else 0.0)) in
  let stages =
    [
      Infer.Pipeline.standardize ~in_fmt:fmt ~scale_fmt:(Qformat.make ~k:2 ~f:6)
        ~out_fmt:fmt ~means:(Array.make m 0.0)
        ~inv_stds:(Array.make m 1.0);
      Infer.Pipeline.project ~in_fmt:fmt ~mat_fmt:(Qformat.make ~k:2 ~f:6)
        ~out_fmt:fmt ~matrix:eye;
    ]
  in
  let pipe =
    Infer.Pipeline.create ~capacity:128 ~stages (Infer.Engine.Uniform clf)
  in
  let batch = Infer.Pipeline.make_batch pipe in
  let rng = Stats.Rng.create 11 in
  let rows =
    Array.init 128 (fun _ ->
        Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0))
  in
  Array.iteri (fun c x -> Infer.Batch.load_floats batch ~col:c x) rows;
  Infer.Batch.set_length batch 128;
  let preds = Bytes.create 128 in
  Infer.Pipeline.run pipe batch preds;
  Array.iteri
    (fun i x ->
      checkb
        (Printf.sprintf "identity pipeline row %d" i)
        (Fixed_classifier.predict clf x)
        (Bytes.get preds i = '\001'))
    rows

let arb_pipeline_case ~rows =
  QCheck.make
    QCheck.Gen.(
      let* in_fmt = fmt_gen in
      let* scale_fmt = fmt_gen in
      let* mat_fmt = fmt_gen in
      (* Output fractional bits bounded by the available product bits,
         so every stage shift is non-negative by construction. *)
      let* mid_k = int_range 1 4 in
      let* mid_f =
        int_range 0 (min 8 (in_fmt.Qformat.f + scale_fmt.Qformat.f))
      in
      let mid_fmt = Qformat.make ~k:mid_k ~f:mid_f in
      let* acc_k = int_range 1 4 in
      let* acc_f =
        int_range 0 (min 8 (mid_fmt.Qformat.f + mat_fmt.Qformat.f))
      in
      let acc_fmt = Qformat.make ~k:acc_k ~f:acc_f in
      let* m_in = int_range 1 6 in
      let* m_out = int_range 1 4 in
      let* means = array_size (return m_in) (float_range (-2.0) 2.0) in
      let* inv_stds = array_size (return m_in) (float_range (-2.0) 2.0) in
      let* matrix =
        array_size (return m_out)
          (array_size (return m_in) (float_range (-2.0) 2.0))
      in
      let* w_raws = array_size (return m_out) (raw_gen acc_fmt) in
      let* thr_raw = raw_gen acc_fmt in
      let* polarity = bool in
      let* xs =
        list_size (return rows) (array_size (return m_in) (input_gen in_fmt))
      in
      let clf =
        clf_of_raws ~polarity acc_fmt ~w_raws ~thr_raw
          ~exponents:(Array.make m_out 0)
      in
      let stages =
        [
          Infer.Pipeline.standardize ~in_fmt ~scale_fmt ~out_fmt:mid_fmt
            ~means ~inv_stds;
          Infer.Pipeline.project ~in_fmt:mid_fmt ~mat_fmt ~out_fmt:acc_fmt
            ~matrix;
        ]
      in
      return
        ( Infer.Pipeline.create ~capacity:rows ~stages
            (Infer.Engine.Uniform clf),
          Array.of_list xs ))

let prop_pipeline_lockstep =
  QCheck.Test.make
    ~name:"staged pipeline == scalar lockstep reference" ~count:200
    (arb_pipeline_case ~rows:64)
    (fun (pipe, xs) ->
      let batch = Infer.Pipeline.make_batch pipe in
      Array.iteri (fun c x -> Infer.Batch.load_floats batch ~col:c x) xs;
      Infer.Batch.set_length batch (Array.length xs);
      let preds = Bytes.create (Array.length xs) in
      Infer.Pipeline.run pipe batch preds;
      Array.for_all
        (fun i ->
          Bytes.get preds i = '\001'
          = Infer.Pipeline.reference_predict pipe xs.(i))
        (Array.init (Array.length xs) Fun.id))

let test_pipeline_hetero_tail () =
  let acc_fmt = Qformat.make ~k:2 ~f:5 in
  let h =
    Hetero_classifier.create ~acc_fmt
      ~formats:[| Qformat.make ~k:2 ~f:3; Qformat.make ~k:1 ~f:7 |]
      ~weights:[| 1.25; -0.4 |] ~threshold:0.1
      ~scaling:(Scaling.of_exponents [| 0; 0 |])
      ()
  in
  let stages =
    [
      Infer.Pipeline.standardize ~in_fmt:acc_fmt
        ~scale_fmt:(Qformat.make ~k:2 ~f:4) ~out_fmt:acc_fmt
        ~means:[| 0.25; -0.125 |] ~inv_stds:[| 1.5; 0.75 |];
    ]
  in
  let pipe =
    Infer.Pipeline.create ~capacity:64 ~stages (Infer.Engine.Hetero h)
  in
  let batch = Infer.Pipeline.make_batch pipe in
  let rng = Stats.Rng.create 3 in
  let xs =
    Array.init 64 (fun _ ->
        Array.init 2 (fun _ -> Stats.Rng.uniform rng ~lo:(-4.0) ~hi:4.0))
  in
  Array.iteri (fun c x -> Infer.Batch.load_floats batch ~col:c x) xs;
  Infer.Batch.set_length batch 64;
  let preds = Bytes.create 64 in
  Infer.Pipeline.run pipe batch preds;
  Array.iteri
    (fun i x ->
      checkb
        (Printf.sprintf "hetero tail row %d" i)
        (Infer.Pipeline.reference_predict pipe x)
        (Bytes.get preds i = '\001'))
    xs

(* ------------------------------------------------------------------ *)
(* C model header                                                      *)
(* ------------------------------------------------------------------ *)

let golden_clf () =
  clf_of_raws
    (Qformat.make ~k:2 ~f:4)
    ~w_raws:[| -7; 12; 3 |] ~thr_raw:5 ~exponents:[| 3; 3; 2 |]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs in _build/default/test (where the golden dep is
   staged); dune exec from the workspace root does not. *)
let golden_path name =
  List.find Sys.file_exists
    [ Filename.concat "golden" name; Filename.concat "test/golden" name ]

let test_header_golden () =
  Alcotest.(check string)
    "header matches golden file"
    (read_file (golden_path "lda_model_fixed.h.golden"))
    (Model_io.c_header_of (golden_clf ()))

(* Pull the int list out of a generated [static const int32_t name[...]
   = { ... };] line, and the value of a [#define name v] line. *)
let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let header_array name text =
  let needle = name ^ "[LDAFP_NUM_FEATURES] = {" in
  match
    List.find_opt
      (fun l -> contains_substring l needle)
      (String.split_on_char '\n' text)
  with
  | None -> Alcotest.failf "array %s not found in header" name
  | Some line ->
      let lo = String.index line '{' + 1 in
      let hi = String.index line '}' in
      String.sub line lo (hi - lo)
      |> String.split_on_char ','
      |> List.map (fun s -> int_of_string (String.trim s))

let header_define name text =
  let prefix = "#define " ^ name ^ " " in
  match
    List.find_map
      (fun l ->
        if String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then
          let rest =
            String.sub l (String.length prefix)
              (String.length l - String.length prefix)
          in
          let rest =
            match String.index_opt rest '/' with
            | Some i -> String.sub rest 0 i
            | None -> rest
          in
          int_of_string_opt (String.trim rest)
        else None)
      (String.split_on_char '\n' text)
  with
  | Some v -> v
  | None -> Alcotest.failf "#define %s not found in header" name

let test_header_round_trip () =
  let clf = golden_clf () in
  let text = Model_io.c_header_of clf in
  let fmt = Fixed_classifier.format clf in
  checki "features" (Fixed_classifier.n_features clf)
    (header_define "LDAFP_NUM_FEATURES" text);
  checki "frac bits" fmt.Qformat.f (header_define "LDAFP_FRAC_BITS" text);
  checki "word length" (Qformat.word_length fmt)
    (header_define "LDAFP_WORD_LENGTH" text);
  checki "polarity"
    (if clf.Fixed_classifier.polarity then 1 else 0)
    (header_define "LDAFP_POLARITY" text);
  checki "threshold"
    (Fx.raw clf.Fixed_classifier.threshold)
    (header_define "LDAFP_THRESHOLD_RAW" text);
  Alcotest.(check (list int))
    "scale exponents"
    (Array.to_list
       (Array.init (Fixed_classifier.n_features clf)
          (Scaling.exponent clf.Fixed_classifier.scaling)))
    (header_array "ldafp_scale_exponent" text);
  Alcotest.(check (list int))
    "weight codes"
    (Array.to_list
       (Array.init (Fixed_classifier.n_features clf) (fun i ->
            Fx.raw (Fx_vector.get clf.Fixed_classifier.w i))))
    (header_array "ldafp_weight_raw" text)

let test_header_rejects_wide_words () =
  let fmt = Qformat.make ~k:16 ~f:16 in
  let clf = clf_of_raws fmt ~w_raws:[| 1 |] ~thr_raw:0 ~exponents:[| 0 |] in
  match Model_io.c_header_of clf with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "word length 32 must be refused"

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_uniform_bit_exact; prop_hetero_bit_exact; prop_pipeline_lockstep ]

let () =
  Alcotest.run "infer"
    [
      ("bit-exact", qcheck_tests);
      ( "adversarial",
        [
          Alcotest.test_case "63-bit product wraparound" `Quick
            test_product_wraparound;
          Alcotest.test_case "saturation boundary" `Quick
            test_saturation_boundary;
        ] );
      ( "steady state",
        [
          Alcotest.test_case "batched predict allocates nothing" `Quick
            test_steady_state_no_alloc;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "predictions counter" `Quick
            test_metrics_count_predictions;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "identity stages equal bare classifier" `Quick
            test_pipeline_identity_stages;
          Alcotest.test_case "hetero classifier tail" `Quick
            test_pipeline_hetero_tail;
        ] );
      ( "c header",
        [
          Alcotest.test_case "golden file" `Quick test_header_golden;
          Alcotest.test_case "tables round-trip" `Quick test_header_round_trip;
          Alcotest.test_case "wide word refused" `Quick
            test_header_rejects_wide_words;
        ] );
    ]
