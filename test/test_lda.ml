(* Tests for the LDA core: scaling, float LDA, the LDA-FP problem
   formulation, heuristics, the branch-and-bound trainer (including an
   exhaustive global-optimality check on a small grid), the fixed-point
   classifier, pipelines, evaluation, and model persistence. *)

open Ldafp_core
open Fixedpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)
(* ------------------------------------------------------------------ *)

let test_scaling_fit_bounds () =
  let features = [| [| 100.0; 0.01 |]; [| -120.0; 0.02 |]; [| 80.0; 0.015 |] |] in
  let s = Scaling.fit ~margin_sigmas:0.0 features in
  let scaled = Scaling.apply_mat s features in
  Array.iter
    (fun row ->
      Array.iter (fun v -> checkb "within [-1, 1)" true (Float.abs v < 1.0)) row)
    scaled;
  (* small features are scaled UP (negative exponent) *)
  checkb "second feature scaled up" true (Scaling.exponent s 1 < 0)

let test_scaling_target_bound () =
  let features = [| [| 3.0 |]; [| -3.5 |] |] in
  let s1 = Scaling.fit ~margin_sigmas:0.0 ~target_bound:1.0 features in
  let s2 = Scaling.fit ~margin_sigmas:0.0 ~target_bound:2.0 features in
  (* doubling the target bound saves exactly one shift *)
  checki "one bit difference" 1 (Scaling.exponent s1 0 - Scaling.exponent s2 0);
  let m2 = Scaling.apply_mat s2 features in
  Array.iter
    (fun row -> checkb "within [-2, 2)" true (Float.abs row.(0) < 2.0))
    m2

let test_scaling_roundtrip () =
  let s = Scaling.of_exponents [| 3; -2; 0 |] in
  let x = [| 8.0; 0.25; 1.5 |] in
  let y = Scaling.apply_vec s x in
  Alcotest.(check (array (float 1e-12))) "apply" [| 1.0; 1.0; 1.5 |] y;
  Alcotest.(check (array (float 1e-12))) "unapply" x (Scaling.unapply_vec s y)

let test_scaling_weight_equivalence () =
  (* w·x must be invariant: scaling features down and weights down
     together (unscale_weights) preserves the product. *)
  let s = Scaling.of_exponents [| 2; -1 |] in
  let x = [| 4.0; 0.5 |] and w_scaled = [| 0.5; 1.0 |] in
  let proj_scaled = Linalg.Vec.dot w_scaled (Scaling.apply_vec s x) in
  let w_raw = Scaling.unscale_weights s w_scaled in
  checkf 1e-12 "projection invariant" proj_scaled (Linalg.Vec.dot w_raw x)

(* ------------------------------------------------------------------ *)
(* Float LDA                                                           *)
(* ------------------------------------------------------------------ *)

let test_lda_analytic_2d () =
  (* Spherical covariance: LDA direction = mean difference direction. *)
  let rng = Stats.Rng.create 1 in
  let draw mean =
    Array.init 4000 (fun _ ->
        [|
          mean.(0) +. Stats.Sampler.std_normal rng;
          mean.(1) +. Stats.Sampler.std_normal rng;
        |])
  in
  let a = draw [| 1.0; 0.0 |] and b = draw [| -1.0; 0.0 |] in
  let model = Lda.train a b in
  let w = Lda.weights model in
  checkb "along e1" true (Float.abs w.(0) > 0.99);
  checkb "unit norm" true (Float.abs (Linalg.Vec.norm2 w -. 1.0) < 1e-9);
  (* A projects above the threshold, B below *)
  checkb "A side" true (Lda.predict model [| 1.0; 0.0 |]);
  checkb "B side" true (not (Lda.predict model [| -1.0; 0.0 |]))

let test_lda_solves_normal_equations () =
  (* w must be parallel to S_W⁻¹ d (eq. 11). *)
  let a =
    [| [| 2.0; 1.0 |]; [| 3.0; 2.5 |]; [| 2.5; 0.5 |]; [| 3.5; 2.0 |] |]
  in
  let b =
    [| [| -1.0; 0.0 |]; [| 0.0; 1.5 |]; [| -0.5; -0.5 |]; [| 0.5; 1.0 |] |]
  in
  let scatter = Stats.Scatter.of_data a b in
  let model = Lda.train_scatter scatter in
  let sw = Stats.Scatter.within_class scatter in
  let d = Stats.Scatter.mean_difference scatter in
  let direct = Linalg.Linsys.solve_spd_regularized sw d in
  let direct = Linalg.Vec.normalize direct in
  let w = Lda.weights model in
  let cosine = Float.abs (Linalg.Vec.dot direct w) in
  checkf 1e-9 "parallel to closed form" 1.0 cosine

let test_lda_optimality_of_fisher_cost () =
  (* The solved direction minimises the Fisher ratio: random directions
     can't beat it. *)
  let rng = Stats.Rng.create 2 in
  let gen mean =
    Array.init 200 (fun _ ->
        Array.init 3 (fun j -> mean.(j) +. Stats.Sampler.std_normal rng))
  in
  let scatter =
    Stats.Scatter.of_data (gen [| 1.0; 0.5; 0.0 |]) (gen [| 0.0; 0.0; 0.3 |])
  in
  let model = Lda.train_scatter scatter in
  let best = Lda.fisher_cost scatter model in
  for _ = 1 to 100 do
    let w = Array.init 3 (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    if Linalg.Vec.norm2 w > 1e-6 then
      checkb "LDA direction is optimal" true
        (Stats.Scatter.fisher_ratio scatter w >= best -. 1e-9)
  done

let test_lda_threshold_midpoint () =
  let a = [| [| 2.0 |]; [| 4.0 |] |] and b = [| [| -2.0 |]; [| -4.0 |] |] in
  let model = Lda.train a b in
  checkf 1e-9 "decision value at pooled mean is 0" 0.0
    (Lda.decision_value model [| 0.0 |])

(* ------------------------------------------------------------------ *)
(* Ldafp_problem                                                       *)
(* ------------------------------------------------------------------ *)

let small_scatter () =
  (* Deterministic 2-feature scatter with distinct per-class stats. *)
  let a =
    [| [| 0.5; 0.1 |]; [| 0.7; -0.1 |]; [| 0.6; 0.2 |]; [| 0.4; -0.2 |] |]
  in
  let b =
    [| [| -0.5; 0.15 |]; [| -0.7; -0.15 |]; [| -0.6; 0.1 |]; [| -0.4; -0.1 |] |]
  in
  Stats.Scatter.of_data a b

let test_problem_beta () =
  let pb = Ldafp_problem.build ~rho:0.99 ~fmt:(Qformat.make ~k:2 ~f:4) (small_scatter ()) in
  checkf 1e-6 "beta = probit(0.995)" 2.5758293035489004 pb.Ldafp_problem.beta

let test_problem_elem_box_contains_zero () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:3) (small_scatter ()) in
  Array.iter
    (fun iv -> checkb "zero admissible" true (Fx_interval.mem iv 0.0))
    pb.Ldafp_problem.elem_box

let test_problem_elem_box_matches_bruteforce () =
  (* The closed-form element interval must agree with scanning every grid
     point against the exact element constraints (18). *)
  let fmt = Qformat.make ~k:2 ~f:3 in
  let scatter = small_scatter () in
  let pb = Ldafp_problem.build ~rho:0.99 ~fmt scatter in
  let beta = pb.Ldafp_problem.beta in
  let lo_bound = Qformat.min_value fmt and hi_bound = Qformat.max_value fmt in
  Array.iteri
    (fun j iv ->
      let mu_a = scatter.Stats.Scatter.mu_a.(j) in
      let mu_b = scatter.Stats.Scatter.mu_b.(j) in
      let s_a = sqrt scatter.Stats.Scatter.sigma_a.(j).(j) in
      let s_b = sqrt scatter.Stats.Scatter.sigma_b.(j).(j) in
      let elem_ok w =
        let ok mu s =
          let spread = beta *. Float.abs w *. s in
          (w *. mu) -. spread >= lo_bound -. 1e-12
          && (w *. mu) +. spread <= hi_bound +. 1e-12
        in
        ok mu_a s_a && ok mu_b s_b
      in
      Array.iter
        (fun g ->
          checkb
            (Printf.sprintf "elem %d grid %g agreement" j g)
            (elem_ok g) (Fx_interval.mem iv g))
        (Qformat.values fmt))
    pb.Ldafp_problem.elem_box

let test_problem_cost () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:4) (small_scatter ()) in
  checkb "zero weight infinite cost" true
    (Ldafp_problem.cost pb [| 0.0; 0.0 |] = Float.infinity);
  let c1 = Ldafp_problem.cost pb [| 1.0; 0.0 |] in
  checkb "finite positive" true (Float.is_finite c1 && c1 > 0.0);
  (* scale invariance of the exact cost *)
  checkf 1e-12 "scale invariant" c1 (Ldafp_problem.cost pb [| 2.0; 0.0 |])

let test_problem_on_grid () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:2) (small_scatter ()) in
  checkb "grid point" true (Ldafp_problem.on_grid pb [| 0.25; -1.5 |]);
  checkb "off grid" false (Ldafp_problem.on_grid pb [| 0.3; 0.0 |]);
  checkb "out of range" false (Ldafp_problem.on_grid pb [| 5.0; 0.0 |])

let test_problem_constraint_violation_signs () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:4) (small_scatter ()) in
  checkb "origin feasible" true (Ldafp_problem.constraint_violation pb [| 0.0; 0.0 |] <= 0.0);
  (* enormous weights must violate the projection constraints *)
  checkb "hypothetical huge weights violate" true
    (Ldafp_problem.constraint_violation pb [| 100.0; 100.0 |] > 0.0)

let test_problem_trange_of_box () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let box =
    [|
      Fx_interval.of_values fmt ~lo:(-1.0) ~hi:1.0;
      Fx_interval.of_values fmt ~lo:0.0 ~hi:0.5;
    |]
  in
  let tr = Ldafp_problem.trange_of_box pb box in
  (* brute force over the box corners of the grid *)
  let d = pb.Ldafp_problem.d in
  let worst_lo = ref Float.infinity and worst_hi = ref Float.neg_infinity in
  Array.iter
    (fun w0 ->
      Array.iter
        (fun w1 ->
          let t = (d.(0) *. w0) +. (d.(1) *. w1) in
          worst_lo := Float.min !worst_lo t;
          worst_hi := Float.max !worst_hi t)
        (Fx_interval.values box.(1)))
    (Fx_interval.values box.(0));
  checkb "contains all grid t values" true
    (Optim.Interval.lo tr <= !worst_lo +. 1e-12
    && Optim.Interval.hi tr >= !worst_hi -. 1e-12);
  checkf 1e-9 "tight lo" !worst_lo (Optim.Interval.lo tr);
  checkf 1e-9 "tight hi" !worst_hi (Optim.Interval.hi tr)

let enumerate_feasible pb fmt =
  (* All feasible grid points with finite cost, by brute force. *)
  let values = Qformat.values fmt in
  let acc = ref [] in
  Array.iter
    (fun w0 ->
      Array.iter
        (fun w1 ->
          let w = [| w0; w1 |] in
          if Ldafp_problem.feasible pb w then begin
            let c = Ldafp_problem.cost pb w in
            if Float.is_finite c then acc := (Array.copy w, c) :: !acc
          end)
        values)
    values;
  !acc

let test_relaxation_lower_bounds_feasible_points () =
  (* Relaxation over the root box must lower-bound every feasible grid
     point's cost (the soundness property Algorithm 1 relies on). *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let feas = enumerate_feasible pb fmt in
  checkb "nonempty" true (feas <> []);
  let pos = List.filter (fun (w, _) -> Ldafp_problem.t_of pb w >= 0.0) feas in
  let tr = pb.Ldafp_problem.t_root in
  let eta = Optim.Interval.sup_sq tr in
  let relax =
    Ldafp_problem.relaxation pb ~wbox:pb.Ldafp_problem.elem_box ~trange:tr
      ~eta
  in
  let start = Array.map Fx_interval.mid pb.Ldafp_problem.elem_box in
  match Optim.Socp.solve_auto relax ~start with
  | None -> Alcotest.fail "root relaxation infeasible"
  | Some sol ->
      let lower = sol.Optim.Socp.objective -. (2.0 *. sol.Optim.Socp.gap_bound) in
      List.iter
        (fun (w, c) ->
          checkb
            (Format.asprintf "lower bound %.6g <= cost %.6g at %a" lower c
               Linalg.Vec.pp w)
            true (lower <= c +. 1e-9))
        pos

let test_secant_relaxation_soundness () =
  (* If the secant program's minimum is positive at theta, no feasible
     grid point with t in range can have cost <= theta. Verify against
     brute force for several thetas. *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let feas = enumerate_feasible pb fmt in
  let tr = pb.Ldafp_problem.t_root in
  let in_range (w, _) = Optim.Interval.mem tr (Ldafp_problem.t_of pb w) in
  let feas = List.filter in_range feas in
  let best = List.fold_left (fun acc (_, c) -> Float.min acc c) Float.infinity feas in
  List.iter
    (fun theta ->
      let problem, const_term =
        Ldafp_problem.secant_relaxation pb ~wbox:pb.Ldafp_problem.elem_box
          ~trange:tr ~theta
      in
      let start = Array.map Fx_interval.mid pb.Ldafp_problem.elem_box in
      match Optim.Socp.solve_auto problem ~start with
      | None -> ()
      | Some sol ->
          let min_val =
            sol.Optim.Socp.objective +. const_term
            -. (2.0 *. sol.Optim.Socp.gap_bound)
          in
          if min_val > 1e-9 then
            (* certificate says: no point with cost <= theta *)
            checkb
              (Printf.sprintf "secant certificate valid at theta=%g" theta)
              true (best > theta))
    [ best /. 2.0; best *. 0.9; best *. 0.99 ]

let test_relative_margins_scale_invariant () =
  (* The Table-1-style relaxation with every constraint rescaled by 1e6
     describes the same geometry, so interiority verdicts must not
     change.  Absolute margins fail exactly this: a fixed 1e-7 absolute
     clearance is generous at scale 1 and lost in roundoff at scale
     1e6. *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let tr = pb.Ldafp_problem.t_root in
  let relax =
    Ldafp_problem.relaxation pb ~wbox:pb.Ldafp_problem.elem_box ~trange:tr
      ~eta:(Optim.Interval.sup_sq tr)
  in
  let s = 1e6 in
  let scaled =
    Optim.Socp.of_parts ~p:relax.Optim.Socp.p ~q:relax.Optim.Socp.q
      ~lins:
        (Array.map
           (fun { Optim.Socp.a; b } ->
             { Optim.Socp.a = Linalg.Vec.scale s a; b = s *. b })
           relax.Optim.Socp.lins)
      ~socs:
        (Array.map
           (fun { Optim.Socp.l; g; c; d } ->
             {
               Optim.Socp.l = Linalg.Mat.scale s l;
               g = Linalg.Vec.scale s g;
               c = Linalg.Vec.scale s c;
               d = s *. d;
             })
           relax.Optim.Socp.socs)
      relax.Optim.Socp.n
  in
  let agree label x =
    checkb
      (label ^ ": interiority verdict scale-invariant")
      (Optim.Socp.is_strictly_interior ~margin:1e-8 relax x)
      (Optim.Socp.is_strictly_interior ~margin:1e-8 scaled x);
    checkb
      (label ^ ": slack sign scale-invariant")
      (Optim.Socp.min_relative_slack relax x > 0.0)
      (Optim.Socp.min_relative_slack scaled x > 0.0)
  in
  let mid = Array.map Fx_interval.mid pb.Ldafp_problem.elem_box in
  agree "box midpoint" mid;
  (* A point on a box face: zero slack at any scale. *)
  let face = Array.copy mid in
  face.(0) <- Fx_interval.hi pb.Ldafp_problem.elem_box.(0);
  agree "box face" face;
  (* A point a small relative depth inside the same face. *)
  let near = Array.copy mid in
  near.(0) <-
    Fx_interval.hi pb.Ldafp_problem.elem_box.(0)
    -. (1e-4 *. Fx_interval.width pb.Ldafp_problem.elem_box.(0));
  agree "near the face" near

let test_warm_prepare_repairs_branch_cut () =
  (* The search's hot case, in miniature: branch t at the parent
     optimum's own projection.  The inherited point lands exactly on the
     child's branch-cut half-space — not strictly interior — and
     [prepare_warm_start] must repair it (pull-in toward the
     analytic-center proxy) rather than go cold. *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let wbox = pb.Ldafp_problem.elem_box in
  let relax trange =
    Ldafp_problem.relaxation pb ~wbox ~trange
      ~eta:(Optim.Interval.sup_sq trange)
  in
  let start = Array.map Fx_interval.mid wbox in
  let root =
    match Optim.Socp.solve_auto (relax pb.Ldafp_problem.t_root) ~start with
    | Some s -> s
    | None -> Alcotest.fail "root relaxation infeasible"
  in
  let t_opt = Ldafp_problem.t_of pb root.Optim.Socp.x in
  let left, _ = Optim.Interval.split ~at:t_opt pb.Ldafp_problem.t_root in
  let child = relax left in
  checkb "parent optimum sits on the cut" false
    (Optim.Socp.is_strictly_interior ~margin:1e-8 child root.Optim.Socp.x);
  let target = Ldafp_problem.center_point pb ~wbox ~trange:left in
  checkb "center-point target is strictly interior" true
    (Optim.Socp.is_strictly_interior child target);
  match Optim.Socp.prepare_warm_start ~target child root.Optim.Socp.x with
  | None -> Alcotest.fail "branch-cut point must be repairable"
  | Some (y, prep) ->
      checkb "repaired point certifiably interior" true
        (Optim.Socp.min_relative_slack child y > 0.0);
      checkb "repair actually ran" true (prep <> Optim.Socp.Warm_interior)

(* ------------------------------------------------------------------ *)
(* Heuristics                                                          *)
(* ------------------------------------------------------------------ *)

let test_round_into_boxes () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let w = Ldafp_heuristics.round_into pb [| 7.3; -9.9 |] in
  Array.iteri
    (fun j v ->
      checkb "inside elem box" true
        (Fx_interval.mem (Ldafp_problem.elem_interval pb j) v))
    w;
  checkb "on grid" true (Ldafp_problem.on_grid pb w)

let test_evaluate_rejects_infeasible () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  checkb "zero rejected (infinite cost)" true
    (Ldafp_heuristics.evaluate pb [| 0.0; 0.0 |] = None);
  checkb "off-grid rejected" true
    (Ldafp_heuristics.evaluate pb [| 0.3; 0.0 |] = None)

let test_sweep_finds_feasible () =
  let fmt = Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let model = Lda.train_scatter pb.Ldafp_problem.scatter in
  match Ldafp_heuristics.scaled_rounding_sweep pb (Lda.weights model) with
  | None -> Alcotest.fail "sweep found nothing"
  | Some (w, c) ->
      checkb "feasible" true (Ldafp_problem.feasible pb w);
      checkf 1e-12 "cost consistent" c (Ldafp_problem.cost pb w)

let test_polish_never_worsens () =
  let fmt = Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  match Ldafp_heuristics.seed_incumbent pb with
  | None -> Alcotest.fail "no seed"
  | Some (w, c) ->
      let w2, c2 = Ldafp_heuristics.coordinate_polish pb w in
      checkb "polish monotone" true (c2 <= c +. 1e-15);
      checkb "polished feasible" true (Ldafp_problem.feasible pb w2)

(* ------------------------------------------------------------------ *)
(* Lda_fp solver: exhaustive global-optimality check                   *)
(* ------------------------------------------------------------------ *)

let test_solver_matches_bruteforce () =
  (* 2 features x 4 bits: 256 grid points, fully enumerable. The solver
     (with H3 restricting to t >= 0; costs are symmetric under w -> -w,
     and the brute-force minimum over t >= 0 equals the global minimum
     here) must return exactly the brute-force optimum. *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let feas = enumerate_feasible pb fmt in
  let best_cost =
    List.fold_left (fun acc (_, c) -> Float.min acc c) Float.infinity feas
  in
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 20_000; rel_gap = 1e-9 };
    }
  in
  match Lda_fp.solve ~config pb with
  | None -> Alcotest.fail "solver found nothing"
  | Some outcome ->
      checkb "solver solution feasible" true
        (Ldafp_problem.feasible pb outcome.Lda_fp.w);
      checkf 1e-9 "global optimum" best_cost outcome.Lda_fp.cost

let test_solver_without_seed_still_works () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let feas = enumerate_feasible pb fmt in
  let best_cost =
    List.fold_left (fun acc (_, c) -> Float.min acc c) Float.infinity feas
  in
  let config =
    {
      Lda_fp.default_config with
      seed_incumbent = false;
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 20_000; rel_gap = 1e-9 };
    }
  in
  match Lda_fp.solve ~config pb with
  | None -> Alcotest.fail "solver found nothing"
  | Some outcome -> checkf 1e-9 "global optimum" best_cost outcome.Lda_fp.cost

let test_solver_diagnostics () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  match Lda_fp.solve pb with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
      let d = o.Lda_fp.diagnostics in
      checkb "nodes counted" true (d.Lda_fp.nodes >= 0);
      checkb "bound <= cost" true (d.Lda_fp.bound <= o.Lda_fp.cost +. 1e-9);
      checkb "gap consistent" true
        (Float.abs (d.Lda_fp.gap -. (o.Lda_fp.cost -. d.Lda_fp.bound)) < 1e-6);
      checkb "seed recorded" true (d.Lda_fp.seed_cost <> None);
      checkb "time nonneg" true (d.Lda_fp.train_seconds >= 0.0)

let test_problem_without_t_restriction () =
  (* H3 off: the root t-interval must span negative values and the solver
     must still find the same optimal cost (the objective is symmetric
     under w -> -w). *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let scatter = small_scatter () in
  let pb_sym =
    Ldafp_problem.build ~restrict_t_positive:false ~fmt scatter
  in
  checkb "t range spans negatives" true
    (Optim.Interval.lo pb_sym.Ldafp_problem.t_root < 0.0);
  let pb_pos = Ldafp_problem.build ~fmt scatter in
  checkb "H3 root starts at 0" true
    (Optim.Interval.lo pb_pos.Ldafp_problem.t_root >= 0.0);
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 20_000; rel_gap = 1e-9 };
    }
  in
  match (Lda_fp.solve ~config pb_sym, Lda_fp.solve ~config pb_pos) with
  | Some a, Some b ->
      checkf 1e-9 "same optimal cost with and without H3" a.Lda_fp.cost
        b.Lda_fp.cost
  | _ -> Alcotest.fail "a solve failed"

let test_solver_time_budget () =
  let fmt = Qformat.make ~k:2 ~f:8 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = max_int;
          rel_gap = 0.0; abs_gap = 0.0; time_limit = Some 0.05 };
    }
  in
  let t0 = Sys.time () in
  match Lda_fp.solve ~config pb with
  | None -> Alcotest.fail "expected an incumbent"
  | Some o ->
      checkb "stopped quickly" true (Sys.time () -. t0 < 5.0);
      checkb "reason is a budget" true
        (match o.Lda_fp.diagnostics.Lda_fp.stop_reason with
        | Optim.Bnb.Time_budget | Optim.Bnb.Proved_optimal
        | Optim.Bnb.Gap_reached -> true
        | Optim.Bnb.Node_budget | Optim.Bnb.Interrupted -> false)

let test_solver_respects_node_budget () =
  let fmt = Qformat.make ~k:2 ~f:6 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let config =
    {
      Lda_fp.default_config with
      bnb_params =
        { Optim.Bnb.default_params with max_nodes = 5; rel_gap = 0.0;
          abs_gap = 0.0 };
    }
  in
  match Lda_fp.solve ~config pb with
  | None -> Alcotest.fail "should still return the seed incumbent"
  | Some o ->
      checkb "stopped by budget or exhaustion" true
        (o.Lda_fp.diagnostics.Lda_fp.nodes <= 6)

(* Warm starting is a pure acceleration: on the same problem and seed,
   warm and cold searches must reach the same incumbent after the same
   node count (bounds are solved to identical certified tolerances, so
   pruning and branching decisions coincide). *)
let warm_cold_pair pb ~max_nodes =
  let config warm_start =
    {
      Lda_fp.default_config with
      warm_start;
      bnb_params =
        { Optim.Bnb.default_params with max_nodes; rel_gap = 1e-6 };
    }
  in
  (Lda_fp.solve ~config:(config true) pb, Lda_fp.solve ~config:(config false) pb)

let test_solver_warm_matches_cold () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  match warm_cold_pair pb ~max_nodes:400 with
  | Some warm, Some cold ->
      checkf 1e-12 "same incumbent cost" cold.Lda_fp.cost warm.Lda_fp.cost;
      checki "same node count" cold.Lda_fp.diagnostics.Lda_fp.nodes
        warm.Lda_fp.diagnostics.Lda_fp.nodes;
      let ws = warm.Lda_fp.diagnostics.Lda_fp.search in
      let cs = cold.Lda_fp.diagnostics.Lda_fp.search in
      checkb "warm run hit warm starts" true
        (ws.Optim.Bnb.warm_start_hits > 0);
      checkb "phase-I skips >= warm hits" true
        (ws.Optim.Bnb.phase1_skipped >= ws.Optim.Bnb.warm_start_hits);
      checki "cold run never warm-starts" 0 cs.Optim.Bnb.warm_start_hits;
      checkb "oracle time measured" true (ws.Optim.Bnb.oracle_seconds >= 0.0)
  | _ -> Alcotest.fail "a solve failed"

let prop_warm_cold_same_search =
  QCheck.Test.make ~name:"warm and cold searches coincide on fixed seeds"
    ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let ds = Datasets.Synthetic.generate ~n_per_class:60 rng in
      let a, b = Datasets.Dataset.class_split ds in
      let scatter = Stats.Scatter.of_data a b in
      let fmt = Qformat.make ~k:2 ~f:3 in
      match Ldafp_problem.build ~fmt scatter with
      | exception Ldafp_problem.No_feasible_box _ -> true
      | pb -> (
          match warm_cold_pair pb ~max_nodes:120 with
          | None, None -> true
          | Some warm, Some cold ->
              warm.Lda_fp.cost = cold.Lda_fp.cost
              && warm.Lda_fp.diagnostics.Lda_fp.nodes
                 = cold.Lda_fp.diagnostics.Lda_fp.nodes
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Fixed_classifier                                                    *)
(* ------------------------------------------------------------------ *)

let build_classifier () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  Fixed_classifier.of_weights ~fmt
    ~scaling:(Scaling.of_exponents [| 1; 0 |])
    ~weights:[| 1.0; -0.5 |] ~threshold:0.25 ()

let test_classifier_predict_rule () =
  let clf = build_classifier () in
  (* raw x = (2, 0): scaled (1, 0): y = 1 >= 0.25 -> A *)
  checkb "A side" true (Fixed_classifier.predict clf [| 2.0; 0.0 |]);
  (* raw x = (0, 1): y = -0.5 < 0.25 -> B *)
  checkb "B side" false (Fixed_classifier.predict clf [| 0.0; 1.0 |])

let test_classifier_polarity () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  let clf =
    Fixed_classifier.of_weights ~polarity:false ~fmt
      ~scaling:(Scaling.identity 1) ~weights:[| 1.0 |] ~threshold:0.0 ()
  in
  checkb "inverted comparator" false (Fixed_classifier.predict clf [| 1.0 |]);
  checkb "inverted comparator B" true (Fixed_classifier.predict clf [| -1.0 |])

let test_classifier_input_saturation () =
  let clf = build_classifier () in
  (* wild inputs saturate instead of wrapping: a huge positive x0 still
     lands on the A side. *)
  checkb "saturated input" true (Fixed_classifier.predict clf [| 1e9; 0.0 |])

let test_classifier_threshold_equality () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  let clf =
    Fixed_classifier.of_weights ~fmt ~scaling:(Scaling.identity 1)
      ~weights:[| 1.0 |] ~threshold:0.5 ()
  in
  (* y exactly equal to threshold decides A (eq. 12: >= 0). *)
  checkb "boundary is A" true (Fixed_classifier.predict clf [| 0.5 |])

let test_classifier_matches_datapath () =
  (* Fixed_classifier.predict and the cycle-accurate Datapath must agree
     bit for bit on random inputs. *)
  let rng = Stats.Rng.create 3 in
  let fmt = Qformat.make ~k:2 ~f:5 in
  for _ = 1 to 200 do
    let m = 1 + Stats.Rng.int rng 8 in
    let weights =
      Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
    in
    let clf =
      Fixed_classifier.of_weights ~fmt ~scaling:(Scaling.identity m)
        ~weights ~threshold:(Stats.Rng.uniform rng ~lo:(-0.5) ~hi:0.5) ()
    in
    let x = Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5) in
    let xq = Fixed_classifier.quantize_input clf x in
    let trace =
      Hw.Datapath.run ~polarity:true ~w:clf.Fixed_classifier.w ~x:xq
        ~threshold:clf.Fixed_classifier.threshold ()
    in
    checkb "datapath agreement" (Fixed_classifier.predict clf x)
      trace.Hw.Datapath.decision
  done

(* ------------------------------------------------------------------ *)
(* Pipeline + Eval                                                     *)
(* ------------------------------------------------------------------ *)

let easy_dataset seed n =
  (* Well-separated 2-feature classes: everything should classify it. *)
  let rng = Stats.Rng.create seed in
  let gen offset =
    Array.init n (fun _ ->
        [|
          offset +. (0.3 *. Stats.Sampler.std_normal rng);
          0.2 *. Stats.Sampler.std_normal rng;
        |])
  in
  Datasets.Dataset.of_class_matrices ~name:"easy" ~a:(gen 1.0) ~b:(gen (-1.0))

let test_pipeline_conventional_on_easy_data () =
  let ds = easy_dataset 4 200 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let clf = Pipeline.train_conventional ~fmt ds in
  checkb "near zero training error" true (Eval.error_fixed clf ds < 0.02)

let test_pipeline_ldafp_on_easy_data () =
  let ds = easy_dataset 5 200 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  match Pipeline.train_ldafp ~config:Lda_fp.quick_config ~fmt ds with
  | None -> Alcotest.fail "no classifier"
  | Some r ->
      checkb "near zero training error" true
        (Eval.error_fixed r.Pipeline.classifier ds < 0.02);
      checkb "solution feasible for its own problem" true
        (Ldafp_problem.feasible r.Pipeline.problem r.Pipeline.outcome.Lda_fp.w)

let test_pipeline_ldafp_beats_lda_on_synthetic () =
  (* The headline claim at a short word length. *)
  let rng = Stats.Rng.create 42 in
  let train = Datasets.Synthetic.generate ~n_per_class:800 rng in
  let test = Datasets.Synthetic.generate ~n_per_class:4000 rng in
  let fmt = Qformat.make ~k:2 ~f:2 in
  let conv = Pipeline.train_conventional ~fmt train in
  let e_lda = Eval.error_fixed conv test in
  match Pipeline.train_ldafp ~config:Lda_fp.quick_config ~fmt train with
  | None -> Alcotest.fail "no classifier"
  | Some r ->
      let e_fp = Eval.error_fixed r.Pipeline.classifier test in
      checkb
        (Printf.sprintf "LDA-FP (%.3f) beats LDA (%.3f) at 4 bits" e_fp e_lda)
        true
        (e_fp < e_lda -. 0.05)

let test_quantize_dataset_on_grid () =
  let ds = easy_dataset 6 50 in
  let fmt = Qformat.make ~k:2 ~f:3 in
  let scaling = Scaling.fit ds.Datasets.Dataset.features in
  let q = Pipeline.quantize_dataset ~fmt scaling ds in
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          checkb "on grid" true
            (Float.abs (v -. Qformat.nearest_on_grid fmt v) < 1e-12))
        row)
    q.Datasets.Dataset.features

let test_eval_kfold_counts () =
  let ds = easy_dataset 7 60 in
  let rng = Stats.Rng.create 8 in
  match
    Eval.kfold ~rng ~k:4
      ~train:(fun tr ->
        Some (Pipeline.train_conventional ~fmt:(Qformat.make ~k:2 ~f:5) tr))
      ~predict:Fixed_classifier.predict ds
  with
  | None -> Alcotest.fail "training failed"
  | Some confusion ->
      checki "every trial tested once" (Datasets.Dataset.n_trials ds)
        (Stats.Confusion.total confusion)

let test_eval_kfold_propagates_failure () =
  let ds = easy_dataset 9 40 in
  let rng = Stats.Rng.create 10 in
  checkb "None propagates" true
    (Eval.kfold ~rng ~k:4
       ~train:(fun _ -> None)
       ~predict:(fun () _ -> true)
       ds
    = None)

(* ------------------------------------------------------------------ *)
(* Model_io                                                            *)
(* ------------------------------------------------------------------ *)

let test_model_io_roundtrip () =
  let clf = build_classifier () in
  let text = Model_io.to_string clf in
  let clf2 = Model_io.of_string text in
  checkb "formats equal" true
    (Qformat.equal (Fixed_classifier.format clf) (Fixed_classifier.format clf2));
  checkb "weights bit-equal" true
    (Fx_vector.equal clf.Fixed_classifier.w clf2.Fixed_classifier.w);
  checkb "threshold bit-equal" true
    (Fx.equal clf.Fixed_classifier.threshold clf2.Fixed_classifier.threshold);
  checkb "scaling equal" true
    (Scaling.equal clf.Fixed_classifier.scaling clf2.Fixed_classifier.scaling);
  (* behavioural equivalence on random inputs *)
  let rng = Stats.Rng.create 11 in
  for _ = 1 to 100 do
    let x = Array.init 2 (fun _ -> Stats.Rng.uniform rng ~lo:(-4.0) ~hi:4.0) in
    checkb "same predictions" (Fixed_classifier.predict clf x)
      (Fixed_classifier.predict clf2 x)
  done

let test_model_io_file_roundtrip () =
  let clf = build_classifier () in
  let path = Filename.temp_file "ldafp_model" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Model_io.save path clf;
      let clf2 = Model_io.load path in
      checkb "weights preserved" true
        (Fx_vector.equal clf.Fixed_classifier.w clf2.Fixed_classifier.w))

let test_model_io_errors () =
  let bad text =
    match Model_io.of_string text with
    | exception Model_io.Parse_error _ -> true
    | _ -> false
  in
  checkb "empty" true (bad "");
  checkb "wrong magic" true (bad "not-a-model\n");
  checkb "missing fields" true (bad "ldafp-model v1\nformat Q2.4\n");
  checkb "bad format" true
    (bad "ldafp-model v1\nformat X\npolarity 1\nexponents 0\nweights 1\nthreshold 0\n");
  checkb "length mismatch" true
    (bad
       "ldafp-model v1\nformat Q2.4\npolarity 1\nexponents 0 0\nweights \
        1\nthreshold 0\n")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_solver_cost_matches_reported =
  QCheck.Test.make ~name:"reported cost equals cost of returned weights"
    ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let gen off =
        Array.init 12 (fun _ ->
            [|
              off +. (0.4 *. Stats.Sampler.std_normal rng);
              0.3 *. Stats.Sampler.std_normal rng;
            |])
      in
      let scatter = Stats.Scatter.of_data (gen 0.8) (gen (-0.8)) in
      let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:3) scatter in
      match Lda_fp.solve ~config:Lda_fp.quick_config pb with
      | None -> true
      | Some o ->
          Float.abs (o.Lda_fp.cost -. Ldafp_problem.cost pb o.Lda_fp.w)
          < 1e-9
          && Ldafp_problem.feasible pb o.Lda_fp.w)

let prop_seed_feasible =
  QCheck.Test.make ~name:"seed incumbent always feasible" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let gen off =
        Array.init 10 (fun _ ->
            [|
              off +. Stats.Sampler.std_normal rng;
              Stats.Sampler.std_normal rng;
              0.5 *. Stats.Sampler.std_normal rng;
            |])
      in
      let scatter = Stats.Scatter.of_data (gen 1.0) (gen (-1.0)) in
      let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:4) scatter in
      match Ldafp_heuristics.seed_incumbent pb with
      | None -> true
      | Some (w, c) ->
          Ldafp_problem.feasible pb w
          && Float.abs (c -. Ldafp_problem.cost pb w) < 1e-9)

let prop_parallel_solver_matches_sequential =
  (* The multi-domain search must agree with the sequential one: same
     incumbent cost up to the gap tolerance and comparable termination,
     for domains ∈ {1, 2, 4} on random problems. *)
  QCheck.Test.make ~name:"parallel solve matches sequential" ~count:6
    QCheck.(pair (int_range 0 100_000) (int_range 0 2))
    (fun (seed, dpow) ->
      let domains = 1 lsl dpow in
      let rng = Stats.Rng.create seed in
      let gen off =
        Array.init 12 (fun _ ->
            [|
              off +. (0.4 *. Stats.Sampler.std_normal rng);
              0.3 *. Stats.Sampler.std_normal rng;
            |])
      in
      let scatter = Stats.Scatter.of_data (gen 0.8) (gen (-0.8)) in
      match Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:2) scatter with
      | exception Invalid_argument _ -> true
      | pb -> (
          let rel_gap = 1e-6 in
          let config domains =
            {
              Lda_fp.default_config with
              bnb_params =
                {
                  Optim.Bnb.default_params with
                  max_nodes = 20_000;
                  rel_gap;
                  domains;
                };
            }
          in
          let seq = Lda_fp.solve ~config:(config 1) pb in
          let par = Lda_fp.solve ~config:(config domains) pb in
          match (seq, par) with
          | None, None -> true
          | Some s, Some p ->
              let ok_stop o =
                match o.Lda_fp.diagnostics.Lda_fp.stop_reason with
                | Optim.Bnb.Proved_optimal | Optim.Bnb.Gap_reached -> true
                | _ -> false
              in
              ok_stop s && ok_stop p
              && p.Lda_fp.diagnostics.Lda_fp.search.Optim.Bnb.domains_used
                 = domains
              && Float.abs (s.Lda_fp.cost -. p.Lda_fp.cost)
                 <= 2.0 *. rel_gap *. (1.0 +. Float.abs s.Lda_fp.cost)
          | _ -> false))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_solver_cost_matches_reported;
      prop_seed_feasible;
      prop_parallel_solver_matches_sequential;
      prop_warm_cold_same_search;
    ]

let () =
  Alcotest.run "lda"
    [
      ( "scaling",
        [
          Alcotest.test_case "fit bounds" `Quick test_scaling_fit_bounds;
          Alcotest.test_case "target bound" `Quick test_scaling_target_bound;
          Alcotest.test_case "roundtrip" `Quick test_scaling_roundtrip;
          Alcotest.test_case "weight equivalence" `Quick
            test_scaling_weight_equivalence;
        ] );
      ( "lda",
        [
          Alcotest.test_case "analytic 2d" `Quick test_lda_analytic_2d;
          Alcotest.test_case "normal equations (eq 11)" `Quick
            test_lda_solves_normal_equations;
          Alcotest.test_case "fisher optimality (eq 10)" `Quick
            test_lda_optimality_of_fisher_cost;
          Alcotest.test_case "threshold midpoint (eq 12)" `Quick
            test_lda_threshold_midpoint;
        ] );
      ( "problem",
        [
          Alcotest.test_case "beta (eq 16)" `Quick test_problem_beta;
          Alcotest.test_case "element box contains zero" `Quick
            test_problem_elem_box_contains_zero;
          Alcotest.test_case "element box vs brute force (eq 18)" `Quick
            test_problem_elem_box_matches_bruteforce;
          Alcotest.test_case "cost (eq 21)" `Quick test_problem_cost;
          Alcotest.test_case "grid membership (eq 13)" `Quick
            test_problem_on_grid;
          Alcotest.test_case "violation signs (eq 18/20)" `Quick
            test_problem_constraint_violation_signs;
          Alcotest.test_case "trange of box (eq 29)" `Quick
            test_problem_trange_of_box;
          Alcotest.test_case "relaxation lower-bounds grid (eq 25)" `Quick
            test_relaxation_lower_bounds_feasible_points;
          Alcotest.test_case "secant certificate sound" `Quick
            test_secant_relaxation_soundness;
          Alcotest.test_case "relative margins scale-invariant" `Quick
            test_relative_margins_scale_invariant;
          Alcotest.test_case "warm prepare repairs the branch cut" `Quick
            test_warm_prepare_repairs_branch_cut;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "round into boxes" `Quick test_round_into_boxes;
          Alcotest.test_case "evaluate rejects" `Quick
            test_evaluate_rejects_infeasible;
          Alcotest.test_case "sweep feasible" `Quick test_sweep_finds_feasible;
          Alcotest.test_case "polish monotone" `Quick test_polish_never_worsens;
        ] );
      ( "solver",
        [
          Alcotest.test_case "matches brute force (global optimum)" `Slow
            test_solver_matches_bruteforce;
          Alcotest.test_case "no-seed still optimal" `Slow
            test_solver_without_seed_still_works;
          Alcotest.test_case "diagnostics" `Quick test_solver_diagnostics;
          Alcotest.test_case "node budget" `Quick
            test_solver_respects_node_budget;
          Alcotest.test_case "H3 symmetry" `Slow
            test_problem_without_t_restriction;
          Alcotest.test_case "time budget" `Quick test_solver_time_budget;
          Alcotest.test_case "warm matches cold" `Quick
            test_solver_warm_matches_cold;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "predict rule" `Quick test_classifier_predict_rule;
          Alcotest.test_case "polarity" `Quick test_classifier_polarity;
          Alcotest.test_case "input saturation" `Quick
            test_classifier_input_saturation;
          Alcotest.test_case "threshold equality" `Quick
            test_classifier_threshold_equality;
          Alcotest.test_case "matches datapath" `Quick
            test_classifier_matches_datapath;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "conventional easy data" `Quick
            test_pipeline_conventional_on_easy_data;
          Alcotest.test_case "ldafp easy data" `Quick
            test_pipeline_ldafp_on_easy_data;
          Alcotest.test_case "ldafp beats lda at 4 bits" `Slow
            test_pipeline_ldafp_beats_lda_on_synthetic;
          Alcotest.test_case "quantize dataset" `Quick
            test_quantize_dataset_on_grid;
          Alcotest.test_case "kfold counts" `Quick test_eval_kfold_counts;
          Alcotest.test_case "kfold failure" `Quick
            test_eval_kfold_propagates_failure;
        ] );
      ( "model_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_model_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_model_io_file_roundtrip;
          Alcotest.test_case "errors" `Quick test_model_io_errors;
        ] );
      ("properties", qcheck_tests);
    ]
