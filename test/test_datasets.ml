(* Tests for the dataset substrate: container, synthetic generator,
   simulated ECoG, CSV I/O. *)

open Datasets

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Dataset container                                                   *)
(* ------------------------------------------------------------------ *)

let sample_dataset () =
  Dataset.create ~name:"t"
    ~features:
      [|
        [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |]; [| 7.0; 8.0 |];
        [| 9.0; 10.0 |]; [| 11.0; 12.0 |];
      |]
    ~labels:[| true; false; true; false; true; false |]

let test_dataset_basics () =
  let ds = sample_dataset () in
  checki "trials" 6 (Dataset.n_trials ds);
  checki "features" 2 (Dataset.n_features ds);
  let na, nb = Dataset.class_counts ds in
  checki "class A" 3 na;
  checki "class B" 3 nb

let test_dataset_class_split () =
  let ds = sample_dataset () in
  let a, b = Dataset.class_split ds in
  checki "A rows" 3 (Linalg.Mat.rows a);
  checki "B rows" 3 (Linalg.Mat.rows b);
  checkf 1e-12 "first A row" 1.0 a.(0).(0);
  checkf 1e-12 "first B row" 3.0 b.(0).(0)

let test_dataset_of_class_matrices_roundtrip () =
  let a = [| [| 1.0 |]; [| 2.0 |] |] and b = [| [| 3.0 |] |] in
  let ds = Dataset.of_class_matrices ~name:"r" ~a ~b in
  let a', b' = Dataset.class_split ds in
  checkb "A preserved" true (Linalg.Mat.approx_equal a a');
  checkb "B preserved" true (Linalg.Mat.approx_equal b b')

let test_dataset_validation () =
  checkb "mismatch rejected" true
    (match
       Dataset.create ~name:"x" ~features:[| [| 1.0 |] |] ~labels:[||]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "empty rejected" true
    (match Dataset.create ~name:"x" ~features:[||] ~labels:[||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "NaN rejected" true
    (match
       Dataset.create ~name:"x" ~features:[| [| Float.nan |] |]
         ~labels:[| true |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "infinity rejected" true
    (match
       Dataset.create ~name:"x"
         ~features:[| [| Float.infinity |] |]
         ~labels:[| true |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "ragged rejected" true
    (match
       Dataset.create ~name:"x"
         ~features:[| [| 1.0; 2.0 |]; [| 3.0 |] |]
         ~labels:[| true; false |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dataset_immutability () =
  (* create copies its inputs; mutating the original must not leak in. *)
  let feats = [| [| 1.0 |] |] in
  let ds = Dataset.create ~name:"c" ~features:feats ~labels:[| true |] in
  feats.(0).(0) <- 99.0;
  checkf 1e-12 "copied" 1.0 ds.Dataset.features.(0).(0)

let test_split_stratified () =
  let rng = Stats.Rng.create 5 in
  let ds = sample_dataset () in
  let train, test = Dataset.split ds ~train_fraction:0.67 rng in
  checki "train size" 4 (Dataset.n_trials train);
  checki "test size" 2 (Dataset.n_trials test);
  let ta, tb = Dataset.class_counts train in
  checki "train stratified A" 2 ta;
  checki "train stratified B" 2 tb

let test_stratified_folds_partition () =
  let rng = Stats.Rng.create 6 in
  let ds = sample_dataset () in
  let folds = Dataset.stratified_folds rng ~k:3 ds in
  checki "fold count" 3 (Array.length folds);
  let total_test =
    Array.fold_left (fun acc (_, t) -> acc + Dataset.n_trials t) 0 folds
  in
  checki "test sets partition the data" (Dataset.n_trials ds) total_test;
  Array.iter
    (fun (train, test) ->
      checki "train+test = all" (Dataset.n_trials ds)
        (Dataset.n_trials train + Dataset.n_trials test);
      let ta, tb = Dataset.class_counts test in
      checkb "stratified" true (abs (ta - tb) <= 1))
    folds

let test_stratified_folds_rejects_small () =
  let ds = sample_dataset () in
  let rng = Stats.Rng.create 7 in
  checkb "k too large" true
    (match Dataset.stratified_folds rng ~k:4 ds with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Synthetic generator (eqs 30-32)                                     *)
(* ------------------------------------------------------------------ *)

let test_synthetic_shape () =
  let rng = Stats.Rng.create 1 in
  let ds = Synthetic.generate ~n_per_class:100 rng in
  checki "features" 3 (Dataset.n_features ds);
  checki "trials" 200 (Dataset.n_trials ds)

let test_synthetic_population_moments () =
  (* Sample moments must approach the closed-form population values. *)
  let rng = Stats.Rng.create 2 in
  let ds = Synthetic.generate ~n_per_class:40_000 rng in
  let a, b = Dataset.class_split ds in
  let mu_a = Stats.Moments.mean a and mu_b = Stats.Moments.mean b in
  let pm_a, pm_b = Synthetic.population_means () in
  Array.iteri
    (fun j v -> checkf 0.03 (Printf.sprintf "mu_a[%d]" j) v mu_a.(j))
    pm_a;
  Array.iteri
    (fun j v -> checkf 0.03 (Printf.sprintf "mu_b[%d]" j) v mu_b.(j))
    pm_b;
  let cov = Stats.Moments.covariance a in
  let pop = Synthetic.population_covariance () in
  for i = 0 to 2 do
    for j = 0 to 2 do
      checkf 0.06 (Printf.sprintf "cov[%d][%d]" i j) pop.(i).(j) cov.(i).(j)
    done
  done

let test_synthetic_ideal_weights_cancel () =
  (* The ideal direction must null the ε₂ and ε₃ noise exactly: check by
     computing the projected population variance analytically. *)
  let w = Synthetic.ideal_weights () in
  let cov = Synthetic.population_covariance () in
  let proj_var = Linalg.Mat.quadratic_form cov w in
  (* residual variance should be gain² (only ε₁ remains) *)
  checkf 1e-9 "residual variance = gain^2" (0.58 *. 0.58) proj_var

let test_synthetic_error_floors () =
  checkf 1e-6 "ideal error" (Stats.Gaussian.cdf (-0.5 /. 0.58))
    (Synthetic.ideal_error ());
  checkf 1e-6 "no-cancel error"
    (Stats.Gaussian.cdf (-0.5 /. (0.58 *. sqrt 3.0)))
    (Synthetic.no_cancellation_error ());
  checkb "ideal < no-cancel" true
    (Synthetic.ideal_error () < Synthetic.no_cancellation_error ())

let test_synthetic_deterministic () =
  let d1 = Synthetic.generate ~n_per_class:10 (Stats.Rng.create 3) in
  let d2 = Synthetic.generate ~n_per_class:10 (Stats.Rng.create 3) in
  checkb "same seed, same data" true
    (Linalg.Mat.approx_equal d1.Dataset.features d2.Dataset.features)

(* ------------------------------------------------------------------ *)
(* ECoG simulator                                                      *)
(* ------------------------------------------------------------------ *)

let test_ecog_shape () =
  let rng = Stats.Rng.create 4 in
  let ds = Ecog_sim.generate rng in
  checki "42 features (paper)" 42 (Dataset.n_features ds);
  checki "140 trials (70/class, paper)" 140 (Dataset.n_trials ds)

let test_ecog_feature_index () =
  let p = Ecog_sim.default_params in
  checki "first" 0 (Ecog_sim.feature_index p ~channel:0 ~band:0);
  checki "row major" 8 (Ecog_sim.feature_index p ~channel:1 ~band:1);
  checki "last" 41 (Ecog_sim.feature_index p ~channel:5 ~band:6);
  checkb "out of range" true
    (match Ecog_sim.feature_index p ~channel:6 ~band:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ecog_population_structure () =
  let p = Ecog_sim.default_params in
  let mu_a, mu_b = Ecog_sim.population_means p in
  (* antisymmetric class means *)
  checkb "mu_a = -mu_b" true
    (Linalg.Vec.approx_equal mu_a (Linalg.Vec.neg mu_b));
  (* informative features non-zero, others zero *)
  let idx = Ecog_sim.feature_index p ~channel:0 ~band:5 in
  checkb "informative shifted" true (mu_b.(idx) > 0.0);
  let quiet = Ecog_sim.feature_index p ~channel:5 ~band:0 in
  checkf 1e-12 "uninformative zero" 0.0 mu_b.(quiet);
  let cov = Ecog_sim.population_covariance p in
  checkb "cov symmetric" true (Linalg.Mat.is_symmetric cov);
  checkb "cov pd" true (Linalg.Cholesky.is_positive_definite cov);
  (* same-band cross-channel correlation comes from the band noise *)
  let i = Ecog_sim.feature_index p ~channel:0 ~band:2 in
  let j = Ecog_sim.feature_index p ~channel:3 ~band:2 in
  checkb "cross-channel correlated" true (cov.(i).(j) > 0.5)

let test_ecog_bayes_error_sane () =
  let e = Ecog_sim.bayes_error Ecog_sim.default_params in
  checkb "bayes error plausible for the paper's ~20% regime" true
    (e > 0.05 && e < 0.3)

let test_ecog_validation () =
  let bad = { Ecog_sim.default_params with Ecog_sim.band_noise = [| 1.0 |] } in
  checkb "band noise length checked" true
    (match Ecog_sim.generate ~params:bad (Stats.Rng.create 1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let bad =
    { Ecog_sim.default_params with Ecog_sim.effect = [ (9, 0, 1.0) ] }
  in
  checkb "effect index checked" true
    (match Ecog_sim.population_means bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* ECG simulator                                                       *)
(* ------------------------------------------------------------------ *)

let test_ecg_shape () =
  let ds = Ecg_sim.generate (Stats.Rng.create 13) in
  checki "10 features" Ecg_sim.n_features (Dataset.n_features ds);
  checki "400 trials" 400 (Dataset.n_trials ds);
  checki "feature names" Ecg_sim.n_features
    (Array.length Ecg_sim.feature_names)

let test_ecg_population_structure () =
  let p = Ecg_sim.default_params in
  let mu_a, mu_b = Ecg_sim.population_means p in
  checkb "antisymmetric means" true
    (Linalg.Vec.approx_equal mu_a (Linalg.Vec.neg mu_b));
  (* PVC physiology encoded in the signs: short preceding RR, wide QRS,
     inverted T for the arrhythmic class *)
  checkb "rr_prev shortens" true (mu_b.(0) < 0.0);
  checkb "qrs widens" true (mu_b.(2) > 0.0);
  checkb "t inverts" true (mu_b.(4) < 0.0);
  let cov = Ecg_sim.population_covariance p in
  checkb "cov pd" true (Linalg.Cholesky.is_positive_definite cov);
  (* RR features share the drift component; RR and amplitudes do not *)
  checkb "rr coupled" true (cov.(0).(1) > 0.3);
  checkf 1e-12 "rr/amplitude uncoupled" 0.0 cov.(0).(3)

let test_ecg_bayes_error_scales_with_effect () =
  let weak = { Ecg_sim.default_params with Ecg_sim.effect_scale = 0.3 } in
  let strong = { Ecg_sim.default_params with Ecg_sim.effect_scale = 2.0 } in
  checkb "stronger effect separates better" true
    (Ecg_sim.bayes_error strong < Ecg_sim.bayes_error weak);
  let e = Ecg_sim.bayes_error Ecg_sim.default_params in
  checkb "default in a sane band" true (e > 0.01 && e < 0.45)

let test_ecg_validation () =
  checkb "bad trial count" true
    (match
       Ecg_sim.generate
         ~params:{ Ecg_sim.default_params with Ecg_sim.trials_per_class = 0 }
         (Stats.Rng.create 1)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* CSV I/O                                                             *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip_memory () =
  let ds = sample_dataset () in
  let lines = Dataset_io.to_lines ds in
  let ds2 = Dataset_io.of_lines ~name:"t" lines in
  checkb "features roundtrip" true
    (Linalg.Mat.approx_equal ds.Dataset.features ds2.Dataset.features);
  Alcotest.(check (array bool))
    "labels roundtrip" ds.Dataset.labels ds2.Dataset.labels

let test_csv_roundtrip_file () =
  let ds = Synthetic.generate ~n_per_class:25 (Stats.Rng.create 8) in
  let path = Filename.temp_file "ldafp_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset_io.save path ds;
      let ds2 = Dataset_io.load path in
      checkb "exact roundtrip" true
        (Linalg.Mat.approx_equal ~tol:0.0 ds.Dataset.features
           ds2.Dataset.features))

let test_csv_label_variants () =
  let ds =
    Dataset_io.of_lines ~name:"v"
      [ "a,1.0"; "B,2.0"; "1,3.0"; "0,4.0"; "true,5.0"; "false,6.0" ]
  in
  Alcotest.(check (array bool))
    "label synonyms" [| true; false; true; false; true; false |]
    ds.Dataset.labels

let test_csv_errors () =
  let is_err lines =
    match Dataset_io.of_lines ~name:"e" lines with
    | exception Dataset_io.Parse_error _ -> true
    | _ -> false
  in
  checkb "bad label" true (is_err [ "X,1.0" ]);
  checkb "bad number" true (is_err [ "A,abc" ]);
  checkb "ragged" true (is_err [ "A,1.0,2.0"; "B,1.0" ]);
  checkb "empty" true (is_err [ "" ]);
  checkb "header only" true (is_err [ "label,x1" ])

let test_csv_header_skipped () =
  let ds = Dataset_io.of_lines ~name:"h" [ "label,x1"; "A,1.5"; "B,-2.5" ] in
  checki "two rows" 2 (Dataset.n_trials ds);
  checkf 1e-12 "value" 1.5 ds.Dataset.features.(0).(0)

let test_csv_error_line_numbers () =
  (* Errors must report the 1-based line of the original input, not the
     index into the filtered rows: headers and blank lines still count
     toward line numbers even though they produce no data. *)
  let line_of lines =
    match Dataset_io.of_lines ~name:"ln" lines with
    | exception Dataset_io.Parse_error { line; _ } -> line
    | _ -> -1
  in
  checki "ragged row after header and blank" 4
    (line_of [ "label,x1,x2"; ""; "A,1,2"; "B,1" ]);
  checki "bad number after header and blank" 3
    (line_of [ "label,x1"; ""; "A,oops" ]);
  checki "bad label mid-file" 3
    (line_of [ "label,x1"; "A,1.0"; "X,2.0"; "B,3.0" ])

let test_csv_rejects_non_finite () =
  (* [float_of_string] happily parses "nan" and "inf", and "1e999"
     overflows to infinity; all of them would poison scatter matrices
     and SOCP bounds downstream, so the loader must reject them with
     the 1-based line of the original input. *)
  let line_of lines =
    match Dataset_io.of_lines ~name:"nf" lines with
    | exception Dataset_io.Parse_error { line; _ } -> line
    | _ -> -1
  in
  checki "nan feature" 2 (line_of [ "A,1.0"; "B,nan" ]);
  checki "inf feature" 1 (line_of [ "A,inf" ]);
  checki "negative inf feature" 2 (line_of [ "A,1.0"; "B,-infinity" ]);
  checki "overflowing literal" 3
    (line_of [ "label,x1"; "A,1.0"; "B,1e999" ]);
  (* Large-but-finite values are still fine. *)
  let ds = Dataset_io.of_lines ~name:"big" [ "A,1e300"; "B,-1e300" ] in
  checkf 1.0 "finite extreme kept" 1e300 ds.Dataset.features.(0).(0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_folds_partition =
  QCheck.Test.make ~name:"stratified folds partition trials" ~count:50
    QCheck.(pair (int_range 2 5) (int_range 0 1_000_000))
    (fun (k, seed) ->
      let rng = Stats.Rng.create seed in
      let ds = Synthetic.generate ~n_per_class:(k * 3) rng in
      let folds = Dataset.stratified_folds rng ~k ds in
      let total =
        Array.fold_left (fun acc (_, t) -> acc + Dataset.n_trials t) 0 folds
      in
      total = Dataset.n_trials ds)

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"CSV roundtrip exact" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let ds = Synthetic.generate ~n_per_class:5 rng in
      let ds2 = Dataset_io.of_lines ~name:"p" (Dataset_io.to_lines ds) in
      Linalg.Mat.approx_equal ~tol:0.0 ds.Dataset.features ds2.Dataset.features
      && ds.Dataset.labels = ds2.Dataset.labels)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_folds_partition; prop_csv_roundtrip ]

let () =
  Alcotest.run "datasets"
    [
      ( "dataset",
        [
          Alcotest.test_case "basics" `Quick test_dataset_basics;
          Alcotest.test_case "class split" `Quick test_dataset_class_split;
          Alcotest.test_case "class matrices roundtrip" `Quick
            test_dataset_of_class_matrices_roundtrip;
          Alcotest.test_case "validation" `Quick test_dataset_validation;
          Alcotest.test_case "defensive copies" `Quick
            test_dataset_immutability;
          Alcotest.test_case "stratified split" `Quick test_split_stratified;
          Alcotest.test_case "stratified folds" `Quick
            test_stratified_folds_partition;
          Alcotest.test_case "folds reject small classes" `Quick
            test_stratified_folds_rejects_small;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "shape" `Quick test_synthetic_shape;
          Alcotest.test_case "population moments" `Slow
            test_synthetic_population_moments;
          Alcotest.test_case "ideal weights cancel" `Quick
            test_synthetic_ideal_weights_cancel;
          Alcotest.test_case "error floors" `Quick test_synthetic_error_floors;
          Alcotest.test_case "deterministic" `Quick
            test_synthetic_deterministic;
        ] );
      ( "ecog",
        [
          Alcotest.test_case "shape" `Quick test_ecog_shape;
          Alcotest.test_case "feature index" `Quick test_ecog_feature_index;
          Alcotest.test_case "population structure" `Quick
            test_ecog_population_structure;
          Alcotest.test_case "bayes error" `Quick test_ecog_bayes_error_sane;
          Alcotest.test_case "validation" `Quick test_ecog_validation;
        ] );
      ( "ecg",
        [
          Alcotest.test_case "shape" `Quick test_ecg_shape;
          Alcotest.test_case "population structure" `Quick
            test_ecg_population_structure;
          Alcotest.test_case "bayes error scaling" `Quick
            test_ecg_bayes_error_scales_with_effect;
          Alcotest.test_case "validation" `Quick test_ecg_validation;
        ] );
      ( "csv",
        [
          Alcotest.test_case "memory roundtrip" `Quick
            test_csv_roundtrip_memory;
          Alcotest.test_case "file roundtrip" `Quick test_csv_roundtrip_file;
          Alcotest.test_case "label variants" `Quick test_csv_label_variants;
          Alcotest.test_case "parse errors" `Quick test_csv_errors;
          Alcotest.test_case "header skipped" `Quick test_csv_header_skipped;
          Alcotest.test_case "error line numbers" `Quick
            test_csv_error_line_numbers;
          Alcotest.test_case "rejects non-finite features" `Quick
            test_csv_rejects_non_finite;
        ] );
      ("properties", qcheck_tests);
    ]
